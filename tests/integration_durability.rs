//! Durability end to end: a live service is killed mid-stream and restarted
//! from its write-ahead log. The restarted service must (1) adopt the
//! pre-crash ledger — ε debited exactly once per slot across the crash, with
//! no re-minting for already-queried footage, (2) re-arm standing queries at
//! their next unfired window so the concatenation of pre-crash and
//! post-restart firings is bit-for-bit identical to an uninterrupted run,
//! and (3) fail retryably (without debit) for footage the owner has not yet
//! replayed. Mirrors `integration_live.rs`, with a crash in the middle.

use privid::{
    ChunkProcessor, Durability, FrameBatch, FsyncPolicy, Parallelism, PrivacyPolicy, PrividError, QueryService,
    Scene, SceneConfig, SceneGenerator, StandingFiring, TimeSpan, TrackedObject, UniqueEntrantProcessor,
};
use std::path::PathBuf;

const BATCH_SECS: f64 = 300.0;
const N_BATCHES: usize = 6;
const CRASH_AFTER: usize = 3;
const POLICY: (f64, u32, f64) = (60.0, 2, 20.0);
const STANDING_SEED: u64 = 9000;
const ANALYST_SEED: u64 = 77;

fn policy() -> PrivacyPolicy {
    PrivacyPolicy::new(POLICY.0, POLICY.1, POLICY.2)
}

fn wal_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("privid-integration-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Partition a generated scene's objects into frame batches by the batch in
/// which each object first appears.
fn batches_of(scene: &Scene) -> Vec<FrameBatch> {
    let mut per_batch: Vec<Vec<TrackedObject>> = vec![Vec::new(); N_BATCHES];
    for obj in &scene.objects {
        let first = obj.first_seen().map(|t| t.as_secs()).unwrap_or(0.0);
        let slot = ((first / BATCH_SECS).floor() as usize).min(N_BATCHES - 1);
        per_batch[slot].push(obj.clone());
    }
    per_batch.into_iter().map(|objects| FrameBatch::new(BATCH_SECS, objects)).collect()
}

fn register(svc: &QueryService, scene: &Scene) {
    svc.register_live_camera("campus", scene.frame_rate, scene.frame_size, policy()).expect("camera/processor registration must succeed");
    svc.register_processor("person_counter", || {
        Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>
    }).expect("camera/processor registration must succeed");
}

fn window_query(begin: f64, end: f64, epsilon: f64) -> String {
    format!(
        "SPLIT campus BEGIN {begin} END {end} BY TIME 10 sec STRIDE 0 sec INTO chunks;
         PROCESS chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
             WITH SCHEMA (count:NUMBER=0) INTO people;
         SELECT COUNT(*) FROM people CONSUMING {epsilon};"
    )
}

fn standing_text() -> String {
    window_query(0.0, BATCH_SECS, 0.5)
}

/// The uninterrupted reference: everything the crashing run does, on one
/// in-memory service with the same seeds — including the ad-hoc analyst
/// query issued right after batch `CRASH_AFTER`.
fn uninterrupted_run(scene: &Scene, batches: &[FrameBatch]) -> (Vec<StandingFiring>, Vec<f64>, f64) {
    let svc = QueryService::new().with_parallelism(Parallelism::Fixed(1));
    register(&svc, scene);
    svc.register_standing_query("per_window", STANDING_SEED, &standing_text()).unwrap();
    let mut analyst_raw = f64::NAN;
    for (k, batch) in batches.iter().enumerate() {
        svc.append_frames("campus", batch.clone()).unwrap();
        if k + 1 == CRASH_AFTER {
            let r = svc.execute_text(ANALYST_SEED, &window_query(0.0, BATCH_SECS, 0.25)).unwrap();
            analyst_raw = r.releases[0].raw.as_number().unwrap();
        }
    }
    let firings = svc.standing_results("per_window").unwrap();
    let budgets =
        (0..N_BATCHES).map(|k| svc.remaining_budget("campus", k as f64 * BATCH_SECS + 10.0).unwrap()).collect();
    (firings, budgets, analyst_raw)
}

#[test]
fn restart_resumes_standing_queries_bit_for_bit_with_exactly_once_debits() {
    let dir = wal_dir("restart");
    let generated = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.5)).generate();
    let batches = batches_of(&generated);
    let (reference_firings, reference_budgets, reference_raw) = uninterrupted_run(&generated, &batches);
    assert_eq!(reference_firings.len(), N_BATCHES);

    // ---- phase 1: the durable service serves until it "crashes" ----------------------
    let pre_crash_firings: Vec<StandingFiring> = {
        let svc = QueryService::builder()
            .parallelism(Parallelism::Fixed(1))
            .durability(Durability::wal(&dir, FsyncPolicy::Always))
            .snapshot_every(16) // small enough that the crash also crosses snapshots
            .build()
            .expect("fresh durable service");
        assert!(svc.recovery_report().is_none(), "a fresh store has nothing to recover");
        register(&svc, &generated);
        svc.register_standing_query("per_window", STANDING_SEED, &standing_text()).unwrap();
        let mut fired = 0;
        for batch in &batches[..CRASH_AFTER] {
            fired += svc.append_frames("campus", batch.clone()).unwrap().standing_fired;
        }
        assert_eq!(fired, CRASH_AFTER, "one firing per completed window before the crash");
        // An ad-hoc analyst query, so the crash also has a non-standing debit
        // to preserve.
        let r = svc.execute_text(ANALYST_SEED, &window_query(0.0, BATCH_SECS, 0.25)).unwrap();
        assert_eq!(r.releases[0].raw.as_number().unwrap(), reference_raw);
        svc.standing_results("per_window").unwrap()
        // `svc` dropped here: no shutdown protocol, no checkpoint — a crash.
    };

    // ---- phase 2: restart, recover, replay, resume -----------------------------------
    let svc = QueryService::builder()
        .parallelism(Parallelism::Fixed(1))
        .durability(Durability::wal(&dir, FsyncPolicy::Always))
        .snapshot_every(16)
        .build()
        .expect("recovery succeeds");
    let report = svc.recovery_report().expect("an existing store was recovered").clone();
    assert_eq!(report.torn_tail_bytes, 0, "clean shutdown at a record boundary");
    register(&svc, &generated);

    // The ledger resumed at the durable edge with every debit intact…
    assert_eq!(svc.ledger_edge("campus"), Some(CRASH_AFTER as f64 * BATCH_SECS));
    assert!(
        (svc.remaining_budget("campus", 10.0).unwrap() - (POLICY.2 - 0.5 - 0.25)).abs() < 1e-9,
        "window 0 keeps both its standing and its analyst debit across the crash"
    );
    // …while the footage awaits replay: the gap fails retryably, debit-free.
    assert_eq!(svc.live_edge("campus"), Some(0.0));
    match svc.execute_text(5, &window_query(0.0, BATCH_SECS, 0.1)) {
        Err(PrividError::BeyondLiveEdge { live_edge_secs, .. }) => assert_eq!(live_edge_secs, 0.0),
        other => panic!("expected BeyondLiveEdge before the replay, got {other:?}"),
    }

    // Re-arming the identical standing query is idempotent (no reset, no
    // catch-up re-firing) — the recovered watermark stands.
    assert_eq!(svc.register_standing_query("per_window", STANDING_SEED, &standing_text()).unwrap(), 0);

    // Replay the already-recorded batches: no standing window re-fires, no
    // slot is re-debited, no ε is re-minted.
    for batch in &batches[..CRASH_AFTER] {
        let outcome = svc.append_frames("campus", batch.clone()).unwrap();
        assert_eq!(outcome.standing_fired, 0, "replayed footage must not re-fire recovered windows");
    }
    assert!((svc.remaining_budget("campus", 10.0).unwrap() - (POLICY.2 - 0.5 - 0.25)).abs() < 1e-9);

    // Resume the live stream: the remaining windows fire exactly once each.
    let mut resumed = 0;
    for batch in &batches[CRASH_AFTER..] {
        resumed += svc.append_frames("campus", batch.clone()).unwrap().standing_fired;
    }
    assert_eq!(resumed, N_BATCHES - CRASH_AFTER);

    // ---- the proof: pre-crash ++ post-restart == uninterrupted, bit for bit ----------
    let post_restart_firings = svc.standing_results("per_window").unwrap();
    let stitched: Vec<StandingFiring> =
        pre_crash_firings.into_iter().chain(post_restart_firings).collect();
    assert_eq!(stitched.len(), reference_firings.len());
    for (k, (stitched, reference)) in stitched.iter().zip(&reference_firings).enumerate() {
        assert_eq!(stitched.window, TimeSpan::between_secs(k as f64 * BATCH_SECS, (k + 1) as f64 * BATCH_SECS));
        assert_eq!(stitched.seed, STANDING_SEED + k as u64, "per-firing seeds survive the restart");
        assert_eq!(
            stitched, reference,
            "firing {k}: the restarted stream must release bit-for-bit what an uninterrupted run releases"
        );
    }

    // Exactly-once ε accounting across the crash: every sampled slot matches
    // the uninterrupted service to the last bit of f64 arithmetic.
    for (k, reference) in reference_budgets.iter().enumerate() {
        let at = k as f64 * BATCH_SECS + 10.0;
        let remaining = svc.remaining_budget("campus", at).unwrap();
        assert!(
            (remaining - reference).abs() < 1e-12,
            "slot at {at}s: restarted {remaining} vs uninterrupted {reference}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_second_restart_after_a_checkpoint_recovers_from_the_snapshot() {
    // Crash → recover → checkpoint → crash → recover: the second recovery
    // reads (mostly) the snapshot, and the ledgers still carry every debit.
    let dir = wal_dir("two-restarts");
    let generated = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.25)).generate();
    let build = || {
        QueryService::builder()
            .parallelism(Parallelism::Fixed(1))
            .durability(Durability::wal(&dir, FsyncPolicy::Never))
            .build()
            .expect("durable service builds")
    };
    {
        let svc = build();
        register(&svc, &generated);
        svc.append_frames("campus", FrameBatch::new(600.0, generated.objects.clone())).unwrap();
        svc.execute_text(3, &window_query(0.0, 300.0, 1.0)).unwrap();
    }
    {
        let svc = build();
        register(&svc, &generated);
        assert!((svc.remaining_budget("campus", 100.0).unwrap() - (POLICY.2 - 1.0)).abs() < 1e-9);
        // Replay the recorded footage (the video store survives the crash;
        // the WAL only persists admission state), then query fresh windows.
        svc.append_frames("campus", FrameBatch::new(600.0, generated.objects.clone())).unwrap();
        svc.execute_text(4, &window_query(300.0, 600.0, 0.5)).unwrap();
        svc.checkpoint().expect("explicit checkpoint");
    }
    let svc = build();
    let report = svc.recovery_report().unwrap();
    assert!(report.snapshot_seq > 0, "the second recovery starts from the snapshot");
    assert_eq!(report.records_replayed, 0, "nothing was appended after the checkpoint");
    register(&svc, &generated);
    assert!((svc.remaining_budget("campus", 100.0).unwrap() - (POLICY.2 - 1.0)).abs() < 1e-9);
    assert!((svc.remaining_budget("campus", 400.0).unwrap() - (POLICY.2 - 0.5)).abs() < 1e-9);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn durable_serving_is_bit_for_bit_identical_to_in_memory_serving() {
    // The WAL must be write-only with respect to semantics: same seeds, same
    // releases, durable or not — including under concurrent analysts.
    let dir = wal_dir("transparent");
    let generated = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.25)).generate();
    let durable = QueryService::builder()
        .parallelism(Parallelism::Fixed(2))
        .durability(Durability::wal(&dir, FsyncPolicy::Never))
        .build()
        .unwrap();
    let plain = QueryService::new().with_parallelism(Parallelism::Fixed(2));
    for svc in [&durable, &plain] {
        register(svc, &generated);
        svc.append_frames("campus", FrameBatch::new(900.0, generated.objects.clone())).unwrap();
    }
    let queries: Vec<(u64, String)> =
        (0..6).map(|q| (100 + q, window_query((q % 3) as f64 * 300.0, ((q % 3) + 1) as f64 * 300.0, 0.2))).collect();
    let run = |svc: &QueryService| -> Vec<privid::QueryResult> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = queries
                .iter()
                .map(|(seed, text)| scope.spawn(move || svc.execute_text(*seed, text).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    };
    assert_eq!(run(&durable), run(&plain), "durability must never change a release");
    for at in [10.0, 310.0, 610.0] {
        assert_eq!(
            durable.remaining_budget("campus", at).unwrap().to_bits(),
            plain.remaining_budget("campus", at).unwrap().to_bits(),
            "identical debits at {at}s"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
