//! Determinism of the parallel chunk execution engine: the same seeded query
//! must produce bit-for-bit identical results at every worker count, because
//! the engine merges sandboxed outputs in deterministic (chunk, region) order
//! before budget accounting and noise are applied.

use privid::{
    ChunkProcessor, Parallelism, PrivacyPolicy, PrividSystem, Scene, SceneConfig, SceneGenerator,
    UniqueEntrantProcessor,
};

const QUERY: &str = "
    SPLIT campus BEGIN 0 END 1200 BY TIME 5 sec STRIDE 0 sec INTO chunks;
    PROCESS chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
        WITH SCHEMA (count:NUMBER=0) INTO people;
    SELECT COUNT(*) FROM people CONSUMING 1.0;";

fn scene() -> Scene {
    SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.5)).generate()
}

fn system(seed: u64, parallelism: Parallelism) -> PrividSystem {
    let mut sys = PrividSystem::new(seed).with_parallelism(parallelism);
    sys.register_camera("campus", scene(), PrivacyPolicy::new(60.0, 2, 20.0)).expect("camera/processor registration must succeed");
    sys.register_processor("person_counter", || {
        Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>
    }).expect("camera/processor registration must succeed");
    sys
}

#[test]
fn releases_identical_across_1_2_and_8_workers() {
    let baseline = system(42, Parallelism::Fixed(1)).execute_text(QUERY).unwrap();
    assert!(baseline.chunks_processed >= 240);
    for workers in [2, 8] {
        let result = system(42, Parallelism::Fixed(workers)).execute_text(QUERY).unwrap();
        assert_eq!(
            baseline.releases, result.releases,
            "noisy releases must be bit-for-bit identical at {workers} workers"
        );
        assert_eq!(baseline.epsilon_spent, result.epsilon_spent);
        assert_eq!(baseline.chunks_processed, result.chunks_processed);
    }
}

#[test]
fn serial_and_auto_match_fixed_worker_results() {
    let serial = system(7, Parallelism::Serial).execute_text(QUERY).unwrap();
    let auto = system(7, Parallelism::Auto).execute_text(QUERY).unwrap();
    let fixed = system(7, Parallelism::Fixed(4)).execute_text(QUERY).unwrap();
    assert_eq!(serial.releases, auto.releases);
    assert_eq!(serial.releases, fixed.releases);
    assert_eq!(serial.epsilon_spent, auto.epsilon_spent);
}

#[test]
fn spatial_split_is_deterministic_across_worker_counts() {
    // Spatial splitting exercises the region-restriction path of the engine:
    // every chunk fans out once per region, and the (chunk, region) merge
    // order must hold at any parallelism. Campus's default scheme has soft
    // boundaries, so chunks must be a single frame long.
    let query = "
        SPLIT campus BEGIN 0 END 300 BY TIME 1 sec STRIDE 0 sec BY REGION default INTO chunks;
        PROCESS chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
            WITH SCHEMA (count:NUMBER=0) INTO people;
        SELECT COUNT(*) FROM people CONSUMING 1.0;";
    let serial = system(11, Parallelism::Serial).execute_text(query).unwrap();
    let parallel = system(11, Parallelism::Fixed(8)).execute_text(query).unwrap();
    assert_eq!(serial.releases, parallel.releases);
    assert_eq!(serial.chunks_processed, parallel.chunks_processed);
    assert!(serial.chunks_processed >= 300, "one execution per chunk per region");
}

#[test]
fn empty_window_processes_zero_chunks_at_any_parallelism() {
    // The textual parser rejects BEGIN == END, so build the degenerate window
    // programmatically: the plan must yield zero chunks and the engine must
    // come back empty without spawning useless workers.
    let mut query = privid::parse_query(QUERY).unwrap();
    query.splits[0].end_secs = query.splits[0].begin_secs;
    for parallelism in [Parallelism::Serial, Parallelism::Fixed(8), Parallelism::Auto] {
        let result = system(3, parallelism).execute(&query).unwrap();
        assert_eq!(result.chunks_processed, 0);
        assert_eq!(result.releases.len(), 1, "COUNT over an empty table still releases (noisy) zero");
    }
}
