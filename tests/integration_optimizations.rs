//! Integration tests for the §7 utility optimizations (masking and spatial
//! splitting) and the §5.2 automatic policy estimation, wired through the
//! full system.

use privid::core::masking::MaskingAnalysis;
use privid::cv::{DetectorConfig, TrackerConfig};
use privid::{
    greedy_mask_order, ChunkProcessor, DurationEstimator, GridSpec, MaskPolicy, PolicyEstimator, PrivacyPolicy,
    PrividSystem, SceneConfig, SceneGenerator, TimeSpan, UniqueEntrantProcessor,
};

#[test]
fn cv_estimated_policy_feeds_the_system_and_protects_everyone() {
    // §5.2 / Table 1: estimate (ρ, K) with the imperfect CV pipeline, then
    // check the estimate covers the ground-truth maximum duration, and that
    // the system accepts queries under that policy.
    let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.5)).generate();
    let estimated = PolicyEstimator::for_video("campus").estimate(&scene);
    let gt_max = scene.max_segment_duration(|o| o.class.is_private());
    assert!(estimated.rho_secs >= gt_max, "estimated ρ {} must cover ground truth {gt_max}", estimated.rho_secs);

    let mut sys = PrividSystem::new(1);
    sys.register_camera("campus", scene, PrivacyPolicy::new(estimated.rho_secs, estimated.k, 10.0)).expect("camera/processor registration must succeed");
    sys.register_processor("proc", || Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>).expect("camera/processor registration must succeed");
    let result = sys
        .execute_text(
            "SPLIT campus BEGIN 0 END 15 min BY TIME 10 sec STRIDE 0 sec INTO c;
             PROCESS c USING proc TIMEOUT 1 sec PRODUCING 20 ROWS WITH SCHEMA (count:NUMBER=0) INTO t;
             SELECT COUNT(*) FROM t CONSUMING 1.0;",
        )
        .unwrap();
    assert!(result.releases[0].sensitivity > 0.0);
}

#[test]
fn masking_reduces_rho_and_noise_while_keeping_most_identities() {
    // The full §7.1 workflow: Algorithm 2 → mask → re-estimated ρ under the
    // mask → smaller noise for the same query, with most identities retained.
    let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(1.0)).generate();
    let grid = GridSpec::coarse(scene.frame_size);
    let plan = greedy_mask_order(&scene, grid, 80);
    let prefix = plan.prefix_for_reduction(2.0).expect("2x reduction reachable");
    let mask = plan.mask_prefix(prefix);
    let analysis = MaskingAnalysis::analyse(&scene, &mask);
    assert!(analysis.reduction_factor >= 2.0);
    assert!(analysis.identities_retained >= 0.6);

    // Re-estimate ρ under the mask with the CV pipeline (not ground truth).
    let estimator = DurationEstimator::new(DetectorConfig::campus(), TrackerConfig::campus());
    let history = TimeSpan::between_secs(0.0, 1800.0);
    let masked_est = estimator.estimate_masked(&scene, &history, Some(&mask));
    let unmasked_est = estimator.estimate_masked(&scene, &history, None);
    assert!(masked_est.max_track_duration_secs <= unmasked_est.max_track_duration_secs);

    let unmasked_rho = (unmasked_est.max_duration_secs).max(1.0);
    let masked_rho = (masked_est.max_duration_secs).min(unmasked_rho);
    let mut sys = PrividSystem::new(2);
    sys.register_camera("campus", scene, PrivacyPolicy::new(unmasked_rho, 2, 10.0)).expect("camera/processor registration must succeed");
    sys.register_mask("campus", "m", MaskPolicy::new(mask, masked_rho)).unwrap();
    sys.register_processor("proc", || Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>).expect("camera/processor registration must succeed");
    let q = "SPLIT campus BEGIN 0 END 20 min BY TIME 5 sec STRIDE 0 sec {M} INTO c;
             PROCESS c USING proc TIMEOUT 1 sec PRODUCING 20 ROWS WITH SCHEMA (count:NUMBER=0) INTO t;
             SELECT COUNT(*) FROM t CONSUMING 1.0;";
    let plain = sys.execute_text(&q.replace("{M}", "")).unwrap();
    let masked = sys.execute_text(&q.replace("{M}", "WITH MASK m")).unwrap();
    assert!(
        masked.releases[0].noise_scale <= plain.releases[0].noise_scale,
        "masking must never increase the noise for the same query"
    );
}

#[test]
fn spatial_splitting_reduces_per_region_output_range() {
    // Table 2: the per-region max per-chunk output is smaller than the
    // whole-frame max, and the hard-boundary highway scheme admits any chunk size.
    let scene = SceneGenerator::new(SceneConfig::highway().with_duration_hours(0.2).with_arrival_scale(0.3)).generate();
    let scheme = scene.region_schemes["default"].clone();
    let report = privid::core::region_output_ranges(
        &scene,
        &TimeSpan::from_secs(600.0),
        &privid::video::ChunkSpec::contiguous(5.0),
        &scheme,
    );
    assert!(report.reduction_factor > 1.0);

    let mut sys = PrividSystem::new(3);
    sys.register_camera("highway", scene, PrivacyPolicy::new(120.0, 2, 10.0)).expect("camera/processor registration must succeed");
    sys.register_processor("proc", || Box::new(UniqueEntrantProcessor::cars()) as Box<dyn ChunkProcessor>).expect("camera/processor registration must succeed");
    // Hard boundary: a 5-second chunk is allowed with BY REGION.
    let result = sys
        .execute_text(
            "SPLIT highway BEGIN 0 END 5 min BY TIME 5 sec STRIDE 0 sec BY REGION default INTO c;
             PROCESS c USING proc TIMEOUT 1 sec PRODUCING 40 ROWS WITH SCHEMA (count:NUMBER=0) INTO t;
             SELECT COUNT(*) FROM t CONSUMING 1.0;",
        )
        .unwrap();
    assert_eq!(result.chunks_processed, 60 * 2, "one execution per chunk per region");
}

#[test]
fn degradation_curve_bounds_over_long_events() {
    // §5.3 / Appendix C: an event exceeding the bound by 2x is detectable with
    // higher probability than one inside the bound, but still not certainty
    // at moderate ε.
    let inside = privid::core::detection_probability_bound(1.0, 0.05);
    let double = privid::core::detection_probability_bound(2.0, 0.05);
    let huge = privid::core::detection_probability_bound(20.0, 0.05);
    assert!(inside < double && double < huge);
    assert!(inside < 0.2);
    assert!(huge > 0.99);
}
