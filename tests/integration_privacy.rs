//! Privacy-focused integration tests: the budget ledger, the sensitivity
//! bounds, adversarial processors, and an empirical neighbouring-video
//! indistinguishability check.

use privid::query::Value;
use privid::sandbox::{RowFloodProcessor, SlowProcessor};
use privid::video::{ObjectClass, ObjectId, PresenceSegment, TrackedObject};
use privid::{ChunkProcessor, PrivacyPolicy, PrividSystem, SceneConfig, SceneGenerator, UniqueEntrantProcessor};

const COUNT_QUERY: &str = "
    SPLIT campus BEGIN 0 END 10 min BY TIME 10 sec STRIDE 0 sec INTO chunks;
    PROCESS chunks USING proc TIMEOUT 1 sec PRODUCING 5 ROWS
        WITH SCHEMA (count:NUMBER=0) INTO people;
    SELECT COUNT(*) FROM people CONSUMING 1.0;";

fn system_with(scene: privid::Scene, seed: u64, processor: &'static str) -> PrividSystem {
    let mut sys = PrividSystem::new(seed);
    sys.register_camera("campus", scene, PrivacyPolicy::new(60.0, 2, 10.0)).expect("camera/processor registration must succeed");
    match processor {
        "flood" => sys.register_processor("proc", || Box::new(RowFloodProcessor { rows: 10_000 }) as Box<dyn ChunkProcessor>),
        "slow" => sys.register_processor("proc", || {
            Box::new(SlowProcessor { base_secs: 5.0, per_observation_secs: 1.0 }) as Box<dyn ChunkProcessor>
        }),
        _ => sys.register_processor("proc", || Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>),
    }
    .expect("camera/processor registration must succeed");
    sys
}

#[test]
fn adversarial_row_flood_cannot_exceed_declared_sensitivity() {
    // A processor emitting 10 000 rows per chunk is clamped to max_rows = 5,
    // so the raw count is bounded by chunks × 5 and the sensitivity stays at
    // the declared 5 · K · (1 + ⌈ρ/c⌉).
    let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.25)).generate();
    let mut sys = system_with(scene, 1, "flood");
    let result = sys.execute_text(COUNT_QUERY).unwrap();
    let release = &result.releases[0];
    assert_eq!(release.sensitivity, 5.0 * 2.0 * 7.0);
    let raw = release.raw.as_number().unwrap();
    assert!(raw <= 60.0 * 5.0 + 1e-9, "60 chunks x 5 rows bounds the table size, got {raw}");
}

#[test]
fn timing_out_processor_only_contributes_default_rows() {
    let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.25)).generate();
    let mut sys = system_with(scene, 2, "slow");
    let result = sys.execute_text(COUNT_QUERY).unwrap();
    // Every chunk times out and yields exactly one default row.
    assert_eq!(result.releases[0].raw.as_number().unwrap(), 60.0);
}

#[test]
fn budget_composes_across_adaptive_queries_and_is_enforced() {
    let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.25)).generate();
    let mut sys = system_with(scene, 3, "counter");
    let mut spent = 0.0;
    // Adaptive sequence: keep issuing queries until the ledger refuses.
    let mut refused = false;
    for _ in 0..15 {
        match sys.execute_text(COUNT_QUERY) {
            Ok(r) => spent += r.epsilon_spent,
            Err(privid::PrividError::BudgetExhausted { requested, available, .. }) => {
                assert!(available < requested);
                refused = true;
                break;
            }
            Err(other) => panic!("unexpected error {other}"),
        }
    }
    assert!(refused, "the per-frame budget (10.0) must eventually refuse 1.0-budget queries");
    assert!((spent - 10.0).abs() < 1e-6, "exactly the per-frame budget is spendable on one window, spent {spent}");
}

#[test]
fn neighbouring_videos_produce_statistically_close_outputs() {
    // Construct two neighbouring scenes: identical except that one contains an
    // extra individual visible for 45 s (within ρ = 60, K = 2). Repeated
    // noisy counts from the two systems must be statistically indistinguishable
    // at the ε = 1 level: the difference of means stays within a few noise
    // scales and the distributions overlap heavily.
    let base = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.25)).generate();
    let mut with_extra = base.clone();
    let max_id = with_extra.objects.iter().map(|o| o.id.0).max().unwrap_or(0);
    with_extra.objects.push(TrackedObject::new(
        ObjectId(max_id + 1),
        ObjectClass::Person,
        privid::video::Attributes::default(),
        vec![PresenceSegment {
            span: privid::video::TimeSpan::between_secs(120.0, 165.0),
            trajectory: privid::video::trajectory::Trajectory::linear(
                privid::video::Point::new(0.0, 500.0),
                privid::video::Point::new(1900.0, 500.0),
                40.0,
                110.0,
            ),
        }],
    ));
    with_extra.rebuild_index();

    let trials = 40;
    let mut outputs_a = Vec::new();
    let mut outputs_b = Vec::new();
    for t in 0..trials {
        let mut sys_a = system_with(base.clone(), 100 + t, "counter");
        let mut sys_b = system_with(with_extra.clone(), 200 + t, "counter");
        outputs_a.push(sys_a.execute_text(COUNT_QUERY).unwrap().releases[0].value.as_number().unwrap());
        outputs_b.push(sys_b.execute_text(COUNT_QUERY).unwrap().releases[0].value.as_number().unwrap());
    }
    let mean_a: f64 = outputs_a.iter().sum::<f64>() / trials as f64;
    let mean_b: f64 = outputs_b.iter().sum::<f64>() / trials as f64;
    let noise_scale = 5.0 * 2.0 * 7.0 / 1.0; // Δ/ε
    assert!(
        (mean_a - mean_b).abs() < noise_scale,
        "the presence of one (ρ,K)-bounded individual is buried in the noise: |{mean_a} - {mean_b}| vs scale {noise_scale}"
    );
}

#[test]
fn default_rows_do_not_depend_on_chunk_content() {
    // Appendix B: the default value must be fixed a priori. Build a table by
    // hand and verify the schema's default row is identical for any chunk.
    let schema = privid::query::Schema::new(vec![
        privid::query::ColumnDef::string("plate", "NONE"),
        privid::query::ColumnDef::number("speed", -1.0),
    ])
    .unwrap();
    assert_eq!(schema.default_values(), vec![Value::str("NONE"), Value::num(-1.0)]);
    assert_eq!(schema.coerce(&[]), schema.default_values());
}
