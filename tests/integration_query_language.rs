//! Query-language integration tests: parse → validate → execute paths,
//! including the interface restrictions Privid imposes on analysts.

use privid::query::{QueryError, Schema, SensitivityContext, TableProfile};
use privid::{parse_query, Aggregation, ChunkProcessor, PrivacyPolicy, PrividError, PrividSystem, Relation};
use privid::{SceneConfig, SceneGenerator, UniqueEntrantProcessor};

#[test]
fn textual_and_programmatic_queries_agree_on_sensitivity() {
    // The same statement built via the parser and via the builder API must
    // yield identical sensitivities.
    let text = parse_query("SELECT AVG(range(speed, 30, 60)) FROM tableA;").unwrap();
    let built =
        privid::SelectStatement::simple(Aggregation::avg("speed", 30.0, 60.0), Relation::table("tableA"));
    let mut ctx = SensitivityContext::new();
    ctx.register(
        "tableA",
        TableProfile { max_rows_per_chunk: 10, chunk_secs: 5.0, rho_secs: 30.0, k: 2, num_chunks: 1000 },
    );
    let s_text = ctx.statement_sensitivities(&text.selects[0], 1).unwrap();
    let s_built = ctx.statement_sensitivities(&built, 1).unwrap();
    assert_eq!(s_text, s_built);
}

#[test]
fn listing1_schema_roundtrip() {
    let q = parse_query(
        r#"PROCESS c USING model.py TIMEOUT 1 sec PRODUCING 10 ROWS
           WITH SCHEMA (plate:STRING="", color:STRING="", speed:NUMBER=0) INTO tableA;"#,
    )
    .unwrap();
    assert_eq!(q.processes[0].schema, Schema::listing1());
    assert_eq!(q.processes[0].timeout_secs, 1.0);
}

#[test]
fn interface_restrictions_are_enforced_end_to_end() {
    let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.1)).generate();
    let mut sys = PrividSystem::new(1);
    sys.register_camera("campus", scene, PrivacyPolicy::new(60.0, 2, 10.0)).expect("camera/processor registration must succeed");
    sys.register_processor("proc", || Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>).expect("camera/processor registration must succeed");

    // SUM without a declared range is refused by the sensitivity calculator.
    let missing_range = "
        SPLIT campus BEGIN 0 END 5 min BY TIME 10 sec STRIDE 0 sec INTO c;
        PROCESS c USING proc TIMEOUT 1 sec PRODUCING 5 ROWS WITH SCHEMA (count:NUMBER=0) INTO t;
        SELECT SUM(count) FROM t CONSUMING 1.0;";
    match sys.execute_text(missing_range) {
        Err(PrividError::Query(QueryError::MissingConstraint(msg))) => assert!(msg.contains("range")),
        other => panic!("expected a missing-constraint error, got {other:?}"),
    }

    // GROUP BY over an analyst column without keys is rejected at parse time.
    let no_keys = "
        SPLIT campus BEGIN 0 END 5 min BY TIME 10 sec STRIDE 0 sec INTO c;
        PROCESS c USING proc TIMEOUT 1 sec PRODUCING 5 ROWS WITH SCHEMA (count:NUMBER=0) INTO t;
        SELECT COUNT(*) FROM t GROUP BY count CONSUMING 1.0;";
    assert!(matches!(sys.execute_text(no_keys), Err(PrividError::Query(QueryError::Unsupported(_)))));

    // The outer SELECT must aggregate.
    assert!(parse_query("SELECT plate FROM tableA;").is_err());
}

#[test]
fn explicit_keys_control_the_number_of_releases_not_the_data() {
    // Even keys absent from the data produce (noisy) releases, so the set of
    // released values never leaks which keys exist (the [58] requirement).
    let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.1)).generate();
    let mut sys = PrividSystem::new(2);
    sys.register_camera("campus", scene, PrivacyPolicy::new(60.0, 2, 10.0)).expect("camera/processor registration must succeed");
    sys.register_processor("proc", || Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>).expect("camera/processor registration must succeed");
    let q = r#"
        SPLIT campus BEGIN 0 END 5 min BY TIME 10 sec STRIDE 0 sec INTO c;
        PROCESS c USING proc TIMEOUT 1 sec PRODUCING 5 ROWS WITH SCHEMA (count:NUMBER=0) INTO t;
        SELECT COUNT(*) FROM t GROUP BY count WITH KEYS [1, 2, 777] CONSUMING 0.9;"#;
    let result = sys.execute_text(q).unwrap();
    assert_eq!(result.releases.len(), 3);
    let ghost = result.releases.iter().find(|r| r.group_key.as_deref() == Some("777")).unwrap();
    assert_eq!(ghost.raw.as_number().unwrap(), 0.0);
    // It still gets noise like every other release.
    assert!(ghost.noise_scale > 0.0);
}

#[test]
fn join_sensitivity_is_enforced_not_assumed() {
    // §6.3's priming attack: the sensitivity of a join must be the sum of the
    // two tables' sensitivities. Verify through the public API.
    let mut ctx = SensitivityContext::new();
    ctx.register("t1", TableProfile { max_rows_per_chunk: 10, chunk_secs: 5.0, rho_secs: 30.0, k: 2, num_chunks: 100 });
    ctx.register("t2", TableProfile { max_rows_per_chunk: 10, chunk_secs: 5.0, rho_secs: 30.0, k: 2, num_chunks: 100 });
    let parsed = parse_query("SELECT COUNT(*) FROM t1 JOIN t2 ON plate;").unwrap();
    let s = ctx.statement_sensitivities(&parsed.selects[0], 1).unwrap();
    assert_eq!(s[0], 2.0 * 10.0 * 2.0 * 7.0, "join sensitivity adds, never takes the min");
}

#[test]
fn duration_suffixes_and_comments_parse() {
    let q = parse_query(
        "-- weekly standing query\n\
         SPLIT cam BEGIN 0 END 7 days BY TIME 30 sec STRIDE 30 sec INTO c; /* sparse sampling */",
    )
    .unwrap();
    assert_eq!(q.splits[0].end_secs, 7.0 * 86_400.0);
    assert_eq!(q.splits[0].stride_secs, 30.0);
}
