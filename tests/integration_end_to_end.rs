//! End-to-end integration tests: full split → process → aggregate → noise
//! pipelines over the synthetic scenes, spanning every workspace crate.

use privid::{
    CarTableProcessor, ChunkProcessor, PrivacyPolicy, PrividSystem, SceneConfig, SceneGenerator, TreeBloomProcessor,
    UniqueEntrantProcessor,
};

fn campus_system(hours: f64, seed: u64) -> PrividSystem {
    let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(hours)).generate();
    let mut sys = PrividSystem::new(seed);
    sys.register_camera("campus", scene, PrivacyPolicy::new(90.0, 2, 50.0)).expect("camera/processor registration must succeed");
    sys.register_processor("person_counter", || Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>).expect("camera/processor registration must succeed");
    sys.register_processor("tree_bloom", || Box::new(TreeBloomProcessor) as Box<dyn ChunkProcessor>).expect("camera/processor registration must succeed");
    sys.register_processor("car_table", || Box::new(CarTableProcessor) as Box<dyn ChunkProcessor>).expect("camera/processor registration must succeed");
    sys
}

#[test]
fn counting_query_accuracy_is_within_reason() {
    // A Q1-style query over 30 minutes: the noisy result should be within a
    // few noise scales of the raw chunked count, and the raw count within
    // ~20% of ground truth entrances.
    let mut sys = campus_system(0.5, 1);
    let result = sys
        .execute_text(
            "SPLIT campus BEGIN 0 END 30 min BY TIME 5 sec STRIDE 0 sec INTO chunks;
             PROCESS chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
                 WITH SCHEMA (count:NUMBER=0) INTO people;
             SELECT COUNT(*) FROM people CONSUMING 1.0;",
        )
        .unwrap();
    let release = &result.releases[0];
    let raw = release.raw.as_number().unwrap();
    let noisy = release.value.as_number().unwrap();
    assert!(raw > 20.0, "30 minutes of campus traffic has entrants, got {raw}");
    assert!((noisy - raw).abs() <= 10.0 * release.noise_scale, "noisy output stays near the raw value");
    assert!(result.epsilon_spent == 1.0);
}

#[test]
fn hourly_time_series_matches_fig5_shape() {
    // Fig. 5: hourly unique-person counts over several hours. The raw chunked
    // counts should follow the diurnal arrival pattern (later morning hours
    // are busier than the first hour), and every hour produces one release.
    let mut sys = campus_system(4.0, 2);
    let result = sys
        .execute_text(
            "SPLIT campus BEGIN 0 END 4 hr BY TIME 5 sec STRIDE 0 sec INTO chunks;
             PROCESS chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
                 WITH SCHEMA (count:NUMBER=0) INTO people;
             SELECT COUNT(*) FROM people GROUP BY chunk BIN 1 hr CONSUMING 4.0;",
        )
        .unwrap();
    assert_eq!(result.releases.len(), 4, "one release per hourly bin");
    let raws: Vec<f64> = result.releases.iter().map(|r| r.raw.as_number().unwrap()).collect();
    assert!(raws.iter().all(|&c| c > 0.0));
    assert!(
        raws[3] > raws[0],
        "arrivals ramp up towards midday (diurnal pattern): {raws:?}"
    );
    // Each release got a quarter of the statement budget.
    for r in &result.releases {
        assert!((r.epsilon - 1.0).abs() < 1e-9);
    }
}

#[test]
fn non_private_object_query_reaches_high_accuracy() {
    // Case 3 (Q7-Q9): the fraction of bloomed trees, queried with a long
    // window and minimal chunk size, is recovered almost exactly because the
    // per-release noise is small relative to the percentage scale.
    let scene = SceneGenerator::new(SceneConfig::urban().with_duration_hours(0.5).with_arrival_scale(0.05)).generate();
    let mut sys = PrividSystem::new(3);
    sys.register_camera("urban", scene, PrivacyPolicy::new(60.0, 2, 10.0)).expect("camera/processor registration must succeed");
    sys.register_processor("tree_bloom", || Box::new(TreeBloomProcessor) as Box<dyn ChunkProcessor>).expect("camera/processor registration must succeed");
    let result = sys
        .execute_text(
            "SPLIT urban BEGIN 0 END 30 min BY TIME 1 sec STRIDE 0 sec INTO chunks;
             PROCESS chunks USING tree_bloom TIMEOUT 1 sec PRODUCING 10 ROWS
                 WITH SCHEMA (bloomed:NUMBER=0) INTO trees;
             SELECT AVG(range(bloomed, 0, 100)) FROM trees CONSUMING 1.0;",
        )
        .unwrap();
    let release = &result.releases[0];
    let raw = release.raw.as_number().unwrap();
    let noisy = release.value.as_number().unwrap();
    let truth = 4.0 / 6.0 * 100.0; // urban preset: 4 of 6 trees bloomed
    assert!((raw - truth).abs() < 1.0, "raw average should be the bloom percentage, got {raw}");
    // The full-scale Q9 uses a 12-hour window, which makes the noise tiny; at
    // this test's 30-minute window the noise scale is a few percentage points,
    // so allow a handful of scales of slack.
    assert!(
        (noisy - truth).abs() < 5.0 * release.noise_scale,
        "Q9-style accuracy should be high, got {noisy} (scale {})",
        release.noise_scale
    );
}

#[test]
fn listing1_query_budget_accounting_is_additive() {
    let mut sys = campus_system(0.5, 4);
    let query = r#"
        SPLIT campus BEGIN 0 END 20 min BY TIME 5 sec STRIDE 0 sec INTO chunks;
        PROCESS chunks USING car_table TIMEOUT 1 sec PRODUCING 10 ROWS
            WITH SCHEMA (plate:STRING="", color:STRING="", speed:NUMBER=0) INTO cars;
        SELECT AVG(range(speed, 30, 60)) FROM cars CONSUMING 0.25;
        SELECT color, COUNT(plate) FROM (SELECT plate, color FROM cars GROUP BY plate)
            GROUP BY color WITH KEYS ["RED", "WHITE", "SILVER"] CONSUMING 0.75;"#;
    let before = sys.remaining_budget("campus", 300.0).unwrap();
    let result = sys.execute_text(query).unwrap();
    let after = sys.remaining_budget("campus", 300.0).unwrap();
    assert_eq!(result.releases.len(), 4, "one AVG release plus three per-colour counts");
    assert!((result.epsilon_spent - 1.0).abs() < 1e-9);
    assert!((before - after - 1.0).abs() < 1e-9, "the whole query's ε is debited from covered frames");
}

#[test]
fn parallel_sandbox_settings_do_not_change_results() {
    // Two identical systems (same seeds) must produce identical noisy outputs
    // regardless of internal execution details.
    let mut a = campus_system(0.25, 9);
    let mut b = campus_system(0.25, 9);
    let q = "SPLIT campus BEGIN 0 END 10 min BY TIME 10 sec STRIDE 0 sec INTO c;
             PROCESS c USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS WITH SCHEMA (count:NUMBER=0) INTO t;
             SELECT COUNT(*) FROM t CONSUMING 0.5;";
    assert_eq!(a.execute_text(q).unwrap().releases, b.execute_text(q).unwrap().releases);
}
