//! Live camera ingestion, end to end: a camera appends frame batches while
//! concurrent analysts query the growing recording. Releases over *closed*
//! windows must be bit-for-bit identical to a batch registration of the final
//! recording, ε must be debited exactly once per slot, queries past the live
//! edge must fail cleanly without burning budget, and standing queries must
//! fire exactly once per completed window with batch-replayable releases.

use privid::{
    ChunkProcessor, FrameBatch, Parallelism, PrivacyPolicy, PrividError, QueryResult, QueryService, Scene,
    SceneConfig, SceneGenerator, TimeSpan, TrackedObject, UniqueEntrantProcessor,
};

const BATCH_SECS: f64 = 300.0;
const POLICY: (f64, u32, f64) = (60.0, 2, 20.0);

fn policy() -> PrivacyPolicy {
    PrivacyPolicy::new(POLICY.0, POLICY.1, POLICY.2)
}

/// Partition a generated scene's objects into frame batches by the batch in
/// which each object first appears (so every batch only delivers objects
/// starting at or after the live edge it is appended at).
fn batches_of(scene: &Scene, n_batches: usize) -> Vec<FrameBatch> {
    let mut per_batch: Vec<Vec<TrackedObject>> = vec![Vec::new(); n_batches];
    for obj in &scene.objects {
        let first = obj.first_seen().map(|t| t.as_secs()).unwrap_or(0.0);
        let slot = ((first / BATCH_SECS).floor() as usize).min(n_batches - 1);
        per_batch[slot].push(obj.clone());
    }
    per_batch.into_iter().map(|objects| FrameBatch::new(BATCH_SECS, objects)).collect()
}

/// The final recording a batch registration would have seen: same camera,
/// same span, objects in the exact order the appends delivered them.
fn final_scene(scene: &Scene, batches: &[FrameBatch]) -> Scene {
    Scene::new(
        scene.camera.clone(),
        TimeSpan::from_secs(batches.len() as f64 * BATCH_SECS),
        scene.frame_rate,
        scene.frame_size,
        batches.iter().flat_map(|b| b.objects.iter().cloned()).collect(),
    )
}

fn register_processor(svc: &QueryService) {
    svc.register_processor("person_counter", || {
        Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>
    }).expect("camera/processor registration must succeed");
}

fn live_service() -> (QueryService, Vec<FrameBatch>, Scene) {
    let generated = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.5)).generate();
    let batches = batches_of(&generated, 6);
    let finale = final_scene(&generated, &batches);
    let svc = QueryService::new().with_parallelism(Parallelism::Fixed(1));
    svc.register_live_camera("campus", generated.frame_rate, generated.frame_size, policy()).expect("camera/processor registration must succeed");
    register_processor(&svc);
    (svc, batches, finale)
}

fn batch_service(finale: &Scene) -> QueryService {
    let svc = QueryService::new().with_parallelism(Parallelism::Fixed(1));
    svc.register_camera("campus", finale.clone(), policy()).expect("camera/processor registration must succeed");
    register_processor(&svc);
    svc
}

/// A closed-window analyst query over `[begin, end)`.
fn window_query(begin: f64, end: f64, epsilon: f64) -> String {
    format!(
        "SPLIT campus BEGIN {begin} END {end} BY TIME 10 sec STRIDE 0 sec INTO chunks;
         PROCESS chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
             WITH SCHEMA (count:NUMBER=0) INTO people;
         SELECT COUNT(*) FROM people CONSUMING {epsilon};"
    )
}

#[test]
fn appended_recording_matches_batch_registration_bit_for_bit() {
    let (live, batches, finale) = live_service();
    let mut results: Vec<(u64, String, QueryResult)> = Vec::new();

    // The camera appends batch by batch; after every append a panel of
    // concurrent analysts queries closed windows of the footage so far.
    for (k, batch) in batches.into_iter().enumerate() {
        let edge = live.append_frames("campus", batch).unwrap().live_edge_secs;
        assert_eq!(edge, (k + 1) as f64 * BATCH_SECS);
        let queries: Vec<(u64, String)> = vec![
            (1000 + k as u64, window_query(k as f64 * BATCH_SECS, edge, 0.25)),
            (2000 + k as u64, window_query(0.0, edge, 0.125)),
        ];
        let round: Vec<(u64, String, QueryResult)> = std::thread::scope(|scope| {
            let handles: Vec<_> = queries
                .into_iter()
                .map(|(seed, text)| {
                    let live = &live;
                    scope.spawn(move || {
                        let result = live.execute_text(seed, &text).expect("closed-window query admitted");
                        (seed, text, result)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        results.extend(round);
    }

    // Bit-for-bit: a batch registration of the final recording replays every
    // (seed, query) pair to identical releases.
    let batch = batch_service(&finale);
    for (seed, text, live_result) in &results {
        let replay = batch.execute_text(*seed, text).unwrap();
        assert_eq!(
            &replay, live_result,
            "live closed-window releases must equal batch registration (seed {seed})"
        );
    }

    // Exact ε accounting: the batch service ran the same admissions, so every
    // slot must have been debited identically — and exactly once per query
    // that covered it.
    for at in [10.0, 450.0, 900.0, 1350.0, 1799.0] {
        let live_remaining = live.remaining_budget("campus", at).unwrap();
        let batch_remaining = batch.remaining_budget("campus", at).unwrap();
        assert!(
            (live_remaining - batch_remaining).abs() < 1e-9,
            "slot at {at}s: live {live_remaining} vs batch {batch_remaining}"
        );
    }
    // Spot-check the absolute value: the first batch's slots saw the 6
    // whole-recording queries (0.125 each) plus their own per-batch query.
    let expected = POLICY.2 - 6.0 * 0.125 - 0.25;
    let remaining = live.remaining_budget("campus", 10.0).unwrap();
    assert!((remaining - expected).abs() < 1e-9, "expected {expected}, got {remaining}");
}

#[test]
fn queries_past_the_live_edge_fail_cleanly_without_burning_budget() {
    let (live, mut batches, _) = live_service();
    live.append_frames("campus", batches.remove(0)).unwrap();

    // Entirely beyond the edge: retryable error, not a single slot debited.
    match live.execute_text(7, &window_query(BATCH_SECS, 2.0 * BATCH_SECS, 1.0)) {
        Err(PrividError::BeyondLiveEdge { camera, start_secs, end_secs, live_edge_secs }) => {
            assert_eq!(camera, "campus");
            assert_eq!((start_secs, end_secs, live_edge_secs), (BATCH_SECS, 2.0 * BATCH_SECS, BATCH_SECS));
        }
        other => panic!("expected BeyondLiveEdge, got {other:?}"),
    }
    for at in [0.0, 150.0, 299.0] {
        assert!((live.remaining_budget("campus", at).unwrap() - POLICY.2).abs() < 1e-9, "slot {at} untouched");
    }

    // A window before time zero will never exist on any timeline: the
    // non-retryable error, distinguished from the live-edge case.
    assert!(matches!(
        live.execute_text(8, &window_query(-200.0, 0.0, 1.0)),
        Err(PrividError::WindowOutsideRecording { .. })
    ));

    // Once the footage arrives, the very query that was rejected succeeds —
    // against slots born with their full ε.
    live.append_frames("campus", batches.remove(0)).unwrap();
    let result = live.execute_text(7, &window_query(BATCH_SECS, 2.0 * BATCH_SECS, 1.0)).unwrap();
    assert_eq!(result.epsilon_spent, 1.0);
    assert!((live.remaining_budget("campus", 450.0).unwrap() - (POLICY.2 - 1.0)).abs() < 1e-9);
}

#[test]
fn closed_window_cache_entries_stay_warm_across_appends() {
    let (live, mut batches, _) = live_service();
    live.append_frames("campus", batches.remove(0)).unwrap();

    // A closed window misses cold, then hits — and appends keep it warm.
    let closed = window_query(0.0, BATCH_SECS, 0.1);
    live.execute_text(1, &closed).unwrap();
    assert_eq!((live.cache_stats().hits, live.cache_stats().misses), (0, 1));
    live.execute_text(2, &closed).unwrap();
    assert_eq!((live.cache_stats().hits, live.cache_stats().misses), (1, 1));
    live.append_frames("campus", batches.remove(0)).unwrap();
    live.execute_text(3, &closed).unwrap();
    assert_eq!(live.cache_stats().hits, 2, "closed-window entry survives the append");

    // A window overlapping the live edge is served, cached, and invalidated
    // by the next append — re-running it re-executes against the new footage.
    let overlap = window_query(BATCH_SECS, 3.0 * BATCH_SECS, 0.1);
    let at_edge = live.execute_text(4, &overlap).unwrap();
    let entries_with_overlap = live.cache_stats().entries;
    live.execute_text(5, &overlap).unwrap();
    assert_eq!(live.cache_stats().hits, 3, "overlap entry serves repeats at the same edge");
    live.append_frames("campus", batches.remove(0)).unwrap();
    assert!(live.cache_stats().entries < entries_with_overlap, "append reclaimed the overlap entry");
    let past_edge = live.execute_text(4, &overlap).unwrap();
    assert_eq!(at_edge.chunks_processed, past_edge.chunks_processed, "same requested window");
    assert!(
        past_edge.releases[0].raw.as_number().unwrap() >= at_edge.releases[0].raw.as_number().unwrap(),
        "the re-executed window sees the newly recorded footage"
    );
}

#[test]
fn standing_query_replays_bit_for_bit_and_debits_once_per_slot() {
    let (live, batches, finale) = live_service();
    let standing = window_query(0.0, BATCH_SECS, 0.5);
    assert_eq!(live.register_standing_query("per_window_count", 9000, &standing).unwrap(), 0);

    let mut fired_total = 0;
    for batch in batches {
        fired_total += live.append_frames("campus", batch).unwrap().standing_fired;
    }
    assert_eq!(fired_total, 6, "one firing per completed 300 s window");

    let firings = live.standing_results("per_window_count").unwrap();
    assert_eq!(firings.len(), 6);
    let batch = batch_service(&finale);
    for (k, firing) in firings.iter().enumerate() {
        assert_eq!(firing.window, TimeSpan::between_secs(k as f64 * BATCH_SECS, (k + 1) as f64 * BATCH_SECS));
        let result = firing.result.as_ref().expect("ample budget: every firing admitted");
        // Every firing replays bit-for-bit on a batch registration of the
        // final recording, using the recorded (seed, window).
        let replay = batch
            .execute_text(firing.seed, &window_query(firing.window.start.as_secs(), firing.window.end.as_secs(), 0.5))
            .unwrap();
        assert_eq!(&replay, result, "standing firing {k} must be batch-replayable");
    }
    // ε accounting: windows are disjoint, so every slot was debited exactly
    // once over the standing query's life.
    for at in [10.0, 450.0, 899.0, 1200.0, 1799.0] {
        assert!(
            (live.remaining_budget("campus", at).unwrap() - (POLICY.2 - 0.5)).abs() < 1e-9,
            "slot at {at}s debited exactly once"
        );
    }
}
