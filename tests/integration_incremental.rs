//! Equivalence suite for the incremental-aggregation data plane: every
//! release produced through the columnar fold path and the two-tier cache
//! must be bit-for-bit identical to the same query executed with caching
//! disabled (the uncached fold degenerates to the seed's sequential
//! row-order aggregation — see `AggState`'s module docs for the contract).
//! Covered: batch aggregates across every foldable function, the GROUP BY
//! row path, standing queries over sliding windows fed piecemeal, spatial
//! splits, empty windows, and crash/restart recovery replay.

use privid::{
    CarTableProcessor, ChunkProcessor, Durability, FrameBatch, FsyncPolicy, Parallelism, PrivacyPolicy,
    QueryResult, QueryService, Scene, SceneConfig, SceneGenerator, StandingFiring, TimeSpan, TrackedObject,
    UniqueEntrantProcessor,
};
use std::path::PathBuf;

const POLICY: (f64, u32, f64) = (60.0, 2, 40.0);

fn policy() -> PrivacyPolicy {
    PrivacyPolicy::new(POLICY.0, POLICY.1, POLICY.2)
}

fn register_processors(svc: &QueryService) {
    svc.register_processor("person_counter", || {
        Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>
    })
    .expect("processor registration must succeed");
    svc.register_processor("car_table", || Box::new(CarTableProcessor) as Box<dyn ChunkProcessor>)
        .expect("processor registration must succeed");
}

/// A batch service over `scene`, with the aggregate cache either live (the
/// default) or disabled (capacity 0 turns off both cache tiers, leaving the
/// plain sequential fold — the reference path).
fn batch_service(scene: &Scene, cached: bool) -> QueryService {
    let svc = QueryService::new().with_parallelism(Parallelism::Fixed(1));
    let svc = if cached { svc } else { svc.with_cache_capacity(0) };
    svc.register_camera("campus", scene.clone(), policy()).expect("camera registration must succeed");
    register_processors(&svc);
    svc
}

fn people_query(begin: f64, end: f64, select: &str) -> String {
    format!(
        "SPLIT campus BEGIN {begin} END {end} BY TIME 10 sec STRIDE 0 sec INTO chunks;
         PROCESS chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
             WITH SCHEMA (count:NUMBER=0) INTO people;
         {select}"
    )
}

#[test]
fn every_foldable_aggregate_matches_the_uncached_reference_bit_for_bit() {
    let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.25)).generate();
    let cached = batch_service(&scene, true);
    let reference = batch_service(&scene, false);

    let selects = [
        "SELECT COUNT(*) FROM people CONSUMING 0.5;",
        "SELECT SUM(range(count, 0, 20)) FROM people CONSUMING 0.5;",
        "SELECT AVG(range(count, 0, 20)) FROM people CONSUMING 0.5;",
        "SELECT VAR(range(count, 0, 20)) FROM people CONSUMING 0.5;",
        // The row path (GROUP BY compiles to no fold plan) must agree too.
        "SELECT COUNT(*) FROM people GROUP BY count WITH KEYS [0, 1, 2] CONSUMING 0.5;",
    ];
    for (k, select) in selects.iter().enumerate() {
        let text = people_query(0.0, 600.0, select);
        let seed = 100 + k as u64;
        let warm = cached.execute_text(seed, &text).unwrap();
        let cold = reference.execute_text(seed, &text).unwrap();
        assert_eq!(warm, cold, "cached release diverged from the uncached fold: {select}");
        // Replaying the same query must hit the folded prefix and still
        // release the identical bits.
        let replay = cached.execute_text(seed, &text).unwrap();
        assert_eq!(replay, warm, "a cache hit changed the release: {select}");
    }
    let stats = cached.agg_cache_stats();
    assert!(stats.hits >= 4, "replays of foldable selects must hit tier 2, got {stats:?}");
    assert!(stats.entries >= 4, "each foldable plan folds into its own entry, got {stats:?}");
    let silent = reference.agg_cache_stats();
    assert_eq!((silent.hits, silent.misses, silent.entries), (0, 0, 0), "capacity 0 disables tier 2");
}

#[test]
fn argmax_over_a_key_column_matches_the_uncached_reference() {
    // A car-dominated scene so the colour column is non-empty; ARGMAX folds
    // through the sorted key→count accumulator and must release the same
    // winning key (same report-noisy-max tie-break) as the reference.
    let scene =
        SceneGenerator::new(SceneConfig::highway().with_duration_hours(0.25).with_arrival_scale(0.2)).generate();
    let cached = batch_service(&scene, true);
    let reference = batch_service(&scene, false);
    let text = "SPLIT campus BEGIN 0 END 600 BY TIME 10 sec STRIDE 0 sec INTO chunks;
         PROCESS chunks USING car_table TIMEOUT 1 sec PRODUCING 10 ROWS
             WITH SCHEMA (plate:STRING=\"\", color:STRING=\"\", speed:NUMBER=0) INTO cars;
         SELECT ARGMAX(color) FROM cars CONSUMING 1.0;";
    for seed in [7u64, 8, 9] {
        let warm = cached.execute_text(seed, text).unwrap();
        let cold = reference.execute_text(seed, text).unwrap();
        assert_eq!(warm, cold, "ARGMAX diverged at seed {seed}");
    }
    assert!(cached.agg_cache_stats().hits >= 2, "repeat ARGMAX executions share one folded state");
}

#[test]
fn spatial_splits_fold_identically_per_region() {
    // BY REGION fans every chunk out once per region; the fold consumes the
    // trusted region column in table row order, so the per-region prefix
    // states must reproduce the reference release exactly.
    let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.1)).generate();
    let cached = batch_service(&scene, true);
    let reference = batch_service(&scene, false);
    let text = "SPLIT campus BEGIN 0 END 300 BY TIME 1 sec STRIDE 0 sec BY REGION default INTO chunks;
         PROCESS chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
             WITH SCHEMA (count:NUMBER=0) INTO people;
         SELECT SUM(range(count, 0, 20)) FROM people CONSUMING 1.0;";
    let warm = cached.execute_text(42, text).unwrap();
    let cold = reference.execute_text(42, text).unwrap();
    assert_eq!(warm, cold);
    assert!(warm.chunks_processed >= 300, "one execution per chunk per region");
    let replay = cached.execute_text(42, text).unwrap();
    assert_eq!(replay, warm);
    assert!(cached.agg_cache_stats().hits >= 1);
}

#[test]
fn empty_windows_release_identical_noisy_zeros() {
    // An object-free recording: every sandbox execution returns zero rows,
    // so the table is all empty chunk runs. The fold must still cover every
    // chunk (identity states), cache them, and release the same noisy zero
    // as the reference.
    let template = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.1)).generate();
    let scene = Scene::new(
        template.camera.clone(),
        TimeSpan::from_secs(300.0),
        template.frame_rate,
        template.frame_size,
        Vec::new(),
    );
    let cached = batch_service(&scene, true);
    let reference = batch_service(&scene, false);
    for (seed, select) in
        [(1u64, "SELECT COUNT(*) FROM people CONSUMING 0.5;"), (2, "SELECT SUM(range(count, 0, 20)) FROM people CONSUMING 0.5;")]
    {
        let text = people_query(0.0, 300.0, select);
        let warm = cached.execute_text(seed, &text).unwrap();
        let cold = reference.execute_text(seed, &text).unwrap();
        assert_eq!(warm, cold, "empty-window release diverged: {select}");
        assert_eq!(warm.releases[0].raw.as_number(), Some(0.0), "an empty table folds to a raw zero");
        let replay = cached.execute_text(seed, &text).unwrap();
        assert_eq!(replay, warm);
    }
    assert!(cached.agg_cache_stats().hits >= 2, "empty prefixes are cacheable like any other");
}

// ---------------------------------------------------------------------------
// Standing queries: the incremental path (per-window folds extended chunk by
// chunk as appends close them, pre-folded at the live edge) versus a batch
// registration replaying the identical footage and seeds.

const BATCH_SECS: f64 = 300.0;
const N_BATCHES: usize = 6;
const STANDING_SEED: u64 = 9000;

fn batches_of(scene: &Scene) -> Vec<FrameBatch> {
    let mut per_batch: Vec<Vec<TrackedObject>> = vec![Vec::new(); N_BATCHES];
    for obj in &scene.objects {
        let first = obj.first_seen().map(|t| t.as_secs()).unwrap_or(0.0);
        let slot = ((first / BATCH_SECS).floor() as usize).min(N_BATCHES - 1);
        per_batch[slot].push(obj.clone());
    }
    per_batch.into_iter().map(|objects| FrameBatch::new(BATCH_SECS, objects)).collect()
}

fn final_scene(scene: &Scene, batches: &[FrameBatch]) -> Scene {
    Scene::new(
        scene.camera.clone(),
        TimeSpan::from_secs(batches.len() as f64 * BATCH_SECS),
        scene.frame_rate,
        scene.frame_size,
        batches.iter().flat_map(|b| b.objects.iter().cloned()).collect(),
    )
}

/// A sliding-chunk (stride > chunk) standing window over the first period.
fn standing_text() -> String {
    format!(
        "SPLIT campus BEGIN 0 END {BATCH_SECS} BY TIME 10 sec STRIDE 5 sec INTO chunks;
         PROCESS chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
             WITH SCHEMA (count:NUMBER=0) INTO people;
         SELECT SUM(range(count, 0, 20)) FROM people CONSUMING 0.5;"
    )
}

fn assert_firings_match_batch_replay(firings: &[StandingFiring], finale: &Scene) {
    // Replay every firing's window on a cache-DISABLED batch registration of
    // the final recording, with the firing's own seed: the incremental
    // standing state must have released exactly these bits.
    let replay = batch_service(finale, false);
    assert_eq!(firings.len(), N_BATCHES);
    for (k, firing) in firings.iter().enumerate() {
        assert_eq!(firing.seed, STANDING_SEED + k as u64);
        let begin = k as f64 * BATCH_SECS;
        let text = format!(
            "SPLIT campus BEGIN {begin} END {} BY TIME 10 sec STRIDE 5 sec INTO chunks;
             PROCESS chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
                 WITH SCHEMA (count:NUMBER=0) INTO people;
             SELECT SUM(range(count, 0, 20)) FROM people CONSUMING 0.5;",
            begin + BATCH_SECS
        );
        let reference: QueryResult = replay.execute_text(firing.seed, &text).unwrap();
        assert_eq!(
            firing.result.as_ref().expect("standing window admitted"),
            &reference,
            "firing {k}: incremental standing release must equal the uncached batch replay"
        );
    }
}

#[test]
fn standing_windows_fed_piecemeal_match_an_uncached_batch_replay() {
    let generated = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.5)).generate();
    let batches = batches_of(&generated);
    let finale = final_scene(&generated, &batches);

    let live = QueryService::new().with_parallelism(Parallelism::Fixed(1));
    live.register_live_camera("campus", generated.frame_rate, generated.frame_size, policy())
        .expect("camera registration must succeed");
    register_processors(&live);
    live.register_standing_query("per_window", STANDING_SEED, &standing_text()).unwrap();

    // Deliver each period in two half-batches: the first append leaves the
    // window half-closed (exercising the live-edge prefold of only the
    // closed chunk prefix), the second closes it and fires.
    let mut fired = 0;
    for batch in batches {
        let (early, late): (Vec<TrackedObject>, Vec<TrackedObject>) = batch.objects.iter().cloned().partition(|o| {
            o.first_seen().map(|t| t.as_secs() % BATCH_SECS < BATCH_SECS / 2.0).unwrap_or(true)
        });
        fired += live.append_frames("campus", FrameBatch::new(BATCH_SECS / 2.0, early)).unwrap().standing_fired;
        fired += live.append_frames("campus", FrameBatch::new(BATCH_SECS / 2.0, late)).unwrap().standing_fired;
    }
    assert_eq!(fired, N_BATCHES, "each window fires exactly once, on the append that closes it");

    let firings = live.standing_results("per_window").unwrap();
    assert_firings_match_batch_replay(&firings, &finale);

    // Each half-window append pre-folded the closed prefix, and each firing
    // inserted its full-window state — so tier 2 holds (at least) two entries
    // per window. (The firing's walk-back to the prefolded prefix is a
    // silent peek by design, so it shows up in `entries`, not `hits`.)
    let stats = live.agg_cache_stats();
    assert!(
        stats.entries >= 2 * N_BATCHES,
        "prefolds must persist alongside the firings' full-window states, got {stats:?}"
    );

    // A second analyst running the same sub-plan over a fired window shares
    // the firing's folded state: the counting probe at the full prefix hits.
    let hits_before = stats.hits;
    let adhoc = live
        .execute_text(
            4242,
            "SPLIT campus BEGIN 0 END 300 BY TIME 10 sec STRIDE 5 sec INTO chunks;
             PROCESS chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
                 WITH SCHEMA (count:NUMBER=0) INTO people;
             SELECT SUM(range(count, 0, 20)) FROM people CONSUMING 0.5;",
        )
        .unwrap();
    assert_eq!(live.agg_cache_stats().hits, hits_before + 1, "shared sub-plan must hit tier 2");
    assert_eq!(
        adhoc.releases[0].raw,
        firings[0].result.as_ref().unwrap().releases[0].raw,
        "the shared state releases the same raw value the firing released"
    );
}

#[test]
fn recovered_standing_state_replays_to_identical_releases() {
    // Crash after 3 windows, restart from the WAL, replay the recorded
    // footage, resume the stream: the stitched firing sequence must be
    // bit-identical to the uncached batch replay of every window — the
    // incremental states rebuilt after recovery carry no history of the
    // crash.
    let dir: PathBuf =
        std::env::temp_dir().join(format!("privid-incremental-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let generated = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.5)).generate();
    let batches = batches_of(&generated);
    let finale = final_scene(&generated, &batches);
    const CRASH_AFTER: usize = 3;

    let durable = || {
        QueryService::builder()
            .parallelism(Parallelism::Fixed(1))
            .durability(Durability::wal(&dir, FsyncPolicy::Always))
            .build()
            .expect("durable service builds")
    };
    let register = |svc: &QueryService| {
        svc.register_live_camera("campus", generated.frame_rate, generated.frame_size, policy())
            .expect("camera registration must succeed");
        register_processors(svc);
        svc.register_standing_query("per_window", STANDING_SEED, &standing_text()).unwrap();
    };

    let pre_crash: Vec<StandingFiring> = {
        let svc = durable();
        register(&svc);
        for batch in &batches[..CRASH_AFTER] {
            svc.append_frames("campus", batch.clone()).unwrap();
        }
        svc.standing_results("per_window").unwrap()
        // dropped without shutdown: a crash
    };
    assert_eq!(pre_crash.len(), CRASH_AFTER);

    let svc = durable();
    register(&svc);
    // Replay the recorded batches (no re-firing), then resume the stream.
    for batch in &batches[..CRASH_AFTER] {
        assert_eq!(svc.append_frames("campus", batch.clone()).unwrap().standing_fired, 0);
    }
    let mut resumed = 0;
    for batch in &batches[CRASH_AFTER..] {
        resumed += svc.append_frames("campus", batch.clone()).unwrap().standing_fired;
    }
    assert_eq!(resumed, N_BATCHES - CRASH_AFTER);

    let stitched: Vec<StandingFiring> =
        pre_crash.into_iter().chain(svc.standing_results("per_window").unwrap()).collect();
    assert_firings_match_batch_replay(&stitched, &finale);
    let _ = std::fs::remove_dir_all(&dir);
}
