//! Chaos harness for the storage fault model: randomized, seeded fault
//! schedules injected under concurrent analysts and live appends.
//!
//! Per seed, a durable service runs over a [`FaultVfs`] whose probabilistic
//! fault profile is derived from the seed (write EIO/ENOSPC/short writes,
//! fsync failures, rename failures, truncate failures). Two analysts issue
//! closed-window queries while a feeder appends footage; then the "disk"
//! heals and a supervised [`QueryService::recover_store`] reconciles. The
//! invariants, for every seed:
//!
//! 1. **No panic** — every thread joins cleanly whatever the schedule.
//! 2. **Never under-debit** — at the post-chaos quiescent point, the durable
//!    shadow's remaining budget is ≤ the in-memory ledger's at every instant
//!    the memory ledger covers: ε is only ever debited *after* its journal
//!    record, so faults can lose credits (over-debit), never debits.
//! 3. **Quarantine, not global failure** — a camera that never admits during
//!    the chaos window stays `Healthy` and keeps serving reads; only cameras
//!    whose journal writes failed degrade or quarantine.
//! 4. **Bit-for-bit convergence** — once faults heal, the store reopens and
//!    the remaining footage is fed, a probe query's releases are identical
//!    to a fault-free in-memory service fed the same batches.
//!
//! Seed count defaults to 36 and is pinned in CI via the `CHAOS_SEEDS` env
//! var (a count: seeds `0..CHAOS_SEEDS` run).

use privid::{
    CameraHealth, ChunkProcessor, Durability, FaultKind, FaultOp, FaultProfile, FaultVfs, FrameBatch, FrameRate,
    FrameSize, FsyncPolicy, Parallelism, PrivacyPolicy, PrividError, QueryService, StoreRetryPolicy,
    UniqueEntrantProcessor,
};
use std::path::PathBuf;
use std::sync::Arc;

const BATCH_SECS: f64 = 60.0;
const TOTAL_BATCHES: usize = 6;
const CHAOS_FROM: usize = 2; // batches 0..CHAOS_FROM are fed before faults arm
const POLICY: (f64, u32, f64) = (10.0, 2, 1000.0);

fn policy() -> PrivacyPolicy {
    PrivacyPolicy::new(POLICY.0, POLICY.1, POLICY.2)
}

fn chaos_dir(seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("privid-chaos-{seed}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn walker(id: u64, start: f64, end: f64) -> privid::TrackedObject {
    use privid::video::trajectory::Trajectory;
    use privid::video::{Attributes, ObjectClass, ObjectId, Point, PresenceSegment};
    privid::TrackedObject::new(
        ObjectId(id),
        ObjectClass::Person,
        Attributes::default(),
        vec![PresenceSegment {
            span: privid::TimeSpan::between_secs(start, end),
            trajectory: Trajectory::linear(Point::new(0.0, 50.0), Point::new(100.0, 50.0), 5.0, 10.0),
        }],
    )
}

/// Deterministic footage: batch `i` carries two walkers whose identities and
/// spans are pure functions of `i`, so a fault-free replay is bit-identical.
fn batch(i: usize) -> FrameBatch {
    let base = i as f64 * BATCH_SECS;
    let a = walker(2 * i as u64 + 1, base + 5.0, base + 40.0);
    let b = walker(2 * i as u64 + 2, base + 20.0, base + 55.0);
    FrameBatch::new(BATCH_SECS, vec![a, b])
}

fn window_query(camera: &str, begin: f64, end: f64, epsilon: f64) -> String {
    format!(
        "SPLIT {camera} BEGIN {begin} END {end} BY TIME 10 sec STRIDE 0 sec INTO chunks;
         PROCESS chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
             WITH SCHEMA (count:NUMBER=0) INTO people;
         SELECT COUNT(*) FROM people CONSUMING {epsilon};"
    )
}

fn register(svc: &QueryService) {
    svc.register_live_camera("cam", FrameRate::new(2.0), FrameSize::new(100, 100), policy())
        .expect("registration");
    svc.register_live_camera("aux", FrameRate::new(2.0), FrameSize::new(100, 100), policy())
        .expect("registration");
    svc.register_processor("person_counter", || {
        Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>
    })
    .expect("registration");
}

/// The seed's fault weather: every probability is a pure function of the
/// seed, so a failing seed replays its exact schedule modulo thread timing.
fn profile_for(seed: u64) -> FaultProfile {
    FaultProfile {
        write_fail: 0.02 + 0.045 * ((seed % 5) as f64),
        fsync_fail: 0.02 + 0.04 * ((seed % 3) as f64),
        rename_fail: if seed.is_multiple_of(2) { 0.1 } else { 0.0 },
        read_corrupt: 0.0, // reads happen only at recovery, after heal()
        truncate_fail: 0.02,
    }
}

/// Tolerate exactly the failures the fault model is allowed to surface.
fn tolerable(err: &PrividError) -> bool {
    err.is_retryable() || matches!(err, PrividError::Store(_))
}

fn run_seed(seed: u64) -> u64 {
    let dir = chaos_dir(seed);
    let fault = FaultVfs::over_std();
    let svc = QueryService::builder()
        .parallelism(Parallelism::Fixed(1))
        .durability(Durability::wal(&dir, FsyncPolicy::Always))
        .snapshot_every(8)
        .storage_vfs(fault.clone())
        .append_retry(StoreRetryPolicy { max_retries: 2, base_backoff: std::time::Duration::from_millis(1) })
        .build()
        .expect("seed {seed}: durable service builds");
    register(&svc);
    // Pre-chaos footage (fault layer is an empty-plan passthrough here).
    for i in 0..CHAOS_FROM {
        svc.append_frames("cam", batch(i)).expect("pre-chaos append");
    }
    svc.append_frames("aux", batch(0)).expect("pre-chaos aux append");

    // ---- chaos window -------------------------------------------------------------------
    fault.seed_profile(seed, profile_for(seed));
    let svc = Arc::new(svc);
    let feeder_svc = Arc::clone(&svc);
    let feeder = std::thread::spawn(move || -> usize {
        // Feed in order; a batch that cannot land stops the feeder (footage
        // must stay contiguous) and is re-fed after supervised recovery.
        for i in CHAOS_FROM..TOTAL_BATCHES {
            let mut attempts = 0u32;
            loop {
                match feeder_svc.append_frames("cam", batch(i)) {
                    Ok(_) => break,
                    Err(PrividError::CameraQuarantined { .. }) => return i,
                    Err(err) if tolerable(&err) && attempts < 4 => {
                        attempts += 1;
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                    Err(err) if tolerable(&err) => return i,
                    Err(err) => panic!("seed {seed}: feeder hit a non-storage error: {err:?}"),
                }
            }
        }
        TOTAL_BATCHES
    });
    let analysts: Vec<_> = (0..2u64)
        .map(|a| {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                for q in 0..4u64 {
                    let text = window_query("cam", 0.0, BATCH_SECS, 0.01);
                    match svc.execute_text(seed * 1000 + a * 10 + q, &text) {
                        Ok(result) => assert_eq!(result.epsilon_spent, 0.01),
                        Err(err) if tolerable(&err) => {}
                        Err(err) => panic!("seed {seed}: analyst {a} hit a non-storage error: {err:?}"),
                    }
                    // Isolation probe: "aux" never admits during chaos, so no
                    // fault schedule may quarantine it or stop its reads.
                    assert!(
                        !matches!(svc.camera_health("aux"), CameraHealth::Quarantined { .. }),
                        "seed {seed}: a camera that never admitted got quarantined"
                    );
                    assert!(svc.remaining_budget("aux", 10.0).is_some(), "seed {seed}: aux reads must keep serving");
                }
            })
        })
        .collect();
    let fed_until = feeder.join().expect("seed: feeder must not panic");
    for analyst in analysts {
        analyst.join().expect("seed: analyst must not panic");
    }

    // ---- invariant 2: never under-debit (quiescent, faults still armed) -----------------
    // Every in-memory debit was journaled first, so the durable shadow may
    // only ever be *more* debited (lost credits, unacked-but-durable frames).
    let shadow = svc.durable_state().expect("durable service has a shadow");
    if let Some(cam) = shadow.cameras.get("cam") {
        let mem_edge = svc.ledger_edge("cam").expect("cam is registered");
        for (i, durable_remaining) in cam.slots.iter().enumerate() {
            let at = i as f64 + 0.5; // the journal registers 1-second slots
            if at >= mem_edge {
                break; // durable timeline may run ahead of an unacked extend
            }
            let mem_remaining = svc.remaining_budget("cam", at).expect("slot inside the ledger edge");
            assert!(
                *durable_remaining <= mem_remaining + 1e-9,
                "seed {seed}: durable slot {i} ({durable_remaining}) above memory ({mem_remaining}): under-debit"
            );
        }
    }

    // ---- heal + supervised recovery -----------------------------------------------------
    fault.heal();
    let report = svc.recover_store().unwrap_or_else(|e| panic!("seed {seed}: recovery must succeed once healed: {e:?}"));
    drop(report);
    assert!(svc.store_wedged().is_none(), "seed {seed}: reopen clears any wedge");
    assert_eq!(svc.camera_health("cam"), CameraHealth::Healthy, "seed {seed}: recovery lifts quarantine");
    assert_eq!(svc.camera_health("aux"), CameraHealth::Healthy);

    // Finish the footage the chaos window refused.
    for i in fed_until..TOTAL_BATCHES {
        svc.append_frames("cam", batch(i)).unwrap_or_else(|e| panic!("seed {seed}: healed append failed: {e:?}"));
    }
    assert_eq!(svc.live_edge("cam"), Some(TOTAL_BATCHES as f64 * BATCH_SECS));

    // ---- invariants 3 + 4: aux serves; probe is bit-identical to fault-free -------------
    let aux_probe = window_query("aux", 0.0, BATCH_SECS, 0.25);
    svc.execute_text(7 * seed + 3, &aux_probe).unwrap_or_else(|e| panic!("seed {seed}: aux must serve: {e:?}"));

    let probe = window_query("cam", 0.0, TOTAL_BATCHES as f64 * BATCH_SECS, 0.5);
    let chaotic = svc
        .execute_text(424242, &probe)
        .unwrap_or_else(|e| panic!("seed {seed}: post-recovery probe failed: {e:?}"));

    let reference = QueryService::new().with_parallelism(Parallelism::Fixed(1));
    register(&reference);
    for i in 0..TOTAL_BATCHES {
        reference.append_frames("cam", batch(i)).expect("fault-free append");
    }
    let expected = reference.execute_text(424242, &probe).expect("fault-free probe");
    assert_eq!(
        chaotic, expected,
        "seed {seed}: a healed, reopened store must release bit-for-bit what a fault-free run releases"
    );
    let _ = std::fs::remove_dir_all(&dir);
    fault.injected()
}

/// Sharded fault isolation: a fault schedule scoped to ONE shard's Vfs may
/// wedge that shard and quarantine its cameras, but every other shard keeps
/// journaling, admitting and serving — and a healed supervised recovery
/// brings the wedged shard back without disturbing the rest.
#[test]
fn a_single_shards_faults_leave_the_other_shards_healthy() {
    const SHARDS: usize = 4;
    const FAULTED: usize = 2;

    // Camera names route by id hash; probe candidates until every shard has
    // one (the routing is pure, so a throwaway in-memory service answers).
    let routing = QueryService::new().with_shards(SHARDS);
    let mut names: Vec<Option<String>> = vec![None; SHARDS];
    for i in 0..64 {
        let name = format!("cam{i}");
        let slot = &mut names[routing.shard_index(&name)];
        if slot.is_none() {
            *slot = Some(name);
        }
    }
    let names: Vec<String> = names
        .into_iter()
        .map(|n| n.expect("64 candidate names must cover all 4 shards"))
        .collect();

    let dir = chaos_dir(424243);
    let fault = FaultVfs::over_std();
    let svc = QueryService::builder()
        .parallelism(Parallelism::Fixed(1))
        .durability(Durability::wal(&dir, FsyncPolicy::Always))
        .shards(SHARDS)
        .shard_storage_vfs(FAULTED, fault.clone())
        .build()
        .expect("sharded durable service builds");
    svc.register_processor("person_counter", || {
        Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>
    })
    .expect("registration");
    for name in &names {
        svc.register_live_camera(name, FrameRate::new(2.0), FrameSize::new(100, 100), policy())
            .expect("registration");
        svc.append_frames(name, batch(0)).expect("pre-fault append");
    }

    // Deterministic fault: every fsync on the faulted shard's Vfs fails.
    fault.fail_from(FaultOp::Fsync, 1, FaultKind::Eio);
    let err = svc
        .append_frames(&names[FAULTED], batch(1))
        .expect_err("an append journaled through a failing fsync cannot be acknowledged");
    assert!(tolerable(&err), "the failure surfaces as a storage error, got {err:?}");
    assert!(svc.shard_wedged(FAULTED).is_some(), "the faulted shard's WAL wedges");

    // Blast radius check: every OTHER shard keeps appending, admitting and
    // answering — the wedge is shard-local.
    for (k, name) in names.iter().enumerate() {
        if k == FAULTED {
            continue;
        }
        assert!(svc.shard_wedged(k).is_none(), "shard {k} shares no fate with shard {FAULTED}");
        svc.append_frames(name, batch(1)).unwrap_or_else(|e| panic!("shard {k} must keep appending: {e:?}"));
        svc.execute_text(99, &window_query(name, 0.0, BATCH_SECS, 0.01))
            .unwrap_or_else(|e| panic!("shard {k} must keep admitting and serving: {e:?}"));
        assert_eq!(svc.camera_health(name), CameraHealth::Healthy, "shard {k}'s camera stays healthy");
    }

    // Heal + supervised recovery: per-shard reopen lifts the wedge and the
    // quarantine; the fleet is whole again.
    fault.heal();
    svc.recover_store().expect("healed recovery succeeds");
    assert!(svc.store_wedged().is_none(), "no shard stays wedged after recovery");
    for name in &names {
        assert_eq!(svc.camera_health(name), CameraHealth::Healthy, "recovery returns every camera to service");
    }
    svc.append_frames(&names[FAULTED], batch(1)).expect("the recovered shard serves again");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn randomized_fault_schedules_preserve_the_storage_invariants() {
    let seeds: u64 = std::env::var("CHAOS_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(36);
    let mut injected = 0u64;
    for seed in 0..seeds {
        injected += run_seed(seed);
    }
    // The harness only proves anything if the schedules actually fire.
    assert!(injected > seeds, "expected a real fault load across {seeds} seeds, saw {injected} injected faults");
}
