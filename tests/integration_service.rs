//! The concurrent serving layer, end to end: N analysts hammering one
//! `QueryService` must receive bit-for-bit the releases a serial replay of
//! the same (seed, query) set produces, with ε debited exactly once per
//! admitted query and repeated PROCESS prologs served from the chunk cache.

use privid::{
    ChunkProcessor, Parallelism, PrivacyPolicy, PrividError, QueryResult, QueryService, Scene, SceneConfig,
    SceneGenerator, UniqueEntrantProcessor,
};

/// Shared PROCESS prolog: analysts 0, 1 and 2 re-process the same chunks.
const SHARED_PROLOG: &str = "
    SPLIT campus BEGIN 0 END 900 BY TIME 10 sec STRIDE 0 sec INTO chunks;
    PROCESS chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
        WITH SCHEMA (count:NUMBER=0) INTO people;";

fn analyst_queries() -> Vec<(u64, String)> {
    vec![
        (101, format!("{SHARED_PROLOG} SELECT COUNT(*) FROM people CONSUMING 0.5;")),
        (202, format!("{SHARED_PROLOG} SELECT SUM(range(count, 0, 50)) FROM people CONSUMING 0.25;")),
        (303, format!("{SHARED_PROLOG} SELECT AVG(range(count, 0, 50)) FROM people CONSUMING 0.125;")),
        (
            404,
            "SPLIT campus BEGIN 900 END 1500 BY TIME 10 sec STRIDE 0 sec INTO c;
             PROCESS c USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
                 WITH SCHEMA (count:NUMBER=0) INTO people;
             SELECT COUNT(*) FROM people CONSUMING 0.5;"
                .to_string(),
        ),
        (
            505,
            "SPLIT campus BEGIN 0 END 300 BY TIME 5 sec STRIDE 0 sec INTO c;
             PROCESS c USING person_counter TIMEOUT 1 sec PRODUCING 10 ROWS
                 WITH SCHEMA (count:NUMBER=0) INTO people;
             SELECT COUNT(*) FROM people GROUP BY chunk BIN 60 sec CONSUMING 0.6;"
                .to_string(),
        ),
        (606, format!("{SHARED_PROLOG} SELECT COUNT(*) FROM people CONSUMING 0.5;")),
    ]
}

fn scene() -> Scene {
    SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.5)).generate()
}

fn service() -> QueryService {
    // Fixed(2) keeps total thread fan-out (analysts × engine workers) sane on
    // small CI machines; determinism holds at any setting.
    let service = QueryService::new().with_parallelism(Parallelism::Fixed(2));
    service.register_camera("campus", scene(), PrivacyPolicy::new(60.0, 2, 20.0)).expect("camera/processor registration must succeed");
    service.register_processor("person_counter", || {
        Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>
    }).expect("camera/processor registration must succeed");
    service
}

#[test]
fn concurrent_analysts_match_serial_replay_bit_for_bit() {
    let queries = analyst_queries();
    assert!(queries.len() >= 4, "the scenario must exercise at least 4 concurrent analysts");

    // Serial replay: one analyst at a time against a fresh service.
    let serial_svc = service();
    let serial: Vec<QueryResult> =
        queries.iter().map(|(seed, q)| serial_svc.execute_text(*seed, q).unwrap()).collect();

    // Concurrent run: every analyst on its own thread, one shared service.
    let concurrent_svc = service();
    let concurrent: Vec<QueryResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .iter()
            .map(|(seed, q)| {
                let svc = &concurrent_svc;
                scope.spawn(move || svc.execute_text(*seed, q).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("analyst thread panicked")).collect()
    });

    for (i, (s, c)) in serial.iter().zip(&concurrent).enumerate() {
        assert_eq!(s, c, "analyst {i}: concurrent result must be bit-for-bit identical to serial replay");
    }

    // ε accounting: every query admitted exactly once, nothing double-debited.
    // Frames [0, 300) are touched by the 0.5 + 0.25 + 0.125 + 0.6 + 0.5 queries.
    let spent_front = 20.0 - concurrent_svc.remaining_budget("campus", 100.0).unwrap();
    assert!((spent_front - 1.975).abs() < 1e-9, "frames in [0, 300): {spent_front} ε spent");
    // Frames [300, 900) miss the 0.6 GROUP BY query.
    let spent_mid = 20.0 - concurrent_svc.remaining_budget("campus", 600.0).unwrap();
    assert!((spent_mid - 1.375).abs() < 1e-9, "frames in [300, 900): {spent_mid} ε spent");
    // Frames [900, 1500) only see analyst 404.
    let spent_back = 20.0 - concurrent_svc.remaining_budget("campus", 1200.0).unwrap();
    assert!((spent_back - 0.5).abs() < 1e-9, "frames in [900, 1500): {spent_back} ε spent");
    // Both passes debit identically.
    for at in [100.0, 600.0, 1200.0, 1700.0] {
        assert_eq!(
            serial_svc.remaining_budget("campus", at),
            concurrent_svc.remaining_budget("campus", at),
            "serial and concurrent ledgers agree at {at} s"
        );
    }

    // Cache: the serial pass provably hit (three analysts share a prolog)…
    let serial_stats = serial_svc.cache_stats();
    assert!(serial_stats.hits >= 3, "shared prologs must be served from cache: {serial_stats:?}");
    assert_eq!(serial_stats.misses, 3, "three distinct PROCESS identities");
    // …and the concurrent pass measured at least one hit too: even if racing
    // analysts all missed, this follow-up query is served from cache.
    let warm = concurrent_svc
        .execute_text(707, &format!("{SHARED_PROLOG} SELECT COUNT(*) FROM people CONSUMING 0.1;"))
        .unwrap();
    assert_eq!(warm.releases.len(), 1);
    let stats = concurrent_svc.cache_stats();
    assert!(stats.hits >= 1, "concurrent service must measure cache hits: {stats:?}");
}

#[test]
fn contended_budget_admits_each_epsilon_at_most_once() {
    // 8 analysts race 0.5-ε queries against a 2.0-ε budget: exactly 4 win.
    // (Which four is arrival order — like a real deployment — but accounting
    // must be exact regardless.)
    let service = QueryService::new().with_parallelism(Parallelism::Fixed(1));
    service.register_camera("campus", scene(), PrivacyPolicy::new(60.0, 2, 2.0)).expect("camera/processor registration must succeed");
    service.register_processor("person_counter", || {
        Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>
    }).expect("camera/processor registration must succeed");
    let query = format!("{SHARED_PROLOG} SELECT COUNT(*) FROM people CONSUMING 0.5;");
    let outcomes: Vec<Result<QueryResult, PrividError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let (svc, q) = (&service, &query);
                scope.spawn(move || svc.execute_text(i, q))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let admitted = outcomes.iter().filter(|r| r.is_ok()).count();
    assert_eq!(admitted, 4, "2.0 budget / 0.5 per query admits exactly 4");
    for r in &outcomes {
        if let Err(e) = r {
            assert!(matches!(e, PrividError::BudgetExhausted { .. }), "losers see BudgetExhausted, got {e:?}");
        }
    }
    assert!(service.remaining_budget("campus", 450.0).unwrap().abs() < 1e-9, "window budget exactly exhausted");
}

#[test]
fn single_analyst_facade_and_service_share_semantics() {
    // A PrividSystem query and a QueryService query with the same seed and
    // a fresh noise stream are the same computation.
    let query = format!("{SHARED_PROLOG} SELECT COUNT(*) FROM people CONSUMING 0.5;");
    let mut sys = privid::PrividSystem::new(42).with_parallelism(Parallelism::Fixed(2));
    sys.register_camera("campus", scene(), PrivacyPolicy::new(60.0, 2, 20.0)).expect("camera/processor registration must succeed");
    sys.register_processor("person_counter", || {
        Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>
    }).expect("camera/processor registration must succeed");
    let via_system = sys.execute_text(&query).unwrap();
    let via_service = service().execute_text(42, &query).unwrap();
    assert_eq!(via_system, via_service, "first query of a seed-42 system == seed-42 service session");
}
