//! Fleet sharding, end to end: camera-id-hash shards must be *transparent*
//! (bit-for-bit equal releases vs an unsharded service), keep cache
//! invalidation shard-local, admit multi-camera queries across shards
//! atomically, and survive a restart — while refusing a shard-count change
//! that would orphan journaled admissions.

use privid::{
    ChunkProcessor, Durability, FrameBatch, FrameRate, FrameSize, FsyncPolicy, Parallelism, PrivacyPolicy,
    QueryService, UniqueEntrantProcessor,
};
use std::path::PathBuf;

const SHARDS: usize = 4;
const BATCH_SECS: f64 = 60.0;

fn policy() -> PrivacyPolicy {
    PrivacyPolicy::new(10.0, 2, 1000.0)
}

fn fleet_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("privid-fleet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn walker(id: u64, start: f64, end: f64) -> privid::TrackedObject {
    use privid::video::trajectory::Trajectory;
    use privid::video::{Attributes, ObjectClass, ObjectId, Point, PresenceSegment};
    privid::TrackedObject::new(
        ObjectId(id),
        ObjectClass::Person,
        Attributes::default(),
        vec![PresenceSegment {
            span: privid::TimeSpan::between_secs(start, end),
            trajectory: Trajectory::linear(Point::new(0.0, 50.0), Point::new(100.0, 50.0), 5.0, 10.0),
        }],
    )
}

fn batch(i: usize) -> FrameBatch {
    let base = i as f64 * BATCH_SECS;
    FrameBatch::new(
        BATCH_SECS,
        vec![walker(2 * i as u64 + 1, base + 5.0, base + 40.0), walker(2 * i as u64 + 2, base + 20.0, base + 55.0)],
    )
}

/// One camera name per shard, discovered through the pure routing hash.
fn cameras_per_shard(shards: usize) -> Vec<String> {
    let routing = QueryService::new().with_shards(shards);
    let mut names: Vec<Option<String>> = vec![None; shards];
    for i in 0..64 {
        let name = format!("cam{i}");
        let slot = &mut names[routing.shard_index(&name)];
        if slot.is_none() {
            *slot = Some(name);
        }
    }
    names.into_iter().map(|n| n.expect("64 candidates cover every shard")).collect()
}

fn register_fleet(svc: &QueryService, names: &[String], batches: usize) {
    svc.register_processor("person_counter", || {
        Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>
    })
    .expect("processor registration");
    for name in names {
        svc.register_live_camera(name, FrameRate::new(2.0), FrameSize::new(100, 100), policy())
            .expect("camera registration");
        for i in 0..batches {
            svc.append_frames(name, batch(i)).expect("append");
        }
    }
}

fn count_query(camera: &str, epsilon: f64) -> String {
    format!(
        "SPLIT {camera} BEGIN 0 END {BATCH_SECS} BY TIME 10 sec STRIDE 0 sec INTO chunks;
         PROCESS chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
             WITH SCHEMA (count:NUMBER=0) INTO people;
         SELECT COUNT(*) FROM people CONSUMING {epsilon};"
    )
}

/// One program over two cameras: both SPLITs admit in a single fleet
/// admission, so when the cameras live on different shards this is the
/// cross-shard check-all-then-debit-all path end to end.
fn two_camera_query(cam_a: &str, cam_b: &str, epsilon: f64) -> String {
    format!(
        "SPLIT {cam_a} BEGIN 0 END {BATCH_SECS} BY TIME 10 sec STRIDE 0 sec INTO a_chunks;
         SPLIT {cam_b} BEGIN 0 END {BATCH_SECS} BY TIME 10 sec STRIDE 0 sec INTO b_chunks;
         PROCESS a_chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
             WITH SCHEMA (count:NUMBER=0) INTO a_people;
         PROCESS b_chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
             WITH SCHEMA (count:NUMBER=0) INTO b_people;
         SELECT COUNT(*) FROM a_people CONSUMING {epsilon};
         SELECT COUNT(*) FROM b_people CONSUMING {epsilon};"
    )
}

#[test]
fn sharding_is_transparent_bit_for_bit_including_cross_shard_queries() {
    let names = cameras_per_shard(SHARDS);
    let sharded = QueryService::new().with_shards(SHARDS).with_parallelism(Parallelism::Fixed(1));
    let flat = QueryService::new().with_parallelism(Parallelism::Fixed(1));
    register_fleet(&sharded, &names, 2);
    register_fleet(&flat, &names, 2);
    assert_eq!(sharded.shard_count(), SHARDS);
    assert_eq!(flat.shard_count(), 1);

    // Per-camera releases are bit-identical whichever shard serves them.
    for (seed, name) in names.iter().enumerate() {
        let text = count_query(name, 0.25);
        let a = sharded.execute_text(seed as u64, &text).expect("sharded query");
        let b = flat.execute_text(seed as u64, &text).expect("flat query");
        assert_eq!(a, b, "camera {name}: a shard must not change what the analyst sees");
    }

    // A two-camera program whose SPLITs land on different shards admits
    // atomically across both gates and still releases identically.
    let text = two_camera_query(&names[0], &names[3], 0.25);
    let a = sharded.execute_text(99, &text).expect("cross-shard query");
    let b = flat.execute_text(99, &text).expect("flat two-camera query");
    assert_eq!(a, b, "a cross-shard admission must not change the releases");
    assert_eq!(a.epsilon_spent, b.epsilon_spent);

    // The debits landed identically too, camera by camera.
    for name in &names {
        assert_eq!(
            sharded.remaining_budget(name, 10.0).unwrap().to_bits(),
            flat.remaining_budget(name, 10.0).unwrap().to_bits(),
            "camera {name}: remaining ε must agree bit-for-bit"
        );
    }
}

#[test]
fn reregistration_invalidates_only_the_owning_shards_cache() {
    let names = cameras_per_shard(SHARDS);
    let svc = QueryService::new().with_shards(SHARDS).with_parallelism(Parallelism::Fixed(1)).with_cache_capacity(64);
    register_fleet(&svc, &names, 1);
    let (cam_a, cam_b) = (&names[1], &names[2]);
    let (shard_a, shard_b) = (svc.shard_index(cam_a), svc.shard_index(cam_b));
    assert_ne!(shard_a, shard_b);

    // Warm both shards' caches: run each query twice, the second must hit.
    for (seed, cam) in [(1u64, cam_a), (2, cam_b)] {
        let text = count_query(cam, 0.01);
        svc.execute_text(seed, &text).expect("warming run");
        svc.execute_text(seed, &text).expect("hitting run");
    }
    let a_before = svc.shard_cache_stats(shard_a).expect("cache enabled");
    let b_before = svc.shard_cache_stats(shard_b).expect("cache enabled");
    assert!(a_before.hits > 0 && b_before.hits > 0, "both shards' caches are warm");
    assert!(a_before.entries > 0 && b_before.entries > 0);

    // Re-register camera A: its shard's entries are invalidated; shard B's
    // tier is untouched — the invalidation walk is shard-local.
    svc.register_live_camera(cam_a, FrameRate::new(2.0), FrameSize::new(100, 100), policy())
        .expect("re-registration");
    let a_after = svc.shard_cache_stats(shard_a).expect("cache enabled");
    let b_after = svc.shard_cache_stats(shard_b).expect("cache enabled");
    assert!(
        a_after.entries < a_before.entries,
        "re-registration must drop the owning shard's cached results ({} -> {})",
        a_before.entries,
        a_after.entries
    );
    assert_eq!(b_after, b_before, "a re-registration on shard {shard_a} must not touch shard {shard_b}'s cache");

    // And shard B's entries are not just present but still *serving*.
    svc.execute_text(2, &count_query(cam_b, 0.01)).expect("repeat query");
    let b_final = svc.shard_cache_stats(shard_b).expect("cache enabled");
    assert!(b_final.hits > b_after.hits, "shard {shard_b}'s warm entries keep hitting");
    assert_eq!(b_final.misses, b_after.misses, "no shard-{shard_b} entry was invalidated");
}

#[test]
fn a_sharded_durable_fleet_restarts_in_place_and_refuses_resharding() {
    let names = cameras_per_shard(SHARDS);
    let dir = fleet_dir("restart");
    let spent = {
        let svc = QueryService::builder()
            .parallelism(Parallelism::Fixed(1))
            .durability(Durability::wal(&dir, FsyncPolicy::Always))
            .shards(SHARDS)
            .build()
            .expect("sharded durable service builds");
        register_fleet(&svc, &names, 1);
        for (seed, name) in names.iter().enumerate() {
            svc.execute_text(seed as u64, &count_query(name, 0.25)).expect("debiting query");
        }
        names.iter().map(|n| svc.remaining_budget(n, 10.0).unwrap().to_bits()).collect::<Vec<_>>()
        // dropped without checkpoint: a crash
    };

    // Restart with the same shard count: every shard's WAL replays and a
    // matching re-registration adopts each camera's pre-crash ledger.
    let svc = QueryService::builder()
        .parallelism(Parallelism::Fixed(1))
        .durability(Durability::wal(&dir, FsyncPolicy::Always))
        .shards(SHARDS)
        .build()
        .expect("sharded restart recovers");
    let report = svc.recovery_report().expect("an existing fleet was recovered").clone();
    assert_eq!(report.torn_tail_bytes, 0);
    register_fleet(&svc, &names, 1);
    for (name, bits) in names.iter().zip(&spent) {
        assert_eq!(
            svc.remaining_budget(name, 10.0).unwrap().to_bits(),
            *bits,
            "camera {name}: the restarted fleet must adopt the pre-crash ledger bit-for-bit"
        );
    }
    drop(svc);

    // A different shard count over the same directory must refuse to build:
    // fewer shards would orphan journaled admissions in the extra dirs, more
    // would re-home cameras away from their journaled shard.
    for wrong in [SHARDS / 2, SHARDS * 2] {
        let err = QueryService::builder()
            .durability(Durability::wal(&dir, FsyncPolicy::Always))
            .shards(wrong)
            .build();
        assert!(err.is_err(), "building {wrong} shards over a {SHARDS}-shard layout must fail, not silently reshard");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
