//! Offline stand-in for `serde_derive`.
//!
//! Nothing in the workspace serializes yet (the registry is unreachable from
//! this build environment, so there is no serde_json either), but the derives
//! still emit real `impl serde::Serialize` / `impl serde::Deserialize` marker
//! impls so that `T: Serialize` bounds work the moment someone writes one.
//! Declaring `attributes(serde)` keeps field annotations such as
//! `#[serde(skip)]` accepted exactly as the real macros do.
//!
//! The type name is extracted by scanning the token stream for the
//! `struct`/`enum` keyword — no `syn` available offline. Generic types are
//! not supported (the workspace has none); they get the old no-op expansion.

#![forbid(unsafe_code)]

use proc_macro::{TokenStream, TokenTree};

/// Finds the name of the derived type, or `None` for shapes this minimal
/// parser does not handle (e.g. generics, which need a full `syn`).
fn type_name(input: &TokenStream) -> Option<String> {
    let mut tokens = input.clone().into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(kw) = &tt {
            let kw = kw.to_string();
            if kw == "struct" || kw == "enum" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    // A `<` right after the name means generics: bail out.
                    match tokens.next() {
                        Some(TokenTree::Punct(p)) if p.as_char() == '<' => return None,
                        _ => return Some(name.to_string()),
                    }
                }
            }
        }
    }
    None
}

/// `Serialize` derive: emits an empty `impl serde::Serialize` marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match type_name(&input) {
        Some(name) => format!("impl ::serde::Serialize for {name} {{}}").parse().unwrap(),
        None => TokenStream::new(),
    }
}

/// `Deserialize` derive: emits an empty `impl serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match type_name(&input) {
        Some(name) => format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}").parse().unwrap(),
        None => TokenStream::new(),
    }
}
