//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names the workspace imports and
//! (behind the `derive` feature, on by default in the workspace manifest)
//! re-exports the no-op derives from the sibling `serde_derive` shim. The
//! traits are deliberately empty: nothing in the workspace serializes yet,
//! the derives exist so the data model is annotated and ready for the real
//! crates when registry access returns.

#![forbid(unsafe_code)]

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
