//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest 1.x surface the workspace's property
//! suites use: the [`proptest!`] test macro, `prop_assert!`/`prop_assert_eq!`,
//! [`prop_oneof!`], [`strategy::Strategy`] with `prop_map`, `any::<T>()` for
//! numeric primitives, [`strategy::Just`], numeric-range strategies,
//! `proptest::collection::vec`, and string strategies from simple
//! `[class]{lo,hi}` patterns.
//!
//! Semantics intentionally kept from the real crate:
//!
//! * the case count honours `PROPTEST_CASES` (default 64 here, deliberately
//!   small so `cargo test -q` stays fast);
//! * `any::<f64>()` mixes special values (NaN, infinities, signed zero) into
//!   the stream, which the schema-coercion properties rely on;
//! * failures report the generated inputs via the panic message (each case's
//!   inputs are formatted into the assert context).
//!
//! Shrinking is not implemented — a failing case prints its inputs and seed
//! instead.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Deterministic RNG driving case generation.

    /// SplitMix64 stream; deterministic per test so failures reproduce.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from a test name (FNV-1a) so each test gets an
        /// independent but stable sequence.
        pub fn deterministic_for(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `usize` in `[lo, hi)`.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi, "empty usize range {lo}..{hi}");
            lo + (self.next_u64() as usize) % (hi - lo)
        }
    }

    /// Number of cases per property: `PROPTEST_CASES` or 64.
    pub fn case_count() -> u32 {
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    trait DynStrategy<V> {
        fn dyn_new_value(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
            self.new_value(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            self.0.dyn_new_value(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among alternatives (backs [`crate::prop_oneof!`]).
    pub struct Union<V>(Vec<BoxedStrategy<V>>);

    impl<V> Union<V> {
        /// Builds a union; panics on an empty alternative list.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
            Union(options)
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            let idx = rng.usize_in(0, self.0.len());
            self.0[idx].new_value(rng)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range {self:?}");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn new_value(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range {self:?}");
            self.start + rng.next_f64() as f32 * (self.end - self.start)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range {self:?}");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// `&str` patterns act as string strategies. Supports the simple
    /// `[class]{lo,hi}` shape (character classes with `a-z` ranges); any
    /// other pattern is produced literally.
    impl Strategy for &'static str {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            match parse_class_pattern(self) {
                Some((chars, lo, hi)) if !chars.is_empty() => {
                    let len = rng.usize_in(lo, hi + 1);
                    (0..len).map(|_| chars[rng.usize_in(0, chars.len())]).collect()
                }
                _ => (*self).to_string(),
            }
        }
    }

    /// Parses `[a-zA-Z0-9]{0,8}`-style patterns into (alphabet, lo, hi).
    fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (a, b) = (class[i], class[i + 2]);
                for c in a..=b {
                    alphabet.push(c);
                }
                i += 3;
            } else {
                alphabet.push(class[i]);
                i += 1;
            }
        }
        let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = match counts.split_once(',') {
            Some((l, h)) => (l.trim().parse().ok()?, h.trim().parse().ok()?),
            None => {
                let n = counts.trim().parse().ok()?;
                (n, n)
            }
        };
        Some((alphabet, lo, hi))
    }
}

pub mod arbitrary {
    //! `any::<T>()` for primitive types.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            // ~12% special values, mirroring proptest's inclusion of the full
            // float domain in any::<f64>().
            match rng.next_u64() % 16 {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => -0.0,
                4 => 0.0,
                _ => {
                    // Random sign/exponent/mantissa over a wide dynamic range.
                    let mag = rng.next_f64() * 10f64.powi((rng.next_u64() % 61) as i32 - 30);
                    if rng.next_u64().is_multiple_of(2) {
                        mag
                    } else {
                        -mag
                    }
                }
            }
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64().is_multiple_of(2)
        }
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The full-domain strategy for `T`, as `proptest::prelude::any`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty vec length range {:?}", self.len);
            let n = rng.usize_in(self.len.start, self.len.end);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Each test runs [`test_runner::case_count`] cases; a failing case panics
/// with the property's assert message (inputs are interpolated by
/// `prop_assert!`'s caller context since Rust formats the captured locals).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::case_count();
                let mut rng = $crate::test_runner::TestRng::deterministic_for(stringify!($name));
                for case in 0..cases {
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strategy), &mut rng);)+
                    let inputs = format!(concat!("case {}: ", $(stringify!($arg), " = {:?}, ",)+), case, $(&$arg),+);
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                    if let Err(panic) = result {
                        eprintln!("proptest {} failed at {}", stringify!($name), inputs);
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// `prop_assert!`: assert within a property (panics with the condition text).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `prop_assert_eq!` for properties.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// `prop_assert_ne!` for properties.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniformly chooses among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($option)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_maps(x in 1usize..10, y in 0.0..1.0f64, s in "[a-c0-2]{1,4}") {
            prop_assert!((1..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert!(s.chars().all(|c| "abc012".contains(c)));
        }

        #[test]
        fn oneof_and_vec(v in crate::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 0..5)) {
            prop_assert!(v.len() < 5);
            prop_assert!(v.iter().all(|&b| b == 1 || b == 2));
        }
    }

    #[test]
    fn any_f64_hits_specials_and_finites() {
        use crate::arbitrary::Arbitrary;
        let mut rng = crate::test_runner::TestRng::deterministic_for("specials");
        let values: Vec<f64> = (0..500).map(|_| f64::arbitrary_value(&mut rng)).collect();
        assert!(values.iter().any(|v| v.is_nan()));
        assert!(values.iter().any(|v| v.is_infinite()));
        assert!(values.iter().any(|v| v.is_finite()));
    }
}
