//! Offline stand-in for the `rand` 0.8 crate.
//!
//! The build environment has no registry access, so this shim provides the
//! subset of the rand 0.8 API the workspace actually uses — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over half-open and
//! inclusive numeric ranges, and [`Rng::gen_bool`] — with the same call-site
//! shapes and panics as the real crate. The generator is xoshiro256++ seeded
//! via SplitMix64: deterministic per seed, which is all the simulation and
//! tests rely on (they never depend on rand's exact stream values).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)` using the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`. Panics on an empty range,
    /// matching the real crate.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: probability {p} outside [0, 1]");
        self.next_f64() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of an RNG from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types uniformly sampleable from a range, mirroring
/// `rand::distributions::uniform::SampleUniform`. The blanket `SampleRange`
/// impls below are over `Range<T>`/`RangeInclusive<T>` exactly as in rand 0.8,
/// which is what lets `gen_range(0.0..1.0)` infer `f64` from surrounding
/// arithmetic rather than demanding a suffix on every literal.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + rng.next_f64() * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + rng.next_f64() * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + rng.next_f64() as f32 * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + rng.next_f64() as f32 * (hi - lo)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the shim's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // All-zero state would be a fixed point; splitmix64 cannot emit
            // four zeros in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0..1.0f64).to_bits(), b.gen_range(0.0..1.0f64).to_bits());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.gen_range(-3.0..5.0f64);
            assert!((-3.0..5.0).contains(&f));
            let u = rng.gen_range(2usize..9);
            assert!((2..9).contains(&u));
            let i = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
