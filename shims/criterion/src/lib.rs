//! Offline stand-in for `criterion` 0.5.
//!
//! The build environment has no registry access, so this shim implements the
//! subset of the criterion API the workspace's benches use — [`Criterion`],
//! `bench_function`, `benchmark_group` (with `sample_size`/`finish`),
//! [`Bencher::iter`], [`criterion_group!`] and [`criterion_main!`] — with a
//! small wall-clock measurement loop. Benches are declared with
//! `harness = false`, so `cargo bench` runs the shim's `main` and prints one
//! `name  median time/iter  (samples)` line per benchmark; `cargo bench
//! --no-run` type-checks everything exactly as with the real crate.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (the real one forwards to
/// `std::hint` on recent toolchains, as does this).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs `f` as a named benchmark and prints its median iteration time.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher);
        bencher.report(&name.into());
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size }
    }
}

/// A group of related benchmarks (prefixes the group name).
pub struct BenchmarkGroup<'a> {
    // Held only so the group mutably borrows the driver for its lifetime,
    // matching the real API's aliasing rules.
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs `f` as `group/name`.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, name.into()));
        self
    }

    /// Finishes the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up plus a quick calibration of iterations-per-sample so each
        // sample measures at least ~1ms without running long benches forever.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters_per_sample = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample);
        }
    }

    fn report(&self, name: &str) {
        let mut sorted = self.samples.clone();
        sorted.sort();
        match sorted.get(sorted.len() / 2) {
            Some(median) => println!("{name:<50} {median:>12.2?}/iter  ({} samples)", sorted.len()),
            None => println!("{name:<50} (no samples: Bencher::iter never called)"),
        }
    }
}

/// Declares a function running the listed benchmark targets, as
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `fn main` running the listed groups, as
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run_their_closures() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("unit", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut ran_group = 0u32;
        group.bench_function("inner", |b| b.iter(|| ran_group += 1));
        group.finish();
        assert!(ran_group > 0);
    }
}
