//! Per-query execution sessions.
//!
//! One session = one analyst query: resolve SPLITs against the camera
//! registry, run PROCESS statements through the sandbox (or serve them from
//! the cross-query chunk cache), admit the total ε through the budget
//! admission controller, then aggregate and add seeded noise. Sessions hold
//! `Arc`s to the camera state they resolved at the start, so registry writes
//! never invalidate a query in flight, and they share nothing mutable except
//! the ledgers (serialized in `budget`), the chunk cache and the aggregate
//! cache (both internally locked) — which is what makes
//! [`crate::QueryService`] safely concurrent.
//!
//! Aggregate-only SELECTs never materialize rows at release time: they fold
//! per-chunk [`AggState`]s (see `privid_query::aggstate`) over the columnar
//! table, reusing folded chunk-prefix states from the second cache tier
//! ([`crate::aggcache`]) when another analyst already ran the same sub-plan.
//! Standing-query firings go further via [`execute_standing`]: when every
//! chunk of the window is fully recorded, the session executes only the
//! chunks past the longest cached prefix and extends the folded states —
//! per-firing work proportional to the *new* footage, not the window.

use crate::aggcache::AggCacheKey;
use crate::budget::{AdmissionFailure, BudgetError};
use crate::cache::ChunkCacheKey;
use crate::error::PrividError;
use crate::executor::{NoisyRelease, NoisyValue, QueryResult};
use crate::mechanism::LaplaceMechanism;
use crate::parallel::{execute_plan, execute_plan_range, Parallelism};
use crate::service::{CameraState, QueryService};
use privid_query::exec::RawRelease;
use privid_query::{
    execute_select, AggState, FoldableSelect, ParsedQuery, ProcessStatement, ReleaseValue, SelectStatement,
    SensitivityContext, SplitStatement, Table,
};
use privid_sandbox::{ProcessorFactory, SandboxSpec};
use privid_video::{ChunkPlan, ChunkSpec, Mask, RegionBoundary, RegionScheme, Seconds, TimeSpan, Timestamp};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// A SPLIT statement resolved against the registered cameras.
struct PreparedSplit {
    camera: String,
    state: Arc<CameraState>,
    window: TimeSpan,
    spec: ChunkSpec,
    /// Resolved mask id plus its registration generation (cache-key tag).
    mask_id: Option<(String, u64)>,
    mask: Option<Mask>,
    /// Live-edge cache tag: `Some(edge)` iff the camera is live and the
    /// window extends past the snapshot's live edge (see `cache` module docs).
    live_edge_micros: Option<i64>,
    /// The window budget admission debits: the query window, clamped to the
    /// snapshot's live edge for live cameras (the shared ledger may have
    /// grown past the snapshot this session serves).
    admit_window: TimeSpan,
    /// The ρ governing tables built from this split (the mask's reduced ρ, or
    /// the camera policy's ρ).
    rho_secs: Seconds,
    region_scheme_id: Option<String>,
    region_scheme: Option<RegionScheme>,
}

/// Everything the aggregate-cache tier needs to know about one PROCESS
/// output: the full execution identity (what [`ChunkCacheKey`] carries,
/// minus the live-edge tag — folded states cover only *closed* chunks, which
/// appends never mutate) plus where the window's closed prefix ends.
pub(crate) struct TableMeta {
    camera: String,
    camera_generation: u64,
    window: TimeSpan,
    spec: ChunkSpec,
    mask: Option<(String, u64)>,
    region_scheme: Option<String>,
    processor: String,
    processor_generation: u64,
    timeout_secs: Seconds,
    max_rows: usize,
    schema_repr: String,
    /// `Some(edge)` for live cameras: chunks ending at or before the edge are
    /// final; later chunks may still grow. `None` (batch camera) = all final.
    closed_edge: Option<Timestamp>,
    /// Registrations were current when the table was built — folded states
    /// derived from it are worth caching (a stale generation keys entries no
    /// future session can reach).
    cacheable: bool,
}

impl TableMeta {
    fn new(split: &PreparedSplit, p: &ProcessStatement, processor_generation: u64, cacheable: bool) -> TableMeta {
        TableMeta {
            camera: split.camera.clone(),
            camera_generation: split.state.generation,
            window: split.window,
            spec: split.spec,
            mask: split.mask_id.clone(),
            region_scheme: split.region_scheme_id.clone(),
            processor: p.executable.clone(),
            processor_generation,
            timeout_secs: p.timeout_secs,
            max_rows: p.max_rows,
            schema_repr: format!("{:?}", p.schema),
            closed_edge: if split.state.live { Some(split.state.scene.span.end) } else { None },
            cacheable,
        }
    }

    fn agg_key(&self, plan_fingerprint: &str, prefix_chunks: u32) -> AggCacheKey {
        AggCacheKey::new(
            (&self.camera, self.camera_generation),
            (self.window.start.as_micros(), self.window.end.as_micros()),
            (self.spec.chunk_secs.to_bits(), self.spec.stride_secs.to_bits()),
            self.mask.as_ref().map(|(id, generation)| (id.as_str(), *generation)),
            self.region_scheme.as_deref(),
            (&self.processor, self.processor_generation),
            self.timeout_secs.to_bits(),
            self.max_rows,
            &self.schema_repr,
            plan_fingerprint,
            prefix_chunks,
        )
    }

    /// How many leading chunks of the window are fully recorded. Computed in
    /// exact `Timestamp` (integer microsecond) arithmetic — an f64 comparison
    /// could misclassify a chunk that ends exactly at the live edge, and a
    /// cached state must never cover footage an append can still change.
    fn closed_chunks(&self) -> usize {
        let spans = self.spec.chunk_spans(&self.window);
        match self.closed_edge {
            None => spans.len(),
            Some(edge) => spans.iter().take_while(|span| span.end <= edge).count(),
        }
    }
}

/// Execute one query against the service's registries, drawing noise from
/// `mechanism`. This is the split → process → admit → aggregate → noise
/// pipeline of Algorithm 1, shared by [`crate::PrividSystem`] (one caller-owned
/// noise stream) and [`crate::QueryService::execute`] (one seed per query).
pub(crate) fn execute_query(
    service: &QueryService,
    query: &ParsedQuery,
    mechanism: &mut LaplaceMechanism,
    parallelism: Parallelism,
    default_epsilon: f64,
) -> Result<QueryResult, PrividError> {
    // ---- 1. Resolve SPLIT statements -------------------------------------------------
    let splits = prepare_all_splits(service, query)?;

    // ---- 2. Run PROCESS statements through the sandbox (or the cache) ----------------
    let mut tables: HashMap<String, Arc<Table>> = HashMap::new();
    let mut metas: HashMap<String, TableMeta> = HashMap::new();
    let mut ctx = SensitivityContext::new();
    let mut table_windows: HashMap<String, (String, TimeSpan)> = HashMap::new();
    let mut chunks_processed = 0usize;
    for p in &query.processes {
        let split = splits.get(&p.input).ok_or_else(|| {
            PrividError::Invalid(format!("PROCESS {} references undefined chunk set {}", p.output, p.input))
        })?;
        let (table, n_chunks, profile, meta) = run_process(service, p, split, parallelism)?;
        chunks_processed += n_chunks;
        ctx.register(p.output.clone(), profile);
        table_windows.insert(p.output.clone(), (split.camera.clone(), split.window));
        metas.insert(p.output.clone(), meta);
        tables.insert(p.output.clone(), table);
    }

    // ---- 3. Plan every SELECT (validation + sensitivities), pre-admission ------------
    // Everything that can be rejected from the query *structure* — a missing
    // table, no aggregations, a sensitivity-rule violation — must fail before
    // budget admission: rejecting afterwards would permanently consume the
    // analyst's budget for a query that never releases anything.
    let epsilon_total: f64 = query.selects.iter().map(|s| s.epsilon.unwrap_or(default_epsilon)).sum();
    if query.selects.is_empty() {
        return Err(PrividError::Invalid("a query must contain at least one SELECT".into()));
    }
    let mut planned = Vec::with_capacity(query.selects.len());
    for stmt in &query.selects {
        let select_epsilon = stmt.epsilon.unwrap_or(default_epsilon);
        let sensitivities = plan_select(stmt, &ctx, &table_windows)?;
        planned.push((stmt, select_epsilon, sensitivities));
    }

    // ---- 4. Budget admission (Algorithm 1, lines 1-5) --------------------------------
    admit_query(service, &splits, epsilon_total)?;

    // ---- 5. Aggregate, bound, add noise ----------------------------------------------
    let mut releases = Vec::new();
    for (stmt, select_epsilon, sensitivities) in planned {
        releases.extend(release_select(stmt, &tables, &metas, &sensitivities, select_epsilon, mechanism, service)?);
    }

    Ok(QueryResult { releases, epsilon_spent: epsilon_total, chunks_processed })
}

/// Resolve every SPLIT of `query` against the camera registry.
///
/// Each camera name is resolved against the registry exactly once per query:
/// if a concurrent register_camera replaced the camera between two SPLITs,
/// resolving per-split could hand them *different* CameraStates — and
/// admission (keyed by name) would debit only one of the two ledgers.
fn prepare_all_splits(
    service: &QueryService,
    query: &ParsedQuery,
) -> Result<HashMap<String, PreparedSplit>, PrividError> {
    let mut resolved: HashMap<String, Arc<CameraState>> = HashMap::new();
    let mut splits: HashMap<String, PreparedSplit> = HashMap::new();
    for s in &query.splits {
        let state = match resolved.get(&s.camera) {
            Some(state) => Arc::clone(state),
            None => {
                // A quarantined camera is refused up front: the query would
                // need an admission this camera's journal cannot record, and
                // failing here (retryably, before any sandbox work) is
                // cheaper than failing at the admission gate.
                service.ensure_admittable(&s.camera)?;
                let state = service.camera(&s.camera).ok_or_else(|| PrividError::UnknownCamera(s.camera.clone()))?;
                resolved.insert(s.camera.clone(), Arc::clone(&state));
                state
            }
        };
        splits.insert(s.output.clone(), prepare_split(s, state)?);
    }
    Ok(splits)
}

/// Admit the query's total ε over the union of its windows (Algorithm 1,
/// lines 1-5). A camera is debited exactly over the union of its splits'
/// windows: overlapping splits merge, but a gap between disjoint splits is
/// never debited (no chunk from it contributes to any release). The admission
/// controller runs check-all-then-debit-all under a single gate, so
/// concurrent sessions can never partially admit a query or jointly
/// over-spend a slot. Cameras are visited in sorted order purely for
/// deterministic error attribution.
fn admit_query(
    service: &QueryService,
    splits: &HashMap<String, PreparedSplit>,
    epsilon_total: f64,
) -> Result<(), PrividError> {
    let mut camera_windows: BTreeMap<String, (Arc<CameraState>, Vec<TimeSpan>)> = BTreeMap::new();
    for split in splits.values() {
        camera_windows
            .entry(split.camera.clone())
            .and_modify(|(_, windows)| windows.push(split.admit_window))
            .or_insert_with(|| (Arc::clone(&split.state), vec![split.admit_window]));
    }
    let mut requests: Vec<crate::budget::AdmissionRequest<'_>> = Vec::new();
    let mut request_cameras: Vec<&str> = Vec::new();
    for (camera, (state, windows)) in &camera_windows {
        for window in merge_windows(windows, state.policy.rho_secs) {
            requests.push(crate::budget::AdmissionRequest {
                ledger: &state.ledger,
                window,
                rho_margin: state.policy.rho_secs,
            });
            request_cameras.push(camera);
        }
    }
    // On a durable service this journals the admission's exact slot-range
    // debits *before* any slot is debited — and aborts, budget intact, if the
    // record cannot be appended.
    service.admit_requests(&requests, &request_cameras, epsilon_total).map_err(|failure| match failure {
        AdmissionFailure::Budget { index, error } => {
            // privid-analyzer: allow(panic-freedom) -- `index` indexes `requests`, built index-aligned with `request_cameras` (debug_assert in admit_requests)
            let camera = request_cameras[index].to_string();
            match error {
                BudgetError::Insufficient { available } => {
                    PrividError::BudgetExhausted { camera, requested: epsilon_total, available }
                }
                BudgetError::OutsideRecording { start_secs, end_secs, duration_secs } => {
                    PrividError::WindowOutsideRecording { camera, start_secs, end_secs, duration_secs }
                }
                BudgetError::BeyondLiveEdge { start_secs, end_secs, live_edge_secs } => {
                    PrividError::BeyondLiveEdge { camera, start_secs, end_secs, live_edge_secs }
                }
            }
        }
        // A journal failure degrades (transient) or quarantines (wedge) the
        // cameras the refused record covered — per-camera blast radius, not a
        // global failure.
        AdmissionFailure::Journal(e) => service.note_journal_failure(&request_cameras, e),
    })
}

// -------------------------------------------------------------------------------------

/// Merge one camera's split windows into the disjoint spans to admit.
/// Windows whose ±ρ expansions overlap (gap ≤ 2ρ) are merged — an event
/// segment could straddle such a gap, so the margin rule treats them as one
/// continuous window, exactly as the pre-serving-layer executor's bounding
/// hull did. Gaps wider than 2ρ keep their frames' budget untouched: no chunk
/// from them contributes to any release.
fn merge_windows(windows: &[TimeSpan], rho_secs: Seconds) -> Vec<TimeSpan> {
    let mut sorted = windows.to_vec();
    sorted.sort_by_key(|w| (w.start, w.end));
    let mut merged: Vec<TimeSpan> = Vec::with_capacity(sorted.len());
    for w in sorted {
        match merged.last_mut() {
            Some(last) if w.start.as_secs() - last.end.as_secs() <= 2.0 * rho_secs => {
                if w.end > last.end {
                    *last = TimeSpan::new(last.start, w.end);
                }
            }
            _ => merged.push(w),
        }
    }
    merged
}

/// True when the camera, mask and processor registrations a split resolved
/// are still the live ones — i.e. freshly computed outputs are worth caching.
fn registrations_current(
    service: &QueryService,
    split: &PreparedSplit,
    processor: &str,
    processor_generation: u64,
) -> bool {
    if service.camera(&split.camera).map(|s| s.generation) != Some(split.state.generation) {
        return false;
    }
    if service.processor(processor).map(|(g, _)| g) != Some(processor_generation) {
        return false;
    }
    match &split.mask_id {
        None => true,
        Some((id, generation)) => {
            split.state.masks.read().expect("mask registry poisoned").get(id).map(|(g, _)| *g) == Some(*generation) // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        }
    }
}

fn prepare_split(s: &SplitStatement, state: Arc<CameraState>) -> Result<PreparedSplit, PrividError> {
    let spec = ChunkSpec::new(s.chunk_secs, s.stride_secs).map_err(PrividError::Invalid)?;
    let window = TimeSpan::between_secs(s.begin_secs, s.end_secs);
    // Reject windows with no footage *before* the PROCESS stage: running the
    // sandbox over an empty plan and failing only at admission would waste
    // the whole processing cost (and the old ledger silently clamped such
    // windows onto real frames instead).
    //
    // Live cameras are validated against the *snapshot's* edge, not the
    // shared ledger: an append racing this query may already have grown the
    // ledger, but this session would still serve the pre-append scene — it
    // must fail retryably rather than release empty footage as if recorded.
    let snapshot_edge = state.scene.span.end;
    if state.live && window.start.max(Timestamp::ZERO) >= snapshot_edge {
        return Err(PrividError::BeyondLiveEdge {
            camera: s.camera.clone(),
            start_secs: s.begin_secs,
            end_secs: s.end_secs,
            live_edge_secs: snapshot_edge.as_secs(),
        });
    }
    match state.ledger.validate_window(&window) {
        Err(BudgetError::OutsideRecording { start_secs, end_secs, duration_secs }) => {
            return Err(PrividError::WindowOutsideRecording { camera: s.camera.clone(), start_secs, end_secs, duration_secs });
        }
        Err(BudgetError::BeyondLiveEdge { start_secs, end_secs, live_edge_secs }) => {
            return Err(PrividError::BeyondLiveEdge { camera: s.camera.clone(), start_secs, end_secs, live_edge_secs });
        }
        _ => {}
    }
    let live_edge_micros = (state.live && window.end > snapshot_edge).then(|| snapshot_edge.as_micros());
    // Admission must not debit past the footage this session actually serves:
    // the ledger is shared across append snapshots and may already cover more
    // timeline than this snapshot's scene (an append raced the query), but
    // every chunk comes from the snapshot. Clamping the *admitted* window to
    // the snapshot edge keeps the debit and the release congruent; the
    // requested window still drives chunk geometry and sensitivities.
    let admit_window =
        if state.live && window.end > snapshot_edge { TimeSpan::new(window.start, snapshot_edge) } else { window };
    // Lock-order audit: `mask-registry` is taken here with nothing held
    // above it — `state` is a cloned Arc<CameraState>, not a registry guard.
    // The one nested acquisition (under `camera-registry`) lives in
    // register_mask, which follows the declared order (analyzer.toml).
    let (mask_id, mask, rho) = match &s.mask {
        Some(id) => {
            let masks = state.masks.read().expect("mask registry poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
            let (generation, mp) = masks.get(id).ok_or_else(|| PrividError::UnknownMask(id.clone()))?;
            (Some((id.clone(), *generation)), Some(mp.mask.clone()), mp.rho_secs)
        }
        None => (None, None, state.policy.rho_secs),
    };
    let region_scheme = match &s.region_scheme {
        Some(id) => {
            let scheme =
                state.scene.region_schemes.get(id).ok_or_else(|| PrividError::UnknownRegionScheme(id.clone()))?;
            // §7.2: soft boundaries require single-frame chunks.
            let frame_secs = state.scene.frame_rate.frame_duration();
            if scheme.boundary == RegionBoundary::Soft && s.chunk_secs > frame_secs + 1e-9 {
                return Err(PrividError::SoftBoundaryChunkTooLarge { chunk_secs: s.chunk_secs, frame_secs });
            }
            Some(scheme.clone())
        }
        None => None,
    };
    Ok(PreparedSplit {
        camera: s.camera.clone(),
        state,
        window,
        spec,
        mask_id,
        mask,
        live_edge_micros,
        admit_window,
        rho_secs: rho,
        region_scheme_id: s.region_scheme.clone(),
        region_scheme,
    })
}

/// The sensitivity profile a PROCESS output registers: data-independent,
/// derived from the statement's declared bounds and the trusted window.
fn table_profile(split: &PreparedSplit, p: &ProcessStatement, regions: usize) -> privid_query::sensitivity::TableProfile {
    privid_query::sensitivity::TableProfile {
        max_rows_per_chunk: p.max_rows,
        chunk_secs: split.spec.chunk_secs,
        rho_secs: split.rho_secs,
        k: split.state.policy.k,
        num_chunks: split.spec.chunk_count(split.window.duration()) * regions as u64,
    }
}

fn run_process(
    service: &QueryService,
    p: &ProcessStatement,
    split: &PreparedSplit,
    parallelism: Parallelism,
) -> Result<(Arc<Table>, usize, privid_query::sensitivity::TableProfile, TableMeta), PrividError> {
    let (processor_generation, factory) =
        service.processor(&p.executable).ok_or_else(|| PrividError::UnknownProcessor(p.executable.clone()))?;
    let sandbox_spec = SandboxSpec::new(p.timeout_secs, p.max_rows, p.schema.clone());
    let cache = service.chunk_cache_for(&split.camera);
    // Identity of this PROCESS execution: any two statements with equal keys
    // produce identical sandbox outputs, so the raw table can be shared
    // across queries (noise is applied at release time; see `cache` docs).
    // Registration generations in the key stop a session racing a
    // re-registration from repopulating the cache with outdated outputs.
    // When caching is disabled the key (several String allocations) and the
    // cache lock are skipped entirely.
    let key = cache.enabled().then(|| {
        ChunkCacheKey::new(
            (&split.camera, split.state.generation),
            &split.window,
            &split.spec,
            split.mask_id.as_ref().map(|(id, generation)| (id.as_str(), *generation)),
            split.region_scheme_id.as_deref(),
            (&p.executable, processor_generation),
            p.timeout_secs,
            p.max_rows,
            format!("{:?}", p.schema),
            split.live_edge_micros,
        )
    });
    // `chunks_processed` counts the chunk executions the query *required*,
    // whether they ran in the sandbox or were served from the cache — keeping
    // QueryResult a deterministic function of (seed, query).
    let executions;
    let cacheable;
    let table = match key.as_ref().and_then(|k| cache.get(k)) {
        Some(cached) => {
            // The table appends one run per chunk execution — including
            // empty ones — so the cached table re-counts exactly the
            // executions it replaced. A hit is shared by `Arc` clone: no
            // row is copied on this path.
            executions = cached.runs().len();
            // A hit implies the entry's registration generations are still
            // the live ones: every re-registration invalidates eagerly.
            cacheable = true;
            cached
        }
        None => {
            // Stream the chunks through the parallel execution engine: chunks
            // are materialized lazily in the workers and outputs come back in
            // deterministic (chunk, region) order, so the table below is
            // identical at every worker count — and on every cache hit.
            let plan = ChunkPlan::new(&split.state.scene, &split.window, &split.spec, split.mask.as_ref());
            let outputs = execute_plan(&plan, split.region_scheme.as_ref(), &*factory, &sandbox_spec, parallelism);
            executions = outputs.len();
            // Rows move straight into the columnar table exactly once; the
            // cache shares the same allocation through the `Arc`.
            let mut table = Table::new(p.schema.clone());
            for (region, out) in outputs {
                table.append_chunk_rows(out.chunk_start_secs, region, out.rows, p.max_rows);
            }
            let table = Arc::new(table);
            // Don't retain outputs whose camera/processor/mask registration
            // moved on while we executed: such entries are unreachable (the
            // new generation keys differently) and would only displace live
            // entries when the cache is at capacity.
            cacheable = registrations_current(service, split, &p.executable, processor_generation);
            if let Some(key) = key.filter(|_| cacheable) {
                cache.insert(key, Arc::clone(&table));
            }
            table
        }
    };
    let regions = split.region_scheme.as_ref().map(|s| s.len()).unwrap_or(1).max(1);
    let profile = table_profile(split, p, regions);
    let meta = TableMeta::new(split, p, processor_generation, cacheable);
    Ok((table, executions, profile, meta))
}

/// Validate a SELECT and derive its per-release sensitivities. Runs *before*
/// budget admission: any error here (undefined table, no aggregations, a
/// sensitivity-rule violation) must reject the query while the analyst's
/// budget is still intact. Data-independent by construction — it looks only
/// at the statement and the table *profiles*, never at row contents.
fn plan_select(
    stmt: &SelectStatement,
    ctx: &SensitivityContext,
    table_windows: &HashMap<String, (String, TimeSpan)>,
) -> Result<Vec<f64>, PrividError> {
    // Planned number of releases (data-independent): explicit keys, or
    // chunk bins derived from the trusted query window.
    let base_tables = stmt.source.base_tables();
    for t in &base_tables {
        if !table_windows.contains_key(t) {
            return Err(PrividError::Invalid(format!("SELECT references undefined table {t}")));
        }
    }
    let window = base_tables
        .first()
        .and_then(|t| table_windows.get(t))
        .map(|(_, w)| *w)
        .unwrap_or_else(|| TimeSpan::from_secs(0.0));
    let bins = match &stmt.group_by {
        Some(privid_query::ast::GroupBy { keys: privid_query::ast::GroupKeys::ChunkBins { bin_secs }, .. }) => {
            (window.duration() / bin_secs).ceil().max(1.0) as usize
        }
        _ => 1,
    };
    let sensitivities = ctx.statement_sensitivities(stmt, bins)?;
    // A SELECT with no aggregations plans zero releases; admitting it would
    // consume budget while releasing nothing.
    if sensitivities.is_empty() {
        return Err(PrividError::Invalid(
            "SELECT statement declares no aggregations, so it plans no releases".into(),
        ));
    }
    Ok(sensitivities)
}

/// Aggregate the tables and apply seeded noise for one planned SELECT. Runs
/// after admission; `sensitivities` comes from [`plan_select`].
///
/// Aggregate-only single-table SELECTs take the incremental fold path
/// ([`fold_release`]); JOIN / GROUP BY plans keep the row-materializing
/// evaluator. Both produce bit-identical raw values (the row evaluator's
/// aggregation *is* the same [`AggState`] fold).
fn release_select(
    stmt: &SelectStatement,
    tables: &HashMap<String, Arc<Table>>,
    metas: &HashMap<String, TableMeta>,
    sensitivities: &[f64],
    select_epsilon: f64,
    mechanism: &mut LaplaceMechanism,
    service: &QueryService,
) -> Result<Vec<NoisyRelease>, PrividError> {
    let raw: Vec<RawRelease> = match fold_release(stmt, tables, metas, service) {
        Some(raw) => raw,
        None => execute_select(stmt, tables)?,
    };
    apply_noise(raw, sensitivities, select_epsilon, mechanism)
}

/// Release an aggregate-only SELECT by folding per-chunk [`AggState`]s over
/// the columnar table, reusing (and extending) a cached chunk-prefix state
/// when one exists. Returns `None` when the plan is not foldable (JOIN,
/// GROUP BY, no base table) — the caller falls back to the row evaluator.
///
/// Determinism contract: states are always the result of observing the
/// table's surviving rows in row order from row 0 — a cached prefix is
/// extended, never merged out of order — so the released values are
/// bit-identical to a from-scratch fold and to the row evaluator.
fn fold_release(
    stmt: &SelectStatement,
    tables: &HashMap<String, Arc<Table>>,
    metas: &HashMap<String, TableMeta>,
    service: &QueryService,
) -> Option<Vec<RawRelease>> {
    let base_tables = stmt.source.base_tables();
    if base_tables.len() != 1 {
        return None;
    }
    // privid-analyzer: allow(panic-freedom) -- `base_tables.len() == 1` was checked above, so index 0 exists
    let table = tables.get(&base_tables[0])?;
    // privid-analyzer: allow(panic-freedom) -- `base_tables.len() == 1` was checked above, so index 0 exists
    let meta = metas.get(&base_tables[0])?;
    // Aggregate states live in the camera's shard: invalidation on camera
    // re-registration then only ever walks that shard's tier.
    let agg = service.agg_cache_for(&meta.camera);
    let plan = FoldableSelect::compile(stmt, &table.schema)?;
    let chunks = table.chunk_rows();
    let n = chunks.len();
    let closed = meta.closed_chunks().min(n);
    let use_cache = agg.enabled() && meta.cacheable && closed > 0;
    let mut states = plan.identity();
    let mut covered = 0usize;
    if use_cache {
        // One counting probe at the target prefix (the cache's hit rate is
        // the shared-sub-plan rate), then a silent walk-back for the longest
        // shorter prefix to extend.
        if let Some(hit) = agg.get(&meta.agg_key(plan.fingerprint(), closed as u32)) {
            states = hit.as_ref().clone();
            covered = closed;
        } else {
            for prefix in (1..closed).rev() {
                if let Some(hit) = agg.peek(&meta.agg_key(plan.fingerprint(), prefix as u32)) {
                    states = hit.as_ref().clone();
                    covered = prefix;
                    break;
                }
            }
        }
    }
    if covered < closed {
        // privid-analyzer: allow(panic-freedom) -- `covered < closed <= n == chunks.len()`, so both indices are in bounds
        plan.fold_range(table, chunks[covered].start..chunks[closed - 1].end, &mut states);
        if use_cache {
            // First insert wins on a race; both values are bit-identical by
            // the determinism contract, so it doesn't matter which.
            agg.insert(meta.agg_key(plan.fingerprint(), closed as u32), Arc::new(states.clone()));
        }
    }
    if closed < n {
        // Live-edge tail: chunks an append can still grow are folded fresh
        // every time and never enter the cache.
        // privid-analyzer: allow(panic-freedom) -- `closed < n == chunks.len()` in this branch
        plan.fold_range(table, chunks[closed].start..table.len(), &mut states);
    }
    Some(plan.release(&states))
}

/// Apply seeded Laplace noise to one SELECT's raw releases.
fn apply_noise(
    raw: Vec<RawRelease>,
    sensitivities: &[f64],
    select_epsilon: f64,
    mechanism: &mut LaplaceMechanism,
) -> Result<Vec<NoisyRelease>, PrividError> {
    let first_sensitivity = sensitivities
        .first()
        .copied()
        .ok_or_else(|| PrividError::Invalid("SELECT released no values: no PROCESS produced rows for it".into()))?;
    let planned_releases = sensitivities.len();
    let per_release_epsilon = select_epsilon / planned_releases as f64;

    let mut out = Vec::with_capacity(raw.len());
    for (i, release) in raw.into_iter().enumerate() {
        let sensitivity = sensitivities.get(i).copied().unwrap_or(first_sensitivity);
        let scale = LaplaceMechanism::scale(sensitivity, per_release_epsilon);
        let value = match &release.value {
            ReleaseValue::Number(n) => NoisyValue::Number(mechanism.release(*n, sensitivity, per_release_epsilon)),
            ReleaseValue::Candidates(c) => NoisyValue::Key(
                mechanism.release_argmax(c, sensitivity, per_release_epsilon).unwrap_or_else(|| String::from("")),
            ),
        };
        out.push(NoisyRelease {
            label: release.label,
            group_key: release.group_key,
            value,
            raw: release.value,
            sensitivity,
            noise_scale: scale,
            epsilon: per_release_epsilon,
        });
    }
    Ok(out)
}

// -------------------------------------------------------------------------------------
// Incremental standing-query execution.

/// One PROCESS statement planned (but not executed) for the incremental path.
struct StandingProcess<'q> {
    p: &'q ProcessStatement,
    split: &'q PreparedSplit,
    factory: Arc<dyn ProcessorFactory + Send + Sync>,
    meta: TableMeta,
    n_chunks: usize,
}

/// Execute a standing-query firing incrementally: identical releases to
/// [`execute_query`], but only the chunks past the longest cached fold prefix
/// run in the sandbox.
///
/// Returns `Ok(None)` — *strictly before admission, so no budget is touched
/// and no noise is drawn* — when the firing can't take the incremental path:
/// the aggregate cache is disabled, a SELECT isn't foldable (JOIN/GROUP BY),
/// or some chunk of the window isn't fully recorded yet. The caller then
/// falls back to the reference pipeline, whose releases are bit-identical.
///
/// Error behavior mirrors [`execute_query`] stage by stage (same error
/// variants in the same order), so a firing fails identically on both paths.
pub(crate) fn execute_standing(
    service: &QueryService,
    query: &ParsedQuery,
    mechanism: &mut LaplaceMechanism,
    parallelism: Parallelism,
    default_epsilon: f64,
) -> Result<Option<QueryResult>, PrividError> {
    if !service.agg_cache_enabled() {
        return Ok(None);
    }
    // ---- 1. Resolve SPLIT statements (identical to the reference path) --------------
    let splits = prepare_all_splits(service, query)?;

    // ---- 2. Plan PROCESS statements without executing any chunk ----------------------
    let mut ctx = SensitivityContext::new();
    let mut table_windows: HashMap<String, (String, TimeSpan)> = HashMap::new();
    let mut processes: Vec<(String, StandingProcess<'_>)> = Vec::new();
    let mut chunks_processed = 0usize;
    for p in &query.processes {
        let split = splits.get(&p.input).ok_or_else(|| {
            PrividError::Invalid(format!("PROCESS {} references undefined chunk set {}", p.output, p.input))
        })?;
        let (processor_generation, factory) =
            service.processor(&p.executable).ok_or_else(|| PrividError::UnknownProcessor(p.executable.clone()))?;
        let cacheable = registrations_current(service, split, &p.executable, processor_generation);
        let meta = TableMeta::new(split, p, processor_generation, cacheable);
        let n_chunks = meta.spec.chunk_spans(&meta.window).len();
        // The incremental path serves only fully recorded windows: a chunk
        // that can still grow would need re-execution at the next firing
        // anyway, and folded states must never cover mutable footage.
        if meta.closed_chunks() < n_chunks {
            return Ok(None);
        }
        let regions = split.region_scheme.as_ref().map(|s| s.len()).unwrap_or(1).max(1);
        // The reference path executes every (chunk, region) pair; the count
        // stays a deterministic function of the query on both paths.
        chunks_processed += n_chunks * regions;
        ctx.register(p.output.clone(), table_profile(split, p, regions));
        table_windows.insert(p.output.clone(), (split.camera.clone(), split.window));
        processes.push((p.output.clone(), StandingProcess { p, split, factory, meta, n_chunks }));
    }

    // ---- 3. Plan every SELECT, pre-admission (identical to the reference path) -------
    let epsilon_total: f64 = query.selects.iter().map(|s| s.epsilon.unwrap_or(default_epsilon)).sum();
    if query.selects.is_empty() {
        return Err(PrividError::Invalid("a query must contain at least one SELECT".into()));
    }
    let mut planned: Vec<(String, f64, Vec<f64>, FoldableSelect)> = Vec::with_capacity(query.selects.len());
    for stmt in &query.selects {
        let select_epsilon = stmt.epsilon.unwrap_or(default_epsilon);
        let sensitivities = plan_select(stmt, &ctx, &table_windows)?;
        let base_tables = stmt.source.base_tables();
        if base_tables.len() != 1 {
            return Ok(None);
        }
        let Some(fold) = processes
            .iter()
            // privid-analyzer: allow(panic-freedom) -- `base_tables.len() == 1` was checked above, so index 0 exists
            .find(|(name, _)| *name == base_tables[0])
            .and_then(|(_, sp)| FoldableSelect::compile(stmt, &sp.p.schema))
        else {
            return Ok(None);
        };
        planned.push((base_tables.into_iter().next().unwrap_or_default(), select_epsilon, sensitivities, fold));
    }

    // ---- 4. Budget admission (identical to the reference path) -----------------------
    admit_query(service, &splits, epsilon_total)?;

    // ---- 5. Fold: extend the longest cached prefix per SELECT ------------------------
    let mut select_states: Vec<Option<Vec<AggState>>> = planned.iter().map(|_| None).collect();
    for (name, sp) in &processes {
        let on_table: Vec<usize> =
            planned.iter().enumerate().filter(|(_, (t, ..))| t == name).map(|(i, _)| i).collect();
        if on_table.is_empty() {
            continue;
        }
        let agg = service.agg_cache_for(&sp.meta.camera);
        let n = sp.n_chunks;
        // Longest cached prefix per SELECT: one counting probe at the full
        // prefix, then a silent walk-back.
        let mut folds: Vec<(usize, usize, Vec<AggState>)> = Vec::with_capacity(on_table.len());
        for &i in &on_table {
            // privid-analyzer: allow(panic-freedom) -- `on_table` holds indices enumerate() produced over `planned`
            let fold = &planned[i].3;
            let mut covered = 0usize;
            let mut states = fold.identity();
            if sp.meta.cacheable {
                if let Some(hit) = agg.get(&sp.meta.agg_key(fold.fingerprint(), n as u32)) {
                    states = hit.as_ref().clone();
                    covered = n;
                } else {
                    for prefix in (1..n).rev() {
                        if let Some(hit) = agg.peek(&sp.meta.agg_key(fold.fingerprint(), prefix as u32)) {
                            states = hit.as_ref().clone();
                            covered = prefix;
                            break;
                        }
                    }
                }
            }
            folds.push((i, covered, states));
        }
        // Execute only the chunks past the *shortest* covered prefix, once,
        // shared by every SELECT on this table. `execute_plan_range` keeps
        // full-plan chunk indices, so the tail is bit-identical to the same
        // rows of a full execution.
        let need_from = folds.iter().map(|(_, covered, _)| *covered).min().unwrap_or(n);
        if need_from < n {
            let plan = ChunkPlan::new(&sp.split.state.scene, &sp.split.window, &sp.split.spec, sp.split.mask.as_ref());
            let sandbox_spec = SandboxSpec::new(sp.p.timeout_secs, sp.p.max_rows, sp.p.schema.clone());
            let outputs = execute_plan_range(
                &plan,
                need_from..n,
                sp.split.region_scheme.as_ref(),
                &*sp.factory,
                &sandbox_spec,
                parallelism,
            );
            let mut tail = Table::new(sp.p.schema.clone());
            for (region, out) in outputs {
                tail.append_chunk_rows(out.chunk_start_secs, region, out.rows, sp.p.max_rows);
            }
            let tail_chunks = tail.chunk_rows();
            for (i, covered, states) in &mut folds {
                if *covered < n {
                    // privid-analyzer: allow(panic-freedom) -- `i` came from enumerate() over `planned`
                    let fold = &planned[*i].3;
                    // privid-analyzer: allow(panic-freedom) -- `need_from <= covered < n` and the tail holds exactly `n - need_from` chunks (one run per executed chunk, empty runs included)
                    fold.fold_range(&tail, tail_chunks[*covered - need_from].start..tail.len(), states);
                    if sp.meta.cacheable {
                        agg.insert(sp.meta.agg_key(fold.fingerprint(), n as u32), Arc::new(states.clone()));
                    }
                }
            }
        }
        for (i, _, states) in folds {
            // privid-analyzer: allow(panic-freedom) -- `i` came from enumerate() over `planned`; `select_states` is planned-length
            select_states[i] = Some(states);
        }
    }

    // ---- 6. Release with seeded noise, in SELECT order -------------------------------
    let mut releases = Vec::new();
    for (i, (_, select_epsilon, sensitivities, fold)) in planned.iter().enumerate() {
        // privid-analyzer: allow(panic-freedom) -- `select_states` was built planned-length above
        let states = select_states[i].take().unwrap_or_else(|| fold.identity());
        releases.extend(apply_noise(fold.release(&states), sensitivities, *select_epsilon, mechanism)?);
    }
    Ok(Some(QueryResult { releases, epsilon_spent: epsilon_total, chunks_processed }))
}

/// Warm the aggregate cache for a standing query's *forming* window: execute
/// and fold the chunks that the latest append closed, so the eventual firing
/// only runs the final stretch. Best-effort and side-effect-free beyond the
/// cache — no budget is admitted or debited (raw outputs and folded states
/// stay inside the video owner's trust domain; ε is charged when a firing
/// releases, exactly as for the chunk cache), no noise is drawn, and every
/// failure is swallowed (the firing simply does the work itself).
///
/// Idempotent under racing appends: the walk-back probe finds the prefix a
/// previous pump already folded, and a duplicate insert at the same prefix is
/// a first-wins no-op on bit-identical states.
pub(crate) fn prefold_standing(service: &QueryService, query: &ParsedQuery, parallelism: Parallelism) {
    if !service.agg_cache_enabled() {
        return;
    }
    let Ok(splits) = prepare_all_splits(service, query) else { return };
    for p in &query.processes {
        let Some(split) = splits.get(&p.input) else { return };
        let agg = service.agg_cache_for(&split.camera);
        let Some((processor_generation, factory)) = service.processor(&p.executable) else { return };
        if !registrations_current(service, split, &p.executable, processor_generation) {
            continue;
        }
        let meta = TableMeta::new(split, p, processor_generation, true);
        let n_chunks = meta.spec.chunk_spans(&meta.window).len();
        let closed = meta.closed_chunks().min(n_chunks);
        if closed == 0 {
            continue;
        }
        let folds: Vec<FoldableSelect> = query
            .selects
            .iter()
            .filter(|stmt| {
                let base_tables = stmt.source.base_tables();
                // privid-analyzer: allow(panic-freedom) -- short-circuit: index 0 only after `len() == 1`
                base_tables.len() == 1 && base_tables[0] == p.output
            })
            .filter_map(|stmt| FoldableSelect::compile(stmt, &p.schema))
            .collect();
        if folds.is_empty() {
            continue;
        }
        // Silent probes only: warm-up must not skew the serving-path hit rate.
        let mut work: Vec<(usize, Vec<AggState>, &FoldableSelect)> = Vec::new();
        for fold in &folds {
            let mut covered = 0usize;
            let mut states = fold.identity();
            for prefix in (1..=closed).rev() {
                if let Some(hit) = agg.peek(&meta.agg_key(fold.fingerprint(), prefix as u32)) {
                    states = hit.as_ref().clone();
                    covered = prefix;
                    break;
                }
            }
            if covered < closed {
                work.push((covered, states, fold));
            }
        }
        let Some(need_from) = work.iter().map(|(covered, _, _)| *covered).min() else { continue };
        let plan = ChunkPlan::new(&split.state.scene, &split.window, &split.spec, split.mask.as_ref());
        let sandbox_spec = SandboxSpec::new(p.timeout_secs, p.max_rows, p.schema.clone());
        let outputs = execute_plan_range(
            &plan,
            need_from..closed,
            split.region_scheme.as_ref(),
            &*factory,
            &sandbox_spec,
            parallelism,
        );
        let mut tail = Table::new(p.schema.clone());
        for (region, out) in outputs {
            tail.append_chunk_rows(out.chunk_start_secs, region, out.rows, p.max_rows);
        }
        let tail_chunks = tail.chunk_rows();
        for (covered, mut states, fold) in work {
            // privid-analyzer: allow(panic-freedom) -- `need_from <= covered < closed` and the tail holds exactly `closed - need_from` chunks (one run per executed chunk, empty runs included)
            fold.fold_range(&tail, tail_chunks[covered - need_from].start..tail.len(), &mut states);
            agg.insert(meta.agg_key(fold.fingerprint(), closed as u32), Arc::new(states));
        }
    }
}
