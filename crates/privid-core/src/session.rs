//! Per-query execution sessions.
//!
//! One session = one analyst query: resolve SPLITs against the camera
//! registry, run PROCESS statements through the sandbox (or serve them from
//! the cross-query chunk cache), admit the total ε through the budget
//! admission controller, then aggregate and add seeded noise. Sessions hold
//! `Arc`s to the camera state they resolved at the start, so registry writes
//! never invalidate a query in flight, and they share nothing mutable except
//! the ledgers (serialized in `budget`) and the chunk cache (internally
//! locked) — which is what makes [`crate::QueryService`] safely concurrent.

use crate::budget::{AdmissionFailure, BudgetError};
use crate::cache::ChunkCacheKey;
use crate::error::PrividError;
use crate::executor::{NoisyRelease, NoisyValue, QueryResult};
use crate::mechanism::LaplaceMechanism;
use crate::parallel::{execute_plan, Parallelism};
use crate::service::{CameraState, QueryService};
use privid_query::exec::RawRelease;
use privid_query::{
    execute_select, ParsedQuery, ProcessStatement, ReleaseValue, SelectStatement, SensitivityContext, SplitStatement,
    Table,
};
use privid_sandbox::SandboxSpec;
use privid_video::{ChunkPlan, ChunkSpec, Mask, RegionBoundary, RegionScheme, Seconds, TimeSpan, Timestamp};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// A SPLIT statement resolved against the registered cameras.
struct PreparedSplit {
    camera: String,
    state: Arc<CameraState>,
    window: TimeSpan,
    spec: ChunkSpec,
    /// Resolved mask id plus its registration generation (cache-key tag).
    mask_id: Option<(String, u64)>,
    mask: Option<Mask>,
    /// Live-edge cache tag: `Some(edge)` iff the camera is live and the
    /// window extends past the snapshot's live edge (see `cache` module docs).
    live_edge_micros: Option<i64>,
    /// The window budget admission debits: the query window, clamped to the
    /// snapshot's live edge for live cameras (the shared ledger may have
    /// grown past the snapshot this session serves).
    admit_window: TimeSpan,
    /// The ρ governing tables built from this split (the mask's reduced ρ, or
    /// the camera policy's ρ).
    rho_secs: Seconds,
    region_scheme_id: Option<String>,
    region_scheme: Option<RegionScheme>,
}

/// Execute one query against the service's registries, drawing noise from
/// `mechanism`. This is the split → process → admit → aggregate → noise
/// pipeline of Algorithm 1, shared by [`crate::PrividSystem`] (one caller-owned
/// noise stream) and [`crate::QueryService::execute`] (one seed per query).
pub(crate) fn execute_query(
    service: &QueryService,
    query: &ParsedQuery,
    mechanism: &mut LaplaceMechanism,
    parallelism: Parallelism,
    default_epsilon: f64,
) -> Result<QueryResult, PrividError> {
    // ---- 1. Resolve SPLIT statements -------------------------------------------------
    // Each camera name is resolved against the registry exactly once per
    // query: if a concurrent register_camera replaced the camera between two
    // SPLITs, resolving per-split could hand them *different* CameraStates —
    // and admission (keyed by name) would debit only one of the two ledgers.
    let mut resolved: HashMap<String, Arc<CameraState>> = HashMap::new();
    let mut splits: HashMap<String, PreparedSplit> = HashMap::new();
    for s in &query.splits {
        let state = match resolved.get(&s.camera) {
            Some(state) => Arc::clone(state),
            None => {
                // A quarantined camera is refused up front: the query would
                // need an admission this camera's journal cannot record, and
                // failing here (retryably, before any sandbox work) is
                // cheaper than failing at the admission gate.
                service.ensure_admittable(&s.camera)?;
                let state = service.camera(&s.camera).ok_or_else(|| PrividError::UnknownCamera(s.camera.clone()))?;
                resolved.insert(s.camera.clone(), Arc::clone(&state));
                state
            }
        };
        splits.insert(s.output.clone(), prepare_split(s, state)?);
    }

    // ---- 2. Run PROCESS statements through the sandbox (or the cache) ----------------
    let mut tables: HashMap<String, Table> = HashMap::new();
    let mut ctx = SensitivityContext::new();
    let mut table_windows: HashMap<String, (String, TimeSpan)> = HashMap::new();
    let mut chunks_processed = 0usize;
    for p in &query.processes {
        let split = splits.get(&p.input).ok_or_else(|| {
            PrividError::Invalid(format!("PROCESS {} references undefined chunk set {}", p.output, p.input))
        })?;
        let (table, n_chunks, profile) = run_process(service, p, split, parallelism)?;
        chunks_processed += n_chunks;
        ctx.register(p.output.clone(), profile);
        table_windows.insert(p.output.clone(), (split.camera.clone(), split.window));
        tables.insert(p.output.clone(), table);
    }

    // ---- 3. Plan every SELECT (validation + sensitivities), pre-admission ------------
    // Everything that can be rejected from the query *structure* — a missing
    // table, no aggregations, a sensitivity-rule violation — must fail before
    // budget admission: rejecting afterwards would permanently consume the
    // analyst's budget for a query that never releases anything.
    let epsilon_total: f64 = query.selects.iter().map(|s| s.epsilon.unwrap_or(default_epsilon)).sum();
    if query.selects.is_empty() {
        return Err(PrividError::Invalid("a query must contain at least one SELECT".into()));
    }
    let mut planned = Vec::with_capacity(query.selects.len());
    for stmt in &query.selects {
        let select_epsilon = stmt.epsilon.unwrap_or(default_epsilon);
        let sensitivities = plan_select(stmt, &tables, &ctx, &table_windows)?;
        planned.push((stmt, select_epsilon, sensitivities));
    }

    // ---- 4. Budget admission (Algorithm 1, lines 1-5) --------------------------------
    // A camera is debited exactly over the union of its splits' windows:
    // overlapping splits merge, but a gap between disjoint splits is never
    // debited (no chunk from it contributes to any release). The admission
    // controller runs check-all-then-debit-all under a single gate, so
    // concurrent sessions can never partially admit a query or jointly
    // over-spend a slot. Cameras are visited in sorted order purely for
    // deterministic error attribution.
    let mut camera_windows: BTreeMap<String, (Arc<CameraState>, Vec<TimeSpan>)> = BTreeMap::new();
    for split in splits.values() {
        camera_windows
            .entry(split.camera.clone())
            .and_modify(|(_, windows)| windows.push(split.admit_window))
            .or_insert_with(|| (Arc::clone(&split.state), vec![split.admit_window]));
    }
    let mut requests: Vec<crate::budget::AdmissionRequest<'_>> = Vec::new();
    let mut request_cameras: Vec<&str> = Vec::new();
    for (camera, (state, windows)) in &camera_windows {
        for window in merge_windows(windows, state.policy.rho_secs) {
            requests.push(crate::budget::AdmissionRequest {
                ledger: &state.ledger,
                window,
                rho_margin: state.policy.rho_secs,
            });
            request_cameras.push(camera);
        }
    }
    // On a durable service this journals the admission's exact slot-range
    // debits *before* any slot is debited — and aborts, budget intact, if the
    // record cannot be appended.
    service.admit_requests(&requests, &request_cameras, epsilon_total).map_err(|failure| match failure {
        AdmissionFailure::Budget { index, error } => {
            // privid-analyzer: allow(panic-freedom) -- `index` indexes `requests`, built index-aligned with `request_cameras` (debug_assert in admit_requests)
            let camera = request_cameras[index].to_string();
            match error {
                BudgetError::Insufficient { available } => {
                    PrividError::BudgetExhausted { camera, requested: epsilon_total, available }
                }
                BudgetError::OutsideRecording { start_secs, end_secs, duration_secs } => {
                    PrividError::WindowOutsideRecording { camera, start_secs, end_secs, duration_secs }
                }
                BudgetError::BeyondLiveEdge { start_secs, end_secs, live_edge_secs } => {
                    PrividError::BeyondLiveEdge { camera, start_secs, end_secs, live_edge_secs }
                }
            }
        }
        // A journal failure degrades (transient) or quarantines (wedge) the
        // cameras the refused record covered — per-camera blast radius, not a
        // global failure.
        AdmissionFailure::Journal(e) => service.note_journal_failure(&request_cameras, e),
    })?;

    // ---- 5. Aggregate, bound, add noise ----------------------------------------------
    let mut releases = Vec::new();
    for (stmt, select_epsilon, sensitivities) in planned {
        releases.extend(release_select(stmt, &tables, &sensitivities, select_epsilon, mechanism)?);
    }

    Ok(QueryResult { releases, epsilon_spent: epsilon_total, chunks_processed })
}

// -------------------------------------------------------------------------------------

/// Merge one camera's split windows into the disjoint spans to admit.
/// Windows whose ±ρ expansions overlap (gap ≤ 2ρ) are merged — an event
/// segment could straddle such a gap, so the margin rule treats them as one
/// continuous window, exactly as the pre-serving-layer executor's bounding
/// hull did. Gaps wider than 2ρ keep their frames' budget untouched: no chunk
/// from them contributes to any release.
fn merge_windows(windows: &[TimeSpan], rho_secs: Seconds) -> Vec<TimeSpan> {
    let mut sorted = windows.to_vec();
    sorted.sort_by_key(|w| (w.start, w.end));
    let mut merged: Vec<TimeSpan> = Vec::with_capacity(sorted.len());
    for w in sorted {
        match merged.last_mut() {
            Some(last) if w.start.as_secs() - last.end.as_secs() <= 2.0 * rho_secs => {
                if w.end > last.end {
                    *last = TimeSpan::new(last.start, w.end);
                }
            }
            _ => merged.push(w),
        }
    }
    merged
}

/// True when the camera, mask and processor registrations a split resolved
/// are still the live ones — i.e. freshly computed outputs are worth caching.
fn registrations_current(
    service: &QueryService,
    split: &PreparedSplit,
    processor: &str,
    processor_generation: u64,
) -> bool {
    if service.camera(&split.camera).map(|s| s.generation) != Some(split.state.generation) {
        return false;
    }
    if service.processor(processor).map(|(g, _)| g) != Some(processor_generation) {
        return false;
    }
    match &split.mask_id {
        None => true,
        Some((id, generation)) => {
            split.state.masks.read().expect("mask registry poisoned").get(id).map(|(g, _)| *g) == Some(*generation) // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        }
    }
}

fn prepare_split(s: &SplitStatement, state: Arc<CameraState>) -> Result<PreparedSplit, PrividError> {
    let spec = ChunkSpec::new(s.chunk_secs, s.stride_secs).map_err(PrividError::Invalid)?;
    let window = TimeSpan::between_secs(s.begin_secs, s.end_secs);
    // Reject windows with no footage *before* the PROCESS stage: running the
    // sandbox over an empty plan and failing only at admission would waste
    // the whole processing cost (and the old ledger silently clamped such
    // windows onto real frames instead).
    //
    // Live cameras are validated against the *snapshot's* edge, not the
    // shared ledger: an append racing this query may already have grown the
    // ledger, but this session would still serve the pre-append scene — it
    // must fail retryably rather than release empty footage as if recorded.
    let snapshot_edge = state.scene.span.end;
    if state.live && window.start.max(Timestamp::ZERO) >= snapshot_edge {
        return Err(PrividError::BeyondLiveEdge {
            camera: s.camera.clone(),
            start_secs: s.begin_secs,
            end_secs: s.end_secs,
            live_edge_secs: snapshot_edge.as_secs(),
        });
    }
    match state.ledger.validate_window(&window) {
        Err(BudgetError::OutsideRecording { start_secs, end_secs, duration_secs }) => {
            return Err(PrividError::WindowOutsideRecording { camera: s.camera.clone(), start_secs, end_secs, duration_secs });
        }
        Err(BudgetError::BeyondLiveEdge { start_secs, end_secs, live_edge_secs }) => {
            return Err(PrividError::BeyondLiveEdge { camera: s.camera.clone(), start_secs, end_secs, live_edge_secs });
        }
        _ => {}
    }
    let live_edge_micros = (state.live && window.end > snapshot_edge).then(|| snapshot_edge.as_micros());
    // Admission must not debit past the footage this session actually serves:
    // the ledger is shared across append snapshots and may already cover more
    // timeline than this snapshot's scene (an append raced the query), but
    // every chunk comes from the snapshot. Clamping the *admitted* window to
    // the snapshot edge keeps the debit and the release congruent; the
    // requested window still drives chunk geometry and sensitivities.
    let admit_window =
        if state.live && window.end > snapshot_edge { TimeSpan::new(window.start, snapshot_edge) } else { window };
    // Lock-order audit: `mask-registry` is taken here with nothing held
    // above it — `state` is a cloned Arc<CameraState>, not a registry guard.
    // The one nested acquisition (under `camera-registry`) lives in
    // register_mask, which follows the declared order (analyzer.toml).
    let (mask_id, mask, rho) = match &s.mask {
        Some(id) => {
            let masks = state.masks.read().expect("mask registry poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
            let (generation, mp) = masks.get(id).ok_or_else(|| PrividError::UnknownMask(id.clone()))?;
            (Some((id.clone(), *generation)), Some(mp.mask.clone()), mp.rho_secs)
        }
        None => (None, None, state.policy.rho_secs),
    };
    let region_scheme = match &s.region_scheme {
        Some(id) => {
            let scheme =
                state.scene.region_schemes.get(id).ok_or_else(|| PrividError::UnknownRegionScheme(id.clone()))?;
            // §7.2: soft boundaries require single-frame chunks.
            let frame_secs = state.scene.frame_rate.frame_duration();
            if scheme.boundary == RegionBoundary::Soft && s.chunk_secs > frame_secs + 1e-9 {
                return Err(PrividError::SoftBoundaryChunkTooLarge { chunk_secs: s.chunk_secs, frame_secs });
            }
            Some(scheme.clone())
        }
        None => None,
    };
    Ok(PreparedSplit {
        camera: s.camera.clone(),
        state,
        window,
        spec,
        mask_id,
        mask,
        live_edge_micros,
        admit_window,
        rho_secs: rho,
        region_scheme_id: s.region_scheme.clone(),
        region_scheme,
    })
}

fn run_process(
    service: &QueryService,
    p: &ProcessStatement,
    split: &PreparedSplit,
    parallelism: Parallelism,
) -> Result<(Table, usize, privid_query::sensitivity::TableProfile), PrividError> {
    let (processor_generation, factory) =
        service.processor(&p.executable).ok_or_else(|| PrividError::UnknownProcessor(p.executable.clone()))?;
    let sandbox_spec = SandboxSpec::new(p.timeout_secs, p.max_rows, p.schema.clone());
    let cache = service.chunk_cache();
    // Identity of this PROCESS execution: any two statements with equal keys
    // produce identical sandbox outputs, so the raw table can be shared
    // across queries (noise is applied at release time; see `cache` docs).
    // Registration generations in the key stop a session racing a
    // re-registration from repopulating the cache with outdated outputs.
    // When caching is disabled the key (several String allocations) and the
    // cache lock are skipped entirely.
    let key = cache.enabled().then(|| {
        ChunkCacheKey::new(
            (&split.camera, split.state.generation),
            &split.window,
            &split.spec,
            split.mask_id.as_ref().map(|(id, generation)| (id.as_str(), *generation)),
            split.region_scheme_id.as_deref(),
            (&p.executable, processor_generation),
            p.timeout_secs,
            p.max_rows,
            format!("{:?}", p.schema),
            split.live_edge_micros,
        )
    });
    let mut table = Table::new(p.schema.clone());
    // `chunks_processed` counts the chunk executions the query *required*,
    // whether they ran in the sandbox or were served from the cache — keeping
    // QueryResult a deterministic function of (seed, query).
    let executions;
    match key.as_ref().and_then(|k| cache.get(k)) {
        Some(cached) => {
            executions = cached.len();
            for (region, out) in cached.iter() {
                table.append_chunk_rows(out.chunk_start_secs, *region, out.rows.clone(), p.max_rows);
            }
        }
        None => {
            // Stream the chunks through the parallel execution engine: chunks
            // are materialized lazily in the workers and outputs come back in
            // deterministic (chunk, region) order, so the table below is
            // identical at every worker count — and on every cache hit.
            let plan = ChunkPlan::new(&split.state.scene, &split.window, &split.spec, split.mask.as_ref());
            let outputs = execute_plan(&plan, split.region_scheme.as_ref(), &*factory, &sandbox_spec, parallelism);
            executions = outputs.len();
            // Don't retain outputs whose camera/processor/mask registration
            // moved on while we executed: such entries are unreachable (the
            // new generation keys differently) and would only displace live
            // entries when the cache is at capacity.
            if let Some(key) = key.filter(|_| registrations_current(service, split, &p.executable, processor_generation))
            {
                // Retaining the outputs costs one row copy; the table and the
                // cache each need an owner.
                let shared = Arc::new(outputs);
                cache.insert(key, Arc::clone(&shared));
                for (region, out) in shared.iter() {
                    table.append_chunk_rows(out.chunk_start_secs, *region, out.rows.clone(), p.max_rows);
                }
            } else {
                // Caching disabled or registration stale: keep PR 2's
                // by-value hot path, no copy.
                for (region, out) in outputs {
                    table.append_chunk_rows(out.chunk_start_secs, region, out.rows, p.max_rows);
                }
            }
        }
    }
    let regions = split.region_scheme.as_ref().map(|s| s.len()).unwrap_or(1).max(1);
    let profile = privid_query::sensitivity::TableProfile {
        max_rows_per_chunk: p.max_rows,
        chunk_secs: split.spec.chunk_secs,
        rho_secs: split.rho_secs,
        k: split.state.policy.k,
        num_chunks: split.spec.chunk_count(split.window.duration()) * regions as u64,
    };
    Ok((table, executions, profile))
}

/// Validate a SELECT and derive its per-release sensitivities. Runs *before*
/// budget admission: any error here (undefined table, no aggregations, a
/// sensitivity-rule violation) must reject the query while the analyst's
/// budget is still intact. Data-independent by construction — it looks only
/// at the statement and the table *profiles*, never at row contents.
fn plan_select(
    stmt: &SelectStatement,
    tables: &HashMap<String, Table>,
    ctx: &SensitivityContext,
    table_windows: &HashMap<String, (String, TimeSpan)>,
) -> Result<Vec<f64>, PrividError> {
    // Planned number of releases (data-independent): explicit keys, or
    // chunk bins derived from the trusted query window.
    let base_tables = stmt.source.base_tables();
    for t in &base_tables {
        if !tables.contains_key(t) {
            return Err(PrividError::Invalid(format!("SELECT references undefined table {t}")));
        }
    }
    let window = base_tables
        .first()
        .and_then(|t| table_windows.get(t))
        .map(|(_, w)| *w)
        .unwrap_or_else(|| TimeSpan::from_secs(0.0));
    let bins = match &stmt.group_by {
        Some(privid_query::ast::GroupBy { keys: privid_query::ast::GroupKeys::ChunkBins { bin_secs }, .. }) => {
            (window.duration() / bin_secs).ceil().max(1.0) as usize
        }
        _ => 1,
    };
    let sensitivities = ctx.statement_sensitivities(stmt, bins)?;
    // A SELECT with no aggregations plans zero releases; admitting it would
    // consume budget while releasing nothing.
    if sensitivities.is_empty() {
        return Err(PrividError::Invalid(
            "SELECT statement declares no aggregations, so it plans no releases".into(),
        ));
    }
    Ok(sensitivities)
}

/// Aggregate the tables and apply seeded noise for one planned SELECT. Runs
/// after admission; `sensitivities` comes from [`plan_select`].
fn release_select(
    stmt: &SelectStatement,
    tables: &HashMap<String, Table>,
    sensitivities: &[f64],
    select_epsilon: f64,
    mechanism: &mut LaplaceMechanism,
) -> Result<Vec<NoisyRelease>, PrividError> {
    let first_sensitivity = sensitivities
        .first()
        .copied()
        .ok_or_else(|| PrividError::Invalid("SELECT released no values: no PROCESS produced rows for it".into()))?;
    let planned_releases = sensitivities.len();
    let per_release_epsilon = select_epsilon / planned_releases as f64;

    let raw: Vec<RawRelease> = execute_select(stmt, tables)?;
    let mut out = Vec::with_capacity(raw.len());
    for (i, release) in raw.into_iter().enumerate() {
        let sensitivity = sensitivities.get(i).copied().unwrap_or(first_sensitivity);
        let scale = LaplaceMechanism::scale(sensitivity, per_release_epsilon);
        let value = match &release.value {
            ReleaseValue::Number(n) => NoisyValue::Number(mechanism.release(*n, sensitivity, per_release_epsilon)),
            ReleaseValue::Candidates(c) => NoisyValue::Key(
                mechanism.release_argmax(c, sensitivity, per_release_epsilon).unwrap_or_else(|| String::from("")),
            ),
        };
        out.push(NoisyRelease {
            label: release.label,
            group_key: release.group_key,
            value,
            raw: release.value,
            sensitivity,
            noise_scale: scale,
            epsilon: per_release_epsilon,
        });
    }
    Ok(out)
}
