//! The cross-query chunk-result cache.
//!
//! The PROCESS stage — running every chunk through a sandboxed processor —
//! dominates end-to-end query latency, and analysts frequently re-issue the
//! same PROCESS prolog with different SELECTs (different aggregations,
//! different ε, a GROUP BY added). Re-executing the sandbox for those is pure
//! waste: chunk execution is a deterministic function of the recording, the
//! chunk geometry, the mask and the processor, so its output can be reused.
//!
//! **Why caching raw tables is DP-safe.** The cached values are the *raw*
//! sandbox outputs, which never leave the video owner's trust domain. Privid
//! applies Laplace noise at release time — after aggregation, per release —
//! and debits the privacy budget per admitted query, regardless of whether
//! the intermediate table came from the sandbox or the cache. Serving a
//! cached table therefore changes neither the released distribution nor the
//! accounting: the analyst sees exactly what a fresh execution (same seed)
//! would have produced, at a fraction of the cost.
//!
//! Keys cover everything that influences sandbox output: camera, window,
//! chunk spec, mask, region scheme, processor name, and the sandbox spec
//! (timeout / max rows / schema). Re-registering a camera, mask or processor
//! under an existing name invalidates the affected entries.
//!
//! **The live-edge invalidation rule.** For a *live* camera the recording is
//! append-only, which splits cached entries into two classes:
//!
//! * **Closed-window entries** — the PROCESS window ended at or before the
//!   live edge when the entry was computed. Footage before the edge never
//!   changes, so these entries are valid *forever*: appends leave them warm,
//!   and analysts replaying yesterday's windows keep hitting them.
//! * **Live-edge-overlapping entries** — the window extended past the edge,
//!   so the trailing chunks were (partially) empty. Such entries are tagged
//!   with the live edge they were computed at ([`ChunkCacheKey`]'s
//!   `live_edge_micros`), which makes them unreachable the moment the edge
//!   advances — a session that resolved the camera after an append computes a
//!   different tag, so a racing insert of an outdated table can never be
//!   served to it. [`ChunkResultCache::invalidate_live_edge`] (called on every
//!   append) then reclaims their space eagerly.
//!
//! **Crash recovery.** The cache is deliberately *not* persisted: entries are
//! pure recomputable sandbox output, and a restarted service simply starts
//! cold. What recovery does restore is the registration **generation
//! counter** (seeded past every generation the WAL ever logged), so keys
//! minted after a restart can never alias keys from before it — even though
//! an aliased hit would merely have been a stale-but-identical raw table, the
//! invariant keeps the re-registration invalidation story airtight.

use privid_query::Table;
use privid_video::{ChunkSpec, Seconds, TimeSpan};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The materialized table of one PROCESS statement: chunk outputs appended in
/// deterministic (chunk, region) order, exactly as produced by
/// [`crate::parallel::execute_plan`]. Sharing the *table* (rather than the raw
/// output rows) makes a cache hit a pure `Arc` clone — no row copies, no
/// re-materialization — while [`Table::runs`] still records one run per chunk
/// execution, so `chunks_processed` accounting is identical on hit and miss.
pub type CachedOutputs = Arc<Table>;

/// Identity of one PROCESS execution. Two PROCESS statements with equal keys
/// are guaranteed to produce identical sandbox outputs.
///
/// The camera and processor are identified by `(name, generation)` pairs: the
/// registry bumps a generation every time a name is (re-)registered, so a
/// session that resolved the *old* camera or processor can never insert its
/// outputs under a key the *new* registration would hit — re-registration
/// invalidation stays correct even against in-flight queries.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ChunkCacheKey {
    camera: String,
    camera_generation: u64,
    /// Window start/end in microseconds (exact integer timeline).
    window_micros: (i64, i64),
    /// Chunk duration and stride as IEEE bit patterns (exact).
    chunk_bits: (u64, u64),
    /// Mask id plus its registration generation (masks are re-publishable in
    /// place on a live camera, so the id alone is not a stable identity).
    mask: Option<(String, u64)>,
    region_scheme: Option<String>,
    processor: String,
    processor_generation: u64,
    /// Sandbox spec: timeout bit pattern, max rows, canonical schema text.
    timeout_bits: u64,
    max_rows: usize,
    schema: String,
    /// Live-edge tag: `None` for fixed recordings and for windows that were
    /// already closed (fully recorded) when the entry was computed; for a
    /// window overlapping a live camera's edge, the edge it was computed at.
    /// Closed-window keys are therefore stable across appends (entries stay
    /// warm), while overlap keys become unreachable as soon as the edge moves
    /// — see the module docs for the full invalidation rule.
    live_edge_micros: Option<i64>,
}

impl ChunkCacheKey {
    /// Build a key from the resolved pieces of a PROCESS statement.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        camera: (&str, u64),
        window: &TimeSpan,
        spec: &ChunkSpec,
        mask: Option<(&str, u64)>,
        region_scheme: Option<&str>,
        processor: (&str, u64),
        timeout_secs: Seconds,
        max_rows: usize,
        schema_repr: String,
        live_edge_micros: Option<i64>,
    ) -> Self {
        ChunkCacheKey {
            camera: camera.0.to_string(),
            camera_generation: camera.1,
            window_micros: (window.start.as_micros(), window.end.as_micros()),
            chunk_bits: (spec.chunk_secs.to_bits(), spec.stride_secs.to_bits()),
            mask: mask.map(|(id, generation)| (id.to_string(), generation)),
            region_scheme: region_scheme.map(str::to_string),
            processor: processor.0.to_string(),
            processor_generation: processor.1,
            timeout_bits: timeout_secs.to_bits(),
            max_rows,
            schema: schema_repr,
            live_edge_micros,
        }
    }
}

/// Point-in-time counters of the cache (monotonic over the cache's life).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChunkCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed and required sandbox execution.
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

/// The map plus its insertion-order index, guarded by one mutex.
///
/// `order` records `(stamp, key)` in insertion order. Invalidation only
/// removes from `map`, leaving *tombstones* in the deque; eviction pops from
/// the front, skipping any tombstone (key gone, or re-inserted under a newer
/// stamp). Each deque element is pushed once and popped at most once, so
/// eviction is amortized O(1) — the old implementation re-scanned the whole
/// map under the mutex on every insert at capacity.
#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<ChunkCacheKey, (u64, CachedOutputs)>,
    order: VecDeque<(u64, ChunkCacheKey)>,
}

impl CacheInner {
    /// Drop order records whose entry is gone (or re-inserted under a newer
    /// stamp). Called after every invalidation: eviction only drains the
    /// deque once the *map* is at capacity, so a workload that invalidates
    /// faster than it fills — a live camera's append loop is exactly that —
    /// would otherwise grow `order` without bound.
    fn prune_order(&mut self) {
        let CacheInner { map, order } = self;
        order.retain(|(stamp, key)| map.get(key).is_some_and(|(s, _)| s == stamp));
    }
}

/// A bounded, thread-safe map from PROCESS identity to sandbox outputs.
///
/// Entries are evicted oldest-insertion-first once `max_entries` is reached —
/// a deliberately simple policy: the cache exists to absorb *bursts* of
/// analysts re-processing the same windows, not to be a long-lived store.
#[derive(Debug)]
pub struct ChunkResultCache {
    /// Lock-order audit: `cache-entries` — a leaf in the declared global
    /// order (analyzer.toml). get/insert/invalidate each hold it for one
    /// map operation and never acquire anything inside it; callers may hold
    /// registry locks or the gate when invalidating, never the reverse.
    entries: Mutex<CacheInner>,
    /// Monotonic insertion stamp, for oldest-first eviction.
    next_stamp: AtomicU64,
    max_entries: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for ChunkResultCache {
    fn default() -> Self {
        Self::with_capacity(256)
    }
}

impl ChunkResultCache {
    /// Create a cache bounded to `max_entries` resident PROCESS results.
    /// `max_entries == 0` disables caching (every lookup misses).
    pub fn with_capacity(max_entries: usize) -> Self {
        ChunkResultCache {
            entries: Mutex::new(CacheInner::default()),
            next_stamp: AtomicU64::new(0),
            max_entries,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Whether this cache stores anything at all. Lets the miss path skip
    /// the defensive row copy when results will never be retained.
    pub fn enabled(&self) -> bool {
        self.max_entries > 0
    }

    /// Look up the outputs for a PROCESS identity.
    pub fn get(&self, key: &ChunkCacheKey) -> Option<CachedOutputs> {
        let inner = self.entries.lock().expect("chunk cache lock poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        match inner.map.get(key) {
            Some((_, outputs)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(outputs))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert freshly computed outputs, evicting the oldest entry if full.
    /// Concurrent inserts under the same key keep the first value (both are
    /// identical by construction, so which one wins is unobservable).
    ///
    /// There is deliberately no single-flight: N analysts cold-missing the
    /// same key each run the sandbox and race to insert. The duplicate work
    /// is transient (one burst, identical results) and keeping lookups
    /// wait-free avoids a cross-query convoy on the slowest sandbox run.
    pub fn insert(&self, key: ChunkCacheKey, outputs: CachedOutputs) {
        if self.max_entries == 0 {
            return;
        }
        let mut inner = self.entries.lock().expect("chunk cache lock poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        if inner.map.contains_key(&key) {
            return;
        }
        while inner.map.len() >= self.max_entries {
            // Oldest-first via the insertion-order deque, skipping tombstones
            // left behind by invalidation (key gone) or re-insertion after
            // invalidation (stamp moved on).
            let Some((stamp, oldest)) = inner.order.pop_front() else { break };
            if inner.map.get(&oldest).is_some_and(|(s, _)| *s == stamp) {
                inner.map.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let stamp = self.next_stamp.fetch_add(1, Ordering::Relaxed);
        inner.order.push_back((stamp, key.clone()));
        inner.map.insert(key, (stamp, outputs));
    }

    /// Drop every entry for a camera (the camera was re-registered, so cached
    /// outputs may no longer match the footage).
    pub fn invalidate_camera(&self, camera: &str) {
        let mut inner = self.entries.lock().expect("chunk cache lock poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        inner.map.retain(|k, _| k.camera != camera);
        inner.prune_order();
    }

    /// Drop the entries produced under one of a camera's masks (that mask was
    /// re-published; unmasked entries and other masks' entries stay warm).
    pub fn invalidate_mask(&self, camera: &str, mask_id: &str) {
        let mut inner = self.entries.lock().expect("chunk cache lock poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        inner.map.retain(|k, _| k.camera != camera || !matches!(&k.mask, Some((id, _)) if id == mask_id));
        inner.prune_order();
    }

    /// Drop every entry produced by a processor (it was re-registered under
    /// the same name, possibly with different behaviour).
    pub fn invalidate_processor(&self, processor: &str) {
        let mut inner = self.entries.lock().expect("chunk cache lock poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        inner.map.retain(|k, _| k.processor != processor);
        inner.prune_order();
    }

    /// A live camera's edge advanced: drop its entries whose PROCESS window
    /// overlapped the live edge (their trailing chunks were computed against
    /// footage that has since come into existence). Closed-window entries are
    /// final and stay warm — see the module docs for why this is safe.
    pub fn invalidate_live_edge(&self, camera: &str) {
        let mut inner = self.entries.lock().expect("chunk cache lock poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        inner.map.retain(|k, _| k.camera != camera || k.live_edge_micros.is_none());
        inner.prune_order();
    }

    /// Number of insertion-order records currently held (test instrumentation
    /// for the boundedness of the eviction index).
    #[cfg(test)]
    fn order_len(&self) -> usize {
        self.entries.lock().expect("chunk cache lock poisoned").order.len() // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
    }

    /// Current counters.
    pub fn stats(&self) -> ChunkCacheStats {
        ChunkCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.entries.lock().expect("chunk cache lock poisoned").map.len(), // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privid_query::{ColumnDef, Schema};

    fn table() -> CachedOutputs {
        Arc::new(Table::new(Schema::new(vec![ColumnDef::number("count", 0.0)]).unwrap()))
    }

    fn key(camera: &str, start: f64, processor: &str) -> ChunkCacheKey {
        ChunkCacheKey::new(
            (camera, 0),
            &TimeSpan::between_secs(start, start + 100.0),
            &ChunkSpec::contiguous(5.0),
            None,
            None,
            (processor, 0),
            1.0,
            20,
            "(count:NUMBER=0)".into(),
            None,
        )
    }

    fn live_key(camera: &str, start: f64, edge_secs: f64) -> ChunkCacheKey {
        ChunkCacheKey::new(
            (camera, 0),
            &TimeSpan::between_secs(start, start + 100.0),
            &ChunkSpec::contiguous(5.0),
            None,
            None,
            ("p", 0),
            1.0,
            20,
            "(count:NUMBER=0)".into(),
            Some((edge_secs * 1e6) as i64),
        )
    }

    #[test]
    fn hit_miss_and_stats() {
        let cache = ChunkResultCache::with_capacity(8);
        let k = key("campus", 0.0, "p");
        assert!(cache.get(&k).is_none());
        cache.insert(k.clone(), table());
        assert!(cache.get(&k).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn distinct_process_identities_do_not_collide() {
        let cache = ChunkResultCache::with_capacity(8);
        cache.insert(key("campus", 0.0, "p"), table());
        assert!(cache.get(&key("campus", 100.0, "p")).is_none(), "different window");
        assert!(cache.get(&key("highway", 0.0, "p")).is_none(), "different camera");
        assert!(cache.get(&key("campus", 0.0, "q")).is_none(), "different processor");
        let masked = ChunkCacheKey::new(
            ("campus", 0),
            &TimeSpan::between_secs(0.0, 100.0),
            &ChunkSpec::contiguous(5.0),
            Some(("m", 0)),
            None,
            ("p", 0),
            1.0,
            20,
            "(count:NUMBER=0)".into(),
            None,
        );
        assert!(cache.get(&masked).is_none(), "different mask");
        let new_generation = ChunkCacheKey::new(
            ("campus", 1),
            &TimeSpan::between_secs(0.0, 100.0),
            &ChunkSpec::contiguous(5.0),
            None,
            None,
            ("p", 0),
            1.0,
            20,
            "(count:NUMBER=0)".into(),
            None,
        );
        assert!(cache.get(&new_generation).is_none(), "re-registered camera generation");
        assert!(cache.get(&live_key("campus", 0.0, 40.0)).is_none(), "live-edge tag is part of the identity");
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let cache = ChunkResultCache::with_capacity(2);
        cache.insert(key("c", 0.0, "p"), table());
        cache.insert(key("c", 100.0, "p"), table());
        cache.insert(key("c", 200.0, "p"), table());
        assert!(cache.get(&key("c", 0.0, "p")).is_none(), "oldest entry evicted");
        assert!(cache.get(&key("c", 100.0, "p")).is_some());
        assert!(cache.get(&key("c", 200.0, "p")).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn invalidation_by_camera_and_processor() {
        let cache = ChunkResultCache::with_capacity(8);
        cache.insert(key("campus", 0.0, "p"), table());
        cache.insert(key("highway", 0.0, "p"), table());
        cache.insert(key("highway", 0.0, "q"), table());
        cache.invalidate_camera("campus");
        assert!(cache.get(&key("campus", 0.0, "p")).is_none());
        assert!(cache.get(&key("highway", 0.0, "p")).is_some());
        cache.invalidate_processor("q");
        assert!(cache.get(&key("highway", 0.0, "q")).is_none());
        assert!(cache.get(&key("highway", 0.0, "p")).is_some());
    }

    #[test]
    fn eviction_after_invalidation_removes_the_oldest_resident() {
        // Invalidation removes entries out of insertion order; a later insert
        // at capacity must still evict the oldest *resident* entry, and the
        // invalidated entry's vanishing must not count as an eviction.
        let cache = ChunkResultCache::with_capacity(2);
        cache.insert(key("a", 0.0, "p"), table());
        cache.insert(key("b", 0.0, "p"), table());
        cache.invalidate_camera("a");
        assert_eq!(cache.stats().entries, 1);
        cache.insert(key("c", 0.0, "p"), table());
        cache.insert(key("d", 0.0, "p"), table());
        assert!(cache.get(&key("b", 0.0, "p")).is_none(), "oldest resident evicted");
        assert!(cache.get(&key("c", 0.0, "p")).is_some());
        assert!(cache.get(&key("d", 0.0, "p")).is_some());
        assert_eq!(cache.stats().evictions, 1, "invalidation is not an eviction");
    }

    #[test]
    fn reinserted_key_ranks_by_its_new_insertion_time() {
        let cache = ChunkResultCache::with_capacity(2);
        cache.insert(key("a", 0.0, "p"), table());
        cache.insert(key("b", 0.0, "p"), table());
        cache.invalidate_camera("a");
        // Re-insert "a": it is now the *newest* entry, so the next insert at
        // capacity must evict "b", not "a".
        cache.insert(key("a", 0.0, "p"), table());
        cache.insert(key("c", 0.0, "p"), table());
        assert!(cache.get(&key("a", 0.0, "p")).is_some(), "re-insert survives");
        assert!(cache.get(&key("b", 0.0, "p")).is_none());
        assert!(cache.get(&key("c", 0.0, "p")).is_some());
    }

    #[test]
    fn order_index_stays_bounded_under_invalidation_churn() {
        // Regression (review): a live camera's append loop — insert an
        // overlap entry, invalidate it, repeat — never reaches the capacity
        // eviction path, so tombstones used to accumulate in the order deque
        // without bound.
        let cache = ChunkResultCache::with_capacity(8);
        for round in 0..100 {
            cache.insert(live_key("live", round as f64 * 100.0, round as f64 + 1.0), table());
            cache.invalidate_live_edge("live");
        }
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.order_len(), 0, "invalidation must reclaim its order records");
    }

    #[test]
    fn live_edge_invalidation_keeps_closed_windows_warm() {
        let cache = ChunkResultCache::with_capacity(8);
        cache.insert(key("live", 0.0, "p"), table()); // closed window
        cache.insert(live_key("live", 100.0, 150.0), table()); // overlaps the edge
        cache.insert(live_key("other", 0.0, 50.0), table());
        cache.invalidate_live_edge("live");
        assert!(cache.get(&key("live", 0.0, "p")).is_some(), "closed-window entry stays warm");
        assert!(cache.get(&live_key("live", 100.0, 150.0)).is_none(), "overlap entry dropped");
        assert!(cache.get(&live_key("other", 0.0, 50.0)).is_some(), "other cameras untouched");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ChunkResultCache::with_capacity(0);
        let k = key("c", 0.0, "p");
        cache.insert(k.clone(), table());
        assert!(cache.get(&k).is_none());
        assert_eq!(cache.stats().entries, 0);
    }
}
