//! Privacy policies: the `(ρ, K)` bound and per-camera budget the video owner
//! chooses (§5.2, §6.1), plus the per-mask policy map of §7.1.

use privid_video::{Mask, Seconds};
use serde::{Deserialize, Serialize};

/// A per-camera privacy policy: all `(ρ, K)`-bounded events are protected
/// with ε-DP, and `epsilon_budget` bounds the total leakage over the camera's
/// lifetime (each frame carries this much budget, Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrivacyPolicy {
    /// Maximum duration of a single protected appearance, in seconds.
    pub rho_secs: Seconds,
    /// Maximum number of protected appearances.
    pub k: u32,
    /// Per-frame privacy budget (total ε available for queries touching a frame).
    pub epsilon_budget: f64,
}

impl PrivacyPolicy {
    /// Construct a policy. Panics on non-positive ρ or ε, or zero K.
    pub fn new(rho_secs: Seconds, k: u32, epsilon_budget: f64) -> Self {
        assert!(rho_secs >= 0.0, "rho must be non-negative");
        assert!(k >= 1, "K must be at least 1");
        assert!(epsilon_budget > 0.0, "epsilon budget must be positive");
        PrivacyPolicy { rho_secs, k, epsilon_budget }
    }

    /// The `(ρ, K)` pair.
    pub fn bound(&self) -> (Seconds, u32) {
        (self.rho_secs, self.k)
    }

    /// The effective ε protecting an event that is `(ρ, c·K)`-bounded instead
    /// of `(ρ, K)`-bounded when a query consumed `epsilon` (§5.3): the
    /// guarantee degrades linearly in the number of appearances.
    pub fn effective_epsilon_for_k(&self, epsilon: f64, actual_k: u32) -> f64 {
        epsilon * actual_k as f64 / self.k as f64
    }
}

/// A published mask together with the (smaller) ρ it certifies (§7.1): the
/// video owner re-analyses historical footage with the mask applied and
/// publishes the reduced maximum observable duration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaskPolicy {
    /// The mask applied to every frame before the analyst's processor runs.
    pub mask: Mask,
    /// The maximum observable duration under this mask, in seconds.
    pub rho_secs: Seconds,
}

impl MaskPolicy {
    /// Construct a mask policy.
    pub fn new(mask: Mask, rho_secs: Seconds) -> Self {
        MaskPolicy { mask, rho_secs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privid_video::{FrameSize, GridSpec};

    #[test]
    fn policy_construction_and_bound() {
        let p = PrivacyPolicy::new(90.0, 2, 5.0);
        assert_eq!(p.bound(), (90.0, 2));
        assert_eq!(p.epsilon_budget, 5.0);
    }

    #[test]
    fn effective_epsilon_scales_with_k() {
        // §5.3: a (ρ, 2K)-bounded event gets 2ε; a (ρ, K/2)-bounded event gets ε/2.
        let p = PrivacyPolicy::new(30.0, 2, 1.0);
        assert_eq!(p.effective_epsilon_for_k(1.0, 4), 2.0);
        assert_eq!(p.effective_epsilon_for_k(1.0, 1), 0.5);
        assert_eq!(p.effective_epsilon_for_k(1.0, 2), 1.0);
    }

    #[test]
    #[should_panic]
    fn zero_k_rejected() {
        PrivacyPolicy::new(30.0, 0, 1.0);
    }

    #[test]
    #[should_panic]
    fn non_positive_epsilon_rejected() {
        PrivacyPolicy::new(30.0, 1, 0.0);
    }

    #[test]
    fn mask_policy_holds_reduced_rho() {
        let grid = GridSpec::coarse(FrameSize::full_hd());
        let mp = MaskPolicy::new(Mask::empty(grid), 45.0);
        assert_eq!(mp.rho_secs, 45.0);
        assert!(mp.mask.is_empty());
    }
}
