//! The Laplace mechanism (§6.1) and report-noisy-max for ARGMAX releases.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Laplace inverse CDF at `u ∈ (-0.5, 0.5)`. Singular at the endpoints:
/// `u = ±0.5` maps to `∓∞` (the distribution's tails), so callers must keep
/// `u` strictly inside the open interval.
fn laplace_inverse_cdf(u: f64, scale: f64) -> f64 {
    -scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
}

/// Sample Laplace(0, scale) noise using inverse-CDF sampling.
pub fn laplace_noise(rng: &mut StdRng, scale: f64) -> f64 {
    if scale <= 0.0 {
        return 0.0;
    }
    // `gen_range(-0.5..0.5)` is half-open, so the lower endpoint -0.5 — where
    // the inverse CDF diverges to +∞ — is reachable. Resample until u lies in
    // the open interval (-0.5, 0.5); rejection keeps the distribution exact
    // and the rejected set has probability ~2⁻⁵³ per draw.
    loop {
        let u: f64 = rng.gen_range(-0.5..0.5);
        if u != -0.5 {
            return laplace_inverse_cdf(u, scale);
        }
    }
}

/// Report-noisy-max: add independent Laplace noise (same scale) to every
/// candidate's count and return the winning key. Used for ARGMAX releases
/// (Q6), where the released value is categorical rather than numeric.
///
/// Noisy scores are compared under IEEE total order (`f64::total_cmp`), so a
/// NaN score — possible when an infinite scale (ε = 0) meets a zero noise
/// draw — can never panic the comparison. Exact ties are broken towards the
/// lexicographically smallest key, so the winner is fully determined by the
/// noisy scores rather than by the candidates' iteration order.
pub fn report_noisy_max(rng: &mut StdRng, candidates: &[(String, f64)], scale: f64) -> Option<String> {
    candidates
        .iter()
        .map(|(k, v)| (k, v + laplace_noise(rng, scale)))
        .max_by(|a, b| a.1.total_cmp(&b.1).then_with(|| b.0.cmp(a.0)))
        .map(|(k, _)| k.clone())
}

/// A seeded Laplace mechanism bound to a sensitivity/ε pair.
#[derive(Debug, Clone)]
pub struct LaplaceMechanism {
    rng: StdRng,
}

impl LaplaceMechanism {
    /// Construct a mechanism with a fixed seed (reproducible experiments).
    pub fn new(seed: u64) -> Self {
        LaplaceMechanism { rng: StdRng::seed_from_u64(seed) }
    }

    /// The noise scale `b = Δ/ε` for a release.
    pub fn scale(sensitivity: f64, epsilon: f64) -> f64 {
        if epsilon <= 0.0 {
            f64::INFINITY
        } else {
            sensitivity / epsilon
        }
    }

    /// Release a numeric value with ε-DP given its sensitivity.
    pub fn release(&mut self, raw: f64, sensitivity: f64, epsilon: f64) -> f64 {
        raw + laplace_noise(&mut self.rng, Self::scale(sensitivity, epsilon))
    }

    /// Release the key with the (noisily) largest count.
    pub fn release_argmax(&mut self, candidates: &[(String, f64)], sensitivity: f64, epsilon: f64) -> Option<String> {
        report_noisy_max(&mut self.rng, candidates, Self::scale(sensitivity, epsilon))
    }

    /// Draw a single Laplace(0, scale) sample (exposed for analyses that need
    /// raw noise, e.g. the Fig. 5 noise ribbon).
    pub fn sample(&mut self, scale: f64) -> f64 {
        laplace_noise(&mut self.rng, scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_is_zero_mean_with_correct_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let scale = 5.0;
        let samples: Vec<f64> = (0..n).map(|_| laplace_noise(&mut rng, scale)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let mad = samples.iter().map(|x| x.abs()).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.2, "mean {mean} should be near 0");
        // E|X| = b for Laplace(0, b).
        assert!((mad - scale).abs() < 0.25, "mean absolute deviation {mad} should be near {scale}");
    }

    #[test]
    fn zero_scale_adds_no_noise() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(laplace_noise(&mut rng, 0.0), 0.0);
        let mut m = LaplaceMechanism::new(3);
        assert_eq!(m.release(42.0, 0.0, 1.0), 42.0);
    }

    #[test]
    fn scale_is_sensitivity_over_epsilon() {
        assert_eq!(LaplaceMechanism::scale(10.0, 2.0), 5.0);
        assert!(LaplaceMechanism::scale(10.0, 0.0).is_infinite());
    }

    #[test]
    fn empirical_dp_bound_on_neighbouring_counts() {
        // Statistical check of the ε-DP inequality for a COUNT with Δ = 1:
        // releases on neighbouring databases (raw 100 vs raw 101) must satisfy
        // P[A(D) ∈ S] ≤ e^ε P[A(D') ∈ S] for interval events S.
        let epsilon = 1.0;
        let scale = 1.0 / epsilon;
        let n = 60_000;
        let mut rng = StdRng::seed_from_u64(7);
        let a: Vec<f64> = (0..n).map(|_| 100.0 + laplace_noise(&mut rng, scale)).collect();
        let b: Vec<f64> = (0..n).map(|_| 101.0 + laplace_noise(&mut rng, scale)).collect();
        for (lo, hi) in [(99.0, 100.0), (100.0, 101.0), (101.0, 102.0), (98.0, 103.0)] {
            let pa = a.iter().filter(|x| **x >= lo && **x < hi).count() as f64 / n as f64;
            let pb = b.iter().filter(|x| **x >= lo && **x < hi).count() as f64 / n as f64;
            if pa > 0.01 && pb > 0.01 {
                let ratio = pa.max(pb) / pa.min(pb).max(1e-9);
                assert!(ratio <= epsilon.exp() * 1.15, "interval [{lo},{hi}): ratio {ratio} exceeds e^ε");
            }
        }
    }

    #[test]
    fn reproducible_for_a_seed() {
        let mut a = LaplaceMechanism::new(11);
        let mut b = LaplaceMechanism::new(11);
        for _ in 0..10 {
            assert_eq!(a.release(5.0, 2.0, 1.0), b.release(5.0, 2.0, 1.0));
        }
        let mut c = LaplaceMechanism::new(12);
        assert_ne!(a.release(5.0, 2.0, 1.0), c.release(5.0, 2.0, 1.0));
    }

    #[test]
    fn noisy_max_usually_picks_the_true_winner_when_gap_is_large() {
        let mut m = LaplaceMechanism::new(5);
        let candidates =
            vec![("porto20".to_string(), 5000.0), ("porto3".to_string(), 1200.0), ("porto7".to_string(), 800.0)];
        let mut wins = 0;
        for _ in 0..200 {
            if m.release_argmax(&candidates, 10.0, 1.0).as_deref() == Some("porto20") {
                wins += 1;
            }
        }
        assert!(wins > 190, "clear winner should almost always survive the noise, got {wins}/200");
    }

    #[test]
    fn noisy_max_empty_candidates() {
        let mut m = LaplaceMechanism::new(6);
        assert_eq!(m.release_argmax(&[], 1.0, 1.0), None);
    }

    #[test]
    fn inverse_cdf_is_singular_only_at_the_endpoints() {
        // Regression: the sampler draws u from the half-open [-0.5, 0.5), so
        // u = -0.5 is reachable and maps to an *infinite* release. The
        // rejection loop must keep that value out of the sampled set.
        assert!(laplace_inverse_cdf(-0.5, 1.0).is_infinite());
        assert!(laplace_inverse_cdf(0.5, 1.0).is_infinite());
        assert!(laplace_inverse_cdf(-0.4999999, 1.0).is_finite());
        assert!(laplace_inverse_cdf(0.0, 1.0) == 0.0);
    }

    #[test]
    fn sampled_noise_is_always_finite() {
        // A long run across several seeds: every sample must be finite — an
        // infinite sample would turn a noisy release into ±∞, destroying the
        // query result while still debiting the analyst's budget.
        for seed in 0..8 {
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..50_000 {
                let x = laplace_noise(&mut rng, 3.0);
                assert!(x.is_finite(), "infinite noise sample from seed {seed}");
            }
        }
    }

    #[test]
    fn noisy_max_with_zero_epsilon_does_not_panic() {
        // Regression: ε = 0 makes the scale infinite, so noisy scores can be
        // ±∞ or NaN (∞·0 inside the inverse CDF). `partial_cmp(..).unwrap()`
        // used to panic here mid-query; total_cmp must not.
        let mut m = LaplaceMechanism::new(9);
        let candidates = vec![("a".to_string(), 1.0), ("b".to_string(), 2.0), ("c".to_string(), 3.0)];
        for _ in 0..200 {
            let winner = m.release_argmax(&candidates, 1.0, 0.0);
            assert!(winner.is_some(), "a non-empty candidate set always yields a winner");
        }
    }

    #[test]
    fn noisy_max_breaks_exact_ties_lexicographically() {
        // With scale 0 (zero sensitivity) no noise is added, so tied counts
        // stay tied; the winner must be the lexicographically smallest key no
        // matter how the candidates are ordered.
        let mut rng = StdRng::seed_from_u64(4);
        let forward =
            vec![("b".to_string(), 5.0), ("a".to_string(), 5.0), ("c".to_string(), 5.0)];
        let mut reversed = forward.clone();
        reversed.reverse();
        assert_eq!(report_noisy_max(&mut rng, &forward, 0.0).as_deref(), Some("a"));
        assert_eq!(report_noisy_max(&mut rng, &reversed, 0.0).as_deref(), Some("a"));
        // A strictly larger count still wins outright.
        let clear = vec![("z".to_string(), 7.0), ("a".to_string(), 5.0)];
        assert_eq!(report_noisy_max(&mut rng, &clear, 0.0).as_deref(), Some("z"));
    }
}
