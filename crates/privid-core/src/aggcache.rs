//! The cross-analyst aggregate-state cache (tier 2).
//!
//! The chunk-result cache (`cache`, tier 1) absorbs repeated PROCESS work;
//! this cache absorbs repeated *aggregation* work. Its values are folded
//! [`AggState`]s — the running partial aggregates of one compiled SELECT
//! (`FoldableSelect`) over the first `prefix_chunks` chunks of one PROCESS
//! table — so N analysts running the same sub-plan (same PROCESS identity,
//! same aggregation plan) evaluate it once and share the folded state, and a
//! standing query's firing extends a prefix folded at append time instead of
//! re-aggregating its whole window.
//!
//! **Why caching folded states is DP-safe.** An `AggState` is a deterministic
//! function of the raw sandbox outputs, which never leave the video owner's
//! trust domain — exactly the argument that makes tier 1 safe. Noise is
//! applied at release time, per release, and ε is checked and debited per
//! admitted query through the unchanged admission gate, regardless of whether
//! the release was computed from rows or from a cached state. The analyst
//! sees bit-for-bit what a fresh evaluation would have released.
//!
//! **Why there is no live-edge invalidation rule here.** Keys carry the
//! number of *closed* chunks they cover (`prefix_chunks`), and the session
//! only ever folds and inserts states over chunks whose span ended at or
//! before the camera's live edge. Closed footage is immutable, so every entry
//! is valid forever — appends monotonically extend which prefixes are
//! *reachable*, never what a reachable prefix contains. Re-registering a
//! camera, mask or processor invalidates eagerly (and the registration
//! generations in the key make stale racing inserts unreachable anyway),
//! mirroring tier 1.
//!
//! **Determinism.** States are only ever produced by sequential observation
//! in canonical table row order (see `privid_query::aggstate`); a cached
//! prefix extended by folding the remaining chunks performs exactly the
//! floating-point op sequence of a from-scratch aggregation. Concurrent
//! inserts under one key race benignly: both values are bit-identical by
//! construction, and insertion keeps the first.

use privid_query::AggState;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The folded partial states of one compiled SELECT over a chunk prefix: one
/// state per aggregation of the statement, in declaration order.
pub type CachedStates = Arc<Vec<AggState>>;

/// Identity of one folded aggregation prefix: the full PROCESS identity of
/// tier 1 (minus the live-edge tag — entries cover closed chunks only), plus
/// the compiled plan's fingerprint and the number of leading chunks folded.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AggCacheKey {
    camera: String,
    camera_generation: u64,
    /// Window start/end in microseconds (exact integer timeline).
    window_micros: (i64, i64),
    /// Chunk duration and stride as IEEE bit patterns (exact).
    chunk_bits: (u64, u64),
    mask: Option<(String, u64)>,
    region_scheme: Option<String>,
    processor: String,
    processor_generation: u64,
    /// Sandbox spec: timeout bit pattern, max rows, canonical schema text.
    timeout_bits: u64,
    max_rows: usize,
    schema: String,
    /// The compiled SELECT's plan fingerprint (relation tree + aggregations;
    /// ε is deliberately excluded — it shapes noise, not the folded state).
    plan: String,
    /// How many leading chunks of the window this state has folded.
    prefix_chunks: u32,
}

impl AggCacheKey {
    /// Build a key from the resolved pieces of a PROCESS statement plus the
    /// compiled SELECT identity.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        camera: (&str, u64),
        window_micros: (i64, i64),
        chunk_bits: (u64, u64),
        mask: Option<(&str, u64)>,
        region_scheme: Option<&str>,
        processor: (&str, u64),
        timeout_bits: u64,
        max_rows: usize,
        schema_repr: &str,
        plan_fingerprint: &str,
        prefix_chunks: u32,
    ) -> Self {
        AggCacheKey {
            camera: camera.0.to_string(),
            camera_generation: camera.1,
            window_micros,
            chunk_bits,
            mask: mask.map(|(id, generation)| (id.to_string(), generation)),
            region_scheme: region_scheme.map(str::to_string),
            processor: processor.0.to_string(),
            processor_generation: processor.1,
            timeout_bits,
            max_rows,
            schema: schema_repr.to_string(),
            plan: plan_fingerprint.to_string(),
            prefix_chunks,
        }
    }
}

/// Point-in-time counters of the aggregate-state cache. `hits`/`misses`
/// count one lookup event per fold (did the *target* prefix resolve?);
/// walking back to a shorter cached prefix is not a separate miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AggCacheStats {
    /// Folds whose target prefix was served from the cache.
    pub hits: u64,
    /// Folds that had to extend (or build) the target prefix themselves.
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

/// The map plus its insertion-order index, guarded by one mutex — the same
/// tombstone-skipping amortized-O(1) eviction structure as tier 1.
#[derive(Debug, Default)]
struct AggCacheInner {
    map: HashMap<AggCacheKey, (u64, CachedStates)>,
    order: VecDeque<(u64, AggCacheKey)>,
}

impl AggCacheInner {
    /// Drop order records whose entry is gone (or re-inserted under a newer
    /// stamp), keeping the eviction index bounded under invalidation churn.
    fn prune_order(&mut self) {
        let AggCacheInner { map, order } = self;
        order.retain(|(stamp, key)| map.get(key).is_some_and(|(s, _)| s == stamp));
    }
}

/// A bounded, thread-safe map from (PROCESS identity, plan, chunk prefix) to
/// folded aggregate states.
///
/// Entries are tiny (a handful of f64 moments, or an ARGMAX key→count map)
/// compared to tier 1's row tables, so the cache affords a proportionally
/// larger entry budget: the service sizes it at a multiple of the chunk
/// cache's capacity, and capacity 0 disables it.
#[derive(Debug)]
pub struct AggStateCache {
    /// Lock-order audit: `agg-cache-entries` — a leaf in the declared global
    /// order (analyzer.toml), ordered after `cache-entries`. Every method
    /// holds it for one map operation and never acquires anything inside it;
    /// callers may hold registry locks or the standing-registry lock when
    /// probing or invalidating, never the reverse.
    agg_entries: Mutex<AggCacheInner>,
    /// Monotonic insertion stamp, for oldest-first eviction.
    next_stamp: AtomicU64,
    max_entries: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl AggStateCache {
    /// Create a cache bounded to `max_entries` resident folded prefixes.
    /// `max_entries == 0` disables the cache (every lookup misses silently).
    pub fn with_capacity(max_entries: usize) -> Self {
        AggStateCache {
            agg_entries: Mutex::new(AggCacheInner::default()),
            next_stamp: AtomicU64::new(0),
            max_entries,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Whether this cache stores anything at all. The session's fold path
    /// skips key construction and probing entirely when disabled.
    pub fn enabled(&self) -> bool {
        self.max_entries > 0
    }

    /// Look up the folded states for a prefix, counting the outcome: this is
    /// the *target*-prefix probe of a fold, so its hit/miss ratio reports how
    /// often a whole fold was served without touching any rows.
    pub fn get(&self, key: &AggCacheKey) -> Option<CachedStates> {
        match self.peek(key) {
            Some(states) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(states)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Look up a prefix without touching the hit/miss counters — used when
    /// walking back from a missed target prefix to the longest cached one
    /// (each fold should count as one lookup event, not `prefix_chunks` of
    /// them).
    pub fn peek(&self, key: &AggCacheKey) -> Option<CachedStates> {
        let inner = self.agg_entries.lock().expect("agg cache lock poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        inner.map.get(key).map(|(_, states)| Arc::clone(states))
    }

    /// Insert freshly folded states, evicting the oldest entry if full.
    /// Concurrent inserts under the same key keep the first value (both are
    /// bit-identical by the determinism contract, so which wins is
    /// unobservable).
    pub fn insert(&self, key: AggCacheKey, states: CachedStates) {
        if self.max_entries == 0 {
            return;
        }
        let mut inner = self.agg_entries.lock().expect("agg cache lock poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        if inner.map.contains_key(&key) {
            return;
        }
        while inner.map.len() >= self.max_entries {
            let Some((stamp, oldest)) = inner.order.pop_front() else { break };
            if inner.map.get(&oldest).is_some_and(|(s, _)| *s == stamp) {
                inner.map.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let stamp = self.next_stamp.fetch_add(1, Ordering::Relaxed);
        inner.order.push_back((stamp, key.clone()));
        inner.map.insert(key, (stamp, states));
    }

    /// Drop every entry for a camera (it was re-registered; generations make
    /// the old entries unreachable anyway — this reclaims their space).
    pub fn invalidate_camera(&self, camera: &str) {
        let mut inner = self.agg_entries.lock().expect("agg cache lock poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        inner.map.retain(|k, _| k.camera != camera);
        inner.prune_order();
    }

    /// Drop the entries folded under one of a camera's masks (it was
    /// re-published; other masks' and unmasked entries stay warm).
    pub fn invalidate_mask(&self, camera: &str, mask_id: &str) {
        let mut inner = self.agg_entries.lock().expect("agg cache lock poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        inner.map.retain(|k, _| k.camera != camera || !matches!(&k.mask, Some((id, _)) if id == mask_id));
        inner.prune_order();
    }

    /// Drop every entry folded from a processor's outputs (it was
    /// re-registered under the same name).
    pub fn invalidate_processor(&self, processor: &str) {
        let mut inner = self.agg_entries.lock().expect("agg cache lock poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        inner.map.retain(|k, _| k.processor != processor);
        inner.prune_order();
    }

    /// Current counters.
    pub fn stats(&self) -> AggCacheStats {
        AggCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.agg_entries.lock().expect("agg cache lock poisoned").map.len(), // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privid_query::ast::AggregateFunction;

    fn key(camera: &str, plan: &str, prefix: u32) -> AggCacheKey {
        AggCacheKey::new(
            (camera, 0),
            (0, 60_000_000),
            (10.0f64.to_bits(), 0.0f64.to_bits()),
            None,
            None,
            ("p", 0),
            1.0f64.to_bits(),
            20,
            "(count:NUMBER=0)",
            plan,
            prefix,
        )
    }

    fn states(n: f64) -> CachedStates {
        let mut st = AggState::identity(AggregateFunction::Count);
        for _ in 0..n as usize {
            st.observe(None, None);
        }
        Arc::new(vec![st])
    }

    #[test]
    fn prefixes_and_plans_are_distinct_identities() {
        let cache = AggStateCache::with_capacity(8);
        cache.insert(key("campus", "count", 3), states(3.0));
        assert!(cache.get(&key("campus", "count", 3)).is_some());
        assert!(cache.peek(&key("campus", "count", 2)).is_none(), "shorter prefix is a different entry");
        assert!(cache.get(&key("campus", "sum", 3)).is_none(), "different plan fingerprint");
        assert!(cache.get(&key("other", "count", 3)).is_none(), "different camera");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 1));
    }

    #[test]
    fn peek_does_not_count_and_insert_keeps_the_first_value() {
        let cache = AggStateCache::with_capacity(8);
        cache.insert(key("c", "count", 1), states(1.0));
        assert!(cache.peek(&key("c", "count", 1)).is_some());
        assert_eq!(cache.stats().hits, 0, "peek is not a lookup event");
        cache.insert(key("c", "count", 1), states(99.0));
        let held = cache.peek(&key("c", "count", 1)).unwrap();
        assert_eq!(held[0], states(1.0)[0], "first insert wins");
    }

    #[test]
    fn capacity_evicts_oldest_and_invalidation_reclaims() {
        let cache = AggStateCache::with_capacity(2);
        cache.insert(key("a", "count", 1), states(1.0));
        cache.insert(key("b", "count", 1), states(1.0));
        cache.insert(key("c", "count", 1), states(1.0));
        assert!(cache.peek(&key("a", "count", 1)).is_none(), "oldest evicted");
        assert_eq!(cache.stats().evictions, 1);
        cache.invalidate_camera("b");
        assert_eq!(cache.stats().entries, 1);
        cache.invalidate_processor("p");
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let cache = AggStateCache::with_capacity(0);
        assert!(!cache.enabled());
        cache.insert(key("c", "count", 1), states(1.0));
        assert!(cache.get(&key("c", "count", 1)).is_none());
        assert_eq!(cache.stats().entries, 0);
    }
}
