//! The Privid query executor: split → process → aggregate → add noise
//! (Algorithm 1), with support for masks (§7.1), spatial splitting (§7.2) and
//! multi-query budget accounting (§6.4).

use crate::budget::BudgetLedger;
use crate::error::PrividError;
use crate::mechanism::LaplaceMechanism;
use crate::parallel::{execute_plan, Parallelism};
use crate::policy::{MaskPolicy, PrivacyPolicy};
use privid_query::exec::RawRelease;
use privid_query::sensitivity::TableProfile;
use privid_query::{
    execute_select, parse_query, ParsedQuery, ProcessStatement, ReleaseValue, SelectStatement, SensitivityContext,
    SplitStatement, Table,
};
use privid_sandbox::{ChunkProcessor, ProcessorFactory, SandboxSpec};
use privid_video::{ChunkPlan, ChunkSpec, Mask, RegionBoundary, RegionScheme, Scene, Seconds, TimeSpan};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The value of one noisy data release returned to the analyst.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NoisyValue {
    /// A numeric release (COUNT / SUM / AVG / VAR) with Laplace noise added.
    Number(f64),
    /// An ARGMAX release: the winning key under report-noisy-max.
    Key(String),
}

impl NoisyValue {
    /// The numeric content, if any.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            NoisyValue::Number(n) => Some(*n),
            NoisyValue::Key(_) => None,
        }
    }
}

/// One noisy data release plus the accounting metadata Privid tracks for it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoisyRelease {
    /// Label describing the aggregation (and group key) this release belongs to.
    pub label: String,
    /// The group key, if the release came from a GROUP BY bucket.
    pub group_key: Option<String>,
    /// The value returned to the analyst.
    pub value: NoisyValue,
    /// The raw (pre-noise) value. **Evaluation only**: a deployment would
    /// never expose this; the experiment harness uses it to measure accuracy
    /// and to plot the "Privid (No Noise)" curves of Fig. 5.
    pub raw: ReleaseValue,
    /// Sensitivity used to calibrate the noise.
    pub sensitivity: f64,
    /// Laplace scale `b = Δ/ε` applied.
    pub noise_scale: f64,
    /// Privacy budget consumed by this release.
    pub epsilon: f64,
}

/// The result of executing one query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResult {
    /// Every data release of the query, in statement order.
    pub releases: Vec<NoisyRelease>,
    /// Total privacy budget consumed.
    pub epsilon_spent: f64,
    /// Total number of chunk executions performed.
    pub chunks_processed: usize,
}

impl QueryResult {
    /// Convenience: the first release's numeric value.
    pub fn first_number(&self) -> Option<f64> {
        self.releases.first().and_then(|r| r.value.as_number())
    }
}

/// A registered camera: its recording, policy, published masks and budget ledger.
struct CameraEntry {
    scene: Scene,
    policy: PrivacyPolicy,
    masks: HashMap<String, MaskPolicy>,
    ledger: BudgetLedger,
}

/// A SPLIT statement resolved against the registered cameras.
struct PreparedSplit {
    camera: String,
    window: TimeSpan,
    spec: ChunkSpec,
    mask: Option<Mask>,
    /// The ρ governing tables built from this split (the mask's reduced ρ, or
    /// the camera policy's ρ).
    rho_secs: Seconds,
    region_scheme: Option<RegionScheme>,
}

/// The Privid system: the video owner's server that accepts analyst queries.
pub struct PrividSystem {
    cameras: HashMap<String, CameraEntry>,
    processors: HashMap<String, Box<dyn ProcessorFactory + Send>>,
    mechanism: LaplaceMechanism,
    /// Budget charged to a SELECT that has no `CONSUMING` clause.
    pub default_epsilon: f64,
    /// How many workers the chunk execution engine uses per PROCESS
    /// statement. Results are bit-for-bit identical at every setting (the
    /// engine merges outputs in deterministic chunk order); only wall-clock
    /// time changes.
    pub parallelism: Parallelism,
}

impl PrividSystem {
    /// Create a system; `seed` makes the noise reproducible for experiments.
    pub fn new(seed: u64) -> Self {
        PrividSystem {
            cameras: HashMap::new(),
            processors: HashMap::new(),
            mechanism: LaplaceMechanism::new(seed),
            default_epsilon: 1.0,
            parallelism: Parallelism::Auto,
        }
    }

    /// Builder-style override of the execution engine's worker count.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Register a camera with its recording and privacy policy.
    pub fn register_camera(&mut self, name: impl Into<String>, scene: Scene, policy: PrivacyPolicy) {
        let duration = scene.span.end.as_secs();
        self.cameras.insert(
            name.into(),
            CameraEntry { scene, policy, masks: HashMap::new(), ledger: BudgetLedger::new(duration, policy.epsilon_budget) },
        );
    }

    /// Publish a mask (and its reduced ρ) for a camera (§7.1).
    pub fn register_mask(
        &mut self,
        camera: &str,
        mask_id: impl Into<String>,
        policy: MaskPolicy,
    ) -> Result<(), PrividError> {
        let entry = self.cameras.get_mut(camera).ok_or_else(|| PrividError::UnknownCamera(camera.to_string()))?;
        entry.masks.insert(mask_id.into(), policy);
        Ok(())
    }

    /// Attach an analyst processor executable under a name.
    pub fn register_processor<F>(&mut self, name: impl Into<String>, factory: F)
    where
        F: Fn() -> Box<dyn ChunkProcessor> + Send + Sync + 'static,
    {
        self.processors.insert(name.into(), Box::new(factory));
    }

    /// Remaining per-frame budget of a camera at a given time.
    pub fn remaining_budget(&self, camera: &str, at_secs: f64) -> Option<f64> {
        self.cameras.get(camera).map(|c| c.ledger.remaining_at(at_secs))
    }

    /// The registered policy of a camera.
    pub fn camera_policy(&self, camera: &str) -> Option<PrivacyPolicy> {
        self.cameras.get(camera).map(|c| c.policy)
    }

    /// Parse and execute a textual query.
    pub fn execute_text(&mut self, text: &str) -> Result<QueryResult, PrividError> {
        let query = parse_query(text)?;
        self.execute(&query)
    }

    /// Execute a parsed query.
    pub fn execute(&mut self, query: &ParsedQuery) -> Result<QueryResult, PrividError> {
        // ---- 1. Resolve SPLIT statements -------------------------------------------------
        let mut splits: HashMap<String, PreparedSplit> = HashMap::new();
        for s in &query.splits {
            splits.insert(s.output.clone(), self.prepare_split(s)?);
        }

        // ---- 2. Run PROCESS statements through the sandbox -------------------------------
        let mut tables: HashMap<String, Table> = HashMap::new();
        let mut ctx = SensitivityContext::new();
        let mut table_windows: HashMap<String, (String, TimeSpan)> = HashMap::new();
        let mut chunks_processed = 0usize;
        for p in &query.processes {
            let split = splits.get(&p.input).ok_or_else(|| {
                PrividError::Invalid(format!("PROCESS {} references undefined chunk set {}", p.output, p.input))
            })?;
            let (table, n_chunks, profile) = self.run_process(p, split)?;
            chunks_processed += n_chunks;
            ctx.register(p.output.clone(), profile);
            table_windows.insert(p.output.clone(), (split.camera.clone(), split.window));
            tables.insert(p.output.clone(), table);
        }

        // ---- 3. Total requested budget -----------------------------------------------------
        let epsilon_total: f64 =
            query.selects.iter().map(|s| s.epsilon.unwrap_or(self.default_epsilon)).sum();
        if query.selects.is_empty() {
            return Err(PrividError::Invalid("a query must contain at least one SELECT".into()));
        }
        // Validate release structure *before* budget admission: a SELECT with
        // no aggregations plans zero releases, and rejecting it only after
        // `check_and_debit` below would permanently consume the analyst's
        // budget for a query that can never release anything.
        for stmt in &query.selects {
            if stmt.aggregations.is_empty() {
                return Err(PrividError::Invalid(
                    "SELECT statement declares no aggregations, so it plans no releases".into(),
                ));
            }
        }

        // ---- 4. Budget admission (Algorithm 1, lines 1-5), per camera ----------------------
        // Check every camera first, then debit, so a partially admitted query
        // can never leave the ledgers inconsistent.
        let mut camera_windows: HashMap<String, TimeSpan> = HashMap::new();
        for split in splits.values() {
            camera_windows
                .entry(split.camera.clone())
                .and_modify(|w| {
                    let start = w.start.min(split.window.start);
                    let end = if w.end > split.window.end { w.end } else { split.window.end };
                    *w = TimeSpan::new(start, end);
                })
                .or_insert(split.window);
        }
        for (camera, window) in &camera_windows {
            let entry = self.cameras.get(camera).ok_or_else(|| PrividError::UnknownCamera(camera.clone()))?;
            let available = entry.ledger.min_remaining(&window.expand(entry.policy.rho_secs));
            if available + 1e-9 < epsilon_total {
                return Err(PrividError::BudgetExhausted {
                    camera: camera.clone(),
                    requested: epsilon_total,
                    available,
                });
            }
        }
        for (camera, window) in &camera_windows {
            let entry = self.cameras.get(camera).expect("checked above");
            entry
                .ledger
                .check_and_debit(window, entry.policy.rho_secs, epsilon_total)
                .map_err(|available| PrividError::BudgetExhausted {
                    camera: camera.clone(),
                    requested: epsilon_total,
                    available,
                })?;
        }

        // ---- 5. Aggregate, bound, add noise -------------------------------------------------
        let mut releases = Vec::new();
        for stmt in &query.selects {
            let select_epsilon = stmt.epsilon.unwrap_or(self.default_epsilon);
            releases.extend(self.run_select(stmt, &tables, &ctx, &table_windows, select_epsilon)?);
        }

        Ok(QueryResult { releases, epsilon_spent: epsilon_total, chunks_processed })
    }

    // ---------------------------------------------------------------------------------------

    fn prepare_split(&self, s: &SplitStatement) -> Result<PreparedSplit, PrividError> {
        let entry = self.cameras.get(&s.camera).ok_or_else(|| PrividError::UnknownCamera(s.camera.clone()))?;
        let spec = ChunkSpec::new(s.chunk_secs, s.stride_secs).map_err(PrividError::Invalid)?;
        let window = TimeSpan::between_secs(s.begin_secs, s.end_secs);
        let (mask, rho) = match &s.mask {
            Some(id) => {
                let mp = entry.masks.get(id).ok_or_else(|| PrividError::UnknownMask(id.clone()))?;
                (Some(mp.mask.clone()), mp.rho_secs)
            }
            None => (None, entry.policy.rho_secs),
        };
        let region_scheme = match &s.region_scheme {
            Some(id) => {
                let scheme = entry
                    .scene
                    .region_schemes
                    .get(id)
                    .ok_or_else(|| PrividError::UnknownRegionScheme(id.clone()))?;
                // §7.2: soft boundaries require single-frame chunks.
                let frame_secs = entry.scene.frame_rate.frame_duration();
                if scheme.boundary == RegionBoundary::Soft && s.chunk_secs > frame_secs + 1e-9 {
                    return Err(PrividError::SoftBoundaryChunkTooLarge { chunk_secs: s.chunk_secs, frame_secs });
                }
                Some(scheme.clone())
            }
            None => None,
        };
        Ok(PreparedSplit { camera: s.camera.clone(), window, spec, mask, rho_secs: rho, region_scheme })
    }

    fn run_process(
        &self,
        p: &ProcessStatement,
        split: &PreparedSplit,
    ) -> Result<(Table, usize, TableProfile), PrividError> {
        let factory =
            self.processors.get(&p.executable).ok_or_else(|| PrividError::UnknownProcessor(p.executable.clone()))?;
        let entry = self.cameras.get(&split.camera).ok_or_else(|| PrividError::UnknownCamera(split.camera.clone()))?;
        let sandbox_spec = SandboxSpec::new(p.timeout_secs, p.max_rows, p.schema.clone());
        // Stream the chunks through the parallel execution engine: chunks are
        // materialized lazily in the workers (no owned Chunk is ever built)
        // and the outputs come back in deterministic (chunk, region) order,
        // so the table below is identical at every worker count.
        let plan = ChunkPlan::new(&entry.scene, &split.window, &split.spec, split.mask.as_ref());
        let outputs =
            execute_plan(&plan, split.region_scheme.as_ref(), factory.as_ref(), &sandbox_spec, self.parallelism);
        let mut table = Table::new(p.schema.clone());
        let executions = outputs.len();
        for (region, out) in outputs {
            table.append_chunk_rows(out.chunk_start_secs, region, out.rows, p.max_rows);
        }
        let regions = split.region_scheme.as_ref().map(|s| s.len()).unwrap_or(1).max(1);
        let profile = TableProfile {
            max_rows_per_chunk: p.max_rows,
            chunk_secs: split.spec.chunk_secs,
            rho_secs: split.rho_secs,
            k: entry.policy.k,
            num_chunks: split.spec.chunk_count(split.window.duration()) * regions as u64,
        };
        Ok((table, executions, profile))
    }

    fn run_select(
        &mut self,
        stmt: &SelectStatement,
        tables: &HashMap<String, Table>,
        ctx: &SensitivityContext,
        table_windows: &HashMap<String, (String, TimeSpan)>,
        select_epsilon: f64,
    ) -> Result<Vec<NoisyRelease>, PrividError> {
        // Planned number of releases (data-independent): explicit keys, or
        // chunk bins derived from the trusted query window.
        let base_tables = stmt.source.base_tables();
        for t in &base_tables {
            if !tables.contains_key(t) {
                return Err(PrividError::Invalid(format!("SELECT references undefined table {t}")));
            }
        }
        let window = base_tables
            .first()
            .and_then(|t| table_windows.get(t))
            .map(|(_, w)| *w)
            .unwrap_or_else(|| TimeSpan::from_secs(0.0));
        let bins = match &stmt.group_by {
            Some(privid_query::ast::GroupBy { keys: privid_query::ast::GroupKeys::ChunkBins { bin_secs }, .. }) => {
                (window.duration() / bin_secs).ceil().max(1.0) as usize
            }
            _ => 1,
        };
        let sensitivities = ctx.statement_sensitivities(stmt, bins)?;
        // Aggregation-free SELECTs are rejected before budget admission in
        // `execute`; this guard is defence in depth so `sensitivities[0]`
        // can never panic even if a new planning path slips through.
        let Some(&first_sensitivity) = sensitivities.first() else {
            return Err(PrividError::Invalid(
                "SELECT statement declares no aggregations, so it plans no releases".into(),
            ));
        };
        let planned_releases = sensitivities.len();
        let per_release_epsilon = select_epsilon / planned_releases as f64;

        let raw: Vec<RawRelease> = execute_select(stmt, tables)?;
        let mut out = Vec::with_capacity(raw.len());
        for (i, release) in raw.into_iter().enumerate() {
            let sensitivity = sensitivities.get(i).copied().unwrap_or(first_sensitivity);
            let scale = LaplaceMechanism::scale(sensitivity, per_release_epsilon);
            let value = match &release.value {
                ReleaseValue::Number(n) => NoisyValue::Number(self.mechanism.release(*n, sensitivity, per_release_epsilon)),
                ReleaseValue::Candidates(c) => NoisyValue::Key(
                    self.mechanism
                        .release_argmax(c, sensitivity, per_release_epsilon)
                        .unwrap_or_else(|| String::from("")),
                ),
            };
            out.push(NoisyRelease {
                label: release.label,
                group_key: release.group_key,
                value,
                raw: release.value,
                sensitivity,
                noise_scale: scale,
                epsilon: per_release_epsilon,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privid_sandbox::{CarTableProcessor, RedLightProcessor, UniqueEntrantProcessor};
    use privid_video::{SceneConfig, SceneGenerator};

    fn campus_system() -> PrividSystem {
        let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.5)).generate();
        let mut sys = PrividSystem::new(7);
        sys.register_camera("campus", scene, PrivacyPolicy::new(60.0, 2, 20.0));
        sys.register_processor("person_counter", || Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>);
        sys.register_processor("car_table", || Box::new(CarTableProcessor) as Box<dyn ChunkProcessor>);
        sys.register_processor("red_light", || Box::new(RedLightProcessor) as Box<dyn ChunkProcessor>);
        sys
    }

    const COUNT_QUERY: &str = "
        SPLIT campus BEGIN 0 END 1200 BY TIME 10 sec STRIDE 0 sec INTO chunks;
        PROCESS chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
            WITH SCHEMA (count:NUMBER=0) INTO people;
        SELECT COUNT(*) FROM people CONSUMING 1.0;";

    #[test]
    fn end_to_end_count_query_is_close_to_raw() {
        let mut sys = campus_system();
        let result = sys.execute_text(COUNT_QUERY).unwrap();
        assert_eq!(result.releases.len(), 1);
        assert_eq!(result.epsilon_spent, 1.0);
        assert!(result.chunks_processed >= 120);
        let release = &result.releases[0];
        let raw = release.raw.as_number().unwrap();
        let noisy = release.value.as_number().unwrap();
        assert!(raw > 5.0, "a 20-minute campus window sees people: {raw}");
        // Sensitivity: max_rows 20 × K 2 × (1 + ceil(60/10)) = 280; ε = 1.
        assert_eq!(release.sensitivity, 280.0);
        assert_eq!(release.noise_scale, 280.0);
        assert!((noisy - raw).abs() < 280.0 * 12.0, "noise should be on the order of the scale");
    }

    #[test]
    fn budget_is_debited_and_eventually_exhausted() {
        let mut sys = campus_system();
        // Policy budget is 20; each query consumes 1.0 on frames [0, 1200).
        for _ in 0..20 {
            sys.execute_text(COUNT_QUERY).unwrap();
        }
        let err = sys.execute_text(COUNT_QUERY).unwrap_err();
        assert!(matches!(err, PrividError::BudgetExhausted { .. }));
        // A disjoint window (more than ρ away) still has budget.
        let other_window = "
            SPLIT campus BEGIN 1400 END 1700 BY TIME 10 sec STRIDE 0 sec INTO chunks;
            PROCESS chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
                WITH SCHEMA (count:NUMBER=0) INTO people;
            SELECT COUNT(*) FROM people CONSUMING 1.0;";
        sys.execute_text(other_window).unwrap();
    }

    #[test]
    fn unknown_camera_processor_and_mask_are_rejected() {
        let mut sys = campus_system();
        let bad_cam = COUNT_QUERY.replace("SPLIT campus", "SPLIT nowhere");
        assert!(matches!(sys.execute_text(&bad_cam), Err(PrividError::UnknownCamera(_))));
        let bad_proc = COUNT_QUERY.replace("person_counter", "mystery.py");
        assert!(matches!(sys.execute_text(&bad_proc), Err(PrividError::UnknownProcessor(_))));
        let bad_mask = COUNT_QUERY.replace("STRIDE 0 sec INTO", "STRIDE 0 sec WITH MASK ghost INTO");
        assert!(matches!(sys.execute_text(&bad_mask), Err(PrividError::UnknownMask(_))));
    }

    #[test]
    fn mask_with_smaller_rho_lowers_noise() {
        let mut sys = campus_system();
        let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.5)).generate();
        let grid = privid_video::GridSpec::coarse(scene.frame_size);
        sys.register_mask("campus", "benches", MaskPolicy::new(Mask::empty(grid), 20.0)).unwrap();
        let unmasked = sys.execute_text(COUNT_QUERY).unwrap();
        let masked_query = COUNT_QUERY.replace("STRIDE 0 sec INTO", "STRIDE 0 sec WITH MASK benches INTO");
        let masked = sys.execute_text(&masked_query).unwrap();
        assert!(
            masked.releases[0].sensitivity < unmasked.releases[0].sensitivity,
            "ρ 20 s instead of 60 s must shrink the sensitivity"
        );
    }

    #[test]
    fn group_by_colors_produces_three_releases_splitting_budget() {
        let mut sys = campus_system();
        let query = r#"
            SPLIT campus BEGIN 0 END 600 BY TIME 10 sec STRIDE 0 sec INTO chunks;
            PROCESS chunks USING car_table TIMEOUT 1 sec PRODUCING 10 ROWS
                WITH SCHEMA (plate:STRING="", color:STRING="", speed:NUMBER=0) INTO cars;
            SELECT COUNT(plate) FROM (SELECT plate, color FROM cars GROUP BY plate)
                GROUP BY color WITH KEYS ["RED", "WHITE", "SILVER"] CONSUMING 0.9;"#;
        let result = sys.execute_text(query).unwrap();
        assert_eq!(result.releases.len(), 3);
        for r in &result.releases {
            assert!((r.epsilon - 0.3).abs() < 1e-12, "budget split evenly across the three keys");
        }
        assert_eq!(result.epsilon_spent, 0.9);
    }

    #[test]
    fn argmax_release_returns_a_key() {
        // Use the highway scene: it is car-dominated, so the colour table is
        // guaranteed to be non-empty even for a short window.
        let scene = SceneGenerator::new(
            SceneConfig::highway().with_duration_hours(0.25).with_arrival_scale(0.2),
        )
        .generate();
        let mut sys = PrividSystem::new(3);
        sys.register_camera("campus", scene, PrivacyPolicy::new(60.0, 2, 20.0));
        sys.register_processor("car_table", || Box::new(CarTableProcessor) as Box<dyn ChunkProcessor>);
        let query = r#"
            SPLIT campus BEGIN 0 END 600 BY TIME 10 sec STRIDE 0 sec INTO chunks;
            PROCESS chunks USING car_table TIMEOUT 1 sec PRODUCING 10 ROWS
                WITH SCHEMA (plate:STRING="", color:STRING="", speed:NUMBER=0) INTO cars;
            SELECT ARGMAX(color) FROM cars CONSUMING 1.0;"#;
        let result = sys.execute_text(query).unwrap();
        match &result.releases[0].value {
            NoisyValue::Key(k) => assert!(!k.is_empty()),
            other => panic!("expected a key release, got {other:?}"),
        }
    }

    #[test]
    fn missing_select_or_table_is_invalid() {
        let mut sys = campus_system();
        let no_select = "
            SPLIT campus BEGIN 0 END 600 BY TIME 10 sec STRIDE 0 sec INTO chunks;
            PROCESS chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
                WITH SCHEMA (count:NUMBER=0) INTO people;";
        assert!(matches!(sys.execute_text(no_select), Err(PrividError::Invalid(_))));
        let wrong_table = COUNT_QUERY.replace("FROM people", "FROM ghosts");
        assert!(matches!(sys.execute_text(&wrong_table), Err(PrividError::Invalid(_))));
    }

    #[test]
    fn red_light_query_with_full_mask_is_exact_up_to_noise_scale() {
        // Case 4 (Q10–Q12): masking everything except the light yields ρ = 0,
        // so the sensitivity collapses to max_rows · K · 1 and accuracy is high.
        let mut sys = campus_system();
        let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.5)).generate();
        let grid = privid_video::GridSpec::coarse(scene.frame_size);
        sys.register_mask("campus", "all_but_light", MaskPolicy::new(Mask::empty(grid), 0.0)).unwrap();
        let query = "
            SPLIT campus BEGIN 0 END 1800 BY TIME 600 sec STRIDE 0 sec WITH MASK all_but_light INTO chunks;
            PROCESS chunks USING red_light TIMEOUT 1 sec PRODUCING 1 ROWS
                WITH SCHEMA (red_secs:NUMBER=0) INTO lights;
            SELECT AVG(range(red_secs, 0, 300)) FROM lights CONSUMING 1.0;";
        let result = sys.execute_text(query).unwrap();
        let release = &result.releases[0];
        assert_eq!(release.raw.as_number().unwrap(), 75.0);
        // Δ = 1·2·1·(300-0)/num_chunks(=3) = 200 … still modest; the key check
        // is that ρ = 0 gives max_chunks = 1.
        assert!(release.sensitivity <= 200.0 + 1e-9);
    }

    #[test]
    fn spatial_split_soft_boundary_requires_single_frame_chunks() {
        let mut sys = campus_system();
        let query = "
            SPLIT campus BEGIN 0 END 600 BY TIME 10 sec STRIDE 0 sec BY REGION default INTO chunks;
            PROCESS chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
                WITH SCHEMA (count:NUMBER=0) INTO people;
            SELECT COUNT(*) FROM people CONSUMING 1.0;";
        assert!(matches!(sys.execute_text(query), Err(PrividError::SoftBoundaryChunkTooLarge { .. })));
        // With single-frame chunks it works (campus default scheme is soft).
        let ok_query = query.replace("BY TIME 10 sec", "BY TIME 1 sec");
        let result = sys.execute_text(&ok_query).unwrap();
        assert!(result.chunks_processed >= 1200, "one execution per chunk per region");
    }

    #[test]
    fn select_without_aggregations_is_invalid_not_a_panic() {
        // Regression: a programmatically built SELECT with no aggregations
        // used to slip through planning (statement_sensitivities returns an
        // empty vec, and `sensitivities[0]` was one data-shape away from
        // panicking) and silently consumed budget while releasing nothing.
        let mut sys = campus_system();
        let budget_before = sys.remaining_budget("campus", 600.0).unwrap();
        let mut query = parse_query(COUNT_QUERY).unwrap();
        query.selects[0].aggregations.clear();
        match sys.execute(&query) {
            Err(PrividError::Invalid(msg)) => assert!(msg.contains("no aggregations"), "got: {msg}"),
            other => panic!("expected Invalid, got {other:?}"),
        }
        assert_eq!(
            sys.remaining_budget("campus", 600.0).unwrap(),
            budget_before,
            "a rejected query must not consume budget"
        );
    }

    #[test]
    fn explicit_parallelism_settings_execute_the_same_query() {
        let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.5)).generate();
        let mut results = Vec::new();
        for parallelism in [crate::Parallelism::Serial, crate::Parallelism::Fixed(3), crate::Parallelism::Auto] {
            let mut sys = PrividSystem::new(5).with_parallelism(parallelism);
            sys.register_camera("campus", scene.clone(), PrivacyPolicy::new(60.0, 2, 20.0));
            sys.register_processor("person_counter", || {
                Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>
            });
            results.push(sys.execute_text(COUNT_QUERY).unwrap());
        }
        assert_eq!(results[0], results[1], "worker count must not change any release");
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn noise_is_reproducible_for_a_seed() {
        let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.5)).generate();
        let mut a = PrividSystem::new(99);
        a.register_camera("campus", scene.clone(), PrivacyPolicy::new(60.0, 2, 20.0));
        a.register_processor("person_counter", || Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>);
        let mut b = PrividSystem::new(99);
        b.register_camera("campus", scene, PrivacyPolicy::new(60.0, 2, 20.0));
        b.register_processor("person_counter", || Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>);
        let ra = a.execute_text(COUNT_QUERY).unwrap();
        let rb = b.execute_text(COUNT_QUERY).unwrap();
        assert_eq!(ra.releases[0].value, rb.releases[0].value);
    }
}
