//! The single-analyst Privid executor and the query result types.
//!
//! [`PrividSystem`] is the original, synchronous entry point: one analyst,
//! one query at a time, one continuous seeded noise stream across the
//! system's whole query sequence (which makes experiment scripts exactly
//! reproducible). Since the serving-layer refactor it is a thin wrapper over
//! [`QueryService`] — registration, per-query sessions, budget admission and
//! the cross-query chunk cache are all shared with the concurrent front-end;
//! only the noise-stream policy differs.

use crate::error::PrividError;
use crate::mechanism::LaplaceMechanism;
use crate::parallel::Parallelism;
use crate::policy::{MaskPolicy, PrivacyPolicy};
use crate::service::QueryService;
use privid_query::{parse_query, ParsedQuery, ReleaseValue};
use privid_sandbox::ChunkProcessor;
use privid_video::Scene;
use serde::{Deserialize, Serialize};

/// The value of one noisy data release returned to the analyst.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NoisyValue {
    /// A numeric release (COUNT / SUM / AVG / VAR) with Laplace noise added.
    Number(f64),
    /// An ARGMAX release: the winning key under report-noisy-max.
    Key(String),
}

impl NoisyValue {
    /// The numeric content, if any.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            NoisyValue::Number(n) => Some(*n),
            NoisyValue::Key(_) => None,
        }
    }
}

/// One noisy data release plus the accounting metadata Privid tracks for it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoisyRelease {
    /// Label describing the aggregation (and group key) this release belongs to.
    pub label: String,
    /// The group key, if the release came from a GROUP BY bucket.
    pub group_key: Option<String>,
    /// The value returned to the analyst.
    pub value: NoisyValue,
    /// The raw (pre-noise) value. **Evaluation only**: a deployment would
    /// never expose this; the experiment harness uses it to measure accuracy
    /// and to plot the "Privid (No Noise)" curves of Fig. 5.
    pub raw: ReleaseValue,
    /// Sensitivity used to calibrate the noise.
    pub sensitivity: f64,
    /// Laplace scale `b = Δ/ε` applied.
    pub noise_scale: f64,
    /// Privacy budget consumed by this release.
    pub epsilon: f64,
}

/// The result of executing one query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResult {
    /// Every data release of the query, in statement order.
    pub releases: Vec<NoisyRelease>,
    /// Total privacy budget consumed.
    pub epsilon_spent: f64,
    /// Total number of chunk executions the query required. Executions served
    /// from the cross-query chunk cache count too, so this is a deterministic
    /// function of the query — independent of what other queries ran before.
    pub chunks_processed: usize,
}

impl QueryResult {
    /// Convenience: the first release's numeric value.
    pub fn first_number(&self) -> Option<f64> {
        self.releases.first().and_then(|r| r.value.as_number())
    }
}

/// The Privid system: the video owner's server, driven by one analyst.
///
/// All queries draw noise from a single mechanism seeded at construction, so
/// a script's *sequence* of queries is exactly reproducible. For serving many
/// analysts concurrently — each query independently seeded — use
/// [`QueryService`] directly.
pub struct PrividSystem {
    service: QueryService,
    mechanism: LaplaceMechanism,
    /// Budget charged to a SELECT that has no `CONSUMING` clause.
    pub default_epsilon: f64,
    /// How many workers the chunk execution engine uses per PROCESS
    /// statement. Results are bit-for-bit identical at every setting (the
    /// engine merges outputs in deterministic chunk order); only wall-clock
    /// time changes.
    pub parallelism: Parallelism,
}

impl PrividSystem {
    /// Create a system; `seed` makes the noise reproducible for experiments.
    pub fn new(seed: u64) -> Self {
        PrividSystem {
            service: QueryService::new(),
            mechanism: LaplaceMechanism::new(seed),
            default_epsilon: 1.0,
            parallelism: Parallelism::Auto,
        }
    }

    /// Builder-style override of the execution engine's worker count.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Builder-style durability knob: persist admission state to a
    /// write-ahead log and recover any existing state in the directory.
    /// Replaces the inner service, so call it **before** registering
    /// cameras or processors. The noise stream is unaffected (it lives in
    /// this wrapper, seeded at construction).
    pub fn with_durability(mut self, durability: privid_store::Durability) -> Result<Self, PrividError> {
        self.service = QueryService::builder().durability(durability).build()?;
        Ok(self)
    }

    /// What recovery did when this system was built over an existing store
    /// (see [`QueryService::recovery_report`]).
    pub fn recovery_report(&self) -> Option<&privid_store::RecoveryReport> {
        self.service.recovery_report()
    }

    /// Snapshot the durable state and truncate the write-ahead log (no-op
    /// without durability).
    pub fn checkpoint(&self) -> Result<(), PrividError> {
        self.service.checkpoint()
    }

    /// Counters of the chunk-result cache backing this system. (The inner
    /// `QueryService` is deliberately not exposed: its own `execute` methods
    /// would bypass this system's `parallelism`/`default_epsilon` knobs.)
    pub fn cache_stats(&self) -> crate::cache::ChunkCacheStats {
        self.service.cache_stats()
    }

    /// Register a camera with its recording and privacy policy. Fails only
    /// on a durable system whose journal append fails.
    pub fn register_camera(
        &mut self,
        name: impl Into<String>,
        scene: Scene,
        policy: PrivacyPolicy,
    ) -> Result<(), PrividError> {
        self.service.register_camera(name, scene, policy)
    }

    /// Register a live camera whose footage arrives via
    /// [`PrividSystem::append_frames`].
    pub fn register_live_camera(
        &mut self,
        name: impl Into<String>,
        frame_rate: privid_video::FrameRate,
        frame_size: privid_video::FrameSize,
        policy: PrivacyPolicy,
    ) -> Result<(), PrividError> {
        self.service.register_live_camera(name, frame_rate, frame_size, policy)
    }

    /// Append freshly recorded footage to a live camera (see
    /// [`QueryService::append_frames`]).
    pub fn append_frames(
        &mut self,
        camera: &str,
        batch: privid_video::FrameBatch,
    ) -> Result<crate::service::AppendOutcome, PrividError> {
        self.service.append_frames(camera, batch)
    }

    /// The recorded duration of a camera — a live camera's high-watermark.
    pub fn live_edge(&self, camera: &str) -> Option<f64> {
        self.service.live_edge(camera)
    }

    /// Publish a mask (and its reduced ρ) for a camera (§7.1).
    pub fn register_mask(
        &mut self,
        camera: &str,
        mask_id: impl Into<String>,
        policy: MaskPolicy,
    ) -> Result<(), PrividError> {
        self.service.register_mask(camera, mask_id, policy)
    }

    /// Attach an analyst processor executable under a name. Fails only on a
    /// durable system whose journal append fails.
    pub fn register_processor<F>(&mut self, name: impl Into<String>, factory: F) -> Result<(), PrividError>
    where
        F: Fn() -> Box<dyn ChunkProcessor> + Send + Sync + 'static,
    {
        self.service.register_processor(name, factory)
    }

    /// Remaining per-frame budget of a camera at a given time.
    pub fn remaining_budget(&self, camera: &str, at_secs: f64) -> Option<f64> {
        self.service.remaining_budget(camera, at_secs)
    }

    /// The registered policy of a camera.
    pub fn camera_policy(&self, camera: &str) -> Option<PrivacyPolicy> {
        self.service.camera_policy(camera)
    }

    /// Parse and execute a textual query.
    pub fn execute_text(&mut self, text: &str) -> Result<QueryResult, PrividError> {
        let query = parse_query(text)?;
        self.execute(&query)
    }

    /// Execute a parsed query.
    pub fn execute(&mut self, query: &ParsedQuery) -> Result<QueryResult, PrividError> {
        self.service.execute_session(query, &mut self.mechanism, self.parallelism, self.default_epsilon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privid_sandbox::{CarTableProcessor, RedLightProcessor, UniqueEntrantProcessor};
    use privid_video::{Mask, SceneConfig, SceneGenerator};

    fn campus_system() -> PrividSystem {
        let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.5)).generate();
        let mut sys = PrividSystem::new(7);
        sys.register_camera("campus", scene, PrivacyPolicy::new(60.0, 2, 20.0)).expect("camera/processor registration must succeed");
        sys.register_processor("person_counter", || Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>).expect("camera/processor registration must succeed");
        sys.register_processor("car_table", || Box::new(CarTableProcessor) as Box<dyn ChunkProcessor>).expect("camera/processor registration must succeed");
        sys.register_processor("red_light", || Box::new(RedLightProcessor) as Box<dyn ChunkProcessor>).expect("camera/processor registration must succeed");
        sys
    }

    const COUNT_QUERY: &str = "
        SPLIT campus BEGIN 0 END 1200 BY TIME 10 sec STRIDE 0 sec INTO chunks;
        PROCESS chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
            WITH SCHEMA (count:NUMBER=0) INTO people;
        SELECT COUNT(*) FROM people CONSUMING 1.0;";

    #[test]
    fn end_to_end_count_query_is_close_to_raw() {
        let mut sys = campus_system();
        let result = sys.execute_text(COUNT_QUERY).unwrap();
        assert_eq!(result.releases.len(), 1);
        assert_eq!(result.epsilon_spent, 1.0);
        assert!(result.chunks_processed >= 120);
        let release = &result.releases[0];
        let raw = release.raw.as_number().unwrap();
        let noisy = release.value.as_number().unwrap();
        assert!(raw > 5.0, "a 20-minute campus window sees people: {raw}");
        // Sensitivity: max_rows 20 × K 2 × (1 + ceil(60/10)) = 280; ε = 1.
        assert_eq!(release.sensitivity, 280.0);
        assert_eq!(release.noise_scale, 280.0);
        assert!((noisy - raw).abs() < 280.0 * 12.0, "noise should be on the order of the scale");
    }

    #[test]
    fn budget_is_debited_and_eventually_exhausted() {
        let mut sys = campus_system();
        // Policy budget is 20; each query consumes 1.0 on frames [0, 1200).
        for _ in 0..20 {
            sys.execute_text(COUNT_QUERY).unwrap();
        }
        let err = sys.execute_text(COUNT_QUERY).unwrap_err();
        assert!(matches!(err, PrividError::BudgetExhausted { .. }));
        // A disjoint window (more than ρ away) still has budget.
        let other_window = "
            SPLIT campus BEGIN 1400 END 1700 BY TIME 10 sec STRIDE 0 sec INTO chunks;
            PROCESS chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
                WITH SCHEMA (count:NUMBER=0) INTO people;
            SELECT COUNT(*) FROM people CONSUMING 1.0;";
        sys.execute_text(other_window).unwrap();
    }

    #[test]
    fn repeated_queries_reuse_cached_chunk_results() {
        // The 20 identical queries above also exercise the chunk cache; this
        // test pins the accounting: one sandbox execution, then cache hits,
        // with identical per-query results apart from the fresh noise.
        let mut sys = campus_system();
        let a = sys.execute_text(COUNT_QUERY).unwrap();
        let b = sys.execute_text(COUNT_QUERY).unwrap();
        assert_eq!(a.chunks_processed, b.chunks_processed, "cache hits still count required executions");
        assert_eq!(a.releases[0].raw, b.releases[0].raw, "same raw table either way");
        let stats = sys.cache_stats();
        assert_eq!(stats.misses, 1, "only the first query ran the sandbox");
        assert!(stats.hits >= 1);
    }

    #[test]
    fn unknown_camera_processor_and_mask_are_rejected() {
        let mut sys = campus_system();
        let bad_cam = COUNT_QUERY.replace("SPLIT campus", "SPLIT nowhere");
        assert!(matches!(sys.execute_text(&bad_cam), Err(PrividError::UnknownCamera(_))));
        let bad_proc = COUNT_QUERY.replace("person_counter", "mystery.py");
        assert!(matches!(sys.execute_text(&bad_proc), Err(PrividError::UnknownProcessor(_))));
        let bad_mask = COUNT_QUERY.replace("STRIDE 0 sec INTO", "STRIDE 0 sec WITH MASK ghost INTO");
        assert!(matches!(sys.execute_text(&bad_mask), Err(PrividError::UnknownMask(_))));
    }

    #[test]
    fn window_past_the_recording_is_rejected_without_debit() {
        // Regression: the ledger used to clamp a fully disjoint window onto
        // the last real slot and debit it.
        let mut sys = campus_system();
        let ghost = COUNT_QUERY.replace("BEGIN 0 END 1200", "BEGIN 5000 END 6200");
        match sys.execute_text(&ghost) {
            Err(PrividError::WindowOutsideRecording { camera, start_secs, end_secs, duration_secs }) => {
                assert_eq!(camera, "campus");
                assert_eq!((start_secs, end_secs), (5000.0, 6200.0));
                assert_eq!(duration_secs, 1800.0);
            }
            other => panic!("expected WindowOutsideRecording, got {other:?}"),
        }
        assert!((sys.remaining_budget("campus", 1799.0).unwrap() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn mask_with_smaller_rho_lowers_noise() {
        let mut sys = campus_system();
        let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.5)).generate();
        let grid = privid_video::GridSpec::coarse(scene.frame_size);
        sys.register_mask("campus", "benches", MaskPolicy::new(Mask::empty(grid), 20.0)).unwrap();
        let unmasked = sys.execute_text(COUNT_QUERY).unwrap();
        let masked_query = COUNT_QUERY.replace("STRIDE 0 sec INTO", "STRIDE 0 sec WITH MASK benches INTO");
        let masked = sys.execute_text(&masked_query).unwrap();
        assert!(
            masked.releases[0].sensitivity < unmasked.releases[0].sensitivity,
            "ρ 20 s instead of 60 s must shrink the sensitivity"
        );
    }

    #[test]
    fn group_by_colors_produces_three_releases_splitting_budget() {
        let mut sys = campus_system();
        let query = r#"
            SPLIT campus BEGIN 0 END 600 BY TIME 10 sec STRIDE 0 sec INTO chunks;
            PROCESS chunks USING car_table TIMEOUT 1 sec PRODUCING 10 ROWS
                WITH SCHEMA (plate:STRING="", color:STRING="", speed:NUMBER=0) INTO cars;
            SELECT COUNT(plate) FROM (SELECT plate, color FROM cars GROUP BY plate)
                GROUP BY color WITH KEYS ["RED", "WHITE", "SILVER"] CONSUMING 0.9;"#;
        let result = sys.execute_text(query).unwrap();
        assert_eq!(result.releases.len(), 3);
        for r in &result.releases {
            assert!((r.epsilon - 0.3).abs() < 1e-12, "budget split evenly across the three keys");
        }
        assert_eq!(result.epsilon_spent, 0.9);
    }

    #[test]
    fn argmax_release_returns_a_key() {
        // Use the highway scene: it is car-dominated, so the colour table is
        // guaranteed to be non-empty even for a short window.
        let scene = SceneGenerator::new(
            SceneConfig::highway().with_duration_hours(0.25).with_arrival_scale(0.2),
        )
        .generate();
        let mut sys = PrividSystem::new(3);
        sys.register_camera("campus", scene, PrivacyPolicy::new(60.0, 2, 20.0)).expect("camera/processor registration must succeed");
        sys.register_processor("car_table", || Box::new(CarTableProcessor) as Box<dyn ChunkProcessor>).expect("camera/processor registration must succeed");
        let query = r#"
            SPLIT campus BEGIN 0 END 600 BY TIME 10 sec STRIDE 0 sec INTO chunks;
            PROCESS chunks USING car_table TIMEOUT 1 sec PRODUCING 10 ROWS
                WITH SCHEMA (plate:STRING="", color:STRING="", speed:NUMBER=0) INTO cars;
            SELECT ARGMAX(color) FROM cars CONSUMING 1.0;"#;
        let result = sys.execute_text(query).unwrap();
        match &result.releases[0].value {
            NoisyValue::Key(k) => assert!(!k.is_empty()),
            other => panic!("expected a key release, got {other:?}"),
        }
    }

    #[test]
    fn missing_select_or_table_is_invalid_and_free() {
        let mut sys = campus_system();
        let no_select = "
            SPLIT campus BEGIN 0 END 600 BY TIME 10 sec STRIDE 0 sec INTO chunks;
            PROCESS chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
                WITH SCHEMA (count:NUMBER=0) INTO people;";
        assert!(matches!(sys.execute_text(no_select), Err(PrividError::Invalid(_))));
        // Regression (review): a typo'd table name used to be caught only
        // *after* budget admission, permanently debiting ε for a query that
        // released nothing.
        let wrong_table = COUNT_QUERY.replace("FROM people", "FROM ghosts");
        assert!(matches!(sys.execute_text(&wrong_table), Err(PrividError::Invalid(_))));
        assert!(
            (sys.remaining_budget("campus", 600.0).unwrap() - 20.0).abs() < 1e-9,
            "a rejected SELECT must not consume budget"
        );
    }

    #[test]
    fn disjoint_splits_spare_the_gap_frames() {
        // Regression (review): admission used to debit the bounding hull of
        // all splits, so frames between two far-apart windows lost budget
        // without contributing to any release. Windows within 2ρ still merge
        // (an event segment could straddle such a gap).
        let two_splits = |begin2: u32, end2: u32| {
            format!(
                "SPLIT campus BEGIN 0 END 300 BY TIME 10 sec STRIDE 0 sec INTO c1;
                 SPLIT campus BEGIN {begin2} END {end2} BY TIME 10 sec STRIDE 0 sec INTO c2;
                 PROCESS c1 USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
                     WITH SCHEMA (count:NUMBER=0) INTO t1;
                 PROCESS c2 USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
                     WITH SCHEMA (count:NUMBER=0) INTO t2;
                 SELECT COUNT(*) FROM t1 CONSUMING 0.5;
                 SELECT COUNT(*) FROM t2 CONSUMING 0.5;"
            )
        };
        // Gap 300 s > 2ρ (= 120 s): the gap keeps its full budget.
        let mut sys = campus_system();
        sys.execute_text(&two_splits(600, 900)).unwrap();
        assert!((sys.remaining_budget("campus", 100.0).unwrap() - 19.0).abs() < 1e-9, "first window debited ε_total");
        assert!((sys.remaining_budget("campus", 700.0).unwrap() - 19.0).abs() < 1e-9, "second window debited ε_total");
        assert!((sys.remaining_budget("campus", 450.0).unwrap() - 20.0).abs() < 1e-9, "gap frames untouched");
        // Gap 100 s ≤ 2ρ: merged into one window, hull semantics preserved.
        let mut sys = campus_system();
        sys.execute_text(&two_splits(400, 700)).unwrap();
        assert!((sys.remaining_budget("campus", 350.0).unwrap() - 19.0).abs() < 1e-9, "near gap is debited");
    }

    #[test]
    fn red_light_query_with_full_mask_is_exact_up_to_noise_scale() {
        // Case 4 (Q10–Q12): masking everything except the light yields ρ = 0,
        // so the sensitivity collapses to max_rows · K · 1 and accuracy is high.
        let mut sys = campus_system();
        let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.5)).generate();
        let grid = privid_video::GridSpec::coarse(scene.frame_size);
        sys.register_mask("campus", "all_but_light", MaskPolicy::new(Mask::empty(grid), 0.0)).unwrap();
        let query = "
            SPLIT campus BEGIN 0 END 1800 BY TIME 600 sec STRIDE 0 sec WITH MASK all_but_light INTO chunks;
            PROCESS chunks USING red_light TIMEOUT 1 sec PRODUCING 1 ROWS
                WITH SCHEMA (red_secs:NUMBER=0) INTO lights;
            SELECT AVG(range(red_secs, 0, 300)) FROM lights CONSUMING 1.0;";
        let result = sys.execute_text(query).unwrap();
        let release = &result.releases[0];
        assert_eq!(release.raw.as_number().unwrap(), 75.0);
        // Δ = 1·2·1·(300-0)/num_chunks(=3) = 200 … still modest; the key check
        // is that ρ = 0 gives max_chunks = 1.
        assert!(release.sensitivity <= 200.0 + 1e-9);
    }

    #[test]
    fn spatial_split_soft_boundary_requires_single_frame_chunks() {
        let mut sys = campus_system();
        let query = "
            SPLIT campus BEGIN 0 END 600 BY TIME 10 sec STRIDE 0 sec BY REGION default INTO chunks;
            PROCESS chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
                WITH SCHEMA (count:NUMBER=0) INTO people;
            SELECT COUNT(*) FROM people CONSUMING 1.0;";
        assert!(matches!(sys.execute_text(query), Err(PrividError::SoftBoundaryChunkTooLarge { .. })));
        // With single-frame chunks it works (campus default scheme is soft).
        let ok_query = query.replace("BY TIME 10 sec", "BY TIME 1 sec");
        let result = sys.execute_text(&ok_query).unwrap();
        assert!(result.chunks_processed >= 1200, "one execution per chunk per region");
    }

    #[test]
    fn select_without_aggregations_is_invalid_not_a_panic() {
        // Regression: a programmatically built SELECT with no aggregations
        // used to slip through planning (statement_sensitivities returns an
        // empty vec, and `sensitivities[0]` was one data-shape away from
        // panicking) and silently consumed budget while releasing nothing.
        let mut sys = campus_system();
        let budget_before = sys.remaining_budget("campus", 600.0).unwrap();
        let mut query = parse_query(COUNT_QUERY).unwrap();
        query.selects[0].aggregations.clear();
        match sys.execute(&query) {
            Err(PrividError::Invalid(msg)) => assert!(msg.contains("no aggregations"), "got: {msg}"),
            other => panic!("expected Invalid, got {other:?}"),
        }
        assert_eq!(
            sys.remaining_budget("campus", 600.0).unwrap(),
            budget_before,
            "a rejected query must not consume budget"
        );
    }

    #[test]
    fn explicit_parallelism_settings_execute_the_same_query() {
        let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.5)).generate();
        let mut results = Vec::new();
        for parallelism in [crate::Parallelism::Serial, crate::Parallelism::Fixed(3), crate::Parallelism::Auto] {
            let mut sys = PrividSystem::new(5).with_parallelism(parallelism);
            sys.register_camera("campus", scene.clone(), PrivacyPolicy::new(60.0, 2, 20.0)).expect("camera/processor registration must succeed");
            sys.register_processor("person_counter", || {
                Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>
            }).expect("camera/processor registration must succeed");
            results.push(sys.execute_text(COUNT_QUERY).unwrap());
        }
        assert_eq!(results[0], results[1], "worker count must not change any release");
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn noise_is_reproducible_for_a_seed() {
        let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.5)).generate();
        let mut a = PrividSystem::new(99);
        a.register_camera("campus", scene.clone(), PrivacyPolicy::new(60.0, 2, 20.0)).expect("camera/processor registration must succeed");
        a.register_processor("person_counter", || Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>).expect("camera/processor registration must succeed");
        let mut b = PrividSystem::new(99);
        b.register_camera("campus", scene, PrivacyPolicy::new(60.0, 2, 20.0)).expect("camera/processor registration must succeed");
        b.register_processor("person_counter", || Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>).expect("camera/processor registration must succeed");
        let ra = a.execute_text(COUNT_QUERY).unwrap();
        let rb = b.execute_text(COUNT_QUERY).unwrap();
        assert_eq!(ra.releases[0].value, rb.releases[0].value);
    }
}
