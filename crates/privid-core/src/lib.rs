//! # privid-core
//!
//! The Privid system (NSDI 2022): `(ρ, K, ε)`-event-duration privacy for
//! video analytics queries.
//!
//! This crate ties the substrates together into the system of §6:
//!
//! * [`policy`] — `(ρ, K)` privacy policies and per-mask policy maps.
//! * [`mechanism`] — the Laplace mechanism and report-noisy-max.
//! * [`budget`] — the per-frame privacy-budget ledger of Algorithm 1, and the
//!   admission controller that serializes multi-camera admissions.
//! * [`health`] — per-camera `Healthy → Degraded → Quarantined` states that
//!   scope a storage fault to the camera it hit, plus the bounded-backoff
//!   retry policy for transient journal failures.
//! * [`service`] — the concurrent multi-analyst serving layer
//!   ([`QueryService`]): `RwLock`ed camera/processor registries, per-query
//!   sessions with per-query noise seeds, and the cross-query chunk cache.
//! * [`session`] — per-query execution: split → process → admit → aggregate
//!   → noise, shared by both front-ends.
//! * [`cache`] — the cross-query chunk-result cache (raw sandbox outputs,
//!   DP-safe to share because noise is applied at release time).
//! * [`aggcache`] — the second cache tier: folded per-(plan, chunk-prefix)
//!   aggregate states, shared across analysts running the same sub-plan and
//!   extended incrementally by standing queries.
//! * [`executor`] — the single-analyst front-end ([`PrividSystem`]) and the
//!   release/result types.
//! * durability (the `privid-store` crate, re-exported here) — the
//!   write-ahead log + snapshot subsystem behind the [`Durability`] knob on
//!   [`QueryServiceBuilder`]: admissions journal their debits before any slot
//!   is debited, so a crash can never re-mint ε for queried footage.
//! * [`parallel`] — the streaming chunk execution engine: fans lazily
//!   materialized chunk views out to a worker pool and merges outputs in
//!   deterministic order ([`Parallelism`] selects the worker count).
//! * [`masking`] — the spatial-masking optimization of §7.1 and the greedy
//!   mask-ordering Algorithm 2 (Appendix F).
//! * [`spatial`] — the spatial-splitting optimization of §7.2.
//! * [`degradation`] — the graceful-degradation analysis of Appendix C.
//!
//! ## Quick example
//!
//! ```
//! use privid_core::{PrividSystem, PrivacyPolicy};
//! use privid_sandbox::{ChunkProcessor, UniqueEntrantProcessor};
//! use privid_video::{SceneConfig, SceneGenerator};
//!
//! // The video owner registers a camera, a policy, and accepts queries.
//! let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.25)).generate();
//! let mut privid = PrividSystem::new(42);
//! privid.register_camera("campus", scene, PrivacyPolicy::new(60.0, 2, 10.0)).unwrap();
//! privid.register_processor("person_counter", || {
//!     Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>
//! }).unwrap();
//!
//! // The analyst submits a textual query.
//! let result = privid
//!     .execute_text(
//!         "SPLIT campus BEGIN 0 END 600 BY TIME 10 sec STRIDE 0 sec INTO chunks;
//!          PROCESS chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
//!              WITH SCHEMA (count:NUMBER=0) INTO people;
//!          SELECT COUNT(*) FROM people CONSUMING 1.0;",
//!     )
//!     .unwrap();
//! assert_eq!(result.releases.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggcache;
pub mod budget;
pub mod cache;
pub mod degradation;
pub mod error;
pub mod executor;
pub mod health;
pub mod masking;
pub mod mechanism;
pub mod parallel;
pub mod policy;
pub mod service;
mod session;
pub mod spatial;

pub use aggcache::{AggCacheKey, AggCacheStats, AggStateCache};
pub use budget::{
    admit_fleet, AdmissionController, AdmissionFailure, AdmissionJournal, AdmissionRequest, BudgetError,
    BudgetLedger, CommitWait, ShardAdmission,
};
pub use cache::{ChunkCacheKey, ChunkCacheStats, ChunkResultCache};
pub use degradation::{detection_probability_bound, DegradationCurve};
pub use error::PrividError;
pub use executor::{NoisyRelease, NoisyValue, PrividSystem, QueryResult};
pub use health::{CameraHealth, StoreRetryPolicy};
pub use parallel::{execute_plan, Parallelism};
pub use privid_store::{
    Durability, FaultKind, FaultOp, FaultProfile, FaultVfs, FsyncPolicy, RecoveryEvent, RecoveryReport,
    RecoveryWarning, StdVfs, StoreError, Vfs,
};
pub use service::{AppendOutcome, QueryService, QueryServiceBuilder, StandingFiring, StandingPoll};
pub use masking::{greedy_mask_order, MaskPlan, MaskingAnalysis};
pub use mechanism::{laplace_noise, report_noisy_max, LaplaceMechanism};
pub use policy::{MaskPolicy, PrivacyPolicy};
pub use spatial::{region_output_ranges, RegionRangeReport};
