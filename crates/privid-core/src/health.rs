//! Per-camera health states for storage-fault degradation.
//!
//! A durability failure on one camera's journal must not take down the whole
//! service: the health state machine scopes the blast radius.
//!
//! ```text
//!            transient append failure          wedge / unreconciled rollback
//! Healthy ─────────────────────────► Degraded ─────────────────────────────┐
//!    ▲  ▲      (retries exhausted)       │                                 ▼
//!    │  └────────────────────────────────┘ (next success)           Quarantined
//!    │                                                                     │
//!    └──────────────── supervised QueryService::recover_store ─────────────┘
//! ```
//!
//! * **Healthy** — admissions and live-edge extends proceed normally.
//! * **Degraded** — the last journaled operation failed transiently even
//!   after bounded retries. The camera still *accepts* new operations (each
//!   gets its own retry budget), the state is advisory: operators should look
//!   at the disk. Any subsequent success returns the camera to `Healthy`.
//! * **Quarantined** — the journal can no longer accept records for this
//!   camera (its WAL is wedged, or a best-effort `Credit` rollback was lost
//!   and the durable ledger awaits reconciliation). New admissions and
//!   live-edge extends are **refused** with the retryable
//!   [`crate::PrividError::CameraQuarantined`] — ε must never be debited
//!   without a journaled record — while closed-window reads keep serving from
//!   the adopted in-memory ledger. Only a supervised
//!   [`crate::QueryService::recover_store`] clears quarantine.
//!
//! The states are deliberately one-way ratchets within a failure episode:
//! `Degraded` never escalates to `Quarantined` on its own (only a wedge
//! does), and `Quarantined` never self-heals (durability was violated once;
//! resuming without re-reading the log could repeat it silently).

use std::time::Duration;

/// The health of one camera's durability path. See the module docs for the
/// state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CameraHealth {
    /// The journal is accepting and acknowledging this camera's records.
    Healthy,
    /// The last journaled operation failed transiently after bounded retries.
    /// Advisory: new operations are still accepted (and re-tried).
    Degraded {
        /// The store error text that exhausted its retries.
        reason: String,
    },
    /// The journal cannot accept records for this camera; admissions and
    /// extends are refused until a supervised recovery.
    Quarantined {
        /// Why the camera was quarantined.
        reason: String,
    },
}

impl CameraHealth {
    /// True when new admissions and live-edge extends must be refused.
    pub fn refuses_admissions(&self) -> bool {
        matches!(self, CameraHealth::Quarantined { .. })
    }
}

/// Bounded exponential backoff for transient journal append failures during
/// live ingestion: retry up to `max_retries` times, sleeping
/// `base_backoff * 2^attempt` (capped at [`StoreRetryPolicy::MAX_BACKOFF`])
/// between attempts, then escalate to the caller with the camera marked
/// [`CameraHealth::Degraded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreRetryPolicy {
    /// Retries after the first failure (0 disables retrying).
    pub max_retries: u32,
    /// Sleep before the first retry; doubles per attempt.
    pub base_backoff: Duration,
}

impl StoreRetryPolicy {
    /// Ceiling on a single backoff sleep regardless of attempt count, so a
    /// misconfigured policy cannot stall an ingestion thread for minutes.
    pub const MAX_BACKOFF: Duration = Duration::from_millis(100);

    /// How long to sleep before retry number `attempt` (1-based).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(16);
        self.base_backoff.saturating_mul(factor).min(Self::MAX_BACKOFF)
    }
}

impl Default for StoreRetryPolicy {
    fn default() -> Self {
        StoreRetryPolicy { max_retries: 3, base_backoff: Duration::from_millis(2) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = StoreRetryPolicy { max_retries: 5, base_backoff: Duration::from_millis(2) };
        assert_eq!(p.backoff(1), Duration::from_millis(2));
        assert_eq!(p.backoff(2), Duration::from_millis(4));
        assert_eq!(p.backoff(3), Duration::from_millis(8));
        assert_eq!(p.backoff(30), StoreRetryPolicy::MAX_BACKOFF, "huge attempts cap instead of overflowing");
    }

    #[test]
    fn only_quarantine_refuses() {
        assert!(!CameraHealth::Healthy.refuses_admissions());
        assert!(!CameraHealth::Degraded { reason: "eio".into() }.refuses_admissions());
        assert!(CameraHealth::Quarantined { reason: "wedged".into() }.refuses_admissions());
    }
}
