//! The per-frame privacy-budget ledger of Algorithm 1 (§6.4).
//!
//! Rather than one global ε per video, Privid gives *every frame* its own
//! budget. A query over interval `[a, b]` requesting ε_Q is admitted only if
//! every frame in the expanded interval `[a − ρ, b + ρ]` still has at least
//! ε_Q remaining; on admission only the frames in `[a, b]` are debited. The
//! ±ρ margin guarantees that a single event segment (duration ≤ ρ) can never
//! straddle two queries that were admitted against disjoint budgets
//! (Theorem 6.2, case 2).

use std::sync::Mutex;
use privid_video::{Seconds, TimeSpan};

/// Per-frame budget state for one camera. Budgets are tracked at a fixed
/// slot resolution (default: one slot per second of video), which matches
/// the paper's per-frame semantics for any query whose window boundaries are
/// whole seconds.
#[derive(Debug)]
pub struct BudgetLedger {
    /// Budget remaining per slot.
    slots: Mutex<Vec<f64>>,
    /// Slot duration in seconds.
    slot_secs: f64,
    /// Initial per-frame budget.
    initial: f64,
}

impl BudgetLedger {
    /// Create a ledger covering `duration_secs` of video with `initial`
    /// budget per frame, at one-second resolution.
    pub fn new(duration_secs: Seconds, initial: f64) -> Self {
        Self::with_resolution(duration_secs, initial, 1.0)
    }

    /// Create a ledger with an explicit slot resolution.
    pub fn with_resolution(duration_secs: Seconds, initial: f64, slot_secs: f64) -> Self {
        assert!(slot_secs > 0.0);
        let n = (duration_secs / slot_secs).ceil().max(1.0) as usize;
        BudgetLedger { slots: Mutex::new(vec![initial; n]), slot_secs, initial }
    }

    /// The initial per-frame budget.
    pub fn initial_budget(&self) -> f64 {
        self.initial
    }

    /// Slot indices covered by `span`, given `n` total slots. Pure so callers
    /// can compute ranges under a single lock acquisition.
    fn slot_range(&self, span: &TimeSpan, n: usize) -> (usize, usize) {
        let lo = ((span.start.as_secs() / self.slot_secs).floor().max(0.0) as usize).min(n.saturating_sub(1));
        let hi = ((span.end.as_secs() / self.slot_secs).ceil() as usize).clamp(lo + 1, n);
        (lo, hi)
    }

    /// Minimum remaining budget over a span.
    pub fn min_remaining(&self, span: &TimeSpan) -> f64 {
        let slots = self.slots.lock().expect("budget ledger lock poisoned");
        let (lo, hi) = self.slot_range(span, slots.len());
        slots[lo..hi].iter().cloned().fold(f64::INFINITY, f64::min)
    }

    /// Algorithm 1, lines 1–5: admit the query iff every slot in
    /// `window ± rho_margin` has at least `epsilon` remaining, then debit
    /// `epsilon` from the slots of `window` only. Returns the minimum
    /// remaining budget (over the margin-expanded window) when the query is
    /// rejected.
    pub fn check_and_debit(&self, window: &TimeSpan, rho_margin: Seconds, epsilon: f64) -> Result<(), f64> {
        let expanded = window.expand(rho_margin);
        let mut slots = self.slots.lock().expect("budget ledger lock poisoned");
        let (elo, ehi) = self.slot_range(&expanded, slots.len());
        let (wlo, whi) = self.slot_range(window, slots.len());
        let min = slots[elo..ehi].iter().cloned().fold(f64::INFINITY, f64::min);
        // Tolerate floating-point accumulation at the boundary.
        if min + 1e-9 < epsilon {
            return Err(min);
        }
        for s in &mut slots[wlo..whi] {
            *s -= epsilon;
        }
        Ok(())
    }

    /// Remaining budget at a specific time (seconds).
    pub fn remaining_at(&self, secs: f64) -> f64 {
        let slots = self.slots.lock().expect("budget ledger lock poisoned");
        let idx = ((secs / self.slot_secs).floor().max(0.0) as usize).min(slots.len() - 1);
        slots[idx]
    }
}

impl Clone for BudgetLedger {
    fn clone(&self) -> Self {
        BudgetLedger { slots: Mutex::new(self.slots.lock().expect("budget ledger lock poisoned").clone()), slot_secs: self.slot_secs, initial: self.initial }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_and_debits_only_the_window() {
        let ledger = BudgetLedger::new(3600.0, 1.0);
        let window = TimeSpan::between_secs(600.0, 1200.0);
        ledger.check_and_debit(&window, 30.0, 0.4).unwrap();
        assert!((ledger.remaining_at(900.0) - 0.6).abs() < 1e-9, "inside the window is debited");
        assert!((ledger.remaining_at(590.0) - 1.0).abs() < 1e-9, "the ρ margin is checked but not debited");
        assert!((ledger.remaining_at(1230.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_when_budget_insufficient() {
        let ledger = BudgetLedger::new(3600.0, 1.0);
        let window = TimeSpan::between_secs(0.0, 1800.0);
        ledger.check_and_debit(&window, 60.0, 0.7).unwrap();
        // A second query over an overlapping window asking 0.7 again must fail…
        let err = ledger.check_and_debit(&TimeSpan::between_secs(900.0, 2700.0), 60.0, 0.7).unwrap_err();
        assert!((err - 0.3).abs() < 1e-9, "reports the limiting remaining budget");
        // …but a cheaper one succeeds.
        ledger.check_and_debit(&TimeSpan::between_secs(900.0, 2700.0), 60.0, 0.3).unwrap();
    }

    #[test]
    fn margin_prevents_adjacent_window_double_spend() {
        // Two windows that are closer than ρ share the margin frames, so the
        // second query sees the first query's debit through the margin check.
        let ledger = BudgetLedger::new(3600.0, 1.0);
        ledger.check_and_debit(&TimeSpan::between_secs(0.0, 1000.0), 100.0, 0.8).unwrap();
        // Window starting 50 s after the first one ends: within the ρ margin.
        let res = ledger.check_and_debit(&TimeSpan::between_secs(1050.0, 2000.0), 100.0, 0.8);
        assert!(res.is_err(), "margin overlap must force both queries onto the same budget");
        // A window more than ρ away draws from a disjoint budget.
        ledger.check_and_debit(&TimeSpan::between_secs(1200.0, 2000.0), 100.0, 0.8).unwrap();
    }

    #[test]
    fn budget_depletes_to_zero_and_blocks() {
        let ledger = BudgetLedger::new(600.0, 1.0);
        let w = TimeSpan::between_secs(0.0, 600.0);
        for _ in 0..4 {
            ledger.check_and_debit(&w, 0.0, 0.25).unwrap();
        }
        assert!(ledger.check_and_debit(&w, 0.0, 0.25).is_err());
        assert!(ledger.min_remaining(&w).abs() < 1e-9);
    }

    #[test]
    fn clamps_out_of_range_windows() {
        let ledger = BudgetLedger::new(100.0, 1.0);
        // Window extending past the recorded video is clamped, not a panic.
        ledger.check_and_debit(&TimeSpan::between_secs(50.0, 500.0), 10.0, 0.5).unwrap();
        assert!((ledger.remaining_at(99.0) - 0.5).abs() < 1e-9);
        assert!((ledger.remaining_at(10.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clone_snapshots_state() {
        let ledger = BudgetLedger::new(100.0, 1.0);
        ledger.check_and_debit(&TimeSpan::between_secs(0.0, 100.0), 0.0, 0.5).unwrap();
        let snapshot = ledger.clone();
        ledger.check_and_debit(&TimeSpan::between_secs(0.0, 100.0), 0.0, 0.5).unwrap();
        assert!((snapshot.remaining_at(50.0) - 0.5).abs() < 1e-9);
        assert!(ledger.remaining_at(50.0).abs() < 1e-9);
    }
}
