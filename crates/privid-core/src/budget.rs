//! The per-frame privacy-budget ledger of Algorithm 1 (§6.4), and the
//! admission controller that serializes multi-camera admissions.
//!
//! Rather than one global ε per video, Privid gives *every frame* its own
//! budget. A query over interval `[a, b]` requesting ε_Q is admitted only if
//! every frame in the expanded interval `[a − ρ, b + ρ]` still has at least
//! ε_Q remaining; on admission only the frames in `[a, b]` are debited. The
//! ±ρ margin guarantees that a single event segment (duration ≤ ρ) can never
//! straddle two queries that were admitted against disjoint budgets
//! (Theorem 6.2, case 2).
//!
//! Concurrency model: each [`BudgetLedger`] is internally synchronized, so a
//! single `check_and_debit` is atomic — N racing admissions can never drive a
//! slot negative. Queries that span *several* cameras need their per-camera
//! checks and debits to be atomic as a group; that is the job of
//! [`AdmissionController`], the single serialization point the query service
//! funnels every admission through.

use privid_store::StoreError;
use privid_video::{Seconds, TimeSpan};
use std::sync::Mutex;

/// Why the ledger refused (or could not evaluate) an admission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BudgetError {
    /// Some slot in the margin-expanded window has less than the requested ε
    /// remaining. Carries the limiting (minimum) remaining budget.
    Insufficient {
        /// Minimum remaining budget over the margin-expanded window.
        available: f64,
    },
    /// The query window lies entirely outside the recorded timeline, so there
    /// is no footage (and no budget) to spend. Debiting anyway — the old
    /// behaviour, which silently clamped the window onto the first/last slot —
    /// would let a query over nonexistent video exhaust a real frame's budget.
    OutsideRecording {
        /// Requested window start, seconds.
        start_secs: f64,
        /// Requested window end, seconds.
        end_secs: f64,
        /// Duration of the recorded timeline, seconds.
        duration_secs: f64,
    },
    /// The query window starts at or past a *live* recording's high-watermark.
    /// Unlike [`BudgetError::OutsideRecording`] this is retryable: the footage
    /// does not exist *yet*, and the camera is still recording — the analyst
    /// should re-submit once the live edge has advanced past the window.
    BeyondLiveEdge {
        /// Requested window start, seconds.
        start_secs: f64,
        /// Requested window end, seconds.
        end_secs: f64,
        /// The live edge (footage exists strictly before it), seconds.
        live_edge_secs: f64,
    },
}

/// The ledger state that can change over its life: the per-slot budgets and —
/// for live recordings — the recorded duration, which grows with every
/// appended frame batch. One mutex guards both so an admission never sees a
/// duration without its slots (or vice versa).
#[derive(Debug, Clone)]
struct LedgerState {
    /// Budget remaining per slot.
    slots: Vec<f64>,
    /// Duration of the recorded timeline this ledger covers, in seconds.
    duration_secs: f64,
}

/// Per-frame budget state for one camera. Budgets are tracked at a fixed
/// slot resolution (default: one slot per second of video), which matches
/// the paper's per-frame semantics for any query whose window boundaries are
/// whole seconds.
#[derive(Debug)]
pub struct BudgetLedger {
    /// Lock-order audit: `ledger-state` — a leaf in the declared global
    /// order (analyzer.toml). Every method acquires it, does its arithmetic,
    /// and returns; nothing is ever acquired while it is held. Admissions
    /// that span several ledgers serialize on the admission *gate*, not by
    /// holding two ledger locks at once.
    state: Mutex<LedgerState>,
    /// Slot duration in seconds.
    slot_secs: f64,
    /// Initial per-frame budget.
    initial: f64,
    /// True for a live recording: the timeline grows via [`Self::extend_to`],
    /// new slots are born with the full initial budget, and windows past the
    /// edge are [`BudgetError::BeyondLiveEdge`] (retryable) rather than
    /// [`BudgetError::OutsideRecording`].
    live: bool,
}

impl BudgetLedger {
    /// Create a ledger covering `duration_secs` of video with `initial`
    /// budget per frame, at one-second resolution.
    pub fn new(duration_secs: Seconds, initial: f64) -> Self {
        Self::with_resolution(duration_secs, initial, 1.0)
    }

    /// Create a ledger with an explicit slot resolution.
    pub fn with_resolution(duration_secs: Seconds, initial: f64, slot_secs: f64) -> Self {
        assert!(slot_secs > 0.0);
        let n = (duration_secs / slot_secs).ceil().max(1.0) as usize;
        // `duration_secs` stays the *true* recorded duration (only the slot
        // count is rounded up): a 0.4 s recording at 1 s resolution must still
        // reject a window over [0.5, 0.9), where no footage exists.
        BudgetLedger {
            state: Mutex::new(LedgerState { slots: vec![initial; n], duration_secs: duration_secs.max(0.0) }),
            slot_secs,
            initial,
            live: false,
        }
    }

    /// Create the ledger of a live recording, at one-second resolution: zero
    /// footage to start with, growing by [`Self::extend_to`] as the camera
    /// appends batches.
    pub fn new_live(initial: f64) -> Self {
        let mut ledger = Self::with_resolution(0.0, initial, 1.0);
        ledger.live = true;
        ledger
    }

    /// Rebuild a ledger from recovered durable state: the exact per-slot
    /// budgets and recorded duration a crashed process had journaled. This is
    /// how a restarted service *adopts* a camera's pre-crash ledger instead
    /// of minting fresh ε for footage that was already queried.
    pub fn restore(slots: Vec<f64>, duration_secs: Seconds, slot_secs: f64, initial: f64, live: bool) -> Self {
        assert!(slot_secs > 0.0);
        assert!(!slots.is_empty(), "a ledger always has at least one slot");
        BudgetLedger {
            state: Mutex::new(LedgerState { slots, duration_secs: duration_secs.max(0.0) }),
            slot_secs,
            initial,
            live,
        }
    }

    /// Reconcile this live ledger against recovered durable state after a
    /// supervised store recovery ([`crate::QueryService::recover_store`]):
    /// take the element-wise **minimum** of remaining budget and the
    /// **maximum** of the two timelines.
    ///
    /// The durable shadow can sit on either side of memory after a wedge — an
    /// append that survived a failed fsync makes it *more* debited; a lost
    /// `Credit` rollback record does the same from the other direction — and
    /// in every case the safe merge is the one that can only *reduce*
    /// remaining ε, never re-mint it. Timelines are monotonic high-watermarks
    /// on both sides, so the max can never resurrect pre-edge budget either.
    pub fn reconcile(&self, durable_slots: &[f64], durable_duration_secs: Seconds) {
        let mut state = self.state.lock().expect("budget ledger lock poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        if durable_slots.len() > state.slots.len() {
            // Slots the durable log knows about that memory has not minted
            // yet: born at the initial budget, then immediately min-merged
            // with their durable remainder below.
            state.slots.resize(durable_slots.len(), self.initial);
        }
        for (slot, durable) in state.slots.iter_mut().zip(durable_slots) {
            if *durable < *slot {
                *slot = *durable;
            }
        }
        state.duration_secs = state.duration_secs.max(durable_duration_secs.max(0.0));
    }

    /// The exact per-slot remaining budgets (a consistent copy). Recovery
    /// proofs compare this bit-for-bit against the durable shadow state.
    pub fn slots_snapshot(&self) -> Vec<f64> {
        self.state.lock().expect("budget ledger lock poisoned").slots.clone() // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
    }

    /// The slot resolution, seconds.
    pub fn slot_secs(&self) -> f64 {
        self.slot_secs
    }

    /// The initial per-frame budget.
    pub fn initial_budget(&self) -> f64 {
        self.initial
    }

    /// True if this ledger tracks a live (still-recording) timeline.
    pub fn is_live(&self) -> bool {
        self.live
    }

    /// The recorded duration this ledger covers, in seconds. For a live
    /// ledger this is the current live edge.
    pub fn duration_secs(&self) -> Seconds {
        self.state.lock().expect("budget ledger lock poisoned").duration_secs // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
    }

    /// Grow a live ledger's timeline to `new_duration_secs`. Frames that come
    /// into existence are born with the full initial budget — Privid's budget
    /// refills over the *timeline*, not over wall time.
    ///
    /// The timeline is a monotonic high-watermark: an extension at or below
    /// the current duration is a no-op rather than an error, because a
    /// recovered ledger can sit *ahead* of its re-fed recording — the video
    /// owner replays already-recorded batches after a restart, and those
    /// replayed edges must not (and cannot) shrink the ledger or re-mint ε.
    pub fn extend_to(&self, new_duration_secs: Seconds) {
        assert!(self.live, "only live ledgers grow; re-register a fixed recording instead");
        assert!(new_duration_secs.is_finite(), "live edge must be finite, got {new_duration_secs}");
        let mut state = self.state.lock().expect("budget ledger lock poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        if new_duration_secs <= state.duration_secs {
            return;
        }
        let n = ((new_duration_secs / self.slot_secs).ceil().max(1.0)) as usize;
        if n > state.slots.len() {
            state.slots.resize(n, self.initial);
        }
        state.duration_secs = new_duration_secs;
    }

    /// Validate `span` against the state, without locking. See
    /// [`Self::validate_window`] for the semantics.
    fn validate_in(&self, state: &LedgerState, span: &TimeSpan) -> Result<(), BudgetError> {
        let (start, end) = (span.start.as_secs(), span.end.as_secs());
        if end < 0.0 || (start < 0.0 && end <= 0.0) {
            return Err(BudgetError::OutsideRecording { start_secs: start, end_secs: end, duration_secs: state.duration_secs });
        }
        // The recorded part of the window begins at max(start, 0): a window
        // like [-5, 0.5) on an empty live recording holds no footage at all,
        // and must not slip past the edge check on its negative start.
        if start.max(0.0) >= state.duration_secs {
            return Err(if self.live {
                BudgetError::BeyondLiveEdge { start_secs: start, end_secs: end, live_edge_secs: state.duration_secs }
            } else {
                BudgetError::OutsideRecording { start_secs: start, end_secs: end, duration_secs: state.duration_secs }
            });
        }
        Ok(())
    }

    /// Check that `span` touches the recorded timeline at all. Windows that
    /// merely *extend past* an edge are fine (they are clamped), and an empty
    /// window at a recorded position keeps its degenerate zero-chunk
    /// semantics. Windows lying entirely before time zero or past the end of
    /// a fixed recording are [`BudgetError::OutsideRecording`]; windows
    /// starting at or past a live recording's edge are the retryable
    /// [`BudgetError::BeyondLiveEdge`].
    pub fn validate_window(&self, span: &TimeSpan) -> Result<(), BudgetError> {
        let state = self.state.lock().expect("budget ledger lock poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        self.validate_in(&state, span)
    }

    /// Slot indices covered by `span`, given the current state. Fails when
    /// the span is fully disjoint from the recording; partially overlapping
    /// spans are clamped to the recorded edge.
    fn slot_range(&self, state: &LedgerState, span: &TimeSpan) -> Result<(usize, usize), BudgetError> {
        self.validate_in(state, span)?;
        let n = state.slots.len();
        let lo = ((span.start.as_secs() / self.slot_secs).floor().max(0.0) as usize).min(n.saturating_sub(1));
        let hi = ((span.end.as_secs() / self.slot_secs).ceil() as usize).clamp(lo + 1, n);
        Ok((lo, hi))
    }

    /// The slot interval `[lo, hi)` a [`Self::check_and_debit`] over `window`
    /// would debit, given the current timeline (partial overlaps clamp to the
    /// recorded edge, exactly as the debit does). The admission journal logs
    /// this resolved range — not the window in seconds — so replaying the
    /// record cannot diverge from the debit that was actually applied.
    pub fn debit_slot_range(&self, window: &TimeSpan) -> Result<(usize, usize), BudgetError> {
        let state = self.state.lock().expect("budget ledger lock poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        self.slot_range(&state, window)
    }

    /// Minimum remaining budget over a span.
    pub fn min_remaining(&self, span: &TimeSpan) -> Result<f64, BudgetError> {
        let state = self.state.lock().expect("budget ledger lock poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        let (lo, hi) = self.slot_range(&state, span)?;
        // privid-analyzer: allow(panic-freedom) -- slot_range clamps `[lo, hi)` to slots.len()
        Ok(state.slots[lo..hi].iter().cloned().fold(f64::INFINITY, f64::min))
    }

    /// Algorithm 1, lines 1–5: admit the query iff every slot in
    /// `window ± rho_margin` has at least `epsilon` remaining, then debit
    /// `epsilon` from the slots of `window` only. The check and the debit
    /// happen under one lock acquisition, so racing admissions on the same
    /// ledger can never jointly over-spend a slot.
    pub fn check_and_debit(&self, window: &TimeSpan, rho_margin: Seconds, epsilon: f64) -> Result<(), BudgetError> {
        let expanded = window.expand(rho_margin);
        let mut state = self.state.lock().expect("budget ledger lock poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        // Validate the *query* window (the expanded window is a superset, so
        // it overlaps the recording whenever the query window does).
        let (wlo, whi) = self.slot_range(&state, window)?;
        let (elo, ehi) = self.slot_range(&state, &expanded)?;
        // privid-analyzer: allow(panic-freedom) -- slot_range clamps both ranges to slots.len()
        let min = state.slots[elo..ehi].iter().cloned().fold(f64::INFINITY, f64::min);
        // Tolerate floating-point accumulation at the boundary.
        if min + 1e-9 < epsilon {
            return Err(BudgetError::Insufficient { available: min });
        }
        // privid-analyzer: allow(panic-freedom) -- range clamped by slot_range; a silent .get_mut skip here would under-debit
        for s in &mut state.slots[wlo..whi] {
            *s -= epsilon;
        }
        Ok(())
    }

    /// Undo a debit made by `check_and_debit` (admission rollback only: the
    /// window must have been debited `epsilon` beforehand). Private to the
    /// budget module — only [`AdmissionController`] may unwind, under its gate.
    fn credit(&self, window: &TimeSpan, epsilon: f64) {
        let mut state = self.state.lock().expect("budget ledger lock poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        if let Ok((lo, hi)) = self.slot_range(&state, window) {
            // privid-analyzer: allow(panic-freedom) -- range clamped by slot_range; skipping the credit would leave a rolled-back admission spent
            for s in &mut state.slots[lo..hi] {
                *s += epsilon;
            }
        }
    }

    /// Remaining budget at a specific time (seconds).
    pub fn remaining_at(&self, secs: f64) -> f64 {
        let state = self.state.lock().expect("budget ledger lock poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        // privid-analyzer: allow(panic-freedom) -- with_resolution mints >= 1 slot (n.max(1.0)), so len-1 cannot underflow and idx <= len-1
        let idx = ((secs / self.slot_secs).floor().max(0.0) as usize).min(state.slots.len() - 1);
        state.slots[idx] // privid-analyzer: allow(panic-freedom) -- idx is min-clamped to len-1 on the line above
    }
}

impl Clone for BudgetLedger {
    fn clone(&self) -> Self {
        BudgetLedger {
            state: Mutex::new(self.state.lock().expect("budget ledger lock poisoned").clone()), // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
            slot_secs: self.slot_secs,
            initial: self.initial,
            live: self.live,
        }
    }
}

/// One camera's part of a multi-camera admission: which ledger, over which
/// window, with which ±ρ margin.
#[derive(Debug)]
pub struct AdmissionRequest<'a> {
    /// The camera's budget ledger.
    pub ledger: &'a BudgetLedger,
    /// The query window to debit.
    pub window: TimeSpan,
    /// The camera's ρ margin (checked but not debited).
    pub rho_margin: Seconds,
}

/// Why a journaled admission failed: a budget rejection (with the index of
/// the failing request) or a journal write that could not be made durable
/// (in which case nothing was debited — a release must never outrun its
/// durable debit record).
#[derive(Debug)]
pub enum AdmissionFailure {
    /// A request failed the budget check (or its window validation).
    Budget {
        /// Index of the failing request.
        index: usize,
        /// Why it failed.
        error: BudgetError,
    },
    /// The admission journal refused the debit record; the admission was
    /// aborted before any slot was debited.
    Journal(StoreError),
}

/// The deferred durability half of a group-committed admission: a journal
/// that *stages* its admit record into a commit batch hands one of these
/// back, and the admission path redeems it exactly once — **after** the
/// admission gates are released, so one shard's fsync never stalls another
/// shard's admissions. The admission is acknowledged only when the wait
/// resolves `Ok`.
pub type CommitWait = Box<dyn FnOnce() -> Result<(), StoreError> + Send>;

/// The durability hook of [`AdmissionController::admit_journaled`] and
/// [`admit_fleet`]: the serving layer implements this over its write-ahead
/// log — one implementation per shard, each bound to that shard's log.
pub trait AdmissionJournal {
    /// Called under the admission gate after every budget check passed and
    /// **before any slot is debited**. An `Err` aborts the admission — the
    /// in-memory ledger must never run ahead of the journal.
    ///
    /// A journal over a group-commit log stages the record here and returns
    /// `Ok(Some(wait))`; the admission path redeems the [`CommitWait`] after
    /// the gates are released and acknowledges the admission only once it
    /// resolves `Ok`. `Ok(None)` means the record is already durable (or the
    /// journal is non-durable by configuration) and there is nothing to wait
    /// on.
    fn record_admit(&self, requests: &[AdmissionRequest<'_>], epsilon: f64) -> Result<Option<CommitWait>, StoreError>;

    /// Called after the (rare) all-or-nothing rollback: the first `debited`
    /// requests were debited and credited back, the rest never debited at
    /// all. Either way the admission's net in-memory effect is zero, while
    /// [`AdmissionJournal::record_admit`] journaled debits for **every**
    /// request — so the journal must compensate *all* of them, not just the
    /// first `debited`. Runs *after* the in-memory credits, so a crash in
    /// between leaves the journal over-debited — never under.
    fn record_rollback(&self, requests: &[AdmissionRequest<'_>], debited: usize, epsilon: f64);
}

/// Serializes admissions that span several ledgers.
///
/// A query over multiple cameras must be admitted against *all* of its
/// cameras or none: if two concurrent queries each passed their per-camera
/// checks interleaved, one could debit camera A while the other debits
/// camera B and both then fail the remaining camera, leaving the ledgers
/// inconsistent. The controller closes that race by running the whole
/// check-all-then-debit-all sequence under a single gate, making `budget`
/// the one serialization point for admission in the system.
///
/// With a durable service the gate serializes one more thing: live-edge
/// extensions run under [`AdmissionController::exclusive`], so the slot
/// ranges an [`AdmissionJournal`] records between check and debit can never
/// be invalidated by a concurrent ledger growth.
#[derive(Debug, Default)]
pub struct AdmissionController {
    /// Lock-order audit: `admission-gate` — the outermost lock in the
    /// declared global order (analyzer.toml). `admit_journaled` holds it
    /// across validate → journal → debit, acquiring each `ledger-state`
    /// leaf inside it; `exclusive` lends it to the service's registration
    /// and live-extension paths, which take the registry locks under it
    /// (gate-before-registry).
    gate: Mutex<()>,
}

impl AdmissionController {
    /// Create a controller.
    pub fn new() -> Self {
        Self::default()
    }

    /// Atomically admit `epsilon` against every request, or none of them.
    /// On rejection returns the index of the failing request plus the reason.
    pub fn admit(&self, requests: &[AdmissionRequest<'_>], epsilon: f64) -> Result<(), (usize, BudgetError)> {
        self.admit_journaled(requests, epsilon, None).map_err(|failure| match failure {
            AdmissionFailure::Budget { index, error } => (index, error),
            // privid-analyzer: allow(panic-freedom) -- this closure maps a call made with journal=None; the Journal variant is impossible
            AdmissionFailure::Journal(_) => unreachable!("no journal was supplied"),
        })
    }

    /// [`AdmissionController::admit`] with a durability hook: after the
    /// checks pass, the journal records the admission's exact slot-range
    /// debits — and only once that record is durable is the admission
    /// acknowledged. (With a group-commit journal the slots are debited
    /// between staging and durability; a commit failure credits them back,
    /// so acknowledgement still never outruns the durable record.)
    ///
    /// This is the single-shard special case of [`admit_fleet`]: one gate,
    /// one journal, every request a member.
    pub fn admit_journaled(
        &self,
        requests: &[AdmissionRequest<'_>],
        epsilon: f64,
        journal: Option<&dyn AdmissionJournal>,
    ) -> Result<(), AdmissionFailure> {
        let group =
            [ShardAdmission { shard: 0, controller: self, journal, members: (0..requests.len()).collect() }];
        admit_fleet(&group, requests, epsilon)
    }

    /// Run `f` holding the admission gate. The serving layer wraps live-edge
    /// extensions and camera registrations (journal append + state mutation)
    /// in this, so they serialize against admissions and the journal
    /// observes every ledger-shaping event in exactly the order the ledgers
    /// do.
    pub fn exclusive<R>(&self, f: impl FnOnce() -> R) -> R {
        let _gate = self.gate.lock().expect("admission gate poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        f()
    }
}

/// One shard's slice of a fleet admission: the shard's gate rank, its
/// controller and journal, and which of the caller's requests live on it.
///
/// The sharded service hashes each camera to a shard; a query spanning
/// cameras on several shards builds one group per touched shard and hands
/// them — **sorted by ascending shard index** — to [`admit_fleet`].
pub struct ShardAdmission<'a> {
    /// The shard's index: its rank in the fleet-wide gate order.
    pub shard: usize,
    /// The shard's admission controller (its gate).
    pub controller: &'a AdmissionController,
    /// The shard's durability journal, if the service is durable.
    pub journal: Option<&'a dyn AdmissionJournal>,
    /// Indices into the caller's request slice homed on this shard.
    pub members: Vec<usize>,
}

/// Atomically admit `epsilon` against every request across several shards,
/// or none of them — the multi-shard generalization of
/// [`AdmissionController::admit_journaled`].
///
/// ## Lock discipline
///
/// Shard gates are ranked by shard index, and every multi-shard admission
/// acquires them in strictly ascending order — two admissions whose shard
/// sets overlap always contend in the same order, so the fleet cannot
/// deadlock. `analyzer.toml` ranks the gates (`indexed` lock family) so the
/// lexical rule machine-checks literal acquisitions; this function's runtime
/// assert covers the dynamic path the lexical rule cannot see.
///
/// ## Durability protocol
///
/// Under the gates: check all → stage one admit record per shard (ascending)
/// → debit all. The gates are then **released before** the [`CommitWait`]s
/// are redeemed, so the expensive fsync runs outside every gate and one
/// shard's flush never stalls another shard's admissions. If any wait fails,
/// the admission cannot be acknowledged: the in-memory debits are credited
/// back and every shard whose record *did* commit journals compensating
/// credits — the durable state is then at worst over-debited (an admit
/// surviving an unknowable fsync), never under.
pub fn admit_fleet(
    groups: &[ShardAdmission<'_>],
    requests: &[AdmissionRequest<'_>],
    epsilon: f64,
) -> Result<(), AdmissionFailure> {
    let budget_err = |index: usize, error: BudgetError| AdmissionFailure::Budget { index, error };
    assert!(
        groups.windows(2).all(|w| w[0].shard < w[1].shard), // privid-analyzer: allow(panic-freedom) -- windows(2) yields exactly-2 slices; out-of-order gates risk fleet deadlock, so refusing loudly is the point
        "fleet admission groups must be sorted by strictly ascending shard index"
    );
    debug_assert!(
        {
            let mut seen = vec![false; requests.len()];
            groups
                .iter()
                .flat_map(|g| g.members.iter())
                .all(|&m| seen.get_mut(m).is_some_and(|s| !std::mem::replace(s, true)))
                && seen.iter().all(|&s| s)
        },
        "fleet admission members must partition the request list"
    );
    // Lock-order audit: `admission-gate`, rank within the family = shard
    // index. All gates are held across validate → stage → debit; the
    // `ledger-state` and `wal-inner` leaves are only ever taken inside.
    let _gates: Vec<_> = groups
        .iter()
        .map(|g| g.controller.gate.lock().expect("admission gate poisoned")) // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        .collect();
    // Phase 1: every window must be on the recording and have enough
    // margin-expanded budget. Nothing is debited yet. Requests are checked
    // in caller order so a rejection index maps straight back.
    for (i, r) in requests.iter().enumerate() {
        r.ledger.validate_window(&r.window).map_err(|e| budget_err(i, e))?;
        let min = r.ledger.min_remaining(&r.window.expand(r.rho_margin)).map_err(|e| budget_err(i, e))?;
        if min + 1e-9 < epsilon {
            return Err(budget_err(i, BudgetError::Insufficient { available: min }));
        }
    }
    // Phase 1 checked each request independently, which misses compound
    // spending when several requests share one ledger. Discovering that
    // only at debit time would force a rollback *after* the admission was
    // journaled — and the compensating credits cannot reproduce the
    // untouched slots bit-for-bit (float subtraction does not round-trip).
    // So simulate the full debit sequence on scratch copies first: by the
    // time anything is journaled or debited, the admission is known to
    // fit. (Cost is one slot-vector clone per *shared* ledger; the common
    // all-distinct case skips this entirely. A ledger belongs to exactly
    // one camera and a camera to exactly one shard, so sharing can only
    // happen within a group — the global simulation covers it either way.)
    let shares_a_ledger = requests
        .iter()
        .enumerate()
        // privid-analyzer: allow(panic-freedom) -- `i` comes from enumerate over `requests`, so `..i` is in bounds
        .any(|(i, r)| requests[..i].iter().any(|q| std::ptr::eq(q.ledger, r.ledger)));
    if shares_a_ledger {
        simulate_shared(requests, epsilon).map_err(|(index, error)| budget_err(index, error))?;
    }
    // Stage one admit record per shard, in ascending shard order. The record
    // describes exactly the debits phase 2 will apply (the gates exclude
    // concurrent extensions, so the resolved slot ranges cannot move
    // underneath us). A crash after this point at worst *over*-debits on
    // recovery.
    let mut durable: Vec<bool> = vec![false; groups.len()];
    let mut waits: Vec<(usize, CommitWait)> = Vec::new();
    for (gi, g) in groups.iter().enumerate() {
        let Some(journal) = g.journal else { continue };
        match journal.record_admit(&member_requests(g, requests), epsilon) {
            Ok(Some(wait)) => waits.push((gi, wait)),
            Ok(None) => {
                if let Some(d) = durable.get_mut(gi) {
                    *d = true;
                }
            }
            Err(e) => {
                // Earlier shards staged admit records for an admission that
                // will never debit. Resolve their commits now (nothing is
                // debited yet, so waiting under the gates is safe) and
                // compensate the shards whose record became durable; a wait
                // that failed left nothing durable to compensate.
                redeem_waits(&mut durable, waits);
                compensate_durable(groups, requests, &durable, 0, epsilon);
                return Err(AdmissionFailure::Journal(e));
            }
        }
    }
    // Phase 2: debit. With shared ledgers pre-simulated, a failure here
    // is only possible when some caller debits a ledger *outside* the
    // controller concurrently. Roll back every debit already made so the
    // call stays all-or-nothing, and journal the rollback after the
    // credits (crash in between = over-debit; the compensation may also
    // differ from the untouched slots by ULPs — a bounded, conservative
    // residue of an already-out-of-contract race).
    for (i, r) in requests.iter().enumerate() {
        if let Err(e) = r.ledger.check_and_debit(&r.window, r.rho_margin, epsilon) {
            // privid-analyzer: allow(panic-freedom) -- `i` comes from enumerate over `requests`, so `..i` is in bounds
            for done in &requests[..i] {
                done.ledger.credit(&done.window, epsilon);
            }
            redeem_waits(&mut durable, waits);
            compensate_durable(groups, requests, &durable, i, epsilon);
            return Err(budget_err(i, e));
        }
    }
    // Success path: release every gate, then redeem the commit waits — the
    // group-commit flush is the expensive part of a durable admission, and
    // holding the gates across it would serialize the fleet on one fsync.
    drop(_gates);
    if let Some(e) = redeem_waits(&mut durable, waits) {
        // The admission cannot be acknowledged: at least one shard's admit
        // record is not durable, and a release must never outrun its durable
        // debit record. Undo the in-memory debits (credits first, durable
        // compensation after, so a crash in between over-debits — never
        // under), then journal compensating credits on every shard whose
        // record did reach disk.
        for r in requests {
            r.ledger.credit(&r.window, epsilon);
        }
        compensate_durable(groups, requests, &durable, requests.len(), epsilon);
        return Err(AdmissionFailure::Journal(e));
    }
    Ok(())
}

/// Re-borrow the requests belonging to one shard group, in member order.
fn member_requests<'a>(group: &ShardAdmission<'_>, requests: &[AdmissionRequest<'a>]) -> Vec<AdmissionRequest<'a>> {
    group
        .members
        .iter()
        .filter_map(|&m| requests.get(m))
        .map(|r| AdmissionRequest { ledger: r.ledger, window: r.window, rho_margin: r.rho_margin })
        .collect()
}

/// Redeem every outstanding commit wait, marking the groups whose admit
/// record reached disk in `durable`. Returns the first wait failure.
fn redeem_waits(durable: &mut [bool], waits: Vec<(usize, CommitWait)>) -> Option<StoreError> {
    let mut failure = None;
    for (gi, wait) in waits {
        match wait() {
            Ok(()) => {
                if let Some(d) = durable.get_mut(gi) {
                    *d = true;
                }
            }
            Err(e) => {
                if failure.is_none() {
                    failure = Some(e);
                }
            }
        }
    }
    failure
}

/// Journal compensating credits on every shard whose admit record is durable
/// but whose admission was unwound. `debited` is the count of requests (in
/// caller order) that were debited and credited back in memory — the journal
/// compensates its whole slice regardless; the count is diagnostic.
fn compensate_durable(
    groups: &[ShardAdmission<'_>],
    requests: &[AdmissionRequest<'_>],
    durable: &[bool],
    debited: usize,
    epsilon: f64,
) {
    for (g, _) in groups.iter().zip(durable).filter(|(_, d)| **d) {
        if let Some(journal) = g.journal {
            let shard_debited = g.members.iter().filter(|&&m| m < debited).count();
            journal.record_rollback(&member_requests(g, requests), shard_debited, epsilon);
        }
    }
}

/// Simulate the full debit sequence of an admission whose requests share at
/// least one ledger, on scratch slot copies — mirroring `check_and_debit`'s
/// arithmetic (same clamping, same `1e-9` boundary tolerance) without
/// touching any real slot.
fn simulate_shared(requests: &[AdmissionRequest<'_>], epsilon: f64) -> Result<(), (usize, BudgetError)> {
    let mut scratch: Vec<(*const BudgetLedger, Vec<f64>)> = Vec::new();
    for (i, r) in requests.iter().enumerate() {
        let ptr = r.ledger as *const BudgetLedger;
        let idx = match scratch.iter().position(|(p, _)| std::ptr::eq(*p, ptr)) {
            Some(idx) => idx,
            None => {
                scratch.push((ptr, r.ledger.slots_snapshot()));
                scratch.len() - 1
            }
        };
        let (elo, ehi) = r.ledger.debit_slot_range(&r.window.expand(r.rho_margin)).map_err(|e| (i, e))?;
        let (wlo, whi) = r.ledger.debit_slot_range(&r.window).map_err(|e| (i, e))?;
        // privid-analyzer: allow(panic-freedom) -- `idx` is a position in `scratch` or len-1 right after a push
        let slots = &mut scratch[idx].1;
        // privid-analyzer: allow(panic-freedom) -- both ranges clamped by debit_slot_range against the same snapshot length
        let min = slots[elo..ehi].iter().cloned().fold(f64::INFINITY, f64::min);
        if min + 1e-9 < epsilon {
            return Err((i, BudgetError::Insufficient { available: min }));
        }
        // privid-analyzer: allow(panic-freedom) -- [wlo, whi) clamped by debit_slot_range against the same snapshot length
        for s in &mut slots[wlo..whi] {
            *s -= epsilon;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn admits_and_debits_only_the_window() {
        let ledger = BudgetLedger::new(3600.0, 1.0);
        let window = TimeSpan::between_secs(600.0, 1200.0);
        ledger.check_and_debit(&window, 30.0, 0.4).unwrap();
        assert!((ledger.remaining_at(900.0) - 0.6).abs() < 1e-9, "inside the window is debited");
        assert!((ledger.remaining_at(590.0) - 1.0).abs() < 1e-9, "the ρ margin is checked but not debited");
        assert!((ledger.remaining_at(1230.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_when_budget_insufficient() {
        let ledger = BudgetLedger::new(3600.0, 1.0);
        let window = TimeSpan::between_secs(0.0, 1800.0);
        ledger.check_and_debit(&window, 60.0, 0.7).unwrap();
        // A second query over an overlapping window asking 0.7 again must fail…
        let err = ledger.check_and_debit(&TimeSpan::between_secs(900.0, 2700.0), 60.0, 0.7).unwrap_err();
        match err {
            BudgetError::Insufficient { available } => {
                assert!((available - 0.3).abs() < 1e-9, "reports the limiting remaining budget")
            }
            other => panic!("expected Insufficient, got {other:?}"),
        }
        // …but a cheaper one succeeds.
        ledger.check_and_debit(&TimeSpan::between_secs(900.0, 2700.0), 60.0, 0.3).unwrap();
    }

    #[test]
    fn margin_prevents_adjacent_window_double_spend() {
        // Two windows that are closer than ρ share the margin frames, so the
        // second query sees the first query's debit through the margin check.
        let ledger = BudgetLedger::new(3600.0, 1.0);
        ledger.check_and_debit(&TimeSpan::between_secs(0.0, 1000.0), 100.0, 0.8).unwrap();
        // Window starting 50 s after the first one ends: within the ρ margin.
        let res = ledger.check_and_debit(&TimeSpan::between_secs(1050.0, 2000.0), 100.0, 0.8);
        assert!(res.is_err(), "margin overlap must force both queries onto the same budget");
        // A window more than ρ away draws from a disjoint budget.
        ledger.check_and_debit(&TimeSpan::between_secs(1200.0, 2000.0), 100.0, 0.8).unwrap();
    }

    #[test]
    fn budget_depletes_to_zero_and_blocks() {
        let ledger = BudgetLedger::new(600.0, 1.0);
        let w = TimeSpan::between_secs(0.0, 600.0);
        for _ in 0..4 {
            ledger.check_and_debit(&w, 0.0, 0.25).unwrap();
        }
        assert!(ledger.check_and_debit(&w, 0.0, 0.25).is_err());
        assert!(ledger.min_remaining(&w).unwrap().abs() < 1e-9);
    }

    #[test]
    fn clamps_partially_out_of_range_windows() {
        let ledger = BudgetLedger::new(100.0, 1.0);
        // Window extending past the recorded video is clamped, not a panic.
        ledger.check_and_debit(&TimeSpan::between_secs(50.0, 500.0), 10.0, 0.5).unwrap();
        assert!((ledger.remaining_at(99.0) - 0.5).abs() < 1e-9);
        assert!((ledger.remaining_at(10.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_fully_disjoint_windows() {
        // Regression: a window entirely past the end of the recording used to
        // be silently clamped onto the *last real slot*, so a query over
        // nonexistent video debited (and could exhaust) a real frame's budget.
        let ledger = BudgetLedger::new(100.0, 1.0);
        let ghost = TimeSpan::between_secs(200.0, 300.0);
        match ledger.check_and_debit(&ghost, 10.0, 0.5) {
            Err(BudgetError::OutsideRecording { start_secs, end_secs, duration_secs }) => {
                assert_eq!(start_secs, 200.0);
                assert_eq!(end_secs, 300.0);
                assert_eq!(duration_secs, 100.0);
            }
            other => panic!("expected OutsideRecording, got {other:?}"),
        }
        assert!(ledger.min_remaining(&ghost).is_err());
        // The last real slot kept its full budget.
        assert!((ledger.remaining_at(99.0) - 1.0).abs() < 1e-9, "no real frame may be debited");
        // A window starting exactly at the recording's end is also disjoint
        // (windows are half-open), as is one lying entirely before time zero.
        assert!(ledger.check_and_debit(&TimeSpan::between_secs(100.0, 120.0), 0.0, 0.1).is_err());
        assert!(ledger.check_and_debit(&TimeSpan::between_secs(-20.0, 0.0), 0.0, 0.1).is_err());
        // …but a degenerate empty window at a recorded position keeps its
        // zero-chunk semantics (it backs "COUNT over an empty table" queries).
        assert!(ledger.check_and_debit(&TimeSpan::between_secs(0.0, 0.0), 0.0, 0.1).is_ok());
    }

    #[test]
    fn clone_snapshots_state() {
        let ledger = BudgetLedger::new(100.0, 1.0);
        ledger.check_and_debit(&TimeSpan::between_secs(0.0, 100.0), 0.0, 0.5).unwrap();
        let snapshot = ledger.clone();
        ledger.check_and_debit(&TimeSpan::between_secs(0.0, 100.0), 0.0, 0.5).unwrap();
        assert!((snapshot.remaining_at(50.0) - 0.5).abs() < 1e-9);
        assert!(ledger.remaining_at(50.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_admissions_never_over_spend_a_slot() {
        // N threads race identical admissions: the ledger must admit *exactly*
        // initial/ε of them and every slot must stay non-negative — a lost
        // update would admit more, a torn debit would drive a slot negative.
        let ledger = BudgetLedger::new(1000.0, 1.0);
        let window = TimeSpan::between_secs(100.0, 400.0);
        let admitted = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        if ledger.check_and_debit(&window, 30.0, 0.05).is_ok() {
                            admitted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(admitted.load(Ordering::Relaxed), 20, "exactly ⌊1.0/0.05⌋ admissions fit");
        let min = ledger.min_remaining(&window).unwrap();
        assert!(min.abs() < 1e-6, "window budget fully spent, never negative: {min}");
        for s in 0..1000 {
            assert!(ledger.remaining_at(s as f64) >= -1e-9, "slot {s} over-spent");
        }
    }

    #[test]
    fn concurrent_overlapping_windows_respect_the_margin_rule() {
        // Two window families within ρ of each other race admissions. The
        // margin-expanded check couples them: wherever expansions overlap,
        // combined spending may never exceed the per-frame budget, and after
        // the dust settles a query into the shared margin must be rejected.
        let ledger = BudgetLedger::new(600.0, 1.0);
        let a = TimeSpan::between_secs(0.0, 200.0);
        let b = TimeSpan::between_secs(250.0, 450.0); // within ρ = 100 of `a`
        let (hits_a, hits_b) = (AtomicUsize::new(0), AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for t in 0..8 {
                let (w, hits) = if t % 2 == 0 { (&a, &hits_a) } else { (&b, &hits_b) };
                let ledger = &ledger;
                scope.spawn(move || {
                    for _ in 0..20 {
                        if ledger.check_and_debit(w, 100.0, 0.2).is_ok() {
                            hits.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        for s in 0..600 {
            assert!(ledger.remaining_at(s as f64) >= -1e-9, "slot {s} over-spent");
        }
        // Each family alone can spend at most 1.0/0.2 = 5 admissions.
        assert!(hits_a.load(Ordering::Relaxed) <= 5);
        assert!(hits_b.load(Ordering::Relaxed) <= 5);
        assert!(hits_a.load(Ordering::Relaxed) + hits_b.load(Ordering::Relaxed) >= 5, "budget is actually spendable");
        // The shared margin [150, 550] saw both families' debits: a third
        // query admitted against it must see the *joint* spending.
        let margin_probe = TimeSpan::between_secs(210.0, 240.0);
        let available = ledger.min_remaining(&margin_probe.expand(100.0)).unwrap();
        let spend_a = hits_a.load(Ordering::Relaxed) as f64 * 0.2;
        let spend_b = hits_b.load(Ordering::Relaxed) as f64 * 0.2;
        let expected = (1.0 - spend_a).min(1.0 - spend_b);
        assert!((available - expected).abs() < 1e-9, "margin probe sees both families: {available} vs {expected}");
    }

    #[test]
    fn live_ledger_grows_and_new_frames_are_born_with_full_budget() {
        let ledger = BudgetLedger::new_live(1.0);
        assert!(ledger.is_live());
        assert_eq!(ledger.duration_secs(), 0.0);
        // Nothing recorded yet: every window is beyond the live edge.
        assert!(matches!(
            ledger.check_and_debit(&TimeSpan::between_secs(0.0, 10.0), 0.0, 0.1),
            Err(BudgetError::BeyondLiveEdge { .. })
        ));
        ledger.extend_to(100.0);
        ledger.check_and_debit(&TimeSpan::between_secs(0.0, 100.0), 0.0, 0.4).unwrap();
        assert!((ledger.remaining_at(50.0) - 0.6).abs() < 1e-9);
        // A window starting at the edge is the *retryable* error, with the
        // edge reported so the analyst knows when to come back.
        match ledger.check_and_debit(&TimeSpan::between_secs(100.0, 200.0), 0.0, 0.1) {
            Err(BudgetError::BeyondLiveEdge { start_secs, end_secs, live_edge_secs }) => {
                assert_eq!((start_secs, end_secs, live_edge_secs), (100.0, 200.0, 100.0));
            }
            other => panic!("expected BeyondLiveEdge, got {other:?}"),
        }
        // …while a window before time zero will never exist on any timeline.
        assert!(matches!(
            ledger.check_and_debit(&TimeSpan::between_secs(-20.0, 0.0), 0.0, 0.1),
            Err(BudgetError::OutsideRecording { .. })
        ));
        // New footage is born with the full ε; old slots keep their debits.
        ledger.extend_to(200.0);
        ledger.check_and_debit(&TimeSpan::between_secs(100.0, 200.0), 0.0, 0.1).unwrap();
        assert!((ledger.remaining_at(150.0) - 0.9).abs() < 1e-9);
        assert!((ledger.remaining_at(50.0) - 0.6).abs() < 1e-9);
    }

    #[test]
    fn live_ledger_partial_overlap_debits_only_recorded_slots() {
        let ledger = BudgetLedger::new_live(1.0);
        ledger.extend_to(100.0);
        // A window overhanging the live edge is clamped, exactly like a fixed
        // recording clamps windows past its end.
        ledger.check_and_debit(&TimeSpan::between_secs(50.0, 300.0), 0.0, 0.5).unwrap();
        assert!((ledger.remaining_at(99.0) - 0.5).abs() < 1e-9);
        assert!((ledger.remaining_at(10.0) - 1.0).abs() < 1e-9);
        ledger.extend_to(300.0);
        assert!((ledger.remaining_at(150.0) - 1.0).abs() < 1e-9, "slots born after the debit carry full budget");
    }

    #[test]
    fn negative_start_window_on_an_empty_live_ledger_is_beyond_the_edge() {
        // Regression (review): [-5, 0.5) used to slip past the edge check on
        // its negative start and debit the phantom slot of a zero-footage
        // ledger, releasing pure noise as a successful query.
        let ledger = BudgetLedger::new_live(1.0);
        assert!(matches!(
            ledger.check_and_debit(&TimeSpan::between_secs(-5.0, 0.5), 0.0, 0.25),
            Err(BudgetError::BeyondLiveEdge { .. })
        ));
        assert!((ledger.remaining_at(0.0) - 1.0).abs() < 1e-9, "phantom slot untouched");
        // Once footage exists, the window clamps onto it like any partial overlap.
        ledger.extend_to(10.0);
        ledger.check_and_debit(&TimeSpan::between_secs(-5.0, 0.5), 0.0, 0.25).unwrap();
        assert!((ledger.remaining_at(0.0) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn fractional_extension_shares_the_partial_slot() {
        let ledger = BudgetLedger::new_live(1.0);
        ledger.extend_to(0.4);
        ledger.check_and_debit(&TimeSpan::between_secs(0.0, 0.4), 0.0, 0.25).unwrap();
        // Growing within the same one-second slot mints no fresh budget.
        ledger.extend_to(0.8);
        assert!((ledger.remaining_at(0.6) - 0.75).abs() < 1e-9);
        assert!(matches!(
            ledger.validate_window(&TimeSpan::between_secs(0.9, 1.5)),
            Err(BudgetError::BeyondLiveEdge { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "only live ledgers grow")]
    fn fixed_ledgers_refuse_to_grow() {
        BudgetLedger::new(100.0, 1.0).extend_to(200.0);
    }

    #[test]
    fn replayed_extensions_are_no_ops() {
        // After crash recovery the ledger can sit ahead of the re-fed
        // recording: replayed edges below the high-watermark must neither
        // shrink the timeline nor re-mint ε for debited slots.
        let ledger = BudgetLedger::new_live(1.0);
        ledger.extend_to(100.0);
        ledger.check_and_debit(&TimeSpan::between_secs(0.0, 100.0), 0.0, 0.4).unwrap();
        ledger.extend_to(30.0);
        ledger.extend_to(100.0);
        assert_eq!(ledger.duration_secs(), 100.0);
        assert!((ledger.remaining_at(50.0) - 0.6).abs() < 1e-9, "replayed edge must not refill the slot");
        assert!(matches!(
            ledger.validate_window(&TimeSpan::between_secs(100.0, 120.0)),
            Err(BudgetError::BeyondLiveEdge { live_edge_secs, .. }) if live_edge_secs == 100.0
        ));
    }

    #[test]
    fn restore_rebuilds_the_exact_ledger() {
        let original = BudgetLedger::new_live(1.0);
        original.extend_to(10.0);
        original.check_and_debit(&TimeSpan::between_secs(2.0, 7.0), 0.0, 0.1 + 0.2).unwrap();
        let restored = BudgetLedger::restore(original.slots_snapshot(), original.duration_secs(), 1.0, 1.0, true);
        assert!(restored.is_live());
        assert_eq!(restored.duration_secs(), original.duration_secs());
        assert_eq!(
            restored.slots_snapshot().iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            original.slots_snapshot().iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            "restored slots must be bit-for-bit identical"
        );
        // The restored ledger keeps behaving like the original.
        assert!(restored.check_and_debit(&TimeSpan::between_secs(2.0, 7.0), 0.0, 0.8).is_err());
        restored.extend_to(20.0);
        assert!((restored.remaining_at(15.0) - 1.0).abs() < 1e-9, "new slots born with full ε");
    }

    #[test]
    fn journaled_admission_aborts_before_debit_on_journal_failure() {
        use privid_store::StoreError;
        struct RefusingJournal;
        impl AdmissionJournal for RefusingJournal {
            fn record_admit(&self, _: &[AdmissionRequest<'_>], _: f64) -> Result<Option<CommitWait>, StoreError> {
                Err(StoreError::Io { context: "test".into(), message: "disk full".into() })
            }
            fn record_rollback(&self, _: &[AdmissionRequest<'_>], _: usize, _: f64) {}
        }
        let ledger = BudgetLedger::new(100.0, 1.0);
        let ctrl = AdmissionController::new();
        let reqs = [AdmissionRequest { ledger: &ledger, window: TimeSpan::between_secs(0.0, 50.0), rho_margin: 0.0 }];
        match ctrl.admit_journaled(&reqs, 0.5, Some(&RefusingJournal)) {
            Err(AdmissionFailure::Journal(StoreError::Io { .. })) => {}
            other => panic!("expected a journal failure, got {other:?}"),
        }
        assert!((ledger.remaining_at(10.0) - 1.0).abs() < 1e-9, "no slot may be debited without a durable record");
    }

    #[test]
    fn journal_observes_admissions_and_rollbacks_in_order() {
        use privid_store::StoreError;
        use std::sync::Mutex as StdMutex;
        #[derive(Default)]
        struct TraceJournal {
            log: StdMutex<Vec<String>>,
        }
        impl AdmissionJournal for TraceJournal {
            fn record_admit(&self, requests: &[AdmissionRequest<'_>], epsilon: f64) -> Result<Option<CommitWait>, StoreError> {
                let ranges: Vec<(usize, usize)> =
                    requests.iter().map(|r| r.ledger.debit_slot_range(&r.window).unwrap()).collect();
                self.log.lock().unwrap().push(format!("admit {epsilon} {ranges:?}"));
                Ok(None)
            }
            fn record_rollback(&self, _: &[AdmissionRequest<'_>], debited: usize, epsilon: f64) {
                self.log.lock().unwrap().push(format!("rollback {debited} {epsilon}"));
            }
        }
        let ledger = BudgetLedger::new(100.0, 1.0);
        let ctrl = AdmissionController::new();
        let journal = TraceJournal::default();
        let ok = [AdmissionRequest { ledger: &ledger, window: TimeSpan::between_secs(0.0, 10.0), rho_margin: 0.0 }];
        ctrl.admit_journaled(&ok, 0.25, Some(&journal)).unwrap();
        // Same-ledger overlap passes phase 1 independently but fails the
        // compound simulation: rejected with the limiting budget *before*
        // anything reaches the journal — no admit record, no rollback, and
        // every untouched slot keeps its exact bit pattern.
        let pristine: Vec<u64> = ledger.slots_snapshot().iter().map(|s| s.to_bits()).collect();
        let conflict = [
            AdmissionRequest { ledger: &ledger, window: TimeSpan::between_secs(20.0, 60.0), rho_margin: 0.0 },
            AdmissionRequest { ledger: &ledger, window: TimeSpan::between_secs(40.0, 80.0), rho_margin: 0.0 },
        ];
        match ctrl.admit_journaled(&conflict, 0.6, Some(&journal)) {
            Err(AdmissionFailure::Budget { index: 1, error: BudgetError::Insufficient { available } }) => {
                assert!((available - 0.4).abs() < 1e-9, "the simulation reports the compound remaining budget")
            }
            other => panic!("expected a pre-journal rejection, got {other:?}"),
        }
        assert_eq!(*journal.log.lock().unwrap(), vec!["admit 0.25 [(0, 10)]".to_string()]);
        let after: Vec<u64> = ledger.slots_snapshot().iter().map(|s| s.to_bits()).collect();
        assert_eq!(after, pristine, "a rejected compound admission must not perturb a single bit");
        // A jointly affordable compound admission still journals and debits.
        ctrl.admit_journaled(&conflict, 0.4, Some(&journal)).unwrap();
        assert_eq!(journal.log.lock().unwrap().len(), 2);
        assert!((ledger.remaining_at(50.0) - 0.2).abs() < 1e-9, "overlap debited by both requests");
    }

    #[test]
    fn admission_controller_is_all_or_nothing_across_ledgers() {
        let a = BudgetLedger::new(100.0, 1.0);
        let b = BudgetLedger::new(100.0, 0.3);
        let ctrl = AdmissionController::new();
        let w = TimeSpan::between_secs(0.0, 100.0);
        // b cannot afford 0.5, so a must not be debited either.
        let reqs =
            [AdmissionRequest { ledger: &a, window: w, rho_margin: 0.0 }, AdmissionRequest { ledger: &b, window: w, rho_margin: 0.0 }];
        match ctrl.admit(&reqs, 0.5) {
            Err((1, BudgetError::Insufficient { available })) => assert!((available - 0.3).abs() < 1e-9),
            other => panic!("expected rejection on request 1, got {other:?}"),
        }
        assert!((a.remaining_at(50.0) - 1.0).abs() < 1e-9, "no partial debit on rejection");
        // A request both can afford debits both.
        ctrl.admit(&reqs, 0.2).unwrap();
        assert!((a.remaining_at(50.0) - 0.8).abs() < 1e-9);
        assert!((b.remaining_at(50.0) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn sub_slot_recording_still_rejects_windows_past_the_footage() {
        // Regression (review): duration used to be rounded up to one slot, so
        // a 0.4 s recording accepted — and debited — a window over [0.5, 0.9)
        // where no footage exists.
        let ledger = BudgetLedger::with_resolution(0.4, 1.0, 1.0);
        assert!(matches!(
            ledger.check_and_debit(&TimeSpan::between_secs(0.5, 0.9), 0.0, 0.2),
            Err(BudgetError::OutsideRecording { .. })
        ));
        assert!((ledger.remaining_at(0.0) - 1.0).abs() < 1e-9, "the real frames keep their budget");
        // The footage itself is still queryable.
        ledger.check_and_debit(&TimeSpan::between_secs(0.0, 0.4), 0.0, 0.2).unwrap();
    }

    #[test]
    fn admission_controller_rolls_back_on_same_ledger_conflict() {
        // Regression (review): two requests referencing the SAME ledger with
        // overlapping windows pass the independent phase-1 checks, then the
        // second debit fails; the first debit must be rolled back to keep
        // `admit` all-or-nothing.
        let a = BudgetLedger::new(100.0, 1.0);
        let ctrl = AdmissionController::new();
        let reqs = [
            AdmissionRequest { ledger: &a, window: TimeSpan::between_secs(0.0, 60.0), rho_margin: 0.0 },
            AdmissionRequest { ledger: &a, window: TimeSpan::between_secs(40.0, 100.0), rho_margin: 0.0 },
        ];
        match ctrl.admit(&reqs, 0.6) {
            Err((1, BudgetError::Insufficient { available })) => assert!((available - 0.4).abs() < 1e-9),
            other => panic!("expected rejection on request 1, got {other:?}"),
        }
        for at in [10.0, 50.0, 90.0] {
            assert!((a.remaining_at(at) - 1.0).abs() < 1e-9, "no residual debit at {at} s");
        }
        // The same request pair is admitted once it is jointly affordable.
        ctrl.admit(&reqs, 0.4).unwrap();
        assert!((a.remaining_at(50.0) - 0.2).abs() < 1e-9, "overlap [40, 60) debited by both");
    }

    #[test]
    fn admission_controller_rejects_disjoint_windows_without_debit() {
        let a = BudgetLedger::new(100.0, 1.0);
        let b = BudgetLedger::new(100.0, 1.0);
        let ctrl = AdmissionController::new();
        let reqs = [
            AdmissionRequest { ledger: &a, window: TimeSpan::between_secs(0.0, 100.0), rho_margin: 0.0 },
            AdmissionRequest { ledger: &b, window: TimeSpan::between_secs(400.0, 500.0), rho_margin: 0.0 },
        ];
        match ctrl.admit(&reqs, 0.2) {
            Err((1, BudgetError::OutsideRecording { .. })) => {}
            other => panic!("expected OutsideRecording on request 1, got {other:?}"),
        }
        assert!((a.remaining_at(50.0) - 1.0).abs() < 1e-9);
        assert!((b.remaining_at(50.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_multi_ledger_admissions_are_consistent() {
        // Two cameras, many racing two-camera queries: every admission debits
        // both ledgers or neither, so the two ledgers deplete in lock-step.
        let a = BudgetLedger::new(200.0, 1.0);
        let b = BudgetLedger::new(200.0, 1.0);
        let ctrl = AdmissionController::new();
        let w = TimeSpan::between_secs(0.0, 200.0);
        let admitted = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..6 {
                scope.spawn(|| {
                    for _ in 0..10 {
                        let reqs = [
                            AdmissionRequest { ledger: &a, window: w, rho_margin: 10.0 },
                            AdmissionRequest { ledger: &b, window: w, rho_margin: 10.0 },
                        ];
                        if ctrl.admit(&reqs, 0.125).is_ok() {
                            admitted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(admitted.load(Ordering::Relaxed), 8, "exactly 1.0/0.125 joint admissions fit");
        let ra = a.remaining_at(100.0);
        let rb = b.remaining_at(100.0);
        assert!(ra.abs() < 1e-6 && rb.abs() < 1e-6, "both ledgers fully and equally spent: {ra}, {rb}");
    }

    #[test]
    fn fleet_admission_is_all_or_nothing_across_shards() {
        // Two shards, each with its own gate; camera `a` on shard 0, camera
        // `b` on shard 1. A joint admission `b` cannot afford must leave `a`
        // untouched too, exactly like the single-gate controller.
        let a = BudgetLedger::new(100.0, 1.0);
        let b = BudgetLedger::new(100.0, 0.3);
        let (ctrl0, ctrl1) = (AdmissionController::new(), AdmissionController::new());
        let w = TimeSpan::between_secs(0.0, 100.0);
        let reqs =
            [AdmissionRequest { ledger: &a, window: w, rho_margin: 0.0 }, AdmissionRequest { ledger: &b, window: w, rho_margin: 0.0 }];
        let groups = [
            ShardAdmission { shard: 0, controller: &ctrl0, journal: None, members: vec![0] },
            ShardAdmission { shard: 1, controller: &ctrl1, journal: None, members: vec![1] },
        ];
        match admit_fleet(&groups, &reqs, 0.5) {
            Err(AdmissionFailure::Budget { index: 1, error: BudgetError::Insufficient { available } }) => {
                assert!((available - 0.3).abs() < 1e-9)
            }
            other => panic!("expected rejection on request 1, got {other:?}"),
        }
        assert!((a.remaining_at(50.0) - 1.0).abs() < 1e-9, "no partial debit across shards on rejection");
        admit_fleet(&groups, &reqs, 0.2).unwrap();
        assert!((a.remaining_at(50.0) - 0.8).abs() < 1e-9);
        assert!((b.remaining_at(50.0) - 0.1).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "ascending shard index")]
    fn fleet_groups_must_be_sorted_by_shard() {
        let a = BudgetLedger::new(100.0, 1.0);
        let (ctrl0, ctrl1) = (AdmissionController::new(), AdmissionController::new());
        let reqs = [
            AdmissionRequest { ledger: &a, window: TimeSpan::between_secs(0.0, 10.0), rho_margin: 0.0 },
        ];
        let groups = [
            ShardAdmission { shard: 1, controller: &ctrl1, journal: None, members: vec![0] },
            ShardAdmission { shard: 0, controller: &ctrl0, journal: None, members: vec![] },
        ];
        let _ = admit_fleet(&groups, &reqs, 0.1);
    }

    /// A journal whose `record_admit` hands back a [`CommitWait`], resolving
    /// to the configured outcome — the shape of a group-commit WAL journal.
    struct WaitJournal {
        fail_commit: bool,
        staged: AtomicUsize,
        rollbacks: AtomicUsize,
    }
    impl WaitJournal {
        fn new(fail_commit: bool) -> Self {
            WaitJournal { fail_commit, staged: AtomicUsize::new(0), rollbacks: AtomicUsize::new(0) }
        }
    }
    impl AdmissionJournal for WaitJournal {
        fn record_admit(&self, _: &[AdmissionRequest<'_>], _: f64) -> Result<Option<CommitWait>, StoreError> {
            use privid_store::StoreError;
            self.staged.fetch_add(1, Ordering::Relaxed);
            let fail = self.fail_commit;
            Ok(Some(Box::new(move || {
                if fail {
                    Err(StoreError::Wedged { reason: "fsync failed (test)".into() })
                } else {
                    Ok(())
                }
            })))
        }
        fn record_rollback(&self, _: &[AdmissionRequest<'_>], _: usize, _: f64) {
            self.rollbacks.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn commit_wait_success_acknowledges_the_fleet_admission() {
        let a = BudgetLedger::new(100.0, 1.0);
        let b = BudgetLedger::new(100.0, 1.0);
        let (ctrl0, ctrl1) = (AdmissionController::new(), AdmissionController::new());
        let (j0, j1) = (WaitJournal::new(false), WaitJournal::new(false));
        let w = TimeSpan::between_secs(0.0, 50.0);
        let reqs =
            [AdmissionRequest { ledger: &a, window: w, rho_margin: 0.0 }, AdmissionRequest { ledger: &b, window: w, rho_margin: 0.0 }];
        let groups = [
            ShardAdmission { shard: 0, controller: &ctrl0, journal: Some(&j0), members: vec![0] },
            ShardAdmission { shard: 1, controller: &ctrl1, journal: Some(&j1), members: vec![1] },
        ];
        admit_fleet(&groups, &reqs, 0.25).unwrap();
        assert_eq!(j0.staged.load(Ordering::Relaxed), 1);
        assert_eq!(j1.staged.load(Ordering::Relaxed), 1);
        assert_eq!(j0.rollbacks.load(Ordering::Relaxed) + j1.rollbacks.load(Ordering::Relaxed), 0);
        assert!((a.remaining_at(25.0) - 0.75).abs() < 1e-9);
        assert!((b.remaining_at(25.0) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn commit_wait_failure_credits_memory_and_compensates_durable_shards() {
        // Shard 0's record commits; shard 1's flush fails. The admission must
        // not be acknowledged: memory is credited back on BOTH ledgers, and
        // only the shard whose record reached disk journals a compensating
        // credit (compensating a record that never committed would re-mint ε
        // the durable state never spent).
        let a = BudgetLedger::new(100.0, 1.0);
        let b = BudgetLedger::new(100.0, 1.0);
        let (ctrl0, ctrl1) = (AdmissionController::new(), AdmissionController::new());
        let (j0, j1) = (WaitJournal::new(false), WaitJournal::new(true));
        let w = TimeSpan::between_secs(0.0, 50.0);
        let reqs =
            [AdmissionRequest { ledger: &a, window: w, rho_margin: 0.0 }, AdmissionRequest { ledger: &b, window: w, rho_margin: 0.0 }];
        let groups = [
            ShardAdmission { shard: 0, controller: &ctrl0, journal: Some(&j0), members: vec![0] },
            ShardAdmission { shard: 1, controller: &ctrl1, journal: Some(&j1), members: vec![1] },
        ];
        match admit_fleet(&groups, &reqs, 0.25) {
            Err(AdmissionFailure::Journal(StoreError::Wedged { .. })) => {}
            other => panic!("expected a wedged commit failure, got {other:?}"),
        }
        assert!((a.remaining_at(25.0) - 1.0).abs() < 1e-9, "memory credited back on the committed shard");
        assert!((b.remaining_at(25.0) - 1.0).abs() < 1e-9, "memory credited back on the failed shard");
        assert_eq!(j0.rollbacks.load(Ordering::Relaxed), 1, "the durable shard compensates");
        assert_eq!(j1.rollbacks.load(Ordering::Relaxed), 0, "the failed shard has nothing durable to compensate");
    }
}
