//! The parallel, streaming chunk execution engine.
//!
//! Privid's chunked execution is embarrassingly parallel: each chunk is
//! processed by a fresh, isolated processor instance, so chunk executions
//! share nothing (Appendix B) and can run on any number of workers without
//! changing a single output row. This module exploits that: it fans the
//! chunks of a [`ChunkPlan`] out to a scoped-thread worker pool and merges
//! the sandboxed outputs back **in deterministic (chunk, region) order**, so
//! table row order — and therefore budget accounting and seeded noise — is
//! bit-for-bit identical at every worker count.
//!
//! Workers pull chunk indices from a shared atomic counter (cheap dynamic
//! load balancing; chunk cost varies with scene density) and keep two
//! reusable [`ChunkBuffer`]s each, so steady-state execution performs no
//! per-chunk allocation beyond the output rows themselves. Only
//! `std::thread::scope` and atomics are used — no external runtime.

use privid_sandbox::{run_chunk, ProcessorFactory, SandboxSpec, SandboxedOutput};
use privid_video::{BoundingBox, ChunkBuffer, ChunkPlan, RegionScheme};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Maximum workers `Parallelism::Auto` will spawn.
const MAX_AUTO_WORKERS: usize = 8;

/// The sandboxed outputs of one chunk, one entry per region: `(region id,
/// output)` in region order.
type ChunkOutputs = Vec<(u32, SandboxedOutput)>;

/// How many worker threads the execution engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Parallelism {
    /// Process chunks inline on the calling thread (the pre-engine behaviour).
    Serial,
    /// A fixed number of workers; `Fixed(1)` runs inline like `Serial`.
    Fixed(usize),
    /// One worker per available core, capped at 8.
    #[default]
    Auto,
}

impl Parallelism {
    /// Resolve to a concrete worker count for a plan of `chunk_count` chunks.
    /// Never exceeds the number of chunks (spare threads would idle).
    pub fn worker_count(&self, chunk_count: usize) -> usize {
        let wanted = match self {
            Parallelism::Serial => 1,
            Parallelism::Fixed(n) => (*n).max(1),
            Parallelism::Auto => {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(MAX_AUTO_WORKERS)
            }
        };
        wanted.min(chunk_count.max(1))
    }
}

/// The region assignments of one chunk: `(region id, restriction)` pairs.
/// Without spatial splitting every chunk runs once as region 0, unrestricted.
fn region_list(regions: Option<&RegionScheme>) -> Vec<(u32, Option<BoundingBox>)> {
    match regions {
        None => vec![(0, None)],
        Some(scheme) => scheme.regions.iter().map(|r| (r.id, Some(r.bbox))).collect(),
    }
}

/// A worker's reusable scratch: one buffer for whole-chunk materialization,
/// one for region restriction. Capacity persists across chunks.
#[derive(Default)]
struct WorkerScratch {
    buf: ChunkBuffer,
    region_buf: ChunkBuffer,
}

/// Materialize chunk `index` and run it (per region) through the sandbox,
/// appending `(region id, output)` pairs to `out` in region order.
fn run_one_chunk(
    plan: &ChunkPlan<'_>,
    index: usize,
    regions: &[(u32, Option<BoundingBox>)],
    factory: &dyn ProcessorFactory,
    spec: &SandboxSpec,
    scratch: &mut WorkerScratch,
    out: &mut ChunkOutputs,
) {
    let view = plan.materialize_into(index, &mut scratch.buf);
    for (region_id, restriction) in regions {
        match restriction {
            None => out.push((*region_id, run_chunk(factory, &view, spec))),
            Some(bbox) => {
                let sub = view.restrict_into(bbox, &mut scratch.region_buf);
                out.push((*region_id, run_chunk(factory, &sub, spec)));
            }
        }
    }
}

/// Execute every chunk of `plan` (fanned out over `parallelism` workers when
/// it pays off) and return the sandboxed outputs as `(region id, output)`
/// pairs, ordered by chunk index and then by region position — exactly the
/// order the serial loop would produce, regardless of scheduling.
pub fn execute_plan(
    plan: &ChunkPlan<'_>,
    regions: Option<&RegionScheme>,
    factory: &(dyn ProcessorFactory + Sync),
    spec: &SandboxSpec,
    parallelism: Parallelism,
) -> ChunkOutputs {
    execute_plan_range(plan, 0..plan.len(), regions, factory, spec, parallelism)
}

/// Execute a contiguous sub-range of `plan`'s chunks, preserving everything
/// [`execute_plan`] guarantees: outputs ordered by chunk index and then by
/// region position, bit-for-bit identical at every worker count. Each
/// output's `chunk_index` is the chunk's index *in the full plan* — the
/// processor-visible trusted column — so executing chunks `k..n` here is
/// indistinguishable from slicing a full execution's tail. The incremental
/// standing-query path uses this to run only a window's newly closed chunks.
pub fn execute_plan_range(
    plan: &ChunkPlan<'_>,
    range: std::ops::Range<usize>,
    regions: Option<&RegionScheme>,
    factory: &(dyn ProcessorFactory + Sync),
    spec: &SandboxSpec,
    parallelism: Parallelism,
) -> ChunkOutputs {
    debug_assert!(range.end <= plan.len(), "chunk range must lie within the plan");
    let n_chunks = range.len();
    let regions = region_list(regions);
    let workers = parallelism.worker_count(n_chunks);

    if workers <= 1 || n_chunks < 2 {
        let mut scratch = WorkerScratch::default();
        let mut out = Vec::with_capacity(n_chunks * regions.len());
        for i in range {
            run_one_chunk(plan, i, &regions, factory, spec, &mut scratch, &mut out);
        }
        return out;
    }

    // Dynamic work stealing over chunk indices: a shared counter hands the
    // next unprocessed chunk to whichever worker is free. Each worker keeps
    // its outputs tagged with the chunk index so the merge below can restore
    // deterministic order no matter how chunks were interleaved.
    let base = range.start;
    let next = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, ChunkOutputs)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let regions = &regions;
                scope.spawn(move || {
                    let mut scratch = WorkerScratch::default();
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n_chunks {
                            break;
                        }
                        let mut chunk_out = Vec::with_capacity(regions.len());
                        run_one_chunk(plan, base + i, regions, factory, spec, &mut scratch, &mut chunk_out);
                        local.push((i, chunk_out));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("chunk execution worker panicked")).collect() // privid-analyzer: allow(panic-freedom) -- join fails only if a worker panicked; re-raising the crash is intended
    });

    // Ordered merge: scatter each worker's outputs into per-chunk slots, then
    // emit slots in chunk order.
    let mut slots: Vec<Option<ChunkOutputs>> = (0..n_chunks).map(|_| None).collect();
    for (i, chunk_out) in per_worker.into_iter().flatten() {
        slots[i] = Some(chunk_out); // privid-analyzer: allow(panic-freedom) -- i < n_chunks: workers only claim indices handed out by the chunk partition
    }
    slots.into_iter().flat_map(|s| s.expect("every chunk index claimed exactly once")).collect() // privid-analyzer: allow(panic-freedom) -- the scatter loop above fills every index exactly once
}

#[cfg(test)]
mod tests {
    use super::*;
    use privid_query::{ColumnDef, Schema};
    use privid_sandbox::{CarTableProcessor, ChunkProcessor, UniqueEntrantProcessor};
    use privid_video::{ChunkSpec, SceneConfig, SceneGenerator, TimeSpan};

    fn car_factory() -> impl ProcessorFactory {
        || Box::new(CarTableProcessor) as Box<dyn ChunkProcessor>
    }

    #[test]
    fn worker_count_resolution() {
        assert_eq!(Parallelism::Serial.worker_count(100), 1);
        assert_eq!(Parallelism::Fixed(4).worker_count(100), 4);
        assert_eq!(Parallelism::Fixed(0).worker_count(100), 1, "zero workers clamps to one");
        assert_eq!(Parallelism::Fixed(16).worker_count(3), 3, "never more workers than chunks");
        assert!(Parallelism::Auto.worker_count(100) >= 1);
        assert!(Parallelism::Auto.worker_count(100) <= MAX_AUTO_WORKERS);
    }

    #[test]
    fn parallel_outputs_identical_to_serial_at_every_worker_count() {
        let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.25)).generate();
        let window = TimeSpan::from_secs(600.0);
        let spec_split = ChunkSpec::contiguous(5.0);
        let plan = ChunkPlan::new(&scene, &window, &spec_split, None);
        let sandbox = SandboxSpec::new(1.0, 10, Schema::listing1());
        let factory = car_factory();
        let serial = execute_plan(&plan, None, &factory, &sandbox, Parallelism::Serial);
        assert_eq!(serial.len(), plan.len());
        for workers in [2, 3, 8] {
            let parallel = execute_plan(&plan, None, &factory, &sandbox, Parallelism::Fixed(workers));
            assert_eq!(serial, parallel, "outputs must be bit-for-bit identical at {workers} workers");
        }
    }

    #[test]
    fn region_outputs_are_ordered_and_tagged() {
        let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.25)).generate();
        let scheme = scene.region_schemes["default"].clone();
        let window = TimeSpan::from_secs(60.0);
        let spec_split = ChunkSpec::contiguous(10.0);
        let plan = ChunkPlan::new(&scene, &window, &spec_split, None);
        let schema = Schema::new(vec![ColumnDef::number("count", 0.0)]).unwrap();
        let sandbox = SandboxSpec::new(1.0, 10, schema);
        let factory = || Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>;
        let serial = execute_plan(&plan, Some(&scheme), &factory, &sandbox, Parallelism::Serial);
        assert_eq!(serial.len(), plan.len() * scheme.len());
        // (chunk, region) order: chunk indices non-decreasing, regions cycle.
        for (i, (region, out)) in serial.iter().enumerate() {
            assert_eq!(out.chunk_index as usize, i / scheme.len());
            assert_eq!(*region, scheme.regions[i % scheme.len()].id);
        }
        let parallel = execute_plan(&plan, Some(&scheme), &factory, &sandbox, Parallelism::Fixed(4));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn range_execution_matches_the_full_plan_tail() {
        let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.25)).generate();
        let window = TimeSpan::from_secs(600.0);
        let spec_split = ChunkSpec::contiguous(10.0);
        let plan = ChunkPlan::new(&scene, &window, &spec_split, None);
        let sandbox = SandboxSpec::new(1.0, 10, Schema::listing1());
        let factory = car_factory();
        let n = plan.len();
        let full = execute_plan(&plan, None, &factory, &sandbox, Parallelism::Serial);
        for start in [0, 1, n / 2, n - 1, n] {
            let tail = execute_plan_range(&plan, start..n, None, &factory, &sandbox, Parallelism::Fixed(3));
            assert_eq!(
                tail,
                full[start..],
                "chunks {start}..{n} must be bit-identical to the full execution's tail (chunk_index included)"
            );
        }
    }

    #[test]
    fn empty_plan_executes_to_nothing() {
        let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.05)).generate();
        let window = TimeSpan::between_secs(10.0, 10.0);
        let spec_split = ChunkSpec::contiguous(5.0);
        let plan = ChunkPlan::new(&scene, &window, &spec_split, None);
        let sandbox = SandboxSpec::new(1.0, 10, Schema::listing1());
        let factory = car_factory();
        assert!(execute_plan(&plan, None, &factory, &sandbox, Parallelism::Auto).is_empty());
    }
}
