//! The concurrent, multi-analyst query service.
//!
//! [`crate::PrividSystem`] executes one query at a time on the caller's
//! thread — fine for experiments, the wrong shape for a video owner serving
//! many analysts. [`QueryService`] is the shared front-end: registration and
//! lookup go through read-mostly registries (`RwLock`-guarded maps of
//! `Arc`-shared per-camera state), every admission funnels through the
//! [`AdmissionController`] in `budget` (the single serialization point), and
//! each query runs as an independent session with its own seeded noise
//! stream. Any number of threads can call [`QueryService::execute`]
//! concurrently on one `&QueryService`.
//!
//! **Determinism.** A query's releases are a function of `(seed, query)`
//! only: the session draws noise from a fresh `LaplaceMechanism::new(seed)`,
//! and the execution engine merges chunk outputs in deterministic order. N
//! analysts hammering the service concurrently therefore receive bit-for-bit
//! the releases a serial replay of the same `(seed, query)` pairs would
//! produce (given sufficient budget; admission outcomes under *contended*
//! budget depend on arrival order, exactly as in a real deployment).
//!
//! A cross-query [`ChunkResultCache`] absorbs repeated PROCESS work: chunk
//! execution is deterministic, noise is applied at release time and budget is
//! debited per admitted query, so serving a cached raw table is invisible to
//! the analyst except in latency (see `cache` module docs for the DP-safety
//! argument).

use crate::budget::{AdmissionController, BudgetLedger};
use crate::cache::{ChunkCacheStats, ChunkResultCache};
use crate::error::PrividError;
use crate::executor::QueryResult;
use crate::mechanism::LaplaceMechanism;
use crate::parallel::Parallelism;
use crate::policy::{MaskPolicy, PrivacyPolicy};
use crate::session;
use privid_query::{parse_query, ParsedQuery};
use privid_sandbox::{ChunkProcessor, ProcessorFactory};
use privid_video::Scene;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Everything the service knows about one registered camera. Shared with
/// running sessions via `Arc`, so registering new cameras never blocks (or
/// invalidates) queries already in flight.
pub(crate) struct CameraState {
    pub(crate) scene: Scene,
    pub(crate) policy: PrivacyPolicy,
    /// Published masks, each tagged with its registration generation (masks
    /// are re-publishable in place, so they need their own cache-key tag).
    pub(crate) masks: RwLock<HashMap<String, (u64, MaskPolicy)>>,
    pub(crate) ledger: BudgetLedger,
    /// Registration generation, part of every chunk-cache key: a session
    /// still executing against a *replaced* camera writes cache entries under
    /// the old generation, which queries against the new registration can
    /// never hit.
    pub(crate) generation: u64,
}

/// A registered processor: its registration generation plus the shared factory.
type RegisteredProcessor = (u64, Arc<dyn ProcessorFactory + Send + Sync>);

/// A shared, concurrent Privid query service.
///
/// Construction is builder-style; all serving methods take `&self`:
///
/// ```
/// use privid_core::{QueryService, PrivacyPolicy};
/// use privid_sandbox::{ChunkProcessor, UniqueEntrantProcessor};
/// use privid_video::{SceneConfig, SceneGenerator};
///
/// let service = QueryService::new();
/// let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.25)).generate();
/// service.register_camera("campus", scene, PrivacyPolicy::new(60.0, 2, 10.0));
/// service.register_processor("person_counter", || {
///     Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>
/// });
///
/// // Each analyst query carries its own noise seed; concurrent callers may
/// // share `&service` across threads.
/// let result = service
///     .execute_text(
///         7,
///         "SPLIT campus BEGIN 0 END 300 BY TIME 10 sec STRIDE 0 sec INTO chunks;
///          PROCESS chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
///              WITH SCHEMA (count:NUMBER=0) INTO people;
///          SELECT COUNT(*) FROM people CONSUMING 1.0;",
///     )
///     .unwrap();
/// assert_eq!(result.releases.len(), 1);
/// ```
pub struct QueryService {
    cameras: RwLock<HashMap<String, Arc<CameraState>>>,
    processors: RwLock<HashMap<String, RegisteredProcessor>>,
    admission: AdmissionController,
    cache: ChunkResultCache,
    /// Source of registration generations for cameras and processors.
    generations: AtomicU64,
    /// Budget charged to a SELECT that has no `CONSUMING` clause.
    default_epsilon: f64,
    /// Worker count of the chunk execution engine, per PROCESS statement.
    parallelism: Parallelism,
}

impl Default for QueryService {
    fn default() -> Self {
        Self::new()
    }
}

impl QueryService {
    /// Create an empty service with default ε (1.0), `Auto` parallelism and
    /// the default chunk-cache capacity.
    pub fn new() -> Self {
        QueryService {
            cameras: RwLock::new(HashMap::new()),
            processors: RwLock::new(HashMap::new()),
            admission: AdmissionController::new(),
            cache: ChunkResultCache::default(),
            generations: AtomicU64::new(0),
            default_epsilon: 1.0,
            parallelism: Parallelism::Auto,
        }
    }

    /// Builder-style override of the execution engine's worker count.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Builder-style override of the ε charged to SELECTs without `CONSUMING`.
    pub fn with_default_epsilon(mut self, epsilon: f64) -> Self {
        self.default_epsilon = epsilon;
        self
    }

    /// Builder-style override of the chunk cache's capacity (0 disables it).
    pub fn with_cache_capacity(mut self, max_entries: usize) -> Self {
        self.cache = ChunkResultCache::with_capacity(max_entries);
        self
    }

    // ---- registration -------------------------------------------------------------------

    /// Register a camera with its recording and privacy policy. Re-registering
    /// a name replaces the camera (fresh ledger) and invalidates its cached
    /// chunk results; sessions already holding the old state finish against it.
    pub fn register_camera(&self, name: impl Into<String>, scene: Scene, policy: PrivacyPolicy) {
        let name = name.into();
        let duration = scene.span.end.as_secs();
        let state = Arc::new(CameraState {
            scene,
            policy,
            masks: RwLock::new(HashMap::new()),
            ledger: BudgetLedger::new(duration, policy.epsilon_budget),
            generation: self.generations.fetch_add(1, Ordering::Relaxed),
        });
        self.cache.invalidate_camera(&name);
        self.cameras.write().expect("camera registry poisoned").insert(name, state);
    }

    /// Publish a mask (and its reduced ρ) for a camera (§7.1). Re-publishing
    /// a mask id replaces it and invalidates only that mask's cached results
    /// (unmasked and other-mask entries are unaffected by the change).
    pub fn register_mask(&self, camera: &str, mask_id: impl Into<String>, policy: MaskPolicy) -> Result<(), PrividError> {
        // Insert under the camera-registry read lock: resolving the state and
        // then writing outside it would race a concurrent register_camera and
        // silently publish the mask into the replaced (dead) CameraState.
        let cameras = self.cameras.read().expect("camera registry poisoned");
        let state = cameras.get(camera).ok_or_else(|| PrividError::UnknownCamera(camera.to_string()))?;
        let mask_id = mask_id.into();
        self.cache.invalidate_mask(camera, &mask_id);
        let generation = self.generations.fetch_add(1, Ordering::Relaxed);
        state.masks.write().expect("mask registry poisoned").insert(mask_id, (generation, policy));
        Ok(())
    }

    /// Attach an analyst processor executable under a name. Re-registering a
    /// name replaces the factory and invalidates its cached chunk results.
    pub fn register_processor<F>(&self, name: impl Into<String>, factory: F)
    where
        F: Fn() -> Box<dyn ChunkProcessor> + Send + Sync + 'static,
    {
        let name = name.into();
        self.cache.invalidate_processor(&name);
        let generation = self.generations.fetch_add(1, Ordering::Relaxed);
        self.processors.write().expect("processor registry poisoned").insert(name, (generation, Arc::new(factory)));
    }

    // ---- introspection ------------------------------------------------------------------

    /// Remaining per-frame budget of a camera at a given time.
    pub fn remaining_budget(&self, camera: &str, at_secs: f64) -> Option<f64> {
        self.camera(camera).map(|c| c.ledger.remaining_at(at_secs))
    }

    /// The registered policy of a camera.
    pub fn camera_policy(&self, camera: &str) -> Option<PrivacyPolicy> {
        self.camera(camera).map(|c| c.policy)
    }

    /// Counters of the cross-query chunk-result cache.
    pub fn cache_stats(&self) -> ChunkCacheStats {
        self.cache.stats()
    }

    // ---- execution ----------------------------------------------------------------------

    /// Parse and execute a textual query with a per-query noise seed.
    pub fn execute_text(&self, seed: u64, text: &str) -> Result<QueryResult, PrividError> {
        let query = parse_query(text)?;
        self.execute(seed, &query)
    }

    /// Execute a parsed query with a per-query noise seed. Safe to call from
    /// any number of threads concurrently; the releases depend only on
    /// `(seed, query)` (plus, under contended budget, the admission outcome).
    ///
    /// **Threat model**: the seed must be chosen by the *video owner*. This
    /// reproduction takes it as a parameter so experiments can replay exact
    /// noise streams — the same reason [`NoisyRelease`](crate::NoisyRelease)
    /// exposes its `raw` value. A deployment would draw the seed from
    /// owner-side entropy per query; an analyst who controls (or learns) the
    /// seed can regenerate every Laplace sample offline and subtract the
    /// noise, voiding the DP guarantee.
    pub fn execute(&self, seed: u64, query: &ParsedQuery) -> Result<QueryResult, PrividError> {
        let mut mechanism = LaplaceMechanism::new(seed);
        self.execute_session(query, &mut mechanism, self.parallelism, self.default_epsilon)
    }

    /// Execute a query drawing noise from a caller-owned mechanism.
    /// `PrividSystem` uses this to preserve its historical semantics of one
    /// continuous noise stream across a system's whole query sequence.
    pub(crate) fn execute_session(
        &self,
        query: &ParsedQuery,
        mechanism: &mut LaplaceMechanism,
        parallelism: Parallelism,
        default_epsilon: f64,
    ) -> Result<QueryResult, PrividError> {
        session::execute_query(self, query, mechanism, parallelism, default_epsilon)
    }

    // ---- internals shared with `session` -------------------------------------------------

    pub(crate) fn camera(&self, name: &str) -> Option<Arc<CameraState>> {
        self.cameras.read().expect("camera registry poisoned").get(name).cloned()
    }

    /// Resolve a processor to its `(generation, factory)` pair.
    pub(crate) fn processor(&self, name: &str) -> Option<RegisteredProcessor> {
        self.processors.read().expect("processor registry poisoned").get(name).cloned()
    }

    pub(crate) fn chunk_cache(&self) -> &ChunkResultCache {
        &self.cache
    }

    pub(crate) fn admission(&self) -> &AdmissionController {
        &self.admission
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privid_sandbox::UniqueEntrantProcessor;
    use privid_video::{SceneConfig, SceneGenerator};

    const QUERY: &str = "
        SPLIT campus BEGIN 0 END 600 BY TIME 10 sec STRIDE 0 sec INTO chunks;
        PROCESS chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
            WITH SCHEMA (count:NUMBER=0) INTO people;
        SELECT COUNT(*) FROM people CONSUMING 0.5;";

    fn service() -> QueryService {
        let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.5)).generate();
        let service = QueryService::new().with_parallelism(Parallelism::Fixed(2));
        service.register_camera("campus", scene, PrivacyPolicy::new(60.0, 2, 20.0));
        service.register_processor("person_counter", || {
            Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>
        });
        service
    }

    #[test]
    fn seeded_execution_is_reproducible_and_seed_sensitive() {
        let svc = service();
        let a = svc.execute_text(11, QUERY).unwrap();
        let b = svc.execute_text(11, QUERY).unwrap();
        assert_eq!(a.releases, b.releases, "same (seed, query) → identical releases");
        let c = svc.execute_text(12, QUERY).unwrap();
        assert_ne!(a.releases[0].value, c.releases[0].value, "different seed → different noise");
    }

    #[test]
    fn repeated_process_prologs_hit_the_cache() {
        let svc = service();
        svc.execute_text(1, QUERY).unwrap();
        let stats = svc.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 1, 1));
        // Different SELECT, same PROCESS prolog: served from cache.
        let other_select =
            QUERY.replace("COUNT(*)", "SUM(range(count, 0, 50))").replace("CONSUMING 0.5", "CONSUMING 0.25");
        svc.execute_text(2, &other_select).unwrap();
        let stats = svc.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        // Budget was still debited once per query.
        let spent = 20.0 - svc.remaining_budget("campus", 300.0).unwrap();
        assert!((spent - 0.75).abs() < 1e-9, "0.5 + 0.25 debited: {spent}");
    }

    #[test]
    fn re_registration_invalidates_cached_results() {
        let svc = service();
        svc.execute_text(1, QUERY).unwrap();
        assert_eq!(svc.cache_stats().entries, 1);
        svc.register_processor("person_counter", || {
            Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>
        });
        assert_eq!(svc.cache_stats().entries, 0, "re-registered processor drops its entries");
        svc.execute_text(1, QUERY).unwrap();
        let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.5)).generate();
        svc.register_camera("campus", scene, PrivacyPolicy::new(60.0, 2, 20.0));
        assert_eq!(svc.cache_stats().entries, 0, "re-registered camera drops its entries");
    }

    #[test]
    fn mask_republication_invalidates_only_that_mask() {
        use privid_video::{GridSpec, Mask};
        let svc = service();
        let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.5)).generate();
        let grid = GridSpec::coarse(scene.frame_size);
        svc.register_mask("campus", "benches", MaskPolicy::new(Mask::empty(grid), 20.0)).unwrap();
        svc.execute_text(1, QUERY).unwrap(); // unmasked entry
        let masked = QUERY.replace("STRIDE 0 sec INTO", "STRIDE 0 sec WITH MASK benches INTO");
        svc.execute_text(2, &masked).unwrap(); // masked entry
        assert_eq!(svc.cache_stats().entries, 2);
        // Re-publishing the mask drops only its own entry…
        svc.register_mask("campus", "benches", MaskPolicy::new(Mask::empty(grid), 15.0)).unwrap();
        assert_eq!(svc.cache_stats().entries, 1, "unmasked entry stays warm");
        let before = svc.cache_stats().hits;
        svc.execute_text(3, QUERY).unwrap();
        assert_eq!(svc.cache_stats().hits, before + 1, "unmasked prolog still served from cache");
        // …and the re-published mask's next query re-executes (fresh ρ).
        let replayed = svc.execute_text(4, &masked).unwrap();
        assert!(replayed.releases[0].sensitivity > 0.0);
    }

    #[test]
    fn concurrent_analysts_share_one_service() {
        let svc = service();
        let results: Vec<QueryResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|analyst| {
                    let svc = &svc;
                    scope.spawn(move || svc.execute_text(100 + analyst, QUERY).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Every analyst's result matches a serial replay with the same seed.
        let replay = service();
        for (analyst, result) in results.iter().enumerate() {
            let serial = replay.execute_text(100 + analyst as u64, QUERY).unwrap();
            assert_eq!(serial.releases, result.releases, "analyst {analyst} releases must match serial replay");
        }
        // ε was debited exactly once per query.
        let spent = 20.0 - svc.remaining_budget("campus", 300.0).unwrap();
        assert!((spent - 4.0 * 0.5).abs() < 1e-9, "4 queries × 0.5 ε: {spent}");
    }

    #[test]
    fn cache_disabled_service_executes_identically() {
        let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.5)).generate();
        let cached = service();
        let uncached = QueryService::new().with_parallelism(Parallelism::Fixed(2)).with_cache_capacity(0);
        uncached.register_camera("campus", scene, PrivacyPolicy::new(60.0, 2, 20.0));
        uncached.register_processor("person_counter", || {
            Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>
        });
        let a = cached.execute_text(5, QUERY).unwrap();
        let b = uncached.execute_text(5, QUERY).unwrap();
        assert_eq!(a, b, "the cache must be invisible in results");
        uncached.execute_text(6, QUERY).unwrap();
        let stats = uncached.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 0), "disabled cache is never consulted");
    }

    #[test]
    fn window_outside_recording_is_rejected_without_debit() {
        let svc = service();
        // The campus scene is 1800 s long; this window is entirely past it.
        let ghost = QUERY.replace("BEGIN 0 END 600", "BEGIN 2000 END 2600");
        match svc.execute_text(1, &ghost) {
            Err(PrividError::WindowOutsideRecording { camera, start_secs, .. }) => {
                assert_eq!(camera, "campus");
                assert_eq!(start_secs, 2000.0);
            }
            other => panic!("expected WindowOutsideRecording, got {other:?}"),
        }
        assert!((svc.remaining_budget("campus", 1799.0).unwrap() - 20.0).abs() < 1e-9, "no frame debited");
    }
}
