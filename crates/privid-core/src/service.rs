//! The concurrent, multi-analyst query service.
//!
//! [`crate::PrividSystem`] executes one query at a time on the caller's
//! thread — fine for experiments, the wrong shape for a video owner serving
//! many analysts. [`QueryService`] is the shared front-end: registration and
//! lookup go through read-mostly registries (`RwLock`-guarded maps of
//! `Arc`-shared per-camera state), every admission funnels through the
//! [`AdmissionController`] in `budget` (the single serialization point), and
//! each query runs as an independent session with its own seeded noise
//! stream. Any number of threads can call [`QueryService::execute`]
//! concurrently on one `&QueryService`.
//!
//! **Determinism.** A query's releases are a function of `(seed, query)`
//! only: the session draws noise from a fresh `LaplaceMechanism::new(seed)`,
//! and the execution engine merges chunk outputs in deterministic order. N
//! analysts hammering the service concurrently therefore receive bit-for-bit
//! the releases a serial replay of the same `(seed, query)` pairs would
//! produce (given sufficient budget; admission outcomes under *contended*
//! budget depend on arrival order, exactly as in a real deployment).
//!
//! A cross-query [`ChunkResultCache`] absorbs repeated PROCESS work: chunk
//! execution is deterministic, noise is applied at release time and budget is
//! debited per admitted query, so serving a cached raw table is invisible to
//! the analyst except in latency (see `cache` module docs for the DP-safety
//! argument).

use crate::aggcache::{AggCacheStats, AggStateCache};
use crate::budget::{
    admit_fleet, AdmissionController, AdmissionFailure, AdmissionJournal, AdmissionRequest, BudgetLedger,
    CommitWait, ShardAdmission,
};
use crate::cache::{ChunkCacheStats, ChunkResultCache};
use crate::error::PrividError;
use crate::executor::QueryResult;
use crate::health::{CameraHealth, StoreRetryPolicy};
use crate::mechanism::LaplaceMechanism;
use crate::parallel::Parallelism;
use crate::policy::{MaskPolicy, PrivacyPolicy};
use crate::session;
use privid_query::{parse_query, ParsedQuery};
use privid_sandbox::{ChunkProcessor, ProcessorFactory};
use privid_store::{
    CameraRecord, Durability, Record, RecoveryReport, RecoveryWarning, StoreError, Vfs, WalOptions, WalStore,
};
use privid_video::{CameraId, FrameBatch, FrameRate, FrameSize, Recording, Scene, Seconds, TimeSpan};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Everything the service knows about one registered camera. Shared with
/// running sessions via `Arc`, so registering new cameras never blocks (or
/// invalidates) queries already in flight.
///
/// For a *live* camera every appended frame batch publishes a fresh
/// `CameraState` (copy-on-write snapshot of the grown scene) while the ledger
/// and mask registry are `Arc`-shared across snapshots: budget is debited on
/// the one true ledger no matter which snapshot a session resolved, and a
/// mask published mid-recording is visible to every later snapshot.
pub(crate) struct CameraState {
    pub(crate) scene: Scene,
    pub(crate) policy: PrivacyPolicy,
    /// Published masks, each tagged with its registration generation (masks
    /// are re-publishable in place, so they need their own cache-key tag).
    pub(crate) masks: Arc<RwLock<HashMap<String, (u64, MaskPolicy)>>>,
    pub(crate) ledger: Arc<BudgetLedger>,
    /// Registration generation, part of every chunk-cache key: a session
    /// still executing against a *replaced* camera writes cache entries under
    /// the old generation, which queries against the new registration can
    /// never hit. Appends keep the generation (closed-window cache entries
    /// stay warm — the footage they cover is final).
    pub(crate) generation: u64,
    /// True for an append-only live recording; its `scene.span.end` is the
    /// live edge this snapshot was taken at.
    pub(crate) live: bool,
}

/// What one [`QueryService::append_frames`] call did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppendOutcome {
    /// The camera's live edge after the append, in seconds.
    pub live_edge_secs: Seconds,
    /// How many standing-query windows completed (and were executed) as a
    /// result of this append.
    pub standing_fired: usize,
}

/// One execution of a standing query over a completed window.
#[derive(Debug, Clone, PartialEq)]
pub struct StandingFiring {
    /// The absolute window this firing covered.
    pub window: TimeSpan,
    /// The per-firing noise seed (`base_seed + window index`), recorded so a
    /// firing can be replayed bit-for-bit against a batch registration.
    pub seed: u64,
    /// The query's outcome: releases on success, or the admission error (e.g.
    /// exhausted budget) — later windows keep firing either way.
    pub result: Result<QueryResult, PrividError>,
}

/// One cursor-based poll of a standing query's firings: the new firings past
/// the caller's cursor, the cursor to pass next time, and how many firings
/// the retention cap had already evicted before the caller could see them.
#[derive(Debug, Clone, PartialEq)]
pub struct StandingPoll {
    /// Firings with index ≥ the polled cursor that are still retained, in
    /// window order.
    pub firings: Vec<StandingFiring>,
    /// Pass this as the cursor of the next poll to receive only firings that
    /// happen after this one. Opaque beyond that: the cursor space restarts
    /// with the process (firings are not journaled), so a stored cursor from
    /// a previous process incarnation simply replays the retained window.
    pub next_cursor: u64,
    /// Firings in `[cursor, next_cursor)` that were evicted by the retention
    /// cap before this poll — non-zero means the caller polled too slowly to
    /// see every firing.
    pub dropped: u64,
}

/// A registered standing query: the prototype (windows relative to zero), the
/// cameras it reads, and the high-watermark of windows already fired.
struct StandingState {
    query: ParsedQuery,
    /// The original query text — journaled for recovery, and compared on
    /// re-registration so restoring the same standing query after a restart
    /// resumes its watermark instead of resetting (and re-debiting) it.
    text: String,
    cameras: Vec<String>,
    period_secs: Seconds,
    base_seed: u64,
    next_start_secs: Seconds,
    /// The most recent firings, oldest first, capped at the service's
    /// standing-firing retention — a server polling thousands of standing
    /// queries must never make this registry's memory grow with uptime.
    firings: VecDeque<StandingFiring>,
    /// Total firings ever recorded for this query (the cursor space of
    /// [`QueryService::standing_results_since`]); `fired_count -
    /// firings.len()` is the index of the oldest retained firing.
    fired_count: u64,
    /// The tenant that registered this query through the multi-tenant
    /// front-end, or `None` for trusted in-process registrations. Every
    /// firing is charged against the owner's ε quota, and only the owner may
    /// poll, replace or re-register the name — the standing namespace is
    /// shared, so ownership is what keeps one tenant's noised releases (and
    /// quota) out of another's reach.
    owner: Option<String>,
}

/// A due standing-query window collected under the registry lock, executed
/// outside it.
struct StandingJob {
    name: String,
    window: TimeSpan,
    index: u64,
    seed: u64,
    query: ParsedQuery,
    /// The tenant whose ε quota this firing debits (`None`: unmetered
    /// in-process registration).
    owner: Option<String>,
}

/// A registered processor: its registration generation plus the shared factory.
type RegisteredProcessor = (u64, Arc<dyn ProcessorFactory + Send + Sync>);

/// Aggregate-state entries per chunk-cache entry: a folded state is a handful
/// of scalars (or one key→count map), orders of magnitude smaller than the
/// chunk rows it summarizes, so the second tier affords many more entries —
/// enough for thousands of standing queries' prefix states per camera.
const AGG_CACHE_FACTOR: usize = 16;

/// A shared, concurrent Privid query service.
///
/// Construction is builder-style; all serving methods take `&self`:
///
/// ```
/// use privid_core::{QueryService, PrivacyPolicy};
/// use privid_sandbox::{ChunkProcessor, UniqueEntrantProcessor};
/// use privid_video::{SceneConfig, SceneGenerator};
///
/// let service = QueryService::new();
/// let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.25)).generate();
/// service.register_camera("campus", scene, PrivacyPolicy::new(60.0, 2, 10.0)).unwrap();
/// service.register_processor("person_counter", || {
///     Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>
/// }).unwrap();
///
/// // Each analyst query carries its own noise seed; concurrent callers may
/// // share `&service` across threads.
/// let result = service
///     .execute_text(
///         7,
///         "SPLIT campus BEGIN 0 END 300 BY TIME 10 sec STRIDE 0 sec INTO chunks;
///          PROCESS chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
///              WITH SCHEMA (count:NUMBER=0) INTO people;
///          SELECT COUNT(*) FROM people CONSUMING 1.0;",
///     )
///     .unwrap();
/// assert_eq!(result.releases.len(), 1);
/// ```
pub struct QueryService {
    /// The serving plane, partitioned by camera-id hash: each shard owns a
    /// slice of the camera/processor registries, its own admission gate and
    /// cache tiers, its own health registry — and, when durable, its own WAL
    /// and snapshot under `dir/shard-<k>/`. One shard (the default)
    /// reproduces the pre-fleet service exactly.
    shards: Vec<ServiceShard>,
    /// Registered standing queries, keyed by name — global, not sharded: a
    /// standing query may reference cameras on several shards. Its journal
    /// records live on the shard its *name* hashes to. A `Mutex` (not
    /// `RwLock`): every access mutates the firing high-watermark or results.
    standing: Mutex<HashMap<String, StandingState>>,
    /// Source of registration generations for cameras and processors —
    /// global and monotonic across shards, so a recovered fleet resumes the
    /// counter past every shard's generations.
    generations: AtomicU64,
    /// Budget charged to a SELECT that has no `CONSUMING` clause.
    default_epsilon: f64,
    /// Worker count of the chunk execution engine, per PROCESS statement.
    parallelism: Parallelism,
    /// What recovery did across all shards when this service was built
    /// (None without durability, or when every shard was fresh).
    recovery: Option<RecoveryReport>,
    /// Backoff policy for transient journal failures in live ingestion.
    retry: StoreRetryPolicy,
    /// Maximum standing-query firings retained per query for polling — a
    /// server polling on behalf of remote analysts must never let the
    /// standing registry's memory grow with uptime. Cursor polls report
    /// evictions via [`StandingPoll::dropped`].
    standing_retention: usize,
    /// Remaining ε per tenant, for services fronted by the multi-tenant
    /// server. `None` (no entry) means the tenant is unlimited; quotas are a
    /// resource-governance layer *above* the per-camera ledgers — the DP
    /// guarantee itself never depends on them. Lock-order audit:
    /// `tenant-quota-registry` — standalone acquisitions only (reserve /
    /// refund / read), never nested with any other lock.
    tenant_quotas: Mutex<HashMap<String, f64>>,
}

/// Default number of standing-query firings retained per query.
const DEFAULT_STANDING_RETENTION: usize = 1024;

/// One slice of the fleet: the registries, admission gate, cache tiers,
/// health registry and (optional) WAL for the names that hash here.
///
/// Lock discipline: a multi-shard admission acquires shard gates in
/// strictly ascending `index` order — enforced dynamically by
/// [`admit_fleet`] and lexically by the workspace lint (the `indexed`
/// lock-order family in analyzer.toml).
struct ServiceShard {
    /// Position in `QueryService::shards` — the gate's lock rank.
    index: usize,
    cameras: RwLock<HashMap<String, Arc<CameraState>>>,
    processors: RwLock<HashMap<String, RegisteredProcessor>>,
    admission: AdmissionController,
    /// Tier-1 chunk-result cache, holding only this shard's cameras'
    /// entries: invalidation on re-registration walks one shard's map.
    cache: ChunkResultCache,
    /// Second cache tier: folded aggregate states per (PROCESS identity,
    /// SELECT plan, closed-chunk prefix), shard-scoped like tier 1. Entries
    /// cover only fully recorded footage, so appends never invalidate them;
    /// re-registrations do.
    agg_cache: AggStateCache,
    /// This shard's write-ahead log (`dir/shard-<k>/`), when the service was
    /// built with [`Durability::Wal`]. Every registration, live-edge
    /// extension and admission journals here *before* mutating in-memory
    /// state.
    store: Option<Arc<WalStore>>,
    /// Recovered cameras awaiting adoption: when the owner re-registers a
    /// name with the same policy (and, for fixed recordings, the same
    /// duration), the pre-crash ledger is restored instead of minting fresh ε
    /// for footage that was already queried. Consumed on adoption.
    recovered_cameras: Mutex<BTreeMap<String, CameraRecord>>,
    /// Per-camera durability health plus accumulated storage warnings.
    /// Lock-order audit: `health-registry` — ordered after
    /// `recovered-registry`, before `cache-entries`; acquired under the
    /// admission gate on the journal failure paths and standalone on reads.
    health: Mutex<HealthRegistry>,
}

impl ServiceShard {
    fn new(index: usize, cache_capacity: Option<usize>) -> ServiceShard {
        let (cache, agg_cache) = match cache_capacity {
            None => (ChunkResultCache::default(), AggStateCache::with_capacity(256 * AGG_CACHE_FACTOR)),
            Some(c) => {
                (ChunkResultCache::with_capacity(c), AggStateCache::with_capacity(c.saturating_mul(AGG_CACHE_FACTOR)))
            }
        };
        ServiceShard {
            index,
            cameras: RwLock::new(HashMap::new()),
            processors: RwLock::new(HashMap::new()),
            admission: AdmissionController::new(),
            cache,
            agg_cache,
            store: None,
            recovered_cameras: Mutex::new(BTreeMap::new()),
            health: Mutex::new(HealthRegistry::default()),
        }
    }
}

/// FNV-1a over a registry name — the shard-routing hash. Deliberately not
/// `std`'s seeded `RandomState`: a camera must hash to the *same* shard on
/// every process start, or recovery would re-home ledgers across shards.
fn shard_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Split a total cache capacity across `n` shards (ceiling division, so the
/// fleet never gets *less* total capacity than requested; 0 stays 0, which
/// keeps "capacity 0 disables the cache" true per shard).
fn split_capacity(total: usize, n: usize) -> usize {
    if n <= 1 {
        total
    } else {
        total.div_ceil(n)
    }
}

/// Fold one shard's recovery report into the fleet-wide report: counters
/// add, the snapshot watermark takes the furthest shard, events and
/// warnings concatenate in shard order.
fn merge_report(into: &mut RecoveryReport, shard: RecoveryReport) {
    into.snapshot_seq = into.snapshot_seq.max(shard.snapshot_seq);
    into.records_replayed += shard.records_replayed;
    into.stale_skipped += shard.stale_skipped;
    into.torn_tail_bytes += shard.torn_tail_bytes;
    into.events.extend(shard.events);
    into.warnings.extend(shard.warnings);
}

/// Camera health states and pending storage warnings, under one lock (they
/// change together: a failure that warns also degrades or quarantines).
#[derive(Default)]
struct HealthRegistry {
    /// Health per camera; a missing entry means [`CameraHealth::Healthy`].
    states: HashMap<String, CameraHealth>,
    /// Typed warnings accumulated since the last supervised recovery; drained
    /// into the [`RecoveryReport`] that [`QueryService::recover_store`]
    /// returns.
    warnings: Vec<RecoveryWarning>,
}

impl Default for QueryService {
    fn default() -> Self {
        Self::new()
    }
}

impl QueryService {
    /// Create an empty service with default ε (1.0), `Auto` parallelism, the
    /// default chunk-cache capacity and no durability.
    pub fn new() -> Self {
        QueryService {
            shards: vec![ServiceShard::new(0, None)],
            standing: Mutex::new(HashMap::new()),
            generations: AtomicU64::new(0),
            default_epsilon: 1.0,
            parallelism: Parallelism::Auto,
            recovery: None,
            retry: StoreRetryPolicy::default(),
            standing_retention: DEFAULT_STANDING_RETENTION,
            tenant_quotas: Mutex::new(HashMap::new()),
        }
    }

    /// Start building a service — the way to construct one with durability.
    pub fn builder() -> QueryServiceBuilder {
        QueryServiceBuilder::default()
    }

    /// Builder-style override of the execution engine's worker count.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Builder-style override of the ε charged to SELECTs without `CONSUMING`.
    pub fn with_default_epsilon(mut self, epsilon: f64) -> Self {
        self.default_epsilon = epsilon;
        self
    }

    /// Builder-style override of how many firings each standing query
    /// retains for polling (default 1024; clamped to at least 1).
    pub fn with_standing_retention(mut self, retained: usize) -> Self {
        self.standing_retention = retained.max(1);
        self
    }

    /// Builder-style override of the shard count (default 1). Shards
    /// partition the serving plane by camera-id hash: each gets its own
    /// registries, admission gate, health registry and cache tiers. Call
    /// *before* registering anything — resharding does not migrate existing
    /// registrations. (Durable services configure this through
    /// [`QueryServiceBuilder::shards`], which also shards the WAL layout.)
    pub fn with_shards(mut self, n: usize) -> Self {
        let n = n.max(1);
        self.shards = (0..n).map(|k| ServiceShard::new(k, None)).collect();
        self
    }

    /// Builder-style override of the chunk cache's capacity (0 disables it).
    /// The aggregate-state tier scales with it (entries there are a few
    /// folded states, far smaller than a chunk's rows): `0` disables both.
    /// The capacity is split across shards (ceiling division).
    pub fn with_cache_capacity(mut self, max_entries: usize) -> Self {
        let per_shard = split_capacity(max_entries, self.shards.len());
        for shard in &mut self.shards {
            shard.cache = ChunkResultCache::with_capacity(per_shard);
            shard.agg_cache = AggStateCache::with_capacity(per_shard.saturating_mul(AGG_CACHE_FACTOR));
        }
        self
    }

    /// Builder-style override of the aggregate-state tier alone (0 disables
    /// it, which also turns off incremental standing-query execution). The
    /// chunk cache keeps its own capacity — this is the knob benchmarks use
    /// to compare the fold-every-time path against tier-2 sharing on equal
    /// tier-1 footing. Split across shards like the tier-1 capacity.
    pub fn with_agg_cache_capacity(mut self, max_entries: usize) -> Self {
        let per_shard = split_capacity(max_entries, self.shards.len());
        for shard in &mut self.shards {
            shard.agg_cache = AggStateCache::with_capacity(per_shard);
        }
        self
    }

    // ---- registration -------------------------------------------------------------------

    /// Register a camera with its recording and privacy policy. Re-registering
    /// a name replaces the camera (fresh ledger) and invalidates its cached
    /// chunk results; sessions already holding the old state finish against it.
    ///
    /// On a durable service recovering from a crash, registering a name whose
    /// recovered policy and duration match **adopts** the pre-crash ledger —
    /// every debit made before the crash stays spent. A registration that
    /// does not match is an explicit replacement and mints a fresh ledger,
    /// exactly as it would have without the restart.
    ///
    /// Fails with [`PrividError::Store`] when the registration cannot be
    /// journaled — the registry is left untouched, so a retry after the
    /// store recovers sees exactly the pre-call state.
    pub fn register_camera(&self, name: impl Into<String>, scene: Scene, policy: PrivacyPolicy) -> Result<(), PrividError> {
        let name = name.into();
        let duration = scene.span.end.as_secs();
        let shard = self.shard_of(&name);
        // Shard-scoped invalidation: only the owning shard's cache tiers can
        // hold this camera's entries, so no other shard's map is walked.
        shard.cache.invalidate_camera(&name);
        shard.agg_cache.invalidate_camera(&name);
        // Journal + insert run under the shard's admission gate (and, inside
        // it, the registry write lock — gate-before-registry is the system's
        // lock order): two racing registrations of one name reach the WAL and
        // the registry in the same order, and an in-flight admission can
        // never journal its debits *after* a replacement's registration
        // record — its ledger currency check and its append are atomic with
        // respect to registrations.
        shard.admission.exclusive(|| {
            let mut cameras = shard.cameras.write().expect("camera registry poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
            let (generation, ledger) = self.camera_ledger(shard, &name, duration, policy, false)?;
            let state = Arc::new(CameraState {
                scene,
                policy,
                masks: Arc::new(RwLock::new(HashMap::new())),
                ledger: Arc::new(ledger),
                generation,
                live: false,
            });
            cameras.insert(name, state);
            Ok(())
        })
    }

    /// Register a *live* camera: an empty append-only recording whose footage
    /// arrives through [`QueryService::append_frames`]. The privacy budget
    /// grows with the timeline — every appended slot is born with the
    /// policy's full ε. Re-registering a name replaces the camera (fresh
    /// recording and ledger) and invalidates its cached chunk results.
    ///
    /// On a durable service recovering from a crash, a matching registration
    /// adopts the pre-crash ledger: its timeline already extends to the
    /// recovered live edge with every debit intact, while the scene restarts
    /// empty. The owner then re-feeds the recorded batches from its video
    /// store — replayed edges are no-ops on the ledger (no ε is re-minted),
    /// and queries between the replayed footage and the recovered edge fail
    /// with the retryable [`PrividError::BeyondLiveEdge`] until the replay
    /// catches up.
    pub fn register_live_camera(
        &self,
        name: impl Into<String>,
        frame_rate: FrameRate,
        frame_size: FrameSize,
        policy: PrivacyPolicy,
    ) -> Result<(), PrividError> {
        let name = name.into();
        let scene = Recording::start(CameraId::new(name.as_str()), frame_rate, frame_size).into_scene();
        let shard = self.shard_of(&name);
        shard.cache.invalidate_camera(&name);
        shard.agg_cache.invalidate_camera(&name);
        shard.admission.exclusive(|| {
            let mut cameras = shard.cameras.write().expect("camera registry poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
            let (generation, ledger) = self.camera_ledger(shard, &name, 0.0, policy, true)?;
            let state = Arc::new(CameraState {
                scene,
                policy,
                masks: Arc::new(RwLock::new(HashMap::new())),
                ledger: Arc::new(ledger),
                generation,
                live: true,
            });
            cameras.insert(name, state);
            Ok(())
        })
    }

    /// Adopt the recovered ledger for `name` when policy and shape match,
    /// else mint (and journal) a fresh registration.
    fn camera_ledger(
        &self,
        shard: &ServiceShard,
        name: &str,
        duration: Seconds,
        policy: PrivacyPolicy,
        live: bool,
    ) -> Result<(u64, BudgetLedger), PrividError> {
        if let Some(rec) = self.take_recovered(shard, name, duration, policy, live) {
            let ledger = BudgetLedger::restore(rec.slots, rec.duration_secs, rec.slot_secs, rec.initial_epsilon, live);
            return Ok((rec.generation, ledger));
        }
        let generation = self.generations.fetch_add(1, Ordering::Relaxed);
        if let Some(store) = &shard.store {
            store
                .append(Record::RegisterCamera {
                    name: name.to_string(),
                    generation,
                    live,
                    slot_secs: 1.0,
                    duration_secs: duration,
                    initial_epsilon: policy.epsilon_budget,
                    rho_secs: policy.rho_secs,
                    k: policy.k,
                })
                .map_err(PrividError::Store)?;
        }
        let ledger =
            if live { BudgetLedger::new_live(policy.epsilon_budget) } else { BudgetLedger::new(duration, policy.epsilon_budget) };
        Ok((generation, ledger))
    }

    /// Consume the recovered camera record for `name`, returning it iff the
    /// new registration is the same camera: same liveness, same policy, and
    /// (for fixed recordings) the same duration. Anything else is a
    /// deliberate replacement and must *not* inherit the old ledger — and
    /// the stale entry is dropped either way, so a *later* registration of
    /// the name can never adopt a ledger that a replacement already
    /// superseded in the journal.
    fn take_recovered(
        &self,
        shard: &ServiceShard,
        name: &str,
        duration: Seconds,
        policy: PrivacyPolicy,
        live: bool,
    ) -> Option<CameraRecord> {
        shard.store.as_ref()?;
        let recovered = shard.recovered_cameras.lock().expect("recovered registry poisoned").remove(name)?; // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        let matches = recovered.live == live
            && recovered.initial_epsilon == policy.epsilon_budget
            && recovered.rho_secs == policy.rho_secs
            && recovered.k == policy.k
            && (live || recovered.duration_secs == duration);
        matches.then_some(recovered)
    }

    /// Append one batch of freshly recorded footage to a live camera,
    /// advancing its live edge and growing its budget ledger (new slots are
    /// born with full ε). Publishes a copy-on-write snapshot of the grown
    /// scene — sessions already in flight finish against the edge they
    /// resolved — invalidates cached chunk results whose window overlapped
    /// the old live edge (closed-window entries stay warm), and then fires
    /// every standing query whose next window the new edge completed.
    ///
    /// ## Degraded modes
    ///
    /// With durability, a *transient* journal failure (I/O error on the
    /// append) is retried with bounded exponential backoff
    /// ([`StoreRetryPolicy`]); exhaustion marks the camera
    /// [`CameraHealth::Degraded`] and returns the store error (a later append
    /// may still succeed). A **wedged** store quarantines the camera and
    /// returns the retryable [`PrividError::CameraQuarantined`]: the ledger
    /// never grows without a journaled record, and only a supervised
    /// [`QueryService::recover_store`] resumes ingestion.
    pub fn append_frames(&self, camera: &str, batch: FrameBatch) -> Result<AppendOutcome, PrividError> {
        self.ensure_admittable(camera)?;
        // Everything below is scoped to the owning shard: the exclusive
        // section holds *this shard's* gate only, so an append here never
        // stalls admissions (or other appends) on any other shard.
        let shard = self.shard_of(camera);
        // The copy-on-write snapshot (O(scene)) is built *outside* the
        // registry write lock — holding it there would stall every query's
        // camera resolution for the duration of the clone. The swap then
        // happens under the write lock only if no other append (or
        // re-registration) got there first; on conflict, redo against the
        // winner's state. Progress is guaranteed: a retry only happens when
        // some other writer succeeded.
        let mut attempt = 0u32;
        let live_edge_secs = loop {
            let base = self.camera(camera).ok_or_else(|| PrividError::UnknownCamera(camera.to_string()))?;
            if !base.live {
                return Err(PrividError::Invalid(format!(
                    "camera {camera} is a fixed recording; only live cameras accept frame batches"
                )));
            }
            let mut recording = Recording::from_scene(base.scene.clone());
            recording.append_batch(batch.clone()).map_err(|e| PrividError::Invalid(e.to_string()))?;
            let scene = recording.into_scene();
            let edge_secs = scene.span.end.as_secs();
            // Order matters: grow the ledger *before* publishing the
            // snapshot (a session resolving the new scene must find its
            // slots funded), and drop overlap cache entries while holding
            // the write lock so no session can resolve the new edge and
            // still hit them.
            //
            // With durability the new edge is journaled *before* the ledger
            // grows, under the admission gate (acquired before the registry
            // lock — gate-before-registry is the system's lock order):
            // admissions resolve their debit slot ranges between check and
            // debit, so extensions must not interleave — and the WAL must
            // observe extends and admits in exactly the order the ledger
            // does. A crash between journal and extend recovers a timeline
            // slightly ahead of the footage; queries there fail retryably,
            // and no slot gains ε.
            let published: Option<Result<Seconds, PrividError>> = shard.admission.exclusive(|| {
                let mut cameras = shard.cameras.write().expect("camera registry poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
                match cameras.get(camera) {
                    Some(current) if Arc::ptr_eq(current, &base) => {
                        if let Some(store) = &shard.store {
                            // Skip the record when the edge does not advance
                            // the ledger: post-crash replay of recorded
                            // batches would otherwise pay one append (and an
                            // fsync) per batch for journal no-ops. Race-free:
                            // the gate serializes every ledger growth.
                            if edge_secs > base.ledger.duration_secs() {
                                let record =
                                    Record::Extend { camera: camera.to_string(), live_edge_secs: edge_secs };
                                if let Err(e) = store.append(record) {
                                    return Some(Err(PrividError::Store(e)));
                                }
                            }
                        }
                        base.ledger.extend_to(edge_secs);
                        // Only the chunk-result tier carries live-edge-tagged
                        // entries; aggregate states cover exclusively closed
                        // chunks, which this append cannot change, so the
                        // second tier needs no invalidation here.
                        shard.cache.invalidate_live_edge(camera);
                        let next = Arc::new(CameraState {
                            scene,
                            policy: base.policy,
                            masks: Arc::clone(&base.masks),
                            ledger: Arc::clone(&base.ledger),
                            generation: base.generation,
                            live: true,
                        });
                        cameras.insert(camera.to_string(), next);
                        Some(Ok(edge_secs))
                    }
                    _ => None,
                }
            });
            match published {
                None => continue,
                Some(Ok(edge)) => {
                    if shard.store.is_some() {
                        // Any successful journaled append clears a Degraded
                        // mark (quarantine was refused before the loop).
                        self.set_health(camera, CameraHealth::Healthy);
                    }
                    break edge;
                }
                Some(Err(PrividError::Store(e))) => {
                    if matches!(e, StoreError::Wedged { .. }) {
                        // Durability is compromised until a supervised
                        // reopen; retrying cannot help and must not pretend
                        // otherwise. Quarantine this camera only.
                        let reason = e.to_string();
                        self.set_health(camera, CameraHealth::Quarantined { reason: reason.clone() });
                        return Err(PrividError::CameraQuarantined { camera: camera.to_string(), reason });
                    }
                    if e.is_transient() && attempt < self.retry.max_retries {
                        // Backoff outside every lock, then redo the whole
                        // append (the CoW loop re-resolves current state).
                        attempt += 1;
                        std::thread::sleep(self.retry.backoff(attempt));
                        continue;
                    }
                    self.set_health(camera, CameraHealth::Degraded { reason: e.to_string() });
                    return Err(PrividError::Store(e));
                }
                Some(Err(other)) => return Err(other),
            }
        };
        let standing_fired = self.pump_standing_queries();
        Ok(AppendOutcome { live_edge_secs, standing_fired })
    }

    /// The recorded duration of a camera, in seconds — for a live camera,
    /// its current high-watermark (footage exists strictly before it).
    pub fn live_edge(&self, camera: &str) -> Option<Seconds> {
        self.camera(camera).map(|c| c.scene.span.end.as_secs())
    }

    /// Publish a mask (and its reduced ρ) for a camera (§7.1). Re-publishing
    /// a mask id replaces it and invalidates only that mask's cached results
    /// (unmasked and other-mask entries are unaffected by the change).
    pub fn register_mask(&self, camera: &str, mask_id: impl Into<String>, policy: MaskPolicy) -> Result<(), PrividError> {
        // Insert under the camera-registry read lock: resolving the state and
        // then writing outside it would race a concurrent register_camera and
        // silently publish the mask into the replaced (dead) CameraState.
        let shard = self.shard_of(camera);
        let cameras = shard.cameras.read().expect("camera registry poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        let state = cameras.get(camera).ok_or_else(|| PrividError::UnknownCamera(camera.to_string()))?;
        let mask_id = mask_id.into();
        shard.cache.invalidate_mask(camera, &mask_id);
        shard.agg_cache.invalidate_mask(camera, &mask_id);
        let generation = self.generations.fetch_add(1, Ordering::Relaxed);
        if let Some(store) = &shard.store {
            store
                .append(Record::RegisterMask {
                    camera: camera.to_string(),
                    mask_id: mask_id.clone(),
                    generation,
                    rho_secs: policy.rho_secs,
                })
                .map_err(PrividError::Store)?;
        }
        state.masks.write().expect("mask registry poisoned").insert(mask_id, (generation, policy)); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        Ok(())
    }

    /// Attach an analyst processor executable under a name. Re-registering a
    /// name replaces the factory and invalidates its cached chunk results.
    ///
    /// Fails with [`PrividError::Store`] when the registration cannot be
    /// journaled; the factory registry is left untouched.
    pub fn register_processor<F>(&self, name: impl Into<String>, factory: F) -> Result<(), PrividError>
    where
        F: Fn() -> Box<dyn ChunkProcessor> + Send + Sync + 'static,
    {
        let name = name.into();
        // A processor's cached outputs live on its *cameras'* shards, not on
        // the shard its own name hashes to — a re-registration must walk
        // every shard's tiers (unlike camera invalidation, which is
        // shard-local by construction).
        for shard in &self.shards {
            shard.cache.invalidate_processor(&name);
            shard.agg_cache.invalidate_processor(&name);
        }
        let shard = self.shard_of(&name);
        let generation = self.generations.fetch_add(1, Ordering::Relaxed);
        if let Some(store) = &shard.store {
            store
                .append(Record::RegisterProcessor { name: name.clone(), generation })
                .map_err(PrividError::Store)?;
        }
        // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        shard.processors.write().expect("processor registry poisoned").insert(name, (generation, Arc::new(factory)));
        Ok(())
    }

    // ---- standing queries ---------------------------------------------------------------

    /// Register a standing query: a prototype query whose SPLIT windows cover
    /// `[0, period)` and which automatically re-runs — shifted by one period —
    /// over every window the referenced live cameras complete. Each firing is
    /// an ordinary query: it passes budget admission and debits ε for its own
    /// window (exactly once per slot over the standing query's life, since
    /// consecutive windows are disjoint), and draws noise from
    /// `base_seed + window_index`, so any firing can be replayed bit-for-bit
    /// against a batch registration of the same footage.
    ///
    /// Windows already completed at registration time fire immediately
    /// (catch-up); the count of firings this call produced is returned.
    /// Re-registering a name with a *different* query text or seed replaces
    /// the standing query and resets its high-watermark to zero; registering
    /// the identical `(text, base_seed)` again is idempotent and keeps the
    /// watermark — which is what lets a restarted durable service re-arm a
    /// recovered standing query at its next unfired window instead of
    /// re-firing (and re-debiting) history.
    pub fn register_standing_query(
        &self,
        name: impl Into<String>,
        base_seed: u64,
        text: &str,
    ) -> Result<usize, PrividError> {
        self.register_standing_scoped(None, name, base_seed, text)
    }

    /// [`QueryService::register_standing_query`] on a tenant's behalf — the
    /// multi-tenant front-end's entry point.
    ///
    /// The standing namespace is shared, so ownership gates it: a fresh name
    /// is claimed for `tenant`; a name owned by a *different* tenant is
    /// refused with the typed [`PrividError::StandingQueryDenied`] whether
    /// the call would re-register or replace it. A recovered standing query
    /// (whose journal predates tenant ownership) is unowned until its
    /// tenant's first idempotent re-registration reclaims it. Every firing
    /// of an owned query is charged against the owner's ε quota exactly like
    /// a [`QueryService::execute_as`] submission: an over-quota window is
    /// recorded as a quota-refusal firing and executes nothing — no camera
    /// ledger is touched.
    pub fn register_standing_query_as(
        &self,
        tenant: &str,
        name: impl Into<String>,
        base_seed: u64,
        text: &str,
    ) -> Result<usize, PrividError> {
        self.register_standing_scoped(Some(tenant), name, base_seed, text)
    }

    fn register_standing_scoped(
        &self,
        tenant: Option<&str>,
        name: impl Into<String>,
        base_seed: u64,
        text: &str,
    ) -> Result<usize, PrividError> {
        let query = parse_query(text)?;
        if query.splits.is_empty() {
            return Err(PrividError::Invalid("a standing query needs at least one SPLIT".into()));
        }
        if query.splits.iter().any(|s| s.begin_secs < 0.0) {
            return Err(PrividError::Invalid("standing-query SPLIT windows must start at or after 0".into()));
        }
        let period_secs = query.splits.iter().map(|s| s.end_secs).fold(0.0, f64::max);
        if period_secs <= 0.0 {
            return Err(PrividError::Invalid("a standing query's SPLIT windows must cover footage".into()));
        }
        let mut cameras: Vec<String> = query.splits.iter().map(|s| s.camera.clone()).collect();
        cameras.sort();
        cameras.dedup();
        for cam in &cameras {
            let state = self.camera(cam).ok_or_else(|| PrividError::UnknownCamera(cam.clone()))?;
            if !state.live {
                return Err(PrividError::Invalid(format!(
                    "standing queries require live cameras; {cam} is a fixed recording"
                )));
            }
        }
        let name = name.into();
        {
            let mut standing = self.standing.lock().expect("standing registry poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
            // Ownership gate: a tenant may touch a name only if it is fresh,
            // already its own, or unowned (a recovered registration whose
            // journal predates tenant ownership — first re-registration
            // reclaims it). Trusted in-process callers (`tenant == None`)
            // bypass the gate but never *take* ownership from a tenant.
            if let (Some(t), Some(existing)) = (tenant, standing.get(&name)) {
                if existing.owner.as_deref().is_some_and(|o| o != t) {
                    return Err(PrividError::StandingQueryDenied { name, tenant: t.to_string() });
                }
            }
            match standing.get_mut(&name) {
                Some(existing) if existing.text == text && existing.base_seed == base_seed => {
                    // Idempotent re-registration: keep the firing watermark.
                    // A tenant re-registering an unowned (recovered) query
                    // claims it here.
                    if let Some(t) = tenant {
                        existing.owner.get_or_insert_with(|| t.to_string());
                    }
                }
                _ => {
                    // Standing queries are global in memory but journal to
                    // the shard their *name* hashes to (they may reference
                    // cameras on several shards; the record needs one home).
                    if let Some(store) = &self.shard_of(&name).store {
                        store
                            .append(Record::RegisterStanding {
                                name: name.clone(),
                                base_seed,
                                period_secs,
                                text: text.to_string(),
                            })
                            .map_err(PrividError::Store)?;
                    }
                    standing.insert(
                        name,
                        StandingState {
                            query,
                            text: text.to_string(),
                            cameras,
                            period_secs,
                            base_seed,
                            next_start_secs: 0.0,
                            firings: VecDeque::new(),
                            fired_count: 0,
                            owner: tenant.map(str::to_string),
                        },
                    );
                }
            }
        }
        Ok(self.pump_standing_queries())
    }

    /// The retained firings of a standing query, in window order.
    ///
    /// Only the most recent `standing_retention` firings are kept in memory;
    /// a long-running poller should use
    /// [`QueryService::standing_results_since`] instead, which returns only
    /// the firings past a cursor and reports anything evicted before it could
    /// be observed.
    pub fn standing_results(&self, name: &str) -> Option<Vec<StandingFiring>> {
        self.standing.lock().expect("standing registry poisoned").get(name).map(|s| { // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
            // Firings are recorded in watermark order, which is window order.
            s.firings.iter().cloned().collect()
        })
    }

    /// The firings of a standing query past `cursor`, in window order.
    ///
    /// The cursor space is the total number of firings ever recorded:
    /// `cursor = 0` means "from the beginning", and each poll's
    /// [`StandingPoll::next_cursor`] names the first firing the *next* poll
    /// should return. Each poll copies only the new firings — a poller that
    /// keeps up pays O(new) per call regardless of how long the query has
    /// been running, and memory stays bounded by the retention cap either
    /// way. Firings the cap evicted before the caller saw them are counted
    /// in [`StandingPoll::dropped`]. `None` means no such standing query.
    pub fn standing_results_since(&self, name: &str, cursor: u64) -> Option<StandingPoll> {
        self.poll_standing_scoped(None, name, cursor)
    }

    /// [`QueryService::standing_results_since`] on a tenant's behalf — the
    /// multi-tenant front-end's poll path.
    ///
    /// Firings are noised query releases; only the tenant that owns the
    /// standing query may read them. A name that does not exist, is owned by
    /// another tenant, or is unowned (a recovered registration the tenant
    /// has not yet reclaimed via
    /// [`QueryService::register_standing_query_as`]) uniformly returns
    /// `None` — a poll must not double as an oracle for which names other
    /// tenants have registered.
    pub fn standing_results_since_as(&self, tenant: &str, name: &str, cursor: u64) -> Option<StandingPoll> {
        self.poll_standing_scoped(Some(tenant), name, cursor)
    }

    fn poll_standing_scoped(&self, tenant: Option<&str>, name: &str, cursor: u64) -> Option<StandingPoll> {
        self.standing.lock().expect("standing registry poisoned").get(name).filter(|s| { // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
            match tenant {
                // Trusted in-process callers see everything.
                None => true,
                Some(t) => s.owner.as_deref() == Some(t),
            }
        }).map(|s| {
            let oldest = s.fired_count - s.firings.len() as u64;
            // A cursor past the end (e.g. from a previous process incarnation
            // that had fired more) clamps to the live range rather than
            // erroring: the poller simply resumes from "now".
            let from = cursor.min(s.fired_count);
            let dropped = oldest.saturating_sub(from);
            let skip = from.saturating_sub(oldest) as usize;
            StandingPoll {
                firings: s.firings.iter().skip(skip).cloned().collect(),
                next_cursor: s.fired_count,
                dropped,
            }
        })
    }

    /// Fire every standing query whose next window is now fully recorded.
    ///
    /// Due windows are claimed (and the per-query high-watermark advanced)
    /// under the standing-registry lock, so two appends racing each other can
    /// never double-fire a window; the queries themselves execute *outside*
    /// the lock through the ordinary [`QueryService::execute`] path.
    fn pump_standing_queries(&self) -> usize {
        let mut jobs: Vec<StandingJob> = Vec::new();
        let mut prefolds: Vec<ParsedQuery> = Vec::new();
        {
            let mut standing = self.standing.lock().expect("standing registry poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
            for (name, st) in standing.iter_mut() {
                // The firing frontier is the slowest referenced camera's edge.
                let edge = st
                    .cameras
                    .iter()
                    .map(|c| self.camera(c).map(|s| s.scene.span.end.as_secs()))
                    .try_fold(f64::INFINITY, |acc: f64, e| e.map(|e| acc.min(e)));
                let Some(edge) = edge else { continue };
                // Tolerate float accumulation over many periods at the boundary.
                while st.next_start_secs + st.period_secs <= edge + 1e-9 {
                    let start = st.next_start_secs;
                    let index = (start / st.period_secs).round() as u64;
                    // The watermark advances by *multiplication*, not by
                    // accumulating `+= period`: recovery recomputes it as
                    // `(index + 1) × period` from the journaled firing index,
                    // and for periods with no exact binary representation the
                    // two arithmetics drift apart — which would shift every
                    // post-restart window by ULPs and break bit-for-bit
                    // resumption.
                    let next_start = (index + 1) as f64 * st.period_secs;
                    let mut query = st.query.clone();
                    for s in &mut query.splits {
                        s.begin_secs += start;
                        s.end_secs += start;
                    }
                    jobs.push(StandingJob {
                        name: name.clone(),
                        window: TimeSpan::between_secs(start, next_start),
                        index,
                        seed: st.base_seed.wrapping_add(index),
                        query,
                        owner: st.owner.clone(),
                    });
                    st.next_start_secs = next_start;
                }
                // The window now *forming* (`[next_start, next_start+period)`)
                // has some footage whenever the edge sits inside it: pre-fold
                // the chunks this append closed so the eventual firing only
                // runs the final stretch. Collected under the lock, executed
                // outside it (it runs the sandbox).
                if edge > st.next_start_secs {
                    let mut query = st.query.clone();
                    for s in &mut query.splits {
                        s.begin_secs += st.next_start_secs;
                        s.end_secs += st.next_start_secs;
                    }
                    prefolds.push(query);
                }
            }
        }
        let fired = jobs.len();
        for job in jobs {
            // A tenant-owned firing is metered exactly like an `execute_as`
            // submission: reserve the owner's quota first (an over-quota
            // window becomes a quota-refusal firing and executes nothing —
            // no camera ledger is touched), refund on execution failure.
            let result = match job.owner.as_deref() {
                None => self.execute_standing_query(job.seed, &job.query),
                Some(tenant) => {
                    let requested = self.query_epsilon_demand(&job.query);
                    match self.reserve_tenant_quota(tenant, requested) {
                        Err(refused) => Err(refused),
                        Ok(()) => {
                            let result = self.execute_standing_query(job.seed, &job.query);
                            if result.is_err() {
                                self.refund_tenant_quota(tenant, requested);
                            }
                            result
                        }
                    }
                }
            };
            // Journal the advanced watermark *after* the firing (whose own
            // debits the execute path journaled). Best-effort on purpose: a
            // lost record can only make recovery re-fire this window — a
            // duplicate release (identical, by seed determinism) and a
            // conservative double debit, never an under-debit.
            if let Some(store) = &self.shard_of(&job.name).store {
                let _ = store.append(Record::StandingFired { name: job.name.clone(), window_index: job.index });
            }
            let mut standing = self.standing.lock().expect("standing registry poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
            if let Some(st) = standing.get_mut(&job.name) {
                st.firings.push_back(StandingFiring { window: job.window, seed: job.seed, result });
                st.fired_count += 1;
                while st.firings.len() > self.standing_retention {
                    st.firings.pop_front();
                }
            }
        }
        for query in prefolds {
            session::prefold_standing(self, &query, self.parallelism);
        }
        fired
    }

    /// Execute one standing-query firing: the incremental fold path when it
    /// applies (fully recorded window, foldable SELECTs), else the ordinary
    /// [`QueryService::execute`] pipeline. Both paths draw from a fresh
    /// mechanism seeded the same way and release bit-identical values, so
    /// which one served a firing is observable only in latency.
    fn execute_standing_query(&self, seed: u64, query: &ParsedQuery) -> Result<QueryResult, PrividError> {
        let mut mechanism = LaplaceMechanism::new(seed);
        match session::execute_standing(self, query, &mut mechanism, self.parallelism, self.default_epsilon) {
            Ok(Some(result)) => Ok(result),
            Ok(None) => self.execute(seed, query),
            Err(e) => Err(e),
        }
    }

    // ---- durability ---------------------------------------------------------------------

    /// What recovery did when this service was built from an existing store
    /// (`None` without durability or for a fresh store directory).
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Write a snapshot and truncate the write-ahead log of every shard,
    /// bounding the next recovery's replay cost. A no-op without durability.
    /// Compaction is per shard — each store also snapshots automatically
    /// every `snapshot_every` of *its own* records, so one hot shard's churn
    /// never forces fleet-wide snapshot work and recovery time stays flat as
    /// the fleet ages.
    pub fn checkpoint(&self) -> Result<(), PrividError> {
        for shard in &self.shards {
            if let Some(store) = &shard.store {
                store.checkpoint().map_err(PrividError::Store)?;
            }
        }
        Ok(())
    }

    /// The durable timeline the budget ledger covers, in seconds. Normally
    /// equal to [`QueryService::live_edge`]; after crash recovery it can run
    /// *ahead* of the replayed scene until the owner has re-fed the recorded
    /// batches (queries in the gap fail retryably).
    pub fn ledger_edge(&self, camera: &str) -> Option<Seconds> {
        self.camera(camera).map(|c| c.ledger.duration_secs())
    }

    // ---- health & supervised recovery ---------------------------------------------------

    /// The durability health of a camera. Cameras with no recorded failure
    /// (and every camera on a non-durable service) are
    /// [`CameraHealth::Healthy`].
    pub fn camera_health(&self, camera: &str) -> CameraHealth {
        self.shard_of(camera)
            .health
            .lock()
            .expect("health registry poisoned") // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
            .states
            .get(camera)
            .cloned()
            .unwrap_or(CameraHealth::Healthy)
    }

    /// Why a store refuses appends, if any shard's WAL is wedged. `None`
    /// without durability or while every shard is accepting records. (A
    /// wedge is per shard: the other shards keep journaling and serving.)
    pub fn store_wedged(&self) -> Option<String> {
        self.shards.iter().find_map(|shard| shard.store.as_ref().and_then(|s| s.is_wedged()))
    }

    /// Why one specific shard's WAL refuses appends, if it is wedged.
    pub fn shard_wedged(&self, shard: usize) -> Option<String> {
        self.shards.get(shard).and_then(|s| s.store.as_ref()).and_then(|s| s.is_wedged())
    }

    /// The durable shadow state (what recovery would rebuild right now),
    /// merged across shards — names are disjoint across shard stores by the
    /// routing hash, so the union loses nothing. `None` without durability.
    /// Chaos and recovery proofs compare its per-slot budgets against the
    /// in-memory ledgers.
    pub fn durable_state(&self) -> Option<privid_store::StoreState> {
        if !self.is_durable() {
            return None;
        }
        let mut merged = privid_store::StoreState::default();
        for shard in &self.shards {
            if let Some(store) = &shard.store {
                let state = store.state();
                merged.cameras.extend(state.cameras);
                merged.processors.extend(state.processors);
                merged.standing.extend(state.standing);
                merged.next_generation = merged.next_generation.max(state.next_generation);
            }
        }
        Some(merged)
    }

    fn is_durable(&self) -> bool {
        self.shards.iter().any(|shard| shard.store.is_some())
    }

    fn set_health(&self, camera: &str, health: CameraHealth) {
        let mut registry = self.shard_of(camera).health.lock().expect("health registry poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        match health {
            CameraHealth::Healthy => {
                registry.states.remove(camera);
            }
            other => {
                registry.states.insert(camera.to_string(), other);
            }
        }
    }

    /// Refuse the operation when `camera` is quarantined: ε must never be
    /// debited (nor the ledger extended) without a journaled record.
    pub(crate) fn ensure_admittable(&self, camera: &str) -> Result<(), PrividError> {
        match self.camera_health(camera) {
            CameraHealth::Quarantined { reason } => {
                Err(PrividError::CameraQuarantined { camera: camera.to_string(), reason })
            }
            _ => Ok(()),
        }
    }

    /// Degrade or quarantine the cameras an admission's journal failure hit,
    /// and convert the store error into the error the analyst sees. A wedge
    /// quarantines every camera in the admission (their debits share the one
    /// refused record); a transient failure only degrades them — the next
    /// admission retries naturally.
    pub(crate) fn note_journal_failure(&self, cameras: &[&str], error: StoreError) -> PrividError {
        if let StoreError::Wedged { reason } = &error {
            for camera in cameras {
                self.set_health(camera, CameraHealth::Quarantined { reason: reason.clone() });
            }
            if let Some(first) = cameras.first() {
                return PrividError::CameraQuarantined { camera: first.to_string(), reason: reason.clone() };
            }
        } else if error.is_transient() {
            for camera in cameras {
                self.set_health(camera, CameraHealth::Degraded { reason: error.to_string() });
            }
        }
        PrividError::Store(error)
    }

    /// Record that a best-effort `Credit` rollback could not be journaled:
    /// the durable ledger keeps debits the in-memory ledger rolled back. The
    /// camera is quarantined (further admissions could compound the
    /// divergence) and a typed [`RecoveryWarning`] is queued for the next
    /// [`QueryService::recover_store`] report.
    fn note_lost_rollback(&self, camera: &str, lo: u64, hi: u64, epsilon: f64, error: &StoreError) {
        let reason = format!("a rollback credit could not be journaled: {error}");
        let mut registry = self.shard_of(camera).health.lock().expect("health registry poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        registry.warnings.push(RecoveryWarning::CreditRollbackLost {
            camera: camera.to_string(),
            lo,
            hi,
            epsilon_bits: epsilon.to_bits(),
            error: error.to_string(),
        });
        registry.states.insert(camera.to_string(), CameraHealth::Quarantined { reason });
    }

    /// Supervised recovery after storage faults: reopen the store (re-reading
    /// the log from disk), reconcile every registered camera's in-memory
    /// ledger against the recovered durable state, lift all quarantines, and
    /// return the recovery report with any accumulated warnings attached.
    ///
    /// Reconciliation takes the element-wise **minimum** of remaining budget
    /// and the **maximum** of the timelines ([`BudgetLedger::reconcile`]), so
    /// whichever side saw more debits wins — ε lost to a fault is wasted,
    /// never re-minted. Recovered cameras that are not currently registered
    /// are staged for adoption exactly as at build time.
    pub fn recover_store(&self) -> Result<RecoveryReport, PrividError> {
        if !self.is_durable() {
            return Err(PrividError::Invalid("recover_store requires a durable service".into()));
        }
        let mut merged = RecoveryReport::default();
        for shard in &self.shards {
            let Some(store) = &shard.store else { continue };
            // Under this shard's admission gate: no admission may journal (or
            // debit) on this shard between the reopen and the ledger
            // reconciliation, and no append may extend a timeline the
            // reconciliation is mid-merge on. Other shards keep serving —
            // recovery is per shard, like the faults it repairs.
            let report = shard.admission.exclusive(|| -> Result<RecoveryReport, PrividError> {
                let recovered = store.reopen().map_err(PrividError::Store)?;
                let cameras = shard.cameras.read().expect("camera registry poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
                let mut unclaimed = BTreeMap::new();
                for (name, rec) in recovered.state.cameras {
                    match cameras.get(&name) {
                        // Same generation = same registration lineage: the
                        // recovered slots describe this very ledger.
                        Some(state) if state.generation == rec.generation => {
                            state.ledger.reconcile(&rec.slots, rec.duration_secs);
                        }
                        // A different (or no) registration: stage the record
                        // for adoption by a future matching re-registration.
                        _ => {
                            unclaimed.insert(name, rec);
                        }
                    }
                }
                let mut staged = shard.recovered_cameras.lock().expect("recovered registry poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
                staged.extend(unclaimed);
                Ok(recovered.report)
            })?;
            merge_report(&mut merged, report);
        }
        for shard in &self.shards {
            // Drain the store's own durability warnings (e.g. a snapshot
            // rename whose directory fsync failed) before the health
            // registry's: the store saw its faults first.
            if let Some(store) = &shard.store {
                merged.warnings.extend(store.drain_warnings());
            }
            let mut registry = shard.health.lock().expect("health registry poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
            merged.warnings.append(&mut registry.warnings);
            registry.states.clear();
        }
        Ok(merged)
    }

    // ---- introspection ------------------------------------------------------------------

    /// Remaining per-frame budget of a camera at a given time.
    pub fn remaining_budget(&self, camera: &str, at_secs: f64) -> Option<f64> {
        self.camera(camera).map(|c| c.ledger.remaining_at(at_secs))
    }

    /// The registered policy of a camera.
    pub fn camera_policy(&self, camera: &str) -> Option<PrivacyPolicy> {
        self.camera(camera).map(|c| c.policy)
    }

    /// Counters of the cross-query chunk-result cache, summed over shards.
    pub fn cache_stats(&self) -> ChunkCacheStats {
        let mut total = ChunkCacheStats::default();
        for stats in self.shards.iter().map(|shard| shard.cache.stats()) {
            total.hits += stats.hits;
            total.misses += stats.misses;
            total.evictions += stats.evictions;
            total.entries += stats.entries;
        }
        total
    }

    /// Counters of the aggregate-state cache (the second tier), summed over
    /// shards: hits are queries that reused another query's folded sub-plan
    /// states.
    pub fn agg_cache_stats(&self) -> AggCacheStats {
        let mut total = AggCacheStats::default();
        for stats in self.shards.iter().map(|shard| shard.agg_cache.stats()) {
            total.hits += stats.hits;
            total.misses += stats.misses;
            total.evictions += stats.evictions;
            total.entries += stats.entries;
        }
        total
    }

    /// Counters of one shard's chunk-result cache (`None` out of range).
    /// The fleet tests assert with these that invalidation on camera
    /// re-registration walks only the owning shard's entries.
    pub fn shard_cache_stats(&self, shard: usize) -> Option<ChunkCacheStats> {
        self.shards.get(shard).map(|s| s.cache.stats())
    }

    /// Counters of one shard's aggregate-state cache (`None` out of range).
    pub fn shard_agg_cache_stats(&self, shard: usize) -> Option<AggCacheStats> {
        self.shards.get(shard).map(|s| s.agg_cache.stats())
    }

    /// The number of shards the serving plane is partitioned into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard owns a registry name (camera, processor or standing
    /// query). Stable across restarts: FNV-1a of the name, not a seeded
    /// hasher — the durable layout depends on it.
    pub fn shard_index(&self, name: &str) -> usize {
        (shard_hash(name) % self.shards.len().max(1) as u64) as usize
    }

    // ---- execution ----------------------------------------------------------------------

    /// Parse and execute a textual query with a per-query noise seed.
    pub fn execute_text(&self, seed: u64, text: &str) -> Result<QueryResult, PrividError> {
        let query = parse_query(text)?;
        self.execute(seed, &query)
    }

    /// Execute a parsed query with a per-query noise seed. Safe to call from
    /// any number of threads concurrently; the releases depend only on
    /// `(seed, query)` (plus, under contended budget, the admission outcome).
    ///
    /// **Threat model**: the seed must be chosen by the *video owner*. This
    /// reproduction takes it as a parameter so experiments can replay exact
    /// noise streams — the same reason [`NoisyRelease`](crate::NoisyRelease)
    /// exposes its `raw` value. A deployment would draw the seed from
    /// owner-side entropy per query; an analyst who controls (or learns) the
    /// seed can regenerate every Laplace sample offline and subtract the
    /// noise, voiding the DP guarantee.
    pub fn execute(&self, seed: u64, query: &ParsedQuery) -> Result<QueryResult, PrividError> {
        let mut mechanism = LaplaceMechanism::new(seed);
        self.execute_session(query, &mut mechanism, self.parallelism, self.default_epsilon)
    }

    // ---- tenant quotas ------------------------------------------------------------------

    /// Grant (or reset) a tenant's remaining ε quota. Tenants with no quota
    /// set are unlimited — quotas are the multi-tenant server's resource
    /// governance layer; the per-camera ledgers alone carry the DP
    /// guarantee.
    pub fn set_tenant_quota(&self, tenant: impl Into<String>, epsilon: f64) {
        let mut quotas = self.tenant_quotas.lock().expect("tenant quota registry poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        quotas.insert(tenant.into(), epsilon.max(0.0));
    }

    /// A tenant's remaining ε quota, or `None` if the tenant is unlimited.
    pub fn tenant_quota_remaining(&self, tenant: &str) -> Option<f64> {
        let quotas = self.tenant_quotas.lock().expect("tenant quota registry poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        quotas.get(tenant).copied()
    }

    /// Parse and execute a textual query on a tenant's behalf, enforcing the
    /// tenant's ε quota. See [`QueryService::execute_as`].
    pub fn execute_text_as(&self, tenant: &str, seed: u64, text: &str) -> Result<QueryResult, PrividError> {
        let query = parse_query(text)?;
        self.execute_as(tenant, seed, &query)
    }

    /// Execute a parsed query on a tenant's behalf, enforcing the tenant's ε
    /// quota at admission time.
    ///
    /// The query's total ε demand is computable from the parsed query alone
    /// (each SELECT's `CONSUMING` clause, or the service default) — the same
    /// formula the per-camera admission gate charges — so the quota is
    /// reserved *before* any sandbox work or ledger debit. An over-quota
    /// submission is rejected with the typed
    /// [`PrividError::TenantQuotaExhausted`] and debits nothing anywhere. If
    /// execution then fails (unknown camera, exhausted per-camera ledger,
    /// …), the reservation is refunded in full: the refund can only
    /// *under*-count ε the per-camera ledgers kept (rare post-admission
    /// failures), never hand back ε that produced an analyst-visible
    /// release.
    pub fn execute_as(&self, tenant: &str, seed: u64, query: &ParsedQuery) -> Result<QueryResult, PrividError> {
        let requested = self.query_epsilon_demand(query);
        self.reserve_tenant_quota(tenant, requested)?;
        let result = self.execute(seed, query);
        if result.is_err() {
            self.refund_tenant_quota(tenant, requested);
        }
        result
    }

    /// Total ε a parsed query will consume on success — each SELECT's
    /// `CONSUMING` clause, or the service default. The same formula the
    /// per-camera admission gate charges, which is what makes reserving it
    /// against a tenant quota *before* execution sound.
    fn query_epsilon_demand(&self, query: &ParsedQuery) -> f64 {
        query.selects.iter().map(|s| s.epsilon.unwrap_or(self.default_epsilon)).sum()
    }

    /// Reserve `requested` ε from a tenant's quota, or refuse with the typed
    /// admission error (debiting nothing). Tenants with no quota entry are
    /// unlimited. Standalone acquisition of `tenant-quota-registry`.
    fn reserve_tenant_quota(&self, tenant: &str, requested: f64) -> Result<(), PrividError> {
        let mut quotas = self.tenant_quotas.lock().expect("tenant quota registry poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        if let Some(available) = quotas.get_mut(tenant) {
            if requested > *available {
                return Err(PrividError::TenantQuotaExhausted {
                    tenant: tenant.to_string(),
                    requested,
                    available: *available,
                });
            }
            *available -= requested;
        }
        Ok(())
    }

    /// Return a failed execution's reservation. The refund can only
    /// *under*-count ε the per-camera ledgers kept (rare post-admission
    /// failures), never hand back ε that produced an analyst-visible
    /// release. Standalone acquisition of `tenant-quota-registry`.
    fn refund_tenant_quota(&self, tenant: &str, amount: f64) {
        let mut quotas = self.tenant_quotas.lock().expect("tenant quota registry poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        if let Some(available) = quotas.get_mut(tenant) {
            *available += amount;
        }
    }

    /// Execute a query drawing noise from a caller-owned mechanism.
    /// `PrividSystem` uses this to preserve its historical semantics of one
    /// continuous noise stream across a system's whole query sequence.
    pub(crate) fn execute_session(
        &self,
        query: &ParsedQuery,
        mechanism: &mut LaplaceMechanism,
        parallelism: Parallelism,
        default_epsilon: f64,
    ) -> Result<QueryResult, PrividError> {
        session::execute_query(self, query, mechanism, parallelism, default_epsilon)
    }

    // ---- internals shared with `session` -------------------------------------------------

    fn shard_of(&self, name: &str) -> &ServiceShard {
        self.shard_at(self.shard_index(name))
    }

    fn shard_at(&self, index: usize) -> &ServiceShard {
        // privid-analyzer: allow(panic-freedom) -- `index` comes from `shard_index`, a modulus over the (never-empty) shard vec
        &self.shards[index]
    }

    pub(crate) fn camera(&self, name: &str) -> Option<Arc<CameraState>> {
        self.shard_of(name).cameras.read().expect("camera registry poisoned").get(name).cloned() // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
    }

    /// Resolve a processor to its `(generation, factory)` pair.
    pub(crate) fn processor(&self, name: &str) -> Option<RegisteredProcessor> {
        self.shard_of(name).processors.read().expect("processor registry poisoned").get(name).cloned() // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
    }

    /// The chunk-result cache tier of the shard owning `camera` — sessions
    /// route every probe and insert through the camera's home shard, which
    /// is what keeps invalidation shard-local.
    pub(crate) fn chunk_cache_for(&self, camera: &str) -> &ChunkResultCache {
        &self.shard_of(camera).cache
    }

    /// The aggregate-state cache tier of the shard owning `camera`.
    pub(crate) fn agg_cache_for(&self, camera: &str) -> &AggStateCache {
        &self.shard_of(camera).agg_cache
    }

    /// Whether the tier-2 cache is enabled (capacity is uniform per shard,
    /// so the first shard answers for the fleet).
    pub(crate) fn agg_cache_enabled(&self) -> bool {
        self.shards.first().is_some_and(|shard| shard.agg_cache.enabled())
    }

    /// Admit a query's per-window requests, journaling the debits first when
    /// the service is durable. `cameras[i]` names the camera of `requests[i]`
    /// (for the journal record and error attribution).
    ///
    /// Requests are grouped by owning shard and admitted through
    /// [`admit_fleet`]: every involved shard's gate is acquired in ascending
    /// shard order, the check-all-then-debit-all protocol runs across the
    /// union, and each durable shard's `Admit` record is *staged* under the
    /// gates but group-committed (one fsync per batch) after they drop.
    pub(crate) fn admit_requests(
        &self,
        requests: &[AdmissionRequest<'_>],
        cameras: &[&str],
        epsilon: f64,
    ) -> Result<(), AdmissionFailure> {
        debug_assert_eq!(requests.len(), cameras.len());
        // BTreeMap iteration gives the canonical ascending shard order the
        // fleet lock discipline requires.
        let mut grouped: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, camera) in cameras.iter().enumerate() {
            grouped.entry(self.shard_index(camera)).or_default().push(i);
        }
        let prepared: Vec<(&ServiceShard, Vec<usize>, Option<WalAdmissionJournal<'_>>)> = grouped
            .into_iter()
            .map(|(k, members)| {
                let shard = self.shard_at(k);
                let journal = shard.store.as_ref().map(|store| WalAdmissionJournal {
                    service: self,
                    store: Arc::clone(store),
                    cameras: members.iter().filter_map(|&i| cameras.get(i).copied()).collect(),
                });
                (shard, members, journal)
            })
            .collect();
        let groups: Vec<ShardAdmission<'_>> = prepared
            .iter()
            .map(|(shard, members, journal)| ShardAdmission {
                shard: shard.index,
                controller: &shard.admission,
                journal: journal.as_ref().map(|j| j as &dyn AdmissionJournal),
                members: members.clone(),
            })
            .collect();
        admit_fleet(&groups, requests, epsilon)
    }
}

/// The serving layer's [`AdmissionJournal`]: one atomic [`Record::Admit`]
/// per (admission, shard), carrying the exact slot ranges the debits will
/// cover on that shard.
struct WalAdmissionJournal<'a> {
    service: &'a QueryService,
    /// The owning shard's store, as an owned `Arc`: the commit-wait closure
    /// `record_admit` returns must outlive the admission call, so it cannot
    /// borrow from the journal.
    store: Arc<WalStore>,
    /// Camera name per member request, index-aligned with the (shard-local)
    /// request slice the journal hooks receive.
    cameras: Vec<&'a str>,
}

impl AdmissionJournal for WalAdmissionJournal<'_> {
    fn record_admit(
        &self,
        requests: &[AdmissionRequest<'_>],
        epsilon: f64,
    ) -> Result<Option<CommitWait>, StoreError> {
        let mut debits = Vec::with_capacity(requests.len());
        for (camera, request) in self.cameras.iter().zip(requests) {
            // A session may be admitting against a camera a concurrent
            // re-registration has since replaced. Its debit then lands on
            // the detached old ledger — correct for the session, which
            // finishes against the state it resolved — but meaningless after
            // a restart: the journal's shadow already follows the
            // replacement's fresh ledger (whose record was appended under
            // this same gate). Skip journaling such ranges; the detached
            // ledger dies with the process.
            let current =
                self.service.camera(camera).is_some_and(|s| std::ptr::eq(s.ledger.as_ref(), request.ledger));
            if !current {
                continue;
            }
            // The range is resolved under the admission gate, between check
            // and debit: it is exactly what `check_and_debit` will cover.
            let (lo, hi) = request.ledger.debit_slot_range(&request.window).map_err(|e| StoreError::InvalidRecord {
                offset: 0,
                reason: format!("checked admission window failed to resolve to slots: {e:?}"),
            })?;
            debits.push(privid_store::DebitRange { camera: camera.to_string(), lo: lo as u64, hi: hi as u64 });
        }
        if debits.is_empty() {
            return Ok(None);
        }
        // Stage under the shard gates, redeem after they drop: the group
        // commit batches this record with concurrent admissions' appends
        // (one fsync per batch), and no admission holds a gate while the
        // flush runs. A staging failure aborts the fleet admission with the
        // budget intact, exactly as the old synchronous append did.
        let ticket = self.store.stage(Record::Admit { epsilon, debits })?;
        let store = Arc::clone(&self.store);
        Ok(Some(Box::new(move || store.wait_commit(ticket))))
    }

    fn record_rollback(&self, requests: &[AdmissionRequest<'_>], _debited: usize, epsilon: f64) {
        // Only reachable when an out-of-contract caller debits a ledger
        // outside the controller (shared-ledger conflicts are rejected by
        // simulation before anything is journaled). The admit record
        // journaled debits for *every* current request, while the rolled-back
        // admission's net in-memory effect is zero — so every journaled range
        // must be credited back, including those whose in-memory debit never
        // happened. Best-effort: a lost (or ULP-inexact) credit recovers an
        // over-debited slot, never an under-debit — but a *failed* credit is
        // not silent: the divergence between journal and memory is recorded
        // as a typed warning and the camera is quarantined until a supervised
        // recovery reconciles the two (further admissions on a ledger the
        // journal disagrees with could compound the gap).
        let store = &self.store;
        for (camera, request) in self.cameras.iter().zip(requests) {
            let current =
                self.service.camera(camera).is_some_and(|s| std::ptr::eq(s.ledger.as_ref(), request.ledger));
            if !current {
                continue;
            }
            if let Ok((lo, hi)) = request.ledger.debit_slot_range(&request.window) {
                let credit = Record::Credit { camera: camera.to_string(), lo: lo as u64, hi: hi as u64, epsilon };
                if let Err(e) = store.append(credit) {
                    self.service.note_lost_rollback(camera, lo as u64, hi as u64, epsilon, &e);
                }
            }
        }
    }
}

/// Builder for [`QueryService`]: the same knobs as the `with_*` methods plus
/// the durability configuration (which can fail — recovery reads disk — and
/// therefore needs a fallible `build`).
#[derive(Debug, Default)]
pub struct QueryServiceBuilder {
    parallelism: Option<Parallelism>,
    default_epsilon: Option<f64>,
    cache_capacity: Option<usize>,
    durability: Durability,
    snapshot_every: Option<u64>,
    storage_vfs: Option<Arc<dyn Vfs>>,
    shard_vfs: Vec<(usize, Arc<dyn Vfs>)>,
    append_retry: Option<StoreRetryPolicy>,
    shards: Option<usize>,
    standing_retention: Option<usize>,
}

impl QueryServiceBuilder {
    /// Worker count of the chunk execution engine.
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = Some(parallelism);
        self
    }

    /// ε charged to SELECTs without `CONSUMING`.
    pub fn default_epsilon(mut self, epsilon: f64) -> Self {
        self.default_epsilon = Some(epsilon);
        self
    }

    /// Chunk-cache capacity (0 disables the cache).
    pub fn cache_capacity(mut self, max_entries: usize) -> Self {
        self.cache_capacity = Some(max_entries);
        self
    }

    /// Where (and whether) to persist admission state. With
    /// [`Durability::Wal`], `build` recovers any existing state in the
    /// directory: standing queries are restored and re-armed at their next
    /// unfired window, the generation counter resumes past every recovered
    /// generation, and recovered camera ledgers await adoption by matching
    /// re-registrations.
    pub fn durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// Snapshot (and truncate the WAL) after this many records (default 4096).
    pub fn snapshot_every(mut self, records: u64) -> Self {
        self.snapshot_every = Some(records);
        self
    }

    /// Route every filesystem touch of the durability store through an
    /// explicit [`Vfs`] — the injection point for
    /// [`FaultVfs`](privid_store::FaultVfs) in fault-injection tests and
    /// chaos harnesses. Defaults to the real filesystem.
    pub fn storage_vfs(mut self, vfs: Arc<dyn Vfs>) -> Self {
        self.storage_vfs = Some(vfs);
        self
    }

    /// Number of camera shards. Each shard owns its own registry slice,
    /// admission gate, cache tiers, health registry and — under
    /// [`Durability::Wal`] — its own WAL + snapshot in `dir/shard-<k>/`.
    /// Cameras route to shards by a stable hash of their name, so the
    /// layout survives restarts. Defaults to 1 (the pre-fleet layout).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards.max(1));
        self
    }

    /// Override the [`Vfs`] of a *single* shard's store, leaving the rest on
    /// the default. This is the injection point for single-shard chaos: fault
    /// one shard's filesystem and assert the others keep serving.
    pub fn shard_storage_vfs(mut self, shard: usize, vfs: Arc<dyn Vfs>) -> Self {
        self.shard_vfs.push((shard, vfs));
        self
    }

    /// Backoff policy for transient journal failures in
    /// [`QueryService::append_frames`].
    pub fn append_retry(mut self, policy: StoreRetryPolicy) -> Self {
        self.append_retry = Some(policy);
        self
    }

    /// How many firings each standing query retains for polling (default
    /// 1024; clamped to at least 1).
    pub fn standing_retention(mut self, retained: usize) -> Self {
        self.standing_retention = Some(retained);
        self
    }

    /// Build the service, performing crash recovery if the durability
    /// directory holds existing state.
    pub fn build(self) -> Result<QueryService, PrividError> {
        let mut service = QueryService::new();
        if let Some(p) = self.parallelism {
            service.parallelism = p;
        }
        if let Some(e) = self.default_epsilon {
            service.default_epsilon = e;
        }
        if let Some(r) = self.append_retry {
            service.retry = r;
        }
        if let Some(r) = self.standing_retention {
            service.standing_retention = r.max(1);
        }
        let n = self.shards.unwrap_or(1).max(1);
        let per_cache = self.cache_capacity.map(|c| split_capacity(c, n));
        service.shards = (0..n).map(|k| ServiceShard::new(k, per_cache)).collect();
        let Durability::Wal { dir, fsync } = self.durability else {
            return Ok(service);
        };
        let options = WalOptions { snapshot_every: self.snapshot_every.unwrap_or(WalOptions::default().snapshot_every) };
        let default_vfs = self.storage_vfs.unwrap_or_else(|| Arc::new(privid_store::StdVfs));
        let overrides: HashMap<usize, Arc<dyn Vfs>> = self.shard_vfs.into_iter().collect();
        // Shard dirs are created contiguously (0..n), so a shrunk fleet is
        // detectable by probing index n: footage journaled on a shard this
        // layout would never read again must refuse to open, not silently
        // re-mint its ε.
        if default_vfs.exists(&dir.join(format!("shard-{n}"))) {
            return Err(PrividError::Store(StoreError::InvalidRecord {
                offset: 0,
                reason: format!(
                    "durability dir holds shard-{n} but the service was built with {n} shard(s): \
                     refusing a layout that would orphan journaled admissions"
                ),
            }));
        }
        let mut merged_report = RecoveryReport::default();
        let mut fresh = true;
        let mut standing_records: BTreeMap<String, privid_store::StandingRecord> = BTreeMap::new();
        for (k, shard) in service.shards.iter_mut().enumerate() {
            let shard_dir = dir.join(format!("shard-{k}"));
            let vfs = overrides.get(&k).cloned().unwrap_or_else(|| Arc::clone(&default_vfs));
            let (store, recovered) =
                WalStore::open_with_vfs(shard_dir, fsync, options, vfs).map_err(PrividError::Store)?;
            // Every recovered name must hash home to this shard: a store laid
            // out under a different shard count would scatter a camera's
            // ledger across shards and could double-expose its ε.
            for name in recovered.state.cameras.keys().chain(recovered.state.standing.keys()) {
                let home = (shard_hash(name) % n as u64) as usize;
                if home != k {
                    return Err(PrividError::Store(StoreError::InvalidRecord {
                        offset: 0,
                        reason: format!(
                            "shard-{k} holds {name:?} whose home under {n} shard(s) is shard-{home}: \
                             store was laid out for a different shard count"
                        ),
                    }));
                }
            }
            let gen = service.generations.load(Ordering::Relaxed).max(recovered.state.next_generation);
            service.generations.store(gen, Ordering::Relaxed);
            standing_records.extend(recovered.state.standing.clone());
            fresh &= recovered.report == RecoveryReport::default()
                && recovered.state == privid_store::StoreState::default();
            *shard.recovered_cameras.lock().expect("recovered registry poisoned") = recovered.state.cameras; // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
            shard.store = Some(Arc::new(store));
            merge_report(&mut merged_report, recovered.report);
        }
        // Standing queries restore fully automatically: the WAL holds their
        // text, seed and firing watermark. They stay dormant until the owner
        // re-registers their live cameras and re-feeds footage past the
        // watermark (the pump skips queries whose cameras are missing).
        let mut standing = HashMap::new();
        for (name, st) in &standing_records {
            let query = parse_query(&st.text).map_err(|e| {
                PrividError::Store(StoreError::InvalidRecord {
                    offset: 0,
                    reason: format!("recovered standing query {name} no longer parses: {e}"),
                })
            })?;
            let mut cameras: Vec<String> = query.splits.iter().map(|s| s.camera.clone()).collect();
            cameras.sort();
            cameras.dedup();
            standing.insert(
                name.clone(),
                StandingState {
                    query,
                    text: st.text.clone(),
                    cameras,
                    period_secs: st.period_secs,
                    base_seed: st.base_seed,
                    next_start_secs: st.next_start_secs,
                    firings: VecDeque::new(),
                    fired_count: 0,
                    // The journal predates tenant ownership; the query stays
                    // unowned (dormant to every tenant) until its tenant's
                    // idempotent re-registration reclaims it.
                    owner: None,
                },
            );
        }
        *service.standing.lock().expect("standing registry poisoned") = standing; // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        // A genuinely fresh store (no snapshot, nothing replayed on any
        // shard) reports no recovery; anything else — even an
        // empty-but-snapshotted state — does, so operators can tell a
        // restart from a first boot.
        service.recovery = (!fresh).then_some(merged_report);
        Ok(service)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privid_sandbox::UniqueEntrantProcessor;
    use privid_video::{SceneConfig, SceneGenerator};

    const QUERY: &str = "
        SPLIT campus BEGIN 0 END 600 BY TIME 10 sec STRIDE 0 sec INTO chunks;
        PROCESS chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
            WITH SCHEMA (count:NUMBER=0) INTO people;
        SELECT COUNT(*) FROM people CONSUMING 0.5;";

    fn service() -> QueryService {
        let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.5)).generate();
        let service = QueryService::new().with_parallelism(Parallelism::Fixed(2));
        service.register_camera("campus", scene, PrivacyPolicy::new(60.0, 2, 20.0)).expect("camera/processor registration must succeed");
        service.register_processor("person_counter", || {
            Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>
        }).expect("camera/processor registration must succeed");
        service
    }

    #[test]
    fn seeded_execution_is_reproducible_and_seed_sensitive() {
        let svc = service();
        let a = svc.execute_text(11, QUERY).unwrap();
        let b = svc.execute_text(11, QUERY).unwrap();
        assert_eq!(a.releases, b.releases, "same (seed, query) → identical releases");
        let c = svc.execute_text(12, QUERY).unwrap();
        assert_ne!(a.releases[0].value, c.releases[0].value, "different seed → different noise");
    }

    #[test]
    fn repeated_process_prologs_hit_the_cache() {
        let svc = service();
        svc.execute_text(1, QUERY).unwrap();
        let stats = svc.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 1, 1));
        // Different SELECT, same PROCESS prolog: served from cache.
        let other_select =
            QUERY.replace("COUNT(*)", "SUM(range(count, 0, 50))").replace("CONSUMING 0.5", "CONSUMING 0.25");
        svc.execute_text(2, &other_select).unwrap();
        let stats = svc.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        // Budget was still debited once per query.
        let spent = 20.0 - svc.remaining_budget("campus", 300.0).unwrap();
        assert!((spent - 0.75).abs() < 1e-9, "0.5 + 0.25 debited: {spent}");
    }

    #[test]
    fn re_registration_invalidates_cached_results() {
        let svc = service();
        svc.execute_text(1, QUERY).unwrap();
        assert_eq!(svc.cache_stats().entries, 1);
        svc.register_processor("person_counter", || {
            Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>
        }).expect("camera/processor registration must succeed");
        assert_eq!(svc.cache_stats().entries, 0, "re-registered processor drops its entries");
        svc.execute_text(1, QUERY).unwrap();
        let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.5)).generate();
        svc.register_camera("campus", scene, PrivacyPolicy::new(60.0, 2, 20.0)).expect("camera/processor registration must succeed");
        assert_eq!(svc.cache_stats().entries, 0, "re-registered camera drops its entries");
    }

    #[test]
    fn mask_republication_invalidates_only_that_mask() {
        use privid_video::{GridSpec, Mask};
        let svc = service();
        let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.5)).generate();
        let grid = GridSpec::coarse(scene.frame_size);
        svc.register_mask("campus", "benches", MaskPolicy::new(Mask::empty(grid), 20.0)).unwrap();
        svc.execute_text(1, QUERY).unwrap(); // unmasked entry
        let masked = QUERY.replace("STRIDE 0 sec INTO", "STRIDE 0 sec WITH MASK benches INTO");
        svc.execute_text(2, &masked).unwrap(); // masked entry
        assert_eq!(svc.cache_stats().entries, 2);
        // Re-publishing the mask drops only its own entry…
        svc.register_mask("campus", "benches", MaskPolicy::new(Mask::empty(grid), 15.0)).unwrap();
        assert_eq!(svc.cache_stats().entries, 1, "unmasked entry stays warm");
        let before = svc.cache_stats().hits;
        svc.execute_text(3, QUERY).unwrap();
        assert_eq!(svc.cache_stats().hits, before + 1, "unmasked prolog still served from cache");
        // …and the re-published mask's next query re-executes (fresh ρ).
        let replayed = svc.execute_text(4, &masked).unwrap();
        assert!(replayed.releases[0].sensitivity > 0.0);
    }

    #[test]
    fn concurrent_analysts_share_one_service() {
        let svc = service();
        let results: Vec<QueryResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|analyst| {
                    let svc = &svc;
                    scope.spawn(move || svc.execute_text(100 + analyst, QUERY).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Every analyst's result matches a serial replay with the same seed.
        let replay = service();
        for (analyst, result) in results.iter().enumerate() {
            let serial = replay.execute_text(100 + analyst as u64, QUERY).unwrap();
            assert_eq!(serial.releases, result.releases, "analyst {analyst} releases must match serial replay");
        }
        // ε was debited exactly once per query.
        let spent = 20.0 - svc.remaining_budget("campus", 300.0).unwrap();
        assert!((spent - 4.0 * 0.5).abs() < 1e-9, "4 queries × 0.5 ε: {spent}");
    }

    #[test]
    fn cache_disabled_service_executes_identically() {
        let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.5)).generate();
        let cached = service();
        let uncached = QueryService::new().with_parallelism(Parallelism::Fixed(2)).with_cache_capacity(0);
        uncached.register_camera("campus", scene, PrivacyPolicy::new(60.0, 2, 20.0)).expect("camera/processor registration must succeed");
        uncached.register_processor("person_counter", || {
            Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>
        }).expect("camera/processor registration must succeed");
        let a = cached.execute_text(5, QUERY).unwrap();
        let b = uncached.execute_text(5, QUERY).unwrap();
        assert_eq!(a, b, "the cache must be invisible in results");
        uncached.execute_text(6, QUERY).unwrap();
        let stats = uncached.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 0), "disabled cache is never consulted");
    }

    fn walker(id: u64, start: f64, end: f64) -> privid_video::TrackedObject {
        use privid_video::trajectory::Trajectory;
        use privid_video::{Attributes, ObjectClass, ObjectId, Point, PresenceSegment, TimeSpan};
        privid_video::TrackedObject::new(
            ObjectId(id),
            ObjectClass::Person,
            Attributes::default(),
            vec![PresenceSegment {
                span: TimeSpan::between_secs(start, end),
                trajectory: Trajectory::linear(Point::new(0.0, 50.0), Point::new(100.0, 50.0), 5.0, 10.0),
            }],
        )
    }

    const LIVE_QUERY: &str = "
        SPLIT live BEGIN 0 END 120 BY TIME 10 sec STRIDE 0 sec INTO chunks;
        PROCESS chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
            WITH SCHEMA (count:NUMBER=0) INTO people;
        SELECT COUNT(*) FROM people CONSUMING 0.5;";

    fn live_service() -> QueryService {
        use privid_video::{FrameRate, FrameSize};
        let svc = QueryService::new().with_parallelism(Parallelism::Fixed(1));
        svc.register_live_camera("live", FrameRate::new(2.0), FrameSize::new(100, 100), PrivacyPolicy::new(20.0, 2, 10.0)).expect("camera/processor registration must succeed");
        svc.register_processor("person_counter", || {
            Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>
        }).expect("camera/processor registration must succeed");
        svc
    }

    #[test]
    fn live_camera_closed_windows_match_a_batch_registration() {
        use privid_video::{CameraId, FrameBatch, FrameRate, FrameSize, Scene, TimeSpan};
        let objects = vec![walker(1, 5.0, 40.0), walker(2, 70.0, 110.0)];
        let svc = live_service();
        let outcome = svc.append_frames("live", FrameBatch::new(60.0, vec![objects[0].clone()])).unwrap();
        assert_eq!(outcome.live_edge_secs, 60.0);
        svc.append_frames("live", FrameBatch::new(60.0, vec![objects[1].clone()])).unwrap();
        assert_eq!(svc.live_edge("live"), Some(120.0));
        let live = svc.execute_text(7, LIVE_QUERY).unwrap();

        let batch = QueryService::new().with_parallelism(Parallelism::Fixed(1));
        batch.register_camera(
            "live",
            Scene::new(CameraId::new("live"), TimeSpan::from_secs(120.0), FrameRate::new(2.0), FrameSize::new(100, 100), objects),
            PrivacyPolicy::new(20.0, 2, 10.0),
        ).expect("camera/processor registration must succeed");
        batch.register_processor("person_counter", || {
            Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>
        }).expect("camera/processor registration must succeed");
        let replay = batch.execute_text(7, LIVE_QUERY).unwrap();
        assert_eq!(live, replay, "a closed window over the appended recording must be bit-for-bit batch-identical");
        assert!(live.releases[0].raw.as_number().unwrap() >= 1.0, "the appended walkers are visible to the query");
    }

    #[test]
    fn window_beyond_live_edge_fails_cleanly_without_debit() {
        use privid_video::FrameBatch;
        let svc = live_service();
        svc.append_frames("live", FrameBatch::new(60.0, vec![walker(1, 5.0, 40.0)])).unwrap();
        // A window entirely past the edge is the retryable error and burns nothing.
        let future = LIVE_QUERY.replace("BEGIN 0 END 120", "BEGIN 60 END 120");
        match svc.execute_text(2, &future) {
            Err(PrividError::BeyondLiveEdge { camera, start_secs, end_secs, live_edge_secs }) => {
                assert_eq!(camera, "live");
                assert_eq!((start_secs, end_secs, live_edge_secs), (60.0, 120.0, 60.0));
            }
            other => panic!("expected BeyondLiveEdge, got {other:?}"),
        }
        assert!((svc.remaining_budget("live", 30.0).unwrap() - 10.0).abs() < 1e-9, "no slot debited");
        // A window *overlapping* the edge is admitted (clamped, like a fixed
        // recording's windows past its end): only recorded slots are debited.
        let overlap = svc.execute_text(1, LIVE_QUERY).unwrap();
        assert_eq!(overlap.epsilon_spent, 0.5);
        assert!((svc.remaining_budget("live", 30.0).unwrap() - 9.5).abs() < 1e-9, "recorded slots debited");
        // After the footage arrives, the fully-beyond window succeeds and the
        // newly born slots still carry their full budget.
        svc.append_frames("live", FrameBatch::empty(60.0)).unwrap();
        assert!((svc.remaining_budget("live", 90.0).unwrap() - 10.0).abs() < 1e-9, "new frames born with full ε");
        svc.execute_text(2, &future).unwrap();
        assert!((svc.remaining_budget("live", 90.0).unwrap() - 9.5).abs() < 1e-9);
    }

    #[test]
    fn appending_to_a_fixed_camera_is_rejected() {
        use privid_video::FrameBatch;
        let svc = service();
        match svc.append_frames("campus", FrameBatch::empty(60.0)) {
            Err(PrividError::Invalid(msg)) => assert!(msg.contains("fixed recording"), "got: {msg}"),
            other => panic!("expected Invalid, got {other:?}"),
        }
        assert!(matches!(svc.append_frames("nowhere", FrameBatch::empty(60.0)), Err(PrividError::UnknownCamera(_))));
    }

    #[test]
    fn standing_query_fires_once_per_completed_window() {
        use privid_video::FrameBatch;
        let svc = live_service();
        let standing = "
            SPLIT live BEGIN 0 END 60 BY TIME 10 sec STRIDE 0 sec INTO chunks;
            PROCESS chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
                WITH SCHEMA (count:NUMBER=0) INTO people;
            SELECT COUNT(*) FROM people CONSUMING 0.5;";
        // Registered before any footage: nothing fires yet.
        assert_eq!(svc.register_standing_query("people_per_min", 40, standing).unwrap(), 0);
        // 150 s of footage completes windows [0, 60) and [60, 120).
        let outcome = svc.append_frames("live", FrameBatch::new(150.0, vec![walker(1, 5.0, 40.0), walker(2, 70.0, 140.0)])).unwrap();
        assert_eq!(outcome.standing_fired, 2);
        // 90 s more completes [120, 180) and [180, 240).
        let outcome = svc.append_frames("live", FrameBatch::new(90.0, vec![walker(3, 150.0, 200.0)])).unwrap();
        assert_eq!(outcome.standing_fired, 2);
        let firings = svc.standing_results("people_per_min").unwrap();
        assert_eq!(firings.len(), 4);
        for (k, firing) in firings.iter().enumerate() {
            assert_eq!(firing.window, privid_video::TimeSpan::between_secs(k as f64 * 60.0, (k + 1) as f64 * 60.0));
            assert_eq!(firing.seed, 40 + k as u64);
            let result = firing.result.as_ref().expect("ample budget: every firing admitted");
            assert_eq!(result.epsilon_spent, 0.5);
        }
        // ε was debited exactly once per slot across the standing query's life.
        for at in [10.0, 70.0, 130.0, 190.0] {
            assert!((svc.remaining_budget("live", at).unwrap() - 9.5).abs() < 1e-9, "slot at {at} debited once");
        }
        // Catch-up: a second standing query registered late fires immediately.
        assert_eq!(svc.register_standing_query("catch_up", 99, standing).unwrap(), 4);
    }

    #[test]
    fn standing_poll_cursor_returns_only_new_firings_and_retention_bounds_memory() {
        use privid_video::FrameBatch;
        let svc = live_service().with_standing_retention(2);
        let standing = "
            SPLIT live BEGIN 0 END 60 BY TIME 10 sec STRIDE 0 sec INTO chunks;
            PROCESS chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
                WITH SCHEMA (count:NUMBER=0) INTO people;
            SELECT COUNT(*) FROM people CONSUMING 0.05;";
        svc.register_standing_query("per_min", 7, standing).unwrap();
        assert!(svc.standing_results_since("nope", 0).is_none(), "unknown name is None");

        // Two firings; a cursor poll sees both and advances.
        svc.append_frames("live", FrameBatch::new(130.0, vec![walker(1, 5.0, 40.0)])).unwrap();
        let poll = svc.standing_results_since("per_min", 0).unwrap();
        assert_eq!(poll.firings.len(), 2);
        assert_eq!((poll.next_cursor, poll.dropped), (2, 0));
        assert_eq!(poll.firings[0].window, TimeSpan::between_secs(0.0, 60.0));

        // Nothing new: the follow-up poll is empty (no clone of history).
        let idle = svc.standing_results_since("per_min", poll.next_cursor).unwrap();
        assert!(idle.firings.is_empty());
        assert_eq!((idle.next_cursor, idle.dropped), (2, 0));

        // Four more windows close; retention 2 keeps memory bounded while a
        // keeping-up poller still sees every firing it wasn't too slow for.
        svc.append_frames("live", FrameBatch::new(240.0, vec![walker(2, 140.0, 200.0)])).unwrap();
        assert_eq!(svc.standing_results("per_min").unwrap().len(), 2, "retention caps the in-memory history");
        let poll2 = svc.standing_results_since("per_min", idle.next_cursor).unwrap();
        assert_eq!(poll2.firings.len(), 2, "only retained firings are returned");
        assert_eq!(poll2.next_cursor, 6);
        assert_eq!(poll2.dropped, 2, "firings 2 and 3 were evicted before this poll");
        assert_eq!(poll2.firings[0].window, TimeSpan::between_secs(240.0, 300.0));
        assert_eq!(poll2.firings[1].seed, 7 + 5);

        // A stale cursor past the end clamps instead of panicking.
        let clamped = svc.standing_results_since("per_min", 999).unwrap();
        assert!(clamped.firings.is_empty());
        assert_eq!((clamped.next_cursor, clamped.dropped), (6, 0));

        // The regression the wire poll rides on: 10k idle polls each return
        // only the delta. With the old clone-the-world API this loop cloned
        // 10k full histories; here every poll moves zero firings and the
        // retained deque stays at the cap.
        let mut cursor = clamped.next_cursor;
        for _ in 0..10_000 {
            let p = svc.standing_results_since("per_min", cursor).unwrap();
            assert!(p.firings.is_empty());
            cursor = p.next_cursor;
        }
        let standing = svc.standing.lock().unwrap();
        assert_eq!(standing.get("per_min").unwrap().firings.len(), 2, "polling never grows retained state");
    }

    #[test]
    fn tenant_quota_gates_admission_and_refunds_failed_queries() {
        let svc = service();
        // Unlimited tenants pass through untouched.
        assert_eq!(svc.tenant_quota_remaining("alice"), None);
        let direct = svc.execute_text(3, QUERY).unwrap();
        let as_alice = svc.execute_text_as("alice", 3, QUERY).unwrap();
        assert_eq!(direct, as_alice, "quota wrapper never perturbs the release");

        // QUERY consumes 0.5 ε; a 1.2 quota admits two runs, then refuses.
        svc.set_tenant_quota("bob", 1.2);
        svc.execute_text_as("bob", 4, QUERY).unwrap();
        svc.execute_text_as("bob", 5, QUERY).unwrap();
        assert!((svc.tenant_quota_remaining("bob").unwrap() - 0.2).abs() < 1e-9);
        let before = svc.remaining_budget("campus", 5.0).unwrap();
        match svc.execute_text_as("bob", 6, QUERY) {
            Err(PrividError::TenantQuotaExhausted { tenant, requested, available }) => {
                assert_eq!(tenant, "bob");
                assert_eq!(requested, 0.5);
                assert!((available - 0.2).abs() < 1e-9);
            }
            other => panic!("expected TenantQuotaExhausted, got {other:?}"),
        }
        assert!((svc.tenant_quota_remaining("bob").unwrap() - 0.2).abs() < 1e-9, "rejection debits no quota");
        assert_eq!(svc.remaining_budget("campus", 5.0).unwrap(), before, "rejection debits no camera ε");

        // A failed execution refunds the reservation in full.
        svc.set_tenant_quota("carol", 1.0);
        let bad = QUERY.replace("campus", "nowhere");
        assert!(matches!(svc.execute_text_as("carol", 7, &bad), Err(PrividError::UnknownCamera(_))));
        assert!((svc.tenant_quota_remaining("carol").unwrap() - 1.0).abs() < 1e-9, "failed query refunds its reservation");
    }

    #[test]
    fn standing_ownership_scopes_polls_and_meters_the_owner_quota() {
        use privid_video::FrameBatch;
        let svc = live_service();
        let standing = "
            SPLIT live BEGIN 0 END 60 BY TIME 10 sec STRIDE 0 sec INTO chunks;
            PROCESS chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
                WITH SCHEMA (count:NUMBER=0) INTO people;
            SELECT COUNT(*) FROM people CONSUMING 0.5;";
        svc.set_tenant_quota("acme", 1.2);
        // acme claims the name; a rival may neither replace it nor re-register
        // the identical text (that would hand it a handle to acme's firings).
        assert_eq!(svc.register_standing_query_as("acme", "watch", 9, standing).unwrap(), 0);
        match svc.register_standing_query_as("rival", "watch", 9, standing) {
            Err(PrividError::StandingQueryDenied { name, tenant }) => {
                assert_eq!((name.as_str(), tenant.as_str()), ("watch", "rival"));
            }
            other => panic!("expected StandingQueryDenied, got {other:?}"),
        }
        // Scoped polls: the owner sees its query; a rival gets the same answer
        // as for a name that was never registered.
        assert!(svc.standing_results_since_as("acme", "watch", 0).is_some());
        assert!(svc.standing_results_since_as("rival", "watch", 0).is_none(), "cross-tenant poll is indistinguishable from an unknown name");

        // Three windows close; the 1.2 quota admits two 0.5 ε firings and the
        // third becomes a typed refusal firing that executed nothing.
        svc.append_frames("live", FrameBatch::new(200.0, vec![walker(1, 5.0, 40.0)])).unwrap();
        let poll = svc.standing_results_since_as("acme", "watch", 0).unwrap();
        assert_eq!(poll.firings.len(), 3);
        assert!(poll.firings[0].result.is_ok());
        assert!(poll.firings[1].result.is_ok());
        match &poll.firings[2].result {
            Err(PrividError::TenantQuotaExhausted { tenant, requested, available }) => {
                assert_eq!(tenant, "acme");
                assert_eq!(*requested, 0.5);
                assert!((available - 0.2).abs() < 1e-9);
            }
            other => panic!("expected TenantQuotaExhausted firing, got {other:?}"),
        }
        assert!((svc.tenant_quota_remaining("acme").unwrap() - 0.2).abs() < 1e-9, "refused firing debits no quota");
        assert!((svc.remaining_budget("live", 130.0).unwrap() - 10.0).abs() < 1e-9, "refused firing debits no camera ε");

        // In-process registrations stay unowned (and unmetered); they are
        // invisible to scoped polls until a tenant reclaims the name with an
        // idempotent re-registration — the recovery path for pre-ownership
        // journal records.
        svc.register_standing_query("legacy", 4, standing).unwrap();
        assert!(svc.standing_results_since_as("acme", "legacy", 0).is_none(), "unowned names are invisible to scoped polls");
        svc.register_standing_query_as("acme", "legacy", 4, standing).unwrap();
        assert!(svc.standing_results_since_as("acme", "legacy", 0).is_some(), "identical re-registration claims the unowned name");
    }

    // ---- durability ---------------------------------------------------------------------

    use privid_store::{Durability, FsyncPolicy};
    use std::path::PathBuf;
    use std::sync::atomic::AtomicUsize;

    static WAL_DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

    fn wal_dir(tag: &str) -> PathBuf {
        let n = WAL_DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("privid-svc-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn durable_service(dir: &PathBuf) -> QueryService {
        let svc = QueryService::builder()
            .parallelism(Parallelism::Fixed(1))
            .durability(Durability::wal(dir, FsyncPolicy::Never))
            .build()
            .expect("durable service builds");
        svc.register_processor("person_counter", || {
            Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>
        }).expect("camera/processor registration must succeed");
        svc
    }

    #[test]
    fn restart_adopts_the_debited_ledger_instead_of_reminting_epsilon() {
        let dir = wal_dir("adopt");
        let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.5)).generate();
        {
            let svc = durable_service(&dir);
            svc.register_camera("campus", scene.clone(), PrivacyPolicy::new(60.0, 2, 20.0)).expect("camera/processor registration must succeed");
            svc.execute_text(1, QUERY).unwrap();
            assert!((svc.remaining_budget("campus", 300.0).unwrap() - 19.5).abs() < 1e-9);
            // Crash: the service is dropped without any shutdown protocol.
        }
        let svc = durable_service(&dir);
        assert!(svc.recovery_report().is_some());
        svc.register_camera("campus", scene.clone(), PrivacyPolicy::new(60.0, 2, 20.0)).expect("camera/processor registration must succeed");
        assert!(
            (svc.remaining_budget("campus", 300.0).unwrap() - 19.5).abs() < 1e-9,
            "the pre-crash debit must survive the restart"
        );
        // A *different* policy is a deliberate replacement: fresh ledger.
        svc.register_camera("campus", scene, PrivacyPolicy::new(60.0, 2, 10.0)).expect("camera/processor registration must succeed");
        assert!((svc.remaining_budget("campus", 300.0).unwrap() - 10.0).abs() < 1e-9);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_restores_live_edge_and_rejects_the_unreplayed_gap() {
        use privid_video::{FrameBatch, FrameRate, FrameSize};
        let dir = wal_dir("live");
        {
            let svc = durable_service(&dir);
            svc.register_live_camera("live", FrameRate::new(2.0), FrameSize::new(100, 100), PrivacyPolicy::new(20.0, 2, 10.0)).expect("camera/processor registration must succeed");
            svc.append_frames("live", FrameBatch::new(60.0, vec![walker(1, 5.0, 40.0)])).unwrap();
            svc.append_frames("live", FrameBatch::new(60.0, vec![walker(2, 70.0, 110.0)])).unwrap();
            svc.execute_text(7, LIVE_QUERY).unwrap();
        }
        let svc = durable_service(&dir);
        svc.register_live_camera("live", FrameRate::new(2.0), FrameSize::new(100, 100), PrivacyPolicy::new(20.0, 2, 10.0)).expect("camera/processor registration must succeed");
        // The ledger resumed at the recovered edge with its debits…
        assert_eq!(svc.ledger_edge("live"), Some(120.0));
        assert!((svc.remaining_budget("live", 30.0).unwrap() - 9.5).abs() < 1e-9);
        // …but the scene starts empty: queries fail retryably until the owner
        // replays the recorded batches.
        assert_eq!(svc.live_edge("live"), Some(0.0));
        assert!(matches!(svc.execute_text(1, LIVE_QUERY), Err(PrividError::BeyondLiveEdge { .. })));
        svc.append_frames("live", FrameBatch::new(60.0, vec![walker(1, 5.0, 40.0)])).unwrap();
        svc.append_frames("live", FrameBatch::new(60.0, vec![walker(2, 70.0, 110.0)])).unwrap();
        // Replayed appends do not re-mint ε (the ledger edge never moved).
        assert!((svc.remaining_budget("live", 30.0).unwrap() - 9.5).abs() < 1e-9);
        let replayed = svc.execute_text(7, LIVE_QUERY).unwrap();
        assert_eq!(replayed.epsilon_spent, 0.5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_re_registration_discards_the_recovered_ledger_for_good() {
        // Regression (review): a mismatched registration used to leave the
        // recovered entry in place, so a *later* registration with the
        // original policy silently adopted a ledger the journal had already
        // superseded — diverging the in-memory state from the WAL shadow.
        let dir = wal_dir("stale-adopt");
        let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.25)).generate();
        {
            let svc = durable_service(&dir);
            svc.register_camera("campus", scene.clone(), PrivacyPolicy::new(60.0, 2, 20.0)).expect("camera/processor registration must succeed");
            let q = QUERY.replace("END 600", "END 300");
            svc.execute_text(1, &q).unwrap();
        }
        let svc = durable_service(&dir);
        // A deliberate replacement (different ε budget) supersedes the
        // recovered ledger…
        svc.register_camera("campus", scene.clone(), PrivacyPolicy::new(60.0, 2, 10.0)).expect("camera/processor registration must succeed");
        assert!((svc.remaining_budget("campus", 100.0).unwrap() - 10.0).abs() < 1e-9);
        // …so registering the *original* policy afterwards is a fresh
        // replacement too, not a resurrection of the pre-crash debits.
        svc.register_camera("campus", scene, PrivacyPolicy::new(60.0, 2, 20.0)).expect("camera/processor registration must succeed");
        assert!(
            (svc.remaining_budget("campus", 100.0).unwrap() - 20.0).abs() < 1e-9,
            "the superseded pre-crash ledger must not come back"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn conflicting_compound_admission_leaves_the_wal_shadow_equal_to_the_ledger() {
        // Regression (review): a same-ledger overlapping admission used to
        // journal its admit record and then roll back, leaving the WAL
        // shadow over-debited relative to the in-memory ledger (float
        // credits don't round-trip). Such conflicts are now rejected by
        // simulation *before* anything reaches the journal; shadow and
        // ledger must stay bit-for-bit equal through the whole episode.
        let dir = wal_dir("rollback");
        let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.5)).generate();
        let svc = durable_service(&dir);
        svc.register_camera("campus", scene, PrivacyPolicy::new(60.0, 2, 1.0)).expect("camera/processor registration must succeed");
        let state = svc.camera("campus").unwrap();
        let requests = [
            AdmissionRequest { ledger: &state.ledger, window: TimeSpan::between_secs(0.0, 60.0), rho_margin: 0.0 },
            AdmissionRequest { ledger: &state.ledger, window: TimeSpan::between_secs(40.0, 100.0), rho_margin: 0.0 },
        ];
        match svc.admit_requests(&requests, &["campus", "campus"], 0.6) {
            Err(AdmissionFailure::Budget { index: 1, .. }) => {}
            other => panic!("expected a phase-2 rejection, got {other:?}"),
        }
        let shadow = svc.shards[0].store.as_ref().unwrap().state();
        let ledger_bits: Vec<u64> = state.ledger.slots_snapshot().iter().map(|s| s.to_bits()).collect();
        let shadow_bits: Vec<u64> = shadow.cameras["campus"].slots.iter().map(|s| s.to_bits()).collect();
        assert_eq!(shadow_bits, ledger_bits, "after a rollback the WAL shadow must equal the ledger bit-for-bit");
        // And a restart proves it end to end: the adopted ledger still has
        // every slot's full budget.
        drop(svc);
        let svc = durable_service(&dir);
        let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.5)).generate();
        svc.register_camera("campus", scene, PrivacyPolicy::new(60.0, 2, 1.0)).expect("camera/processor registration must succeed");
        for at in [10.0, 50.0, 90.0] {
            assert!((svc.remaining_budget("campus", at).unwrap() - 1.0).abs() < 1e-9, "no residual debit at {at}s");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replayed_appends_journal_no_stale_extend_records() {
        use privid_video::{FrameBatch, FrameRate, FrameSize};
        let dir = wal_dir("stale-extend");
        {
            let svc = durable_service(&dir);
            svc.register_live_camera("live", FrameRate::new(2.0), FrameSize::new(100, 100), PrivacyPolicy::new(20.0, 2, 10.0)).expect("camera/processor registration must succeed");
            svc.append_frames("live", FrameBatch::new(60.0, vec![walker(1, 5.0, 40.0)])).unwrap();
        }
        let svc = durable_service(&dir);
        svc.register_live_camera("live", FrameRate::new(2.0), FrameSize::new(100, 100), PrivacyPolicy::new(20.0, 2, 10.0)).expect("camera/processor registration must succeed");
        let seq_before = svc.shards[0].store.as_ref().unwrap().next_seq();
        // Replaying the recorded batch must not grow the journal at all…
        svc.append_frames("live", FrameBatch::new(60.0, vec![walker(1, 5.0, 40.0)])).unwrap();
        assert_eq!(svc.shards[0].store.as_ref().unwrap().next_seq(), seq_before, "a stale edge journals nothing");
        // …while genuinely new footage still does.
        svc.append_frames("live", FrameBatch::empty(30.0)).unwrap();
        assert_eq!(svc.shards[0].store.as_ref().unwrap().next_seq(), seq_before + 1);
        assert_eq!(svc.ledger_edge("live"), Some(90.0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_and_in_memory_services_release_identically() {
        let dir = wal_dir("biteq");
        let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.5)).generate();
        let durable = durable_service(&dir);
        durable.register_camera("campus", scene, PrivacyPolicy::new(60.0, 2, 20.0)).expect("camera/processor registration must succeed");
        let plain = service();
        let a = durable.execute_text(11, QUERY).unwrap();
        let b = plain.execute_text(11, QUERY).unwrap();
        assert_eq!(a, b, "durability must be invisible in the released values");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovered_standing_query_rearms_at_its_next_window() {
        use privid_video::{FrameBatch, FrameRate, FrameSize};
        let dir = wal_dir("standing");
        let standing = "
            SPLIT live BEGIN 0 END 60 BY TIME 10 sec STRIDE 0 sec INTO chunks;
            PROCESS chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
                WITH SCHEMA (count:NUMBER=0) INTO people;
            SELECT COUNT(*) FROM people CONSUMING 0.5;";
        {
            let svc = durable_service(&dir);
            svc.register_live_camera("live", FrameRate::new(2.0), FrameSize::new(100, 100), PrivacyPolicy::new(20.0, 2, 10.0)).expect("camera/processor registration must succeed");
            svc.register_standing_query("per_min", 40, standing).unwrap();
            let fired = svc.append_frames("live", FrameBatch::new(120.0, vec![walker(1, 5.0, 40.0)])).unwrap().standing_fired;
            assert_eq!(fired, 2, "windows [0,60) and [60,120) fire before the crash");
        }
        let svc = durable_service(&dir);
        svc.register_live_camera("live", FrameRate::new(2.0), FrameSize::new(100, 100), PrivacyPolicy::new(20.0, 2, 10.0)).expect("camera/processor registration must succeed");
        // Replaying the recorded footage must not re-fire recovered windows…
        let fired = svc.append_frames("live", FrameBatch::new(120.0, vec![walker(1, 5.0, 40.0)])).unwrap().standing_fired;
        assert_eq!(fired, 0, "recovered watermark holds through the replay");
        // …and the identical re-registration is idempotent, not a reset.
        assert_eq!(svc.register_standing_query("per_min", 40, standing).unwrap(), 0);
        // New footage resumes firing at the next window with the right seed.
        let fired = svc.append_frames("live", FrameBatch::new(60.0, vec![walker(2, 130.0, 170.0)])).unwrap().standing_fired;
        assert_eq!(fired, 1);
        let firings = svc.standing_results("per_min").unwrap();
        assert_eq!(firings.len(), 1, "only post-restart firings are in memory");
        assert_eq!(firings[0].window, TimeSpan::between_secs(120.0, 180.0));
        assert_eq!(firings[0].seed, 42, "seed = base 40 + window index 2");
        // ε: every window debited exactly once across the crash.
        for at in [10.0, 70.0, 130.0] {
            assert!((svc.remaining_budget("live", at).unwrap() - 9.5).abs() < 1e-9, "slot at {at} debited once");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    // ---- fault tolerance ----------------------------------------------------------------

    /// Builder-injected `FaultVfs` durable service (passthrough until scripted).
    fn faulty_service(dir: &PathBuf, fsync: FsyncPolicy) -> (std::sync::Arc<privid_store::FaultVfs>, QueryService) {
        let fault = privid_store::FaultVfs::over_std();
        let svc = QueryService::builder()
            .parallelism(Parallelism::Fixed(1))
            .durability(Durability::wal(dir, fsync))
            .storage_vfs(fault.clone())
            .build()
            .expect("durable service builds");
        svc.register_processor("person_counter", || {
            Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>
        }).expect("camera/processor registration must succeed");
        (fault, svc)
    }

    #[test]
    fn lost_rollback_credit_quarantines_and_surfaces_in_recovery() {
        // Regression: a failed best-effort `Credit` append used to vanish
        // silently, leaving the WAL shadow permanently over-debited relative
        // to the in-memory ledger with nothing telling the operator. It must
        // quarantine the camera and surface as a typed RecoveryWarning.
        use privid_store::{FaultKind, FaultOp, RecoveryWarning};
        let dir = wal_dir("lost-credit");
        let (fault, svc) = faulty_service(&dir, FsyncPolicy::Never);
        let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.5)).generate();
        svc.register_camera("campus", scene, PrivacyPolicy::new(60.0, 2, 20.0)).expect("camera/processor registration must succeed");
        let store = Arc::clone(svc.shards[svc.shard_index("campus")].store.as_ref().unwrap());
        let state = svc.camera("campus").unwrap();
        let window = TimeSpan::between_secs(0.0, 60.0);
        let (lo, hi) = state.ledger.debit_slot_range(&window).unwrap();

        // Drive record_rollback with every append refused — the only public
        // route to it is an out-of-contract external debit, so the test
        // exercises the journal hook directly.
        let requests = [AdmissionRequest { ledger: &state.ledger, window, rho_margin: 0.0 }];
        fault.fail_from(FaultOp::Write, 1, FaultKind::Eio);
        let journal = WalAdmissionJournal { service: &svc, store: Arc::clone(&store), cameras: vec!["campus"] };
        journal.record_rollback(&requests, 0, 0.5);
        fault.heal();
        assert!(fault.injected() >= 1, "the credit append must actually have failed");

        // Not silent: the camera is quarantined and further admissions
        // refuse retryably before any ε can be debited unjournaled.
        assert!(matches!(svc.camera_health("campus"), CameraHealth::Quarantined { .. }));
        match svc.execute_text(1, QUERY) {
            Err(err @ PrividError::CameraQuarantined { .. }) => assert!(err.is_retryable()),
            other => panic!("expected CameraQuarantined, got {other:?}"),
        }

        // Supervised recovery surfaces the loss as a typed warning…
        let report = svc.recover_store().unwrap();
        match &report.warnings[..] {
            [RecoveryWarning::CreditRollbackLost { camera, lo: wlo, hi: whi, epsilon_bits, .. }] => {
                assert_eq!(camera, "campus");
                assert_eq!((*wlo, *whi), (lo as u64, hi as u64));
                assert_eq!(*epsilon_bits, 0.5f64.to_bits());
            }
            other => panic!("expected one CreditRollbackLost warning, got {other:?}"),
        }
        // …reconciles the ledgers, lifts the quarantine, and the refused
        // query now runs. A second recovery does not replay the warning.
        assert_eq!(svc.camera_health("campus"), CameraHealth::Healthy);
        svc.execute_text(1, QUERY).unwrap();
        assert!(svc.recover_store().unwrap().warnings.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_dir_sync_failure_surfaces_in_supervised_recovery() {
        use privid_store::{FaultKind, FaultOp};
        let dir = wal_dir("dirsync");
        let fault = privid_store::FaultVfs::over_std();
        let svc = QueryService::builder()
            .parallelism(Parallelism::Fixed(1))
            .durability(Durability::wal(&dir, FsyncPolicy::Never))
            .storage_vfs(fault.clone())
            .snapshot_every(1)
            .build()
            .expect("durable service builds");
        // The first journaled record triggers an automatic checkpoint whose
        // post-rename directory fsync fails. Regression: this used to be a
        // swallowed `let _ =` — no trace anywhere.
        fault.fail_nth(FaultOp::DirSync, 1, FaultKind::FsyncFailure);
        svc.register_processor("person_counter", || {
            Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>
        }).expect("camera/processor registration must succeed");
        assert_eq!(fault.injected(), 1, "the dir-sync fault fired during the checkpoint");

        let report = svc.recover_store().unwrap();
        match &report.warnings[..] {
            [RecoveryWarning::SnapshotDirSyncFailed { dir: d, error }] => {
                assert!(d.contains("dirsync"), "warning names the shard dir, got {d}");
                assert!(!error.is_empty());
            }
            other => panic!("expected one SnapshotDirSyncFailed warning, got {other:?}"),
        }
        // Drained, not replayed: a second recovery reports nothing.
        assert!(svc.recover_store().unwrap().warnings.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_append_faults_retry_and_a_wedge_quarantines_only_that_camera() {
        use privid_store::{FaultKind, FaultOp, RecoveryEvent};
        use privid_video::{FrameBatch, FrameRate, FrameSize};
        let dir = wal_dir("degrade");
        let (fault, svc) = faulty_service(&dir, FsyncPolicy::Always);
        svc.register_live_camera("live", FrameRate::new(2.0), FrameSize::new(100, 100), PrivacyPolicy::new(20.0, 2, 10.0)).expect("camera/processor registration must succeed"); // write #2 (the processor record was #1)
        let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.25)).generate();
        svc.register_camera("campus", scene, PrivacyPolicy::new(60.0, 2, 20.0)).expect("camera/processor registration must succeed"); // write #3

        // A single transient write fault on the Extend journal record: the
        // bounded-backoff retry inside append_frames absorbs it.
        fault.fail_nth(FaultOp::Write, 4, FaultKind::Eio);
        let outcome = svc.append_frames("live", FrameBatch::new(60.0, vec![walker(1, 5.0, 40.0)])).unwrap();
        assert_eq!(outcome.live_edge_secs, 60.0);
        assert_eq!(fault.injected(), 1, "the retried attempt hit the scripted fault exactly once");
        assert_eq!(svc.camera_health("live"), CameraHealth::Healthy, "an absorbed transient leaves the camera healthy");

        // A failed fsync wedges the store: the appending camera quarantines,
        // but the blast radius stops there — the other camera stays healthy
        // and its in-memory ledger keeps serving reads.
        fault.fail_from(FaultOp::Fsync, 1, FaultKind::FsyncFailure);
        let err = svc.append_frames("live", FrameBatch::new(60.0, vec![walker(2, 70.0, 110.0)])).unwrap_err();
        assert!(matches!(err, PrividError::CameraQuarantined { .. }), "a wedge surfaces as quarantine, got {err:?}");
        assert!(err.is_retryable());
        assert!(matches!(svc.camera_health("live"), CameraHealth::Quarantined { .. }));
        assert!(svc.store_wedged().is_some());
        assert_eq!(svc.camera_health("campus"), CameraHealth::Healthy);
        assert!((svc.remaining_budget("campus", 100.0).unwrap() - 20.0).abs() < 1e-9, "closed-ledger reads keep serving");
        // Repeated appends stay refused (the wedge is sticky, not per-call).
        assert!(svc.append_frames("live", FrameBatch::empty(30.0)).is_err());

        // Supervised recovery: heal the disk, reopen, reconcile. The wedged
        // Extend's write reached disk before its fsync failed, so the
        // durable timeline may be *ahead* — reconcile adopts the maximum.
        fault.heal();
        let report = svc.recover_store().unwrap();
        assert!(report.events.iter().any(|e| matches!(e, RecoveryEvent::StoreReopened { .. })));
        assert!(report.warnings.is_empty());
        assert_eq!(svc.camera_health("live"), CameraHealth::Healthy);
        assert!(svc.store_wedged().is_none());
        let outcome = svc.append_frames("live", FrameBatch::new(60.0, vec![walker(2, 70.0, 110.0)])).unwrap();
        assert_eq!(outcome.live_edge_secs, 120.0);
        assert_eq!(svc.live_edge("live"), Some(120.0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn window_outside_recording_is_rejected_without_debit() {
        let svc = service();
        // The campus scene is 1800 s long; this window is entirely past it.
        let ghost = QUERY.replace("BEGIN 0 END 600", "BEGIN 2000 END 2600");
        match svc.execute_text(1, &ghost) {
            Err(PrividError::WindowOutsideRecording { camera, start_secs, .. }) => {
                assert_eq!(camera, "campus");
                assert_eq!(start_secs, 2000.0);
            }
            other => panic!("expected WindowOutsideRecording, got {other:?}"),
        }
        assert!((svc.remaining_budget("campus", 1799.0).unwrap() - 20.0).abs() < 1e-9, "no frame debited");
    }
}
