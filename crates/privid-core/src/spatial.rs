//! Spatial splitting (§7.2): divide the frame into regions so each
//! individual's presence occupies a smaller share of the intermediate table,
//! and the per-chunk output range (and hence the noise) shrinks.
//!
//! Table 2 quantifies the opportunity by comparing the maximum number of
//! objects visible in one chunk for the whole frame against the maximum for
//! any single region; [`region_output_ranges`] reproduces that measurement.

use privid_video::{ChunkSpec, RegionScheme, Scene, TimeSpan};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// The Table 2 measurement for one scene and region scheme.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionRangeReport {
    /// Maximum number of distinct private objects visible in any single chunk
    /// over the whole frame.
    pub max_per_chunk_frame: usize,
    /// Maximum number of distinct private objects visible in any single
    /// (chunk, region) cell.
    pub max_per_chunk_region: usize,
    /// `max_per_chunk_frame / max_per_chunk_region` — the factor by which the
    /// required output range (and noise) can shrink.
    pub reduction_factor: f64,
}

/// Measure the whole-frame vs per-region maximum per-chunk output (Table 2).
pub fn region_output_ranges(
    scene: &Scene,
    window: &TimeSpan,
    spec: &ChunkSpec,
    scheme: &RegionScheme,
) -> RegionRangeReport {
    let dt = scene.frame_rate.frame_duration();
    let mut max_frame = 0usize;
    let mut max_region = 0usize;
    for span in spec.chunk_spans(window) {
        let mut frame_ids: HashSet<u64> = HashSet::new();
        let mut region_ids: Vec<HashSet<u64>> = vec![HashSet::new(); scheme.len()];
        let n = (span.duration() / dt).ceil().max(1.0) as u64;
        for i in 0..n {
            let t = span.start.add_secs(i as f64 * dt);
            if !span.contains(t) {
                break;
            }
            for obs in scene.observations_at(t) {
                if !obs.class.is_private() {
                    continue;
                }
                frame_ids.insert(obs.object_id.0);
                if let Some(region) = scheme.region_of(&obs.bbox) {
                    region_ids[region.id as usize].insert(obs.object_id.0); // privid-analyzer: allow(panic-freedom) -- region ids are dense indices into the scheme that sized region_ids (vec of scheme.len())
                }
            }
        }
        max_frame = max_frame.max(frame_ids.len());
        max_region = max_region.max(region_ids.iter().map(|s| s.len()).max().unwrap_or(0));
    }
    RegionRangeReport {
        max_per_chunk_frame: max_frame,
        max_per_chunk_region: max_region,
        reduction_factor: if max_region == 0 { 1.0 } else { max_frame as f64 / max_region as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privid_video::{SceneConfig, SceneGenerator};

    #[test]
    fn splitting_reduces_the_required_range() {
        // Dense enough traffic that the per-chunk maxima are not dominated by
        // granularity (a handful of objects makes the ratio land on exact
        // small fractions like 6/5).
        let scene = SceneGenerator::new(SceneConfig::highway().with_duration_hours(0.2).with_arrival_scale(0.8))
            .generate();
        let scheme = scene.region_schemes["default"].clone();
        let report =
            region_output_ranges(&scene, &TimeSpan::from_secs(600.0), &ChunkSpec::contiguous(5.0), &scheme);
        assert!(report.max_per_chunk_frame >= report.max_per_chunk_region);
        assert!(report.reduction_factor >= 1.0);
        assert!(
            report.reduction_factor > 1.2,
            "two highway directions should split the per-chunk load: {report:?}"
        );
    }

    #[test]
    fn reduction_factor_is_one_for_a_single_region_covering_everything() {
        let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.1)).generate();
        let whole = RegionScheme::new(
            vec![privid_video::Region {
                id: 0,
                name: "all".into(),
                bbox: privid_video::BoundingBox::new(0.0, 0.0, scene.frame_size.width as f64, scene.frame_size.height as f64),
            }],
            privid_video::RegionBoundary::Soft,
        );
        let report =
            region_output_ranges(&scene, &TimeSpan::from_secs(300.0), &ChunkSpec::contiguous(5.0), &whole);
        assert_eq!(report.max_per_chunk_frame, report.max_per_chunk_region);
        assert!((report.reduction_factor - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_window_yields_zero_maxima() {
        let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.1)).generate();
        let scheme = scene.region_schemes["default"].clone();
        let report = region_output_ranges(
            &scene,
            &TimeSpan::between_secs(350.0, 350.5),
            &ChunkSpec::contiguous(5.0),
            &scheme,
        );
        assert!(report.max_per_chunk_frame <= 5, "half-second window sees few objects");
    }
}
