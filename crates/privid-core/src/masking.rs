//! Spatial masking (§7.1, Appendix F): reduce the observable ρ by masking
//! fixed regions where objects linger.
//!
//! Two artifacts are produced here:
//!
//! * [`greedy_mask_order`] — Algorithm 2: an ordered list of grid cells such
//!   that masking the first cell reduces the maximum persistence the most,
//!   the second the second most, and so on. Walking this order yields the
//!   cumulative curves of Fig. 11.
//! * [`MaskingAnalysis`] — for a chosen prefix of that order, the resulting
//!   mask, the new maximum persistence, the persistence-reduction factor and
//!   the fraction of identities retained (the columns of Table 6 / Fig. 4).

use privid_video::{GridSpec, Mask, PersistenceStats, Scene, Seconds};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One step of the greedy mask ordering.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaskStep {
    /// The grid cell masked at this step.
    pub cell: (u32, u32),
    /// Maximum persistence (seconds) after masking this cell and all earlier ones.
    pub max_persistence_after: Seconds,
    /// Fraction of private identities still observable after this step.
    pub identities_retained: f64,
}

/// The full greedy plan for a scene.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaskPlan {
    /// The grid the plan is defined over.
    pub grid: GridSpec,
    /// Maximum persistence with no mask.
    pub original_max_persistence: Seconds,
    /// Number of private identities with no mask.
    pub original_identities: usize,
    /// Greedy steps, in masking order.
    pub steps: Vec<MaskStep>,
}

impl MaskPlan {
    /// The mask consisting of the first `n` cells of the plan.
    pub fn mask_prefix(&self, n: usize) -> Mask {
        Mask::from_cells(self.grid, self.steps.iter().take(n).map(|s| s.cell))
    }

    /// The smallest prefix achieving at least the requested reduction factor,
    /// if any prefix does.
    pub fn prefix_for_reduction(&self, factor: f64) -> Option<usize> {
        let target = self.original_max_persistence / factor;
        self.steps.iter().position(|s| s.max_persistence_after <= target).map(|i| i + 1)
    }
}

/// One private object's occupancy: its index in the scene plus, for each of
/// its presence segments, per-cell seconds of presence.
///
/// Segments are kept separate because the paper's ρ — and therefore the
/// persistence this module must reduce — bounds the longest single
/// *contiguous* appearance, not the object's lifetime total: summing a
/// person's morning and evening visits into one number would make Algorithm 2
/// chase (and report) a persistence no single event actually has.
type ObjectOccupancy = (usize, Vec<HashMap<(u32, u32), f64>>);

/// Internal per-object, per-segment occupancy: which cells each appearance
/// touches, with per-cell presence seconds.
fn object_cell_occupancy(scene: &Scene, grid: &GridSpec) -> Vec<ObjectOccupancy> {
    let dt = scene.frame_rate.frame_duration();
    let mut out = Vec::new();
    for (oi, obj) in scene.objects.iter().enumerate() {
        if !obj.class.is_private() {
            continue;
        }
        let mut segments = Vec::with_capacity(obj.segments.len());
        for seg in &obj.segments {
            let mut cells: HashMap<(u32, u32), f64> = HashMap::new();
            let n = (seg.span.duration() / dt).ceil() as u64;
            for i in 0..n {
                let t = seg.span.start.add_secs(i as f64 * dt);
                if let Some(bbox) = seg.bbox_at(t) {
                    *cells.entry(grid.cell_of(bbox.center())).or_default() += dt;
                }
            }
            segments.push(cells);
        }
        out.push((oi, segments));
    }
    out
}

/// An object's observable persistence under the current mask: the longest
/// single appearance, where each appearance is the sum of its unmasked cell
/// occupancies.
fn persistence(segments: &[HashMap<(u32, u32), f64>]) -> Seconds {
    segments.iter().map(|cells| cells.values().sum::<f64>()).fold(0.0, f64::max)
}

/// Algorithm 2: greedily order grid cells by how much masking them reduces the
/// maximum persistence.
///
/// The implementation follows the paper's algorithm: repeatedly take the
/// object with the largest remaining persistence, mask the unmasked cell it
/// occupies for the longest time, and update every object's remaining
/// persistence. The loop stops after `max_steps` cells (Appendix F caps the
/// useful set of cells well below the full grid).
pub fn greedy_mask_order(scene: &Scene, grid: GridSpec, max_steps: usize) -> MaskPlan {
    let occupancy = object_cell_occupancy(scene, &grid);
    let original_max = occupancy.iter().map(|(_, segments)| persistence(segments)).fold(0.0, f64::max);
    let original_identities = occupancy.len();

    // Remaining per-object, per-segment, per-cell presence. An object's
    // persistence is its longest remaining single appearance (the quantity ρ
    // bounds), *not* the sum over appearances.
    let mut remaining: Vec<Vec<HashMap<(u32, u32), f64>>> =
        occupancy.into_iter().map(|(_, segments)| segments).collect();
    let mut steps = Vec::new();

    for _ in 0..max_steps {
        // Object with the largest remaining persistence.
        let persistences: Vec<f64> = remaining.iter().map(|segments| persistence(segments)).collect();
        let (max_obj, max_persistence) = match persistences
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
        {
            Some((i, p)) if *p > 0.0 => (i, *p),
            _ => break,
        };
        if max_persistence <= 0.0 {
            break;
        }
        // Within that object's longest appearance, the unmasked cell it
        // occupies longest (ties broken by cell coordinates for determinism).
        // privid-analyzer: allow(panic-freedom) -- max_obj enumerates persistences, built 1:1 from remaining
        let longest_segment = remaining[max_obj]
            .iter()
            .max_by(|a, b| {
                let (pa, pb) = (a.values().sum::<f64>(), b.values().sum::<f64>());
                pa.total_cmp(&pb)
            })
            .expect("a positive persistence implies at least one segment"); // privid-analyzer: allow(panic-freedom) -- guarded by max_persistence > 0.0 above
        let Some((&cell, _)) = longest_segment
            .iter()
            .max_by(|a, b| a.1.total_cmp(b.1).then_with(|| a.0.cmp(b.0)))
        else {
            break;
        };
        // Mask it for every appearance of every object.
        for segments in &mut remaining {
            for cells in segments.iter_mut() {
                cells.remove(&cell);
            }
        }
        let max_after = remaining.iter().map(|segments| persistence(segments)).fold(0.0, f64::max);
        let retained = if original_identities == 0 {
            1.0
        } else {
            remaining.iter().filter(|segments| segments.iter().any(|c| !c.is_empty())).count() as f64
                / original_identities as f64
        };
        steps.push(MaskStep { cell, max_persistence_after: max_after, identities_retained: retained });
    }

    MaskPlan { grid, original_max_persistence: original_max, original_identities, steps }
}

/// Table 6 / Fig. 4 style summary of the effect of one concrete mask.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaskingAnalysis {
    /// Fraction of grid cells masked.
    pub masked_fraction: f64,
    /// Maximum persistence before masking, in seconds.
    pub max_before_secs: Seconds,
    /// Maximum persistence after masking, in seconds.
    pub max_after_secs: Seconds,
    /// `max_before / max_after`.
    pub reduction_factor: f64,
    /// Fraction of private identities still observable under the mask.
    pub identities_retained: f64,
}

impl MaskingAnalysis {
    /// Analyse the effect of a mask on a scene.
    pub fn analyse(scene: &Scene, mask: &Mask) -> Self {
        let before = PersistenceStats::compute(scene, None);
        let after = PersistenceStats::compute(scene, Some(mask));
        MaskingAnalysis {
            masked_fraction: mask.masked_fraction(),
            max_before_secs: before.max_secs,
            max_after_secs: after.max_secs,
            reduction_factor: if after.max_secs > 0.0 { before.max_secs / after.max_secs } else { f64::INFINITY },
            identities_retained: if before.object_count == 0 {
                1.0
            } else {
                after.object_count as f64 / before.object_count as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privid_video::{SceneConfig, SceneGenerator};

    fn scene() -> Scene {
        SceneGenerator::new(SceneConfig::campus().with_duration_hours(1.0)).generate()
    }

    #[test]
    fn greedy_order_monotonically_reduces_max_persistence() {
        let scene = scene();
        let plan = greedy_mask_order(&scene, GridSpec::coarse(scene.frame_size), 60);
        assert!(!plan.steps.is_empty());
        assert!(plan.original_max_persistence > 0.0);
        let mut prev = plan.original_max_persistence;
        for step in &plan.steps {
            assert!(step.max_persistence_after <= prev + 1e-9, "masking more cells cannot increase persistence");
            prev = step.max_persistence_after;
        }
        // Identities retained are non-increasing too.
        let mut prev_ret = 1.0;
        for step in &plan.steps {
            assert!(step.identities_retained <= prev_ret + 1e-9);
            prev_ret = step.identities_retained;
        }
    }

    #[test]
    fn a_small_mask_achieves_a_large_reduction_keeping_most_identities() {
        // The Table 6 claim: a mask covering a small fraction of the grid cuts
        // the maximum persistence several-fold while retaining most identities.
        let scene = scene();
        let grid = GridSpec::coarse(scene.frame_size);
        let plan = greedy_mask_order(&scene, grid, 80);
        let prefix = plan.prefix_for_reduction(3.0).expect("a 3x reduction must be reachable");
        let mask = plan.mask_prefix(prefix);
        assert!(mask.masked_fraction() < 0.35, "mask should cover a minority of the grid");
        let step = &plan.steps[prefix - 1];
        assert!(step.identities_retained > 0.6, "most identities survive: {}", step.identities_retained);
    }

    #[test]
    fn greedy_plan_uses_per_appearance_persistence_not_lifetime_sum() {
        // Regression: `object_cell_occupancy` used to sum presence across all
        // of an object's segments, so the greedy plan tracked lifetime totals
        // while `PersistenceStats` (and the paper's ρ) bound the longest
        // single contiguous appearance. A two-appearance object exposes the
        // disagreement: 100 s + 60 s in different cells is a persistence of
        // 100 s, not 160 s.
        use privid_video::{
            Attributes, CameraId, FrameRate, FrameSize, ObjectClass, ObjectId, Point, PresenceSegment, TimeSpan,
        };
        let dwell = |p: Point| privid_video::trajectory::Trajectory::linear(p, p, 6.0, 10.0);
        let object = privid_video::TrackedObject::new(
            ObjectId(1),
            ObjectClass::Person,
            Attributes::default(),
            vec![
                PresenceSegment { span: TimeSpan::between_secs(0.0, 100.0), trajectory: dwell(Point::new(15.0, 15.0)) },
                PresenceSegment { span: TimeSpan::between_secs(200.0, 260.0), trajectory: dwell(Point::new(85.0, 85.0)) },
            ],
        );
        let scene = Scene::new(
            CameraId::new("two-visits"),
            TimeSpan::from_secs(300.0),
            FrameRate::new(2.0),
            FrameSize::new(100, 100),
            vec![object],
        );
        let grid = GridSpec::new(scene.frame_size, 10, 10);
        let dt = scene.frame_rate.frame_duration();
        let plan = greedy_mask_order(&scene, grid, 4);

        assert!(
            (plan.original_max_persistence - 100.0).abs() <= dt + 1e-9,
            "longest single appearance is 100 s, not the 160 s lifetime sum: {}",
            plan.original_max_persistence
        );
        // The greedy step masks the long appearance's cell; the remaining
        // maximum is the second appearance, and the identity stays observable.
        assert_eq!(plan.steps[0].cell, (1, 1));
        assert!((plan.steps[0].max_persistence_after - 60.0).abs() <= dt + 1e-9);
        assert!((plan.steps[0].identities_retained - 1.0).abs() < 1e-9);

        // The plan agrees with the ground-truth analysis of its own mask.
        let analysis = MaskingAnalysis::analyse(&scene, &plan.mask_prefix(1));
        assert!(
            (plan.original_max_persistence - analysis.max_before_secs).abs() <= 2.0 * dt,
            "plan {} vs analysis {}",
            plan.original_max_persistence,
            analysis.max_before_secs
        );
        assert!(
            (plan.steps[0].max_persistence_after - analysis.max_after_secs).abs() <= 2.0 * dt,
            "plan {} vs analysis {}",
            plan.steps[0].max_persistence_after,
            analysis.max_after_secs
        );
        assert!((analysis.identities_retained - 1.0).abs() < 1e-9);
    }

    #[test]
    fn masking_analysis_is_consistent_with_scene_statistics() {
        let scene = scene();
        let grid = GridSpec::coarse(scene.frame_size);
        let plan = greedy_mask_order(&scene, grid, 40);
        let mask = plan.mask_prefix(plan.steps.len().min(30));
        let analysis = MaskingAnalysis::analyse(&scene, &mask);
        assert!(analysis.reduction_factor >= 1.0);
        assert!(analysis.max_after_secs <= analysis.max_before_secs);
        assert!((0.0..=1.0).contains(&analysis.identities_retained));
        assert!(analysis.masked_fraction > 0.0 && analysis.masked_fraction < 1.0);
    }

    #[test]
    fn empty_mask_changes_nothing() {
        let scene = scene();
        let grid = GridSpec::coarse(scene.frame_size);
        let analysis = MaskingAnalysis::analyse(&scene, &Mask::empty(grid));
        assert!((analysis.reduction_factor - 1.0).abs() < 1e-9);
        assert!((analysis.identities_retained - 1.0).abs() < 1e-9);
    }

    #[test]
    fn prefix_for_unreachable_reduction_is_none() {
        let scene = scene();
        let plan = greedy_mask_order(&scene, GridSpec::coarse(scene.frame_size), 5);
        // Five cells cannot usually reduce the max persistence a million-fold.
        assert!(plan.prefix_for_reduction(1e6).is_none());
    }
}
