//! Error type for the Privid system layer.

use privid_query::QueryError;
use privid_store::StoreError;
use std::fmt;

/// Errors the Privid system can return to an analyst.
#[derive(Debug, Clone, PartialEq)]
pub enum PrividError {
    /// The query referenced a camera the video owner has not registered.
    UnknownCamera(String),
    /// The query referenced a processor executable that was not attached.
    UnknownProcessor(String),
    /// The query referenced a mask the video owner has not published.
    UnknownMask(String),
    /// The query referenced a region scheme the video owner has not published.
    UnknownRegionScheme(String),
    /// The query window lies entirely outside the camera's recorded timeline:
    /// there is no footage to process and no budget to debit (the ledger used
    /// to silently clamp such windows onto a real frame's budget).
    WindowOutsideRecording {
        /// Camera whose recording the window missed.
        camera: String,
        /// Requested window start, seconds.
        start_secs: f64,
        /// Requested window end, seconds.
        end_secs: f64,
        /// Duration of the camera's recording, seconds.
        duration_secs: f64,
    },
    /// The query window starts at or past a live camera's high-watermark: the
    /// footage does not exist *yet*. Unlike
    /// [`PrividError::WindowOutsideRecording`] this is retryable — the camera
    /// is still recording, and the same query will succeed once the live edge
    /// has advanced past the window. No budget is consumed.
    BeyondLiveEdge {
        /// The live camera.
        camera: String,
        /// Requested window start, seconds.
        start_secs: f64,
        /// Requested window end, seconds.
        end_secs: f64,
        /// The camera's live edge (footage exists strictly before it), seconds.
        live_edge_secs: f64,
    },
    /// The per-frame privacy budget is insufficient for this query (Alg. 1).
    BudgetExhausted {
        /// Camera whose budget is insufficient.
        camera: String,
        /// Budget requested by the query.
        requested: f64,
        /// Minimum remaining budget over the required frame range.
        available: f64,
    },
    /// The submitting tenant's ε quota is insufficient for this query.
    /// Rejected before any execution: nothing is debited anywhere — not the
    /// quota, not any camera ledger. Quotas govern per-tenant resource use
    /// on a multi-tenant front-end; the per-camera ledgers alone carry the
    /// DP guarantee.
    TenantQuotaExhausted {
        /// The tenant whose quota is insufficient.
        tenant: String,
        /// Total ε the query would consume.
        requested: f64,
        /// The tenant's remaining quota.
        available: f64,
    },
    /// Spatial splitting with soft boundaries requires single-frame chunks (§7.2).
    SoftBoundaryChunkTooLarge {
        /// The chunk duration requested.
        chunk_secs: f64,
        /// The camera's frame duration (the maximum allowed).
        frame_secs: f64,
    },
    /// The camera's durability journal is unavailable (its WAL is wedged or
    /// its ledger awaits reconciliation), so new admissions and live-edge
    /// extends on this camera are refused: ε must never be debited without a
    /// journaled record. **Retryable** after a supervised
    /// [`crate::QueryService::recover_store`] — and scoped to this camera;
    /// closed-window reads keep serving from the adopted in-memory ledger,
    /// and other cameras are unaffected.
    CameraQuarantined {
        /// The quarantined camera.
        camera: String,
        /// Why it was quarantined.
        reason: String,
    },
    /// A standing-query name is already owned by a different tenant. The
    /// standing registry is a shared namespace on a multi-tenant front-end;
    /// registration (and replacement) of a name is reserved to the tenant
    /// that first claimed it. Rejected at admission: nothing is debited.
    StandingQueryDenied {
        /// The contested standing-query name.
        name: String,
        /// The tenant whose claim was refused.
        tenant: String,
    },
    /// An error from the query layer (parse, validation, sensitivity).
    Query(QueryError),
    /// The durability store failed (journal append, recovery, corruption).
    /// An admission that cannot be journaled is aborted *before* any slot is
    /// debited — a release must never outrun its durable debit record.
    Store(StoreError),
    /// The query structure is invalid (e.g. SELECT references an undefined table).
    Invalid(String),
}

impl PrividError {
    /// True for failures where the identical request may later succeed with
    /// no action by the analyst: footage that does not exist *yet*
    /// ([`PrividError::BeyondLiveEdge`]), a quarantined camera awaiting
    /// supervised recovery ([`PrividError::CameraQuarantined`]), and
    /// transient store I/O errors. Budget exhaustion and corruption refusals
    /// are deliberately *not* retryable.
    pub fn is_retryable(&self) -> bool {
        match self {
            PrividError::BeyondLiveEdge { .. } | PrividError::CameraQuarantined { .. } => true,
            PrividError::Store(e) => e.is_transient(),
            _ => false,
        }
    }
}

impl fmt::Display for PrividError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrividError::UnknownCamera(c) => write!(f, "unknown camera: {c}"),
            PrividError::UnknownProcessor(p) => write!(f, "unknown processor executable: {p}"),
            PrividError::UnknownMask(m) => write!(f, "unknown mask: {m}"),
            PrividError::UnknownRegionScheme(r) => write!(f, "unknown region scheme: {r}"),
            PrividError::WindowOutsideRecording { camera, start_secs, end_secs, duration_secs } => write!(
                f,
                "window [{start_secs}, {end_secs}) s lies outside camera {camera}'s recording ({duration_secs} s)"
            ),
            PrividError::BeyondLiveEdge { camera, start_secs, end_secs, live_edge_secs } => write!(
                f,
                "window [{start_secs}, {end_secs}) s is beyond camera {camera}'s live edge ({live_edge_secs} s); \
                 retry once the recording has caught up"
            ),
            PrividError::BudgetExhausted { camera, requested, available } => {
                write!(f, "privacy budget exhausted for camera {camera}: requested {requested}, available {available}")
            }
            PrividError::TenantQuotaExhausted { tenant, requested, available } => {
                write!(f, "tenant {tenant}'s epsilon quota exhausted: requested {requested}, available {available}")
            }
            PrividError::SoftBoundaryChunkTooLarge { chunk_secs, frame_secs } => write!(
                f,
                "spatial splitting over soft boundaries requires chunks of one frame ({frame_secs} s), got {chunk_secs} s"
            ),
            PrividError::CameraQuarantined { camera, reason } => write!(
                f,
                "camera {camera} is quarantined ({reason}); admissions resume after supervised recovery"
            ),
            PrividError::StandingQueryDenied { name, tenant } => write!(
                f,
                "standing query {name} is owned by another tenant; {tenant} may neither replace nor re-register it"
            ),
            PrividError::Query(e) => write!(f, "query error: {e}"),
            PrividError::Store(e) => write!(f, "durability error: {e}"),
            PrividError::Invalid(m) => write!(f, "invalid query: {m}"),
        }
    }
}

impl std::error::Error for PrividError {}

impl From<QueryError> for PrividError {
    fn from(e: QueryError) -> Self {
        PrividError::Query(e)
    }
}

impl From<StoreError> for PrividError {
    fn from(e: StoreError) -> Self {
        PrividError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: PrividError = QueryError::UnknownColumn("speed".into()).into();
        assert!(e.to_string().contains("speed"));
        let b = PrividError::BudgetExhausted { camera: "campus".into(), requested: 1.0, available: 0.25 };
        assert!(b.to_string().contains("campus"));
        assert!(PrividError::UnknownMask("m1".into()).to_string().contains("m1"));
    }
}
