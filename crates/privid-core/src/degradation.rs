//! Graceful degradation of privacy beyond the `(ρ, K)` bound (Appendix C).
//!
//! Privid protects `(ρ, K)`-bounded events with ε-DP; events that exceed the
//! bound are not revealed outright but become progressively easier for an
//! adversary to detect. Equation C.3 bounds the adversary's probability of
//! correctly deciding an individual is present, given a false-positive budget
//! α and the effective ε an over-long appearance experiences. Fig. 8 plots
//! this bound against persistence measured in multiples of ρ; this module
//! regenerates that curve.

use serde::{Deserialize, Serialize};

/// Upper bound on the probability an adversary with false-positive tolerance
/// `alpha` correctly detects the event, when the event is protected with
/// `effective_epsilon`-DP (Eq. C.3):
/// `min{ e^ε·α, e^{-ε}·(α − (1 − e^ε)) }`, clamped into `[0, 1]`.
pub fn detection_probability_bound(effective_epsilon: f64, alpha: f64) -> f64 {
    let eps = effective_epsilon.max(0.0);
    let a = alpha.clamp(0.0, 1.0);
    let first = eps.exp() * a;
    let second = (-eps).exp() * (a - (1.0 - eps.exp()));
    first.min(second).clamp(0.0, 1.0)
}

/// One point of the Fig. 8 curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradationPoint {
    /// Actual persistence divided by the protected ρ (the x-axis of Fig. 8).
    pub persistence_ratio: f64,
    /// Maximum detection probability (the y-axis of Fig. 8).
    pub detection_probability: f64,
}

/// The Fig. 8 curve for one adversarial confidence level α.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradationCurve {
    /// False-positive tolerance of the adversary.
    pub alpha: f64,
    /// Baseline ε protecting exactly-(ρ, K)-bounded events.
    pub epsilon: f64,
    /// Curve points, in increasing persistence ratio.
    pub points: Vec<DegradationPoint>,
}

impl DegradationCurve {
    /// Compute the curve for persistence ratios `0..=max_ratio` with the given
    /// step. An event whose persistence is `r·ρ` experiences roughly `r·ε`
    /// (the appearance spans proportionally more chunks), which is the
    /// effective ε fed into Eq. C.3.
    pub fn compute(epsilon: f64, alpha: f64, max_ratio: f64, step: f64) -> Self {
        assert!(step > 0.0);
        let mut points = Vec::new();
        let mut r = 0.0;
        while r <= max_ratio + 1e-9 {
            points.push(DegradationPoint {
                persistence_ratio: r,
                detection_probability: detection_probability_bound(epsilon * r, alpha),
            });
            r += step;
        }
        DegradationCurve { alpha, epsilon, points }
    }

    /// The four α levels plotted in Fig. 8.
    pub fn figure8(epsilon: f64) -> Vec<DegradationCurve> {
        [0.001, 0.01, 0.1, 0.2].iter().map(|&a| DegradationCurve::compute(epsilon, a, 12.0, 0.25)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_is_a_probability() {
        for eps in [0.0, 0.5, 1.0, 3.0, 10.0] {
            for alpha in [0.001, 0.01, 0.1, 0.2, 0.9] {
                let p = detection_probability_bound(eps, alpha);
                assert!((0.0..=1.0).contains(&p), "eps {eps} alpha {alpha} gave {p}");
            }
        }
    }

    #[test]
    fn at_zero_epsilon_adversary_is_limited_to_alpha() {
        // With perfect privacy the adversary can do no better than their
        // false-positive budget.
        assert!((detection_probability_bound(0.0, 0.1) - 0.1).abs() < 1e-12);
        assert!((detection_probability_bound(0.0, 0.01) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn bound_is_monotone_in_epsilon() {
        for alpha in [0.001, 0.01, 0.1, 0.2] {
            let mut prev = 0.0;
            for i in 0..50 {
                let eps = i as f64 * 0.2;
                let p = detection_probability_bound(eps, alpha);
                assert!(p + 1e-12 >= prev, "detection bound must not decrease with epsilon");
                prev = p;
            }
        }
    }

    #[test]
    fn curve_shape_matches_fig8() {
        let curves = DegradationCurve::figure8(1.0);
        assert_eq!(curves.len(), 4);
        for c in &curves {
            // Starts at α (ratio 0 → effective ε 0), saturates at 1 for large ratios.
            assert!((c.points[0].detection_probability - c.alpha).abs() < 1e-9);
            assert!(c.points.last().unwrap().detection_probability > 0.99);
            // Lower α curves lie below higher α curves at every ratio.
        }
        for i in 0..curves[0].points.len() {
            assert!(curves[0].points[i].detection_probability <= curves[3].points[i].detection_probability + 1e-12);
        }
    }

    #[test]
    fn events_within_the_bound_get_baseline_protection() {
        // persistence_ratio = 1 → effective ε = ε.
        let c = DegradationCurve::compute(1.0, 0.1, 2.0, 1.0);
        let at_one = c.points.iter().find(|p| (p.persistence_ratio - 1.0).abs() < 1e-9).unwrap();
        assert!((at_one.detection_probability - detection_probability_bound(1.0, 0.1)).abs() < 1e-12);
    }
}
