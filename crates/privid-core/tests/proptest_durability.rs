//! The kill-at-every-record-boundary property.
//!
//! For arbitrary interleavings of registrations, live-edge extensions and
//! journaled admissions, crash the process at **every byte offset** of the
//! write-ahead log (which subsumes every record boundary) and recover. The
//! properties:
//!
//! 1. **Boundary exactness** — at every *record boundary* the recovered
//!    ledger state is bit-for-bit equal to the in-memory ledgers as they
//!    stood when that record was applied: same slot count, same duration
//!    bits, same remaining-ε bits per slot.
//! 2. **Torn-tail safety** — at every *mid-record* offset, recovery
//!    truncates the torn tail and lands exactly on the last boundary state.
//!    In particular, no slot ever recovers with more remaining ε than the
//!    pre-crash in-memory ledger had (the never-under-debit invariant): the
//!    journal is written before any debit is applied, so a torn admit record
//!    implies the debit never happened.
//! 3. **Snapshot transparency** — with aggressive auto-checkpointing
//!    (snapshot every 3 records), a crash after any operation still recovers
//!    the exact in-memory state: snapshot + idempotent log replay is
//!    invisible.
//!
//! The harness drives the *real* admission path
//! ([`AdmissionController::admit_journaled`]) with a journal identical in
//! shape to the serving layer's, so the property covers the production
//! check → journal → debit ordering, not a reimplementation.

use privid_core::{
    AdmissionController, AdmissionJournal, AdmissionRequest, BudgetLedger, StoreError,
};
use privid_store::{DebitRange, FsyncPolicy, Record, StoreState, WalOptions, WalStore};
use privid_video::TimeSpan;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const RHO: f64 = 5.0;

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("privid-prop-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One operation, decoded deterministically from a random 64-bit seed (the
/// offline proptest shim generates flat values; the decode spreads them over
/// registrations, extensions and debits).
#[derive(Debug, Clone)]
enum Op {
    RegisterFixed { cam: usize, duration_secs: f64, epsilon: f64 },
    RegisterLive { cam: usize, epsilon: f64 },
    Extend { cam: usize, delta_secs: f64 },
    Debit { cam: usize, start_secs: f64, len_secs: f64, epsilon: f64 },
}

fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed.wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn frac(seed: u64, salt: u64) -> f64 {
    (mix(seed, salt) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn decode_op(seed: u64) -> Op {
    let cam = (mix(seed, 1) % 3) as usize;
    match mix(seed, 0) % 8 {
        0 => Op::RegisterFixed { cam, duration_secs: 5.0 + frac(seed, 2) * 60.0, epsilon: 0.5 + frac(seed, 3) * 2.0 },
        1 => Op::RegisterLive { cam, epsilon: 0.5 + frac(seed, 3) * 2.0 },
        2 | 3 => Op::Extend { cam, delta_secs: 0.5 + frac(seed, 4) * 30.0 },
        _ => Op::Debit {
            cam,
            start_secs: frac(seed, 5) * 50.0,
            len_secs: 0.5 + frac(seed, 6) * 40.0,
            epsilon: 0.05 + frac(seed, 7) * 0.3,
        },
    }
}

/// The journal the serving layer uses, reproduced over the public API: one
/// atomic `Admit` record carrying the exact slot ranges, appended between
/// check and debit.
struct TestJournal<'a> {
    store: &'a WalStore,
    cameras: Vec<String>,
}

impl AdmissionJournal for TestJournal<'_> {
    fn record_admit(
        &self,
        requests: &[AdmissionRequest<'_>],
        epsilon: f64,
    ) -> Result<Option<privid_core::CommitWait>, StoreError> {
        let mut debits = Vec::new();
        for (camera, r) in self.cameras.iter().zip(requests) {
            let (lo, hi) = r.ledger.debit_slot_range(&r.window).expect("checked window resolves");
            debits.push(DebitRange { camera: camera.clone(), lo: lo as u64, hi: hi as u64 });
        }
        self.store.append(Record::Admit { epsilon, debits }).map(|_| None)
    }

    fn record_rollback(&self, _: &[AdmissionRequest<'_>], _: usize, _: f64) {
        unreachable!("single-request admissions cannot roll back");
    }
}

/// Bit-exact fingerprint of one in-memory ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
struct LedgerBits {
    live: bool,
    duration_bits: u64,
    slot_bits: Vec<u64>,
}

fn ledger_bits(ledger: &BudgetLedger) -> LedgerBits {
    LedgerBits {
        live: ledger.is_live(),
        duration_bits: ledger.duration_secs().to_bits(),
        slot_bits: ledger.slots_snapshot().iter().map(|s| s.to_bits()).collect(),
    }
}

fn state_bits(state: &StoreState) -> BTreeMap<String, LedgerBits> {
    state
        .cameras
        .iter()
        .map(|(name, cam)| {
            (
                name.clone(),
                LedgerBits {
                    live: cam.live,
                    duration_bits: cam.duration_secs.to_bits(),
                    slot_bits: cam.slots.iter().map(|s| s.to_bits()).collect(),
                },
            )
        })
        .collect()
}

/// The in-memory service stand-in: real ledgers behind the real admission
/// controller, journaling to a real WAL with the production ordering.
struct Harness {
    store: WalStore,
    controller: AdmissionController,
    ledgers: BTreeMap<String, BudgetLedger>,
}

impl Harness {
    fn new(dir: &PathBuf, snapshot_every: u64) -> Self {
        let (store, recovered) =
            WalStore::open_with(dir, FsyncPolicy::Never, WalOptions { snapshot_every }).expect("fresh store opens");
        assert_eq!(recovered.state, StoreState::default());
        Harness { store, controller: AdmissionController::new(), ledgers: BTreeMap::new() }
    }

    /// Apply one op with the production journal-before-apply ordering.
    /// Returns true when the op appended a record (i.e. mutated state).
    fn apply(&mut self, op: &Op) -> bool {
        match op {
            Op::RegisterFixed { cam, duration_secs, epsilon } => {
                let name = format!("cam{cam}");
                self.store
                    .append(Record::RegisterCamera {
                        name: name.clone(),
                        generation: 0,
                        live: false,
                        slot_secs: 1.0,
                        duration_secs: *duration_secs,
                        initial_epsilon: *epsilon,
                        rho_secs: RHO,
                        k: 2,
                    })
                    .expect("append");
                self.ledgers.insert(name, BudgetLedger::new(*duration_secs, *epsilon));
                true
            }
            Op::RegisterLive { cam, epsilon } => {
                let name = format!("cam{cam}");
                self.store
                    .append(Record::RegisterCamera {
                        name: name.clone(),
                        generation: 0,
                        live: true,
                        slot_secs: 1.0,
                        duration_secs: 0.0,
                        initial_epsilon: *epsilon,
                        rho_secs: RHO,
                        k: 2,
                    })
                    .expect("append");
                self.ledgers.insert(name, BudgetLedger::new_live(*epsilon));
                true
            }
            Op::Extend { cam, delta_secs } => {
                let name = format!("cam{cam}");
                let Some(ledger) = self.ledgers.get(&name) else { return false };
                if !ledger.is_live() {
                    return false;
                }
                let edge = ledger.duration_secs() + delta_secs;
                self.store.append(Record::Extend { camera: name, live_edge_secs: edge }).expect("append");
                ledger.extend_to(edge);
                true
            }
            Op::Debit { cam, start_secs, len_secs, epsilon } => {
                let name = format!("cam{cam}");
                let Some(ledger) = self.ledgers.get(&name) else { return false };
                let window = TimeSpan::between_secs(*start_secs, start_secs + len_secs);
                let requests = [AdmissionRequest { ledger, window, rho_margin: RHO }];
                let journal = TestJournal { store: &self.store, cameras: vec![name] };
                self.controller.admit_journaled(&requests, *epsilon, Some(&journal)).is_ok()
            }
        }
    }
}

/// Record-boundary byte offsets of a log (0 included), by walking frames.
fn boundaries(log: &[u8]) -> Vec<usize> {
    let mut offsets = vec![0usize];
    let mut offset = 0usize;
    while log.len() - offset >= 8 {
        let len = u32::from_le_bytes(log[offset..offset + 4].try_into().unwrap()) as usize;
        if len == 0 || log.len() < offset + 8 + len {
            break;
        }
        offset += 8 + len;
        offsets.push(offset);
    }
    offsets
}

/// Recover from a log prefix and return the rebuilt ledger fingerprints.
fn recover_prefix(log: &[u8], cut: usize) -> BTreeMap<String, LedgerBits> {
    let dir = temp_dir("cut");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("wal.log"), &log[..cut]).unwrap();
    let (_store, recovered) = WalStore::open(&dir, FsyncPolicy::Never).expect("prefix recovery succeeds");
    let bits = state_bits(&recovered.state);
    let _ = std::fs::remove_dir_all(&dir);
    bits
}

proptest! {
    #[test]
    fn crash_at_every_byte_recovers_the_boundary_state(seeds in prop::collection::vec(any::<u64>(), 4..24)) {
        // ---- run the ops, fingerprinting the ledgers at every boundary ----
        let dir = temp_dir("run");
        // No auto-snapshot here: the crash model is pure log-prefix.
        let mut harness = Harness::new(&dir, u64::MAX);
        let mut shadow_at: Vec<BTreeMap<String, LedgerBits>> = vec![BTreeMap::new()];
        for seed in &seeds {
            if harness.apply(&decode_op(*seed)) {
                shadow_at.push(harness.ledgers.iter().map(|(n, l)| (n.clone(), ledger_bits(l))).collect());
            }
        }
        let log = std::fs::read(dir.join("wal.log")).unwrap();
        let bounds = boundaries(&log);
        prop_assert_eq!(bounds.len(), shadow_at.len(), "one boundary per applied record");

        // ---- property 1: boundary exactness ----
        for (k, &cut) in bounds.iter().enumerate() {
            let recovered = recover_prefix(&log, cut);
            prop_assert_eq!(
                &recovered, &shadow_at[k],
                "crash at record boundary {} (byte {}) must recover the exact in-memory ledgers", k, cut
            );
        }

        // ---- property 2: torn tails land exactly on the last boundary ----
        // Probe every byte inside the final record and three interior bytes
        // of every earlier record (start+1, middle, end-1).
        let mut cuts: Vec<usize> = Vec::new();
        if bounds.len() >= 2 {
            let last = bounds[bounds.len() - 2];
            cuts.extend(last + 1..bounds[bounds.len() - 1]);
        }
        for w in bounds.windows(2) {
            let (a, b) = (w[0], w[1]);
            cuts.extend([a + 1, a + (b - a) / 2, b - 1]);
        }
        for cut in cuts {
            let k = bounds.iter().rposition(|&b| b <= cut).unwrap();
            let recovered = recover_prefix(&log, cut);
            // This equality *is* the never-under-debit invariant: a crash
            // mid-append means the append never returned, so the operation
            // was never applied — the pre-crash in-memory ledgers are exactly
            // the last boundary state, and recovery lands on them, bit for
            // bit. No slot can recover with more ε than it had.
            prop_assert_eq!(
                &recovered, &shadow_at[k],
                "mid-record crash at byte {} must truncate to boundary {} — a torn record's operation never happened",
                cut, k
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn aggressive_snapshots_are_invisible_to_recovery(seeds in prop::collection::vec(any::<u64>(), 4..20)) {
        // Auto-checkpoint every 3 records: most ops straddle a snapshot +
        // truncation. After every op, copy the whole store directory (the
        // crash) and recover: snapshot + idempotent replay must reproduce
        // the in-memory ledgers bit-for-bit.
        let dir = temp_dir("snap");
        let mut harness = Harness::new(&dir, 3);
        for (i, seed) in seeds.iter().enumerate() {
            if !harness.apply(&decode_op(*seed)) {
                continue;
            }
            let crash = temp_dir("snapcrash");
            std::fs::create_dir_all(&crash).unwrap();
            for f in ["wal.log", "snapshot.bin"] {
                if dir.join(f).exists() {
                    std::fs::copy(dir.join(f), crash.join(f)).unwrap();
                }
            }
            let (_store, recovered) = WalStore::open(&crash, FsyncPolicy::Never).expect("recovery succeeds");
            let expected: BTreeMap<String, LedgerBits> =
                harness.ledgers.iter().map(|(n, l)| (n.clone(), ledger_bits(l))).collect();
            prop_assert_eq!(
                state_bits(&recovered.state), expected,
                "crash after op {} (with snapshots every 3 records) must recover the exact ledgers", i
            );
            let _ = std::fs::remove_dir_all(&crash);
        }
        // The recovered store must also agree with the live store's own shadow.
        prop_assert_eq!(state_bits(&harness.store.state()).len(), harness.ledgers.len());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
