//! Fleet-admission properties (satellite of the sharding refactor).
//!
//! For randomly interleaved multi-camera admissions across shards:
//!
//! 1. **Deadlock freedom, bounded-time** — concurrent fleet admissions with
//!    overlapping shard sets finish within a hard wall-clock bound. The
//!    ascending-shard gate order is the only thing standing between the
//!    fleet and an ABBA deadlock, so the whole concurrent phase runs under a
//!    watchdog that fails the property instead of hanging the suite.
//! 2. **Exactly-once debits, bit-for-bit** — every admission debits each of
//!    its cameras exactly once: replaying the successful admissions serially
//!    on a fresh single-shard fleet, in gate order, re-admits every one and
//!    lands every ledger on bit-identical remaining-ε slots (any double- or
//!    missed-debit in the concurrent run shows up as a bits mismatch).
//!    Successes are logged at the journal hook — under the gates, the
//!    admission's linearization point — because the ±ρ margin check makes
//!    re-admission order-sensitive for same-ledger admissions (see
//!    [`GateLog`]).
//!
//! The property drives the real [`admit_fleet`] entry point — gate sweep,
//! check-all, debit-all — not a reimplementation.

use privid_core::{
    admit_fleet, AdmissionController, AdmissionJournal, AdmissionRequest, BudgetLedger, CommitWait,
    ShardAdmission, StoreError,
};
use privid_video::TimeSpan;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Duration;

const SHARDS: usize = 4;
const CAMERAS: usize = 8;
const THREADS: usize = 4;
const ADMITS_PER_THREAD: usize = 24;
const DURATION_SECS: f64 = 60.0;
const INITIAL_EPSILON: f64 = 0.05; // exhaustible: 5 equal debits per slot, so rejections really happen
const EPSILON: f64 = 0.01; // every admission debits the same ε (see module docs)
const RHO: f64 = 2.0;

/// Hard bound on the whole concurrent phase. Generous next to the
/// milliseconds the admissions actually take — a timeout means the gate
/// order failed and threads are deadlocked, not that the machine is slow.
const DEADLOCK_BOUND: Duration = Duration::from_secs(60);

fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed.wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn frac(seed: u64, salt: u64) -> f64 {
    (mix(seed, salt) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// One multi-camera admission, decoded from a seed: 1–4 distinct cameras,
/// each with its own window. Camera `c` is homed on shard `c % SHARDS`.
#[derive(Debug, Clone)]
struct FleetAdmit {
    /// (camera index, window) — distinct cameras, sorted by camera index.
    parts: Vec<(usize, TimeSpan)>,
}

fn decode_admit(seed: u64) -> FleetAdmit {
    let count = 1 + (mix(seed, 0) % 4) as usize;
    let mut cams: Vec<usize> = (0..count).map(|i| (mix(seed, 10 + i as u64) % CAMERAS as u64) as usize).collect();
    cams.sort_unstable();
    cams.dedup();
    let parts = cams
        .into_iter()
        .enumerate()
        .map(|(i, cam)| {
            let start = frac(seed, 20 + i as u64) * (DURATION_SECS - 10.0);
            let len = 1.0 + frac(seed, 40 + i as u64) * 8.0;
            (cam, TimeSpan::between_secs(start, start + len))
        })
        .collect();
    FleetAdmit { parts }
}

/// Logs a successful admission **at the journal hook** — i.e. while every
/// member gate is still held, after all checks passed, before any debit.
/// That instant is the admission's linearization point: logging after
/// `admit_fleet` returns (gates released) could record two same-ledger
/// admissions in the opposite order from their gate-serialized debits, and
/// the ±ρ margin check makes re-admission order-sensitive, so a replay in
/// inverted order can spuriously reject.
struct GateLog<'a> {
    log: &'a Mutex<Vec<(u64, FleetAdmit)>>,
    admit: &'a FleetAdmit,
    id: u64,
    /// `record_admit` fires once per member shard group; log only the first.
    logged: AtomicBool,
}

impl AdmissionJournal for GateLog<'_> {
    fn record_admit(&self, _requests: &[AdmissionRequest<'_>], _epsilon: f64) -> Result<Option<CommitWait>, StoreError> {
        if !self.logged.swap(true, Ordering::Relaxed) {
            self.log.lock().unwrap().push((self.id, self.admit.clone()));
        }
        Ok(None)
    }

    fn record_rollback(&self, _requests: &[AdmissionRequest<'_>], _debited: usize, _epsilon: f64) {
        // The shared-ledger pre-simulation makes post-journal rollback
        // unreachable here, but if it ever fires the admission failed:
        // un-log it so the replay only sees real successes.
        self.log.lock().unwrap().retain(|(id, _)| *id != self.id);
    }
}

/// A fleet: one admission controller (gate) per shard, one ledger per
/// camera. Cameras are homed by `cam % SHARDS` — the same modular routing
/// the sharded service uses.
struct Fleet {
    controllers: Vec<AdmissionController>,
    ledgers: Vec<BudgetLedger>,
}

impl Fleet {
    fn new(shards: usize) -> Fleet {
        Fleet {
            controllers: (0..shards).map(|_| AdmissionController::new()).collect(),
            ledgers: (0..CAMERAS).map(|_| BudgetLedger::new(DURATION_SECS, INITIAL_EPSILON)).collect(),
        }
    }

    /// Run one fleet admission through `admit_fleet`, grouping the requests
    /// by home shard in ascending shard order. `journal` (the [`GateLog`])
    /// observes the admission at its under-the-gates linearization point.
    fn admit(&self, shards: usize, admit: &FleetAdmit, journal: Option<&dyn AdmissionJournal>) -> bool {
        let requests: Vec<AdmissionRequest<'_>> = admit
            .parts
            .iter()
            .map(|(cam, window)| AdmissionRequest { ledger: &self.ledgers[*cam], window: *window, rho_margin: RHO })
            .collect();
        let mut members: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, (cam, _)) in admit.parts.iter().enumerate() {
            members.entry(cam % shards).or_default().push(i);
        }
        let groups: Vec<ShardAdmission<'_>> = members
            .into_iter()
            .map(|(shard, members)| ShardAdmission {
                shard,
                controller: &self.controllers[shard],
                journal,
                members,
            })
            .collect();
        admit_fleet(&groups, &requests, EPSILON).is_ok()
    }

    fn ledger_bits(&self) -> Vec<Vec<u64>> {
        self.ledgers.iter().map(|l| l.slots_snapshot().iter().map(|s| s.to_bits()).collect()).collect()
    }
}

proptest! {
    #[test]
    fn interleaved_fleet_admissions_are_deadlock_free_and_debit_exactly_once(
        seeds in prop::collection::vec(any::<u64>(), 4..16),
    ) {
        // Concurrent phase, under the deadlock watchdog: THREADS workers
        // fire fleet admissions whose shard sets overlap arbitrarily.
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let fleet = Fleet::new(SHARDS);
            let successes: Mutex<Vec<(u64, FleetAdmit)>> = Mutex::new(Vec::new());
            std::thread::scope(|scope| {
                for t in 0..THREADS {
                    let fleet = &fleet;
                    let successes = &successes;
                    let seeds = seeds.clone();
                    scope.spawn(move || {
                        for i in 0..ADMITS_PER_THREAD {
                            let salt = (t * ADMITS_PER_THREAD + i) as u64;
                            let seed = mix(seeds[salt as usize % seeds.len()], salt);
                            let admit = decode_admit(seed);
                            let journal =
                                GateLog { log: successes, admit: &admit, id: salt, logged: AtomicBool::new(false) };
                            fleet.admit(SHARDS, &admit, Some(&journal));
                        }
                    });
                }
            });
            let log: Vec<FleetAdmit> = successes.into_inner().unwrap().into_iter().map(|(_, a)| a).collect();
            let bits = fleet.ledger_bits();
            // A send after the watchdog gave up just returns Err; ignore.
            let _ = tx.send((log, bits));
        });
        let (log, concurrent_bits) = rx
            .recv_timeout(DEADLOCK_BOUND)
            .expect("fleet admissions deadlocked: concurrent phase exceeded the wall-clock bound");

        // The first admission to complete always sees full budgets, so a
        // healthy run admits at least one query — an empty log would mean
        // the property went vacuous (e.g. every window failing validation).
        prop_assert!(!log.is_empty(), "no admission succeeded; the property is vacuous");

        // Serial replay on a single-shard fleet: every camera's gate is the
        // one shard-0 gate, every logged admission must re-succeed (the
        // debit multiset is identical and ε is constant), and the final
        // remaining-ε bits must match the concurrent run exactly.
        let replay = Fleet::new(1);
        for admit in &log {
            prop_assert!(
                replay.admit(1, admit, None),
                "a concurrently-admitted query must re-admit under serial single-shard replay: {admit:?}"
            );
        }
        let replay_bits = replay.ledger_bits();
        for cam in 0..CAMERAS {
            prop_assert_eq!(
                &concurrent_bits[cam], &replay_bits[cam],
                "camera {} remaining-ε bits diverge between the concurrent sharded run and serial replay", cam
            );
        }
    }
}
