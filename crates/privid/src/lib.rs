//! # privid
//!
//! Facade crate for the Privid reproduction (NSDI 2022: *Privid: Practical,
//! Privacy-Preserving Video Analytics Queries*). It re-exports the public API
//! of every workspace crate so applications can depend on a single crate:
//!
//! * [`video`] — synthetic video substrate (scenes, chunks, masks, datasets).
//! * [`cv`] — simulated detection + tracking and `(ρ, K)` policy estimation.
//! * [`query`] — the query language, relational algebra and sensitivity rules.
//! * [`sandbox`] — isolated execution of analyst chunk processors.
//! * [`core`] — the Privid system: policies, the Laplace mechanism, the
//!   per-frame budget ledger, the single-analyst executor, the concurrent
//!   multi-analyst [`QueryService`] and the §7 optimizations.
//! * [`store`] — the durable privacy ledger: write-ahead log, snapshots and
//!   crash recovery behind the [`Durability`] knob.
//! * [`wire`] — the sans-IO zero-copy binary wire protocol (versioned frames,
//!   typed decode errors, bit-exact float transport).
//! * [`server`] — the threaded multi-tenant TCP front-end and blocking client
//!   over [`QueryService`], speaking [`wire`].
//!
//! The most common entry points are re-exported at the crate root; see the
//! `examples/` directory for runnable end-to-end walkthroughs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use privid_core as core;
pub use privid_cv as cv;
pub use privid_query as query;
pub use privid_sandbox as sandbox;
pub use privid_server as server;
pub use privid_store as store;
pub use privid_video as video;
pub use privid_wire as wire;

pub use privid_core::{
    admit_fleet, greedy_mask_order, AdmissionController, AdmissionFailure, AdmissionJournal, AdmissionRequest,
    AggCacheStats, AppendOutcome, BudgetError, BudgetLedger, CameraHealth, ChunkCacheStats, CommitWait,
    DegradationCurve, LaplaceMechanism, MaskPolicy, MaskingAnalysis, NoisyRelease, NoisyValue, Parallelism,
    PrivacyPolicy, PrividError, PrividSystem, QueryResult, QueryService, QueryServiceBuilder, ShardAdmission,
    StandingFiring, StandingPoll, StoreRetryPolicy,
};
pub use privid_store::{
    Durability, FaultKind, FaultOp, FaultProfile, FaultVfs, FsyncPolicy, Record, RecoveryEvent, RecoveryReport,
    RecoveryWarning, StdVfs, StoreError, StoreState, Vfs, VfsFile, WalOptions, WalStore,
};
pub use privid_cv::{Detector, DetectorConfig, DurationEstimator, PolicyEstimator, Tracker, TrackerConfig};
pub use privid_query::{parse_query, Aggregation, ParsedQuery, Relation, SelectStatement, Value};
pub use privid_sandbox::{
    CarTableProcessor, ChunkProcessor, DirectionFilterProcessor, RedLightProcessor, TaxiShiftProcessor,
    TreeBloomProcessor, UniqueEntrantProcessor,
};
pub use privid_video::{
    CameraId, ChunkBuffer, ChunkPlan, ChunkView, DatasetCatalog, FrameBatch, FrameRate, FrameSize, GridSpec, Mask,
    PersistenceStats, PortoConfig, PortoDataset, PresenceHeatmap, Recording, Scene, SceneConfig, SceneGenerator,
    TimeSpan, Timestamp, TrackedObject,
};

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compose() {
        // A tiny smoke test exercising one type from each sub-crate.
        let scene = crate::SceneGenerator::new(crate::SceneConfig::campus().with_duration_hours(0.05)).generate();
        assert!(scene.object_count() > 0);
        let policy = crate::PrivacyPolicy::new(30.0, 2, 1.0);
        assert_eq!(policy.bound(), (30.0, 2));
        let parsed = crate::parse_query("SELECT COUNT(*) FROM t;").unwrap();
        assert_eq!(parsed.selects.len(), 1);
    }
}
