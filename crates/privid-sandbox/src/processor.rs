//! The analyst-processor interface.
//!
//! A [`ChunkProcessor`] is the Rust analogue of the paper's `model.py`: it
//! receives a single chunk of video (frames of observations) and returns
//! rows for the intermediate table. Privid places **no trust** in it — the
//! sandbox coerces, truncates and defaults its output — so implementations
//! are free to behave arbitrarily, including adversarially.
//!
//! Processors consume [`ChunkView`]s: borrowed, zero-copy views of one
//! materialized chunk. The view borrows the camera name and object
//! attributes from the scene, so handing a chunk to a processor costs
//! nothing beyond the materialization itself — the property the parallel
//! execution engine relies on to fan chunks out across workers.
//!
//! A [`ProcessorFactory`] creates one fresh processor per chunk. This is how
//! the "no state across chunks" requirement of Appendix B is enforced in a
//! single-process simulation: each chunk gets a brand-new instance, so the
//! only way to carry information between chunks would be through global
//! state, which the fault-injection tests cover explicitly. Factories are
//! `Sync` so a single factory can instantiate processors from many worker
//! threads at once.

use privid_query::Value;
use privid_video::ChunkView;

/// An analyst-provided per-chunk processor.
pub trait ChunkProcessor: Send {
    /// Human-readable name (the "executable" name in PROCESS statements).
    fn name(&self) -> &str;

    /// Process one chunk into raw table rows. Rows may be malformed; the
    /// sandbox coerces them to the declared schema.
    fn process(&mut self, chunk: &ChunkView<'_>) -> Vec<Vec<Value>>;

    /// Simulated wall-clock cost of processing this chunk, in seconds.
    /// The sandbox compares this against the PROCESS statement's `TIMEOUT`
    /// and substitutes the default row when it is exceeded — the simulation
    /// analogue of killing a real process at its deadline.
    fn simulated_cost_secs(&self, chunk: &ChunkView<'_>) -> f64 {
        // A cheap default: linear in the number of frames.
        0.001 * chunk.frame_count() as f64
    }
}

/// Creates a fresh processor instance for every chunk.
pub trait ProcessorFactory: Sync {
    /// Instantiate a new processor (no state shared with prior instances).
    fn create(&self) -> Box<dyn ChunkProcessor>;
}

/// Any `Fn() -> Box<dyn ChunkProcessor>` closure is a factory.
impl<F> ProcessorFactory for F
where
    F: Fn() -> Box<dyn ChunkProcessor> + Sync,
{
    fn create(&self) -> Box<dyn ChunkProcessor> {
        self()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privid_video::{Chunk, ChunkBuffer, TimeSpan};

    struct Nop;
    impl ChunkProcessor for Nop {
        fn name(&self) -> &str {
            "nop"
        }
        fn process(&mut self, _chunk: &ChunkView<'_>) -> Vec<Vec<Value>> {
            Vec::new()
        }
    }

    #[test]
    fn closures_are_factories() {
        let factory = || Box::new(Nop) as Box<dyn ChunkProcessor>;
        let mut p = factory.create();
        let chunk = Chunk::empty(0, "c", TimeSpan::from_secs(5.0));
        let mut buf = ChunkBuffer::new();
        let view = buf.load_chunk(&chunk);
        assert_eq!(p.name(), "nop");
        assert!(p.process(&view).is_empty());
        assert!(p.simulated_cost_secs(&view) >= 0.0);
    }
}
