//! Adversarial and faulty processors used to verify that the sandbox contract
//! holds no matter what the analyst's code does.
//!
//! These model the misbehaviours Appendix B worries about: flooding the table
//! with extra rows, crashing, running past the time budget, emitting rows
//! that do not match the schema, and attempting to smuggle state between
//! chunk instantiations through shared memory.

use crate::processor::ChunkProcessor;
use privid_query::Value;
use privid_video::ChunkView;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Emits far more rows than `max_rows` allows; the sandbox must truncate.
#[derive(Debug, Clone)]
pub struct RowFloodProcessor {
    /// Number of rows to emit per chunk.
    pub rows: usize,
}

impl ChunkProcessor for RowFloodProcessor {
    fn name(&self) -> &str {
        "row_flood"
    }

    fn process(&mut self, _chunk: &ChunkView<'_>) -> Vec<Vec<Value>> {
        (0..self.rows).map(|i| vec![Value::num(i as f64), Value::str("flood")]).collect()
    }
}

/// Panics while processing; the sandbox must substitute the default row.
#[derive(Debug, Clone, Default)]
pub struct CrashingProcessor;

impl ChunkProcessor for CrashingProcessor {
    fn name(&self) -> &str {
        "crasher"
    }

    fn process(&mut self, _chunk: &ChunkView<'_>) -> Vec<Vec<Value>> {
        panic!("analyst executable crashed");
    }
}

/// Reports a simulated execution time that scales with what it "saw" in the
/// chunk — the timing side channel Appendix B forbids. The sandbox must both
/// time it out (when over budget) and charge a fixed time regardless.
#[derive(Debug, Clone)]
pub struct SlowProcessor {
    /// Base simulated cost in seconds.
    pub base_secs: f64,
    /// Additional seconds per observation in the chunk (the "leak").
    pub per_observation_secs: f64,
}

impl ChunkProcessor for SlowProcessor {
    fn name(&self) -> &str {
        "slow"
    }

    fn process(&mut self, chunk: &ChunkView<'_>) -> Vec<Vec<Value>> {
        vec![vec![Value::num(chunk.observation_count() as f64)]]
    }

    fn simulated_cost_secs(&self, chunk: &ChunkView<'_>) -> f64 {
        self.base_secs + self.per_observation_secs * chunk.observation_count() as f64
    }
}

/// Tries to carry information between chunk executions through shared state
/// (an `Arc<AtomicU64>` captured by every instance). With a correct factory
/// discipline each chunk gets a fresh processor, but the *shared counter*
/// would still leak across instances — the test verifies the sandbox output
/// for a chunk is identical whether or not other chunks were processed first,
/// i.e. that any such state cannot influence per-chunk outputs accepted by
/// Privid. The processor emits the counter value, so if cross-chunk state
/// leaked into outputs the discrepancy is directly visible.
#[derive(Debug, Clone)]
pub struct StatefulCheater {
    /// Shared counter, incremented once per processed chunk.
    pub shared: Arc<AtomicU64>,
}

impl StatefulCheater {
    /// Create a cheater with a fresh shared counter.
    pub fn new() -> Self {
        StatefulCheater { shared: Arc::new(AtomicU64::new(0)) }
    }
}

impl Default for StatefulCheater {
    fn default() -> Self {
        Self::new()
    }
}

impl ChunkProcessor for StatefulCheater {
    fn name(&self) -> &str {
        "stateful_cheater"
    }

    fn process(&mut self, _chunk: &ChunkView<'_>) -> Vec<Vec<Value>> {
        let seen_before = self.shared.fetch_add(1, Ordering::SeqCst);
        vec![vec![Value::num(seen_before as f64)]]
    }
}

/// Emits rows whose cells have the wrong types and too many columns; the
/// sandbox's schema coercion must normalize them.
#[derive(Debug, Clone, Default)]
pub struct MalformedRowProcessor;

impl ChunkProcessor for MalformedRowProcessor {
    fn name(&self) -> &str {
        "malformed"
    }

    fn process(&mut self, _chunk: &ChunkView<'_>) -> Vec<Vec<Value>> {
        vec![
            vec![Value::num(1.0), Value::num(2.0), Value::num(3.0), Value::num(4.0), Value::num(5.0)],
            vec![Value::str("only-one-cell")],
            vec![],
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privid_video::{Chunk, ChunkBuffer, TimeSpan};

    fn empty_chunk() -> Chunk {
        Chunk::empty(0, "cam", TimeSpan::from_secs(5.0))
    }

    #[test]
    fn flood_and_malformed_emit_raw_rows() {
        let chunk = empty_chunk();
        let mut buf = ChunkBuffer::new();
        let view = buf.load_chunk(&chunk);
        let mut flood = RowFloodProcessor { rows: 1000 };
        assert_eq!(flood.process(&view).len(), 1000);
        let mut bad = MalformedRowProcessor;
        assert_eq!(bad.process(&view).len(), 3);
    }

    #[test]
    fn cheater_counts_across_instances() {
        let chunk = empty_chunk();
        let mut buf = ChunkBuffer::new();
        let view = buf.load_chunk(&chunk);
        let cheater = StatefulCheater::new();
        let mut a = cheater.clone();
        let mut b = cheater.clone();
        assert_eq!(a.process(&view)[0][0], Value::num(0.0));
        assert_eq!(b.process(&view)[0][0], Value::num(1.0), "shared state visible without a sandbox");
    }

    #[test]
    fn slow_processor_cost_depends_on_content() {
        let chunk = empty_chunk();
        let mut buf = ChunkBuffer::new();
        let view = buf.load_chunk(&chunk);
        let p = SlowProcessor { base_secs: 0.5, per_observation_secs: 0.1 };
        assert_eq!(p.simulated_cost_secs(&view), 0.5);
    }

    #[test]
    #[should_panic]
    fn crasher_panics() {
        let chunk = empty_chunk();
        let mut buf = ChunkBuffer::new();
        let view = buf.load_chunk(&chunk);
        CrashingProcessor.process(&view);
    }
}
