//! Built-in analyst processors implementing the paper's query case studies.
//!
//! Each processor is the Rust analogue of one analyst-supplied executable:
//! it sees a single chunk and emits rows for that chunk. The mapping to the
//! paper's queries (Table 3):
//!
//! | processor | queries | rows emitted per chunk |
//! |---|---|---|
//! | [`UniqueEntrantProcessor`] | Q1–Q3 | one row per private object that *enters* during the chunk |
//! | [`CarTableProcessor`] | Listing 1 | `(plate, color, speed)` per car observed |
//! | [`TreeBloomProcessor`] | Q7–Q9 | `(bloomed%)` per tree observed |
//! | [`RedLightProcessor`] | Q10–Q12 | `(red_secs)` for the traffic light |
//! | [`DirectionFilterProcessor`] | Q13 | one row per person entering during the chunk and moving north |
//! | [`TaxiShiftProcessor`] | Q4–Q6 | `(taxi, day, hour, camera)` per taxi sighted |

use crate::processor::ChunkProcessor;
use privid_query::Value;
use privid_video::{ChunkView, ObjectClass};

/// Emits one row (`count = 1`) per private object of the target class that
/// enters the scene during the chunk. "Enters during the chunk" means the
/// object is not visible in the chunk's first frame — the de-duplication
/// idiom §6.2 describes for objects without globally unique identifiers.
#[derive(Debug, Clone)]
pub struct UniqueEntrantProcessor {
    /// Class of objects to count (e.g. Person for Q1/Q3, Car for Q2).
    pub class: ObjectClass,
}

impl UniqueEntrantProcessor {
    /// Count people.
    pub fn people() -> Self {
        UniqueEntrantProcessor { class: ObjectClass::Person }
    }

    /// Count cars.
    pub fn cars() -> Self {
        UniqueEntrantProcessor { class: ObjectClass::Car }
    }
}

impl ChunkProcessor for UniqueEntrantProcessor {
    fn name(&self) -> &str {
        "unique_entrant_counter"
    }

    fn process(&mut self, chunk: &ChunkView<'_>) -> Vec<Vec<Value>> {
        chunk
            .objects()
            .filter(|info| info.class == self.class && !info.visible_in_first_frame)
            .map(|_| vec![Value::num(1.0)])
            .collect()
    }
}

/// Listing 1's `model.py`: emits `(plate, color, speed)` for every car
/// observed anywhere in the chunk.
#[derive(Debug, Clone, Default)]
pub struct CarTableProcessor;

impl ChunkProcessor for CarTableProcessor {
    fn name(&self) -> &str {
        "car_table"
    }

    fn process(&mut self, chunk: &ChunkView<'_>) -> Vec<Vec<Value>> {
        chunk
            .objects()
            .filter(|info| info.class == ObjectClass::Car)
            .map(|info| {
                let attrs = info.attributes();
                vec![
                    Value::str(attrs.plate.clone()),
                    Value::str(attrs.color.map(|c| c.label()).unwrap_or("")),
                    Value::num(attrs.speed_kmh),
                ]
            })
            .collect()
    }
}

/// Q7–Q9: emits one row per tree observed with 100 if it has bloomed and 0
/// otherwise, so `AVG(range(bloomed, 0, 100))` is the blooming percentage.
#[derive(Debug, Clone, Default)]
pub struct TreeBloomProcessor;

impl ChunkProcessor for TreeBloomProcessor {
    fn name(&self) -> &str {
        "tree_bloom"
    }

    fn process(&mut self, chunk: &ChunkView<'_>) -> Vec<Vec<Value>> {
        chunk
            .objects()
            .filter(|info| info.class == ObjectClass::Tree)
            .map(|info| vec![Value::num(if info.attributes().has_leaves { 100.0 } else { 0.0 })])
            .collect()
    }
}

/// Q10–Q12: emits the observed red-phase duration of the traffic light in the
/// chunk (one row per light; normally exactly one).
#[derive(Debug, Clone, Default)]
pub struct RedLightProcessor;

impl ChunkProcessor for RedLightProcessor {
    fn name(&self) -> &str {
        "red_light_duration"
    }

    fn process(&mut self, chunk: &ChunkView<'_>) -> Vec<Vec<Value>> {
        chunk
            .objects()
            .filter(|info| info.class == ObjectClass::TrafficLight)
            .map(|info| vec![Value::num(info.attributes().red_light_duration)])
            .collect()
    }
}

/// Q13 (stateful query): emits one row per person that *enters during the
/// chunk* and whose within-chunk motion is northwards by at least
/// `min_northward_px` pixels. Detecting direction needs enough temporal
/// context inside a single chunk, which is why Q13 uses a larger chunk size.
#[derive(Debug, Clone)]
pub struct DirectionFilterProcessor {
    /// Minimum net northward motion, in pixels, to count the person.
    pub min_northward_px: f64,
}

impl Default for DirectionFilterProcessor {
    fn default() -> Self {
        DirectionFilterProcessor { min_northward_px: 50.0 }
    }
}

impl ChunkProcessor for DirectionFilterProcessor {
    fn name(&self) -> &str {
        "northbound_entrants"
    }

    fn process(&mut self, chunk: &ChunkView<'_>) -> Vec<Vec<Value>> {
        chunk
            .objects()
            .filter(|info| {
                info.class == ObjectClass::Person
                    && !info.visible_in_first_frame
                    && info.net_dy <= -self.min_northward_px
            })
            .map(|_| vec![Value::num(1.0)])
            .collect()
    }
}

/// Q4–Q6 (Porto): emits `(taxi, day, hour, camera)` for every taxi sighted in
/// the chunk. Day and hour are derived from the chunk's own start timestamp,
/// which Privid provides and trusts.
#[derive(Debug, Clone, Default)]
pub struct TaxiShiftProcessor;

impl ChunkProcessor for TaxiShiftProcessor {
    fn name(&self) -> &str {
        "taxi_shift"
    }

    fn process(&mut self, chunk: &ChunkView<'_>) -> Vec<Vec<Value>> {
        let start = chunk.span().start.as_secs();
        let day = (start / 86_400.0).floor();
        let hour = ((start % 86_400.0) / 3600.0).floor();
        chunk
            .objects()
            .filter(|info| info.class == ObjectClass::Car)
            .map(|info| {
                vec![
                    Value::str(info.attributes().plate.clone()),
                    Value::num(day),
                    Value::num(hour),
                    Value::str(chunk.camera()),
                ]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privid_video::{split_scene, Chunk, ChunkBuffer, ChunkSpec, SceneConfig, SceneGenerator, TimeSpan};

    fn chunks(minutes: f64, chunk_secs: f64) -> Vec<Chunk> {
        let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.5)).generate();
        split_scene(&scene, &TimeSpan::from_secs(minutes * 60.0), &ChunkSpec::contiguous(chunk_secs), None)
    }

    #[test]
    fn unique_entrants_counted_once_across_chunks() {
        let chunks = chunks(20.0, 5.0);
        let mut buf = ChunkBuffer::new();
        let mut total = 0usize;
        for c in &chunks {
            total += UniqueEntrantProcessor::people().process(&buf.load_chunk(c)).len();
        }
        // Compare against ground truth: people whose first appearance starts
        // within the window (each contributes one entrance per segment start
        // inside the window).
        let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.5)).generate();
        let gt: usize = scene
            .objects
            .iter()
            .filter(|o| o.class == ObjectClass::Person)
            .flat_map(|o| o.segments.iter())
            .filter(|s| s.span.start.as_secs() < 20.0 * 60.0 && s.span.start.as_secs() > 0.0)
            .count();
        // Entrants whose first appearance coincides with a chunk's first frame
        // are indistinguishable from objects already present, so the chunked
        // count undershoots by roughly frame_duration/chunk_duration (20% at
        // 1 fps / 5 s chunks); the error shrinks with higher frame rates.
        let err = (total as f64 - gt as f64).abs() / gt.max(1) as f64;
        assert!(err < 0.3, "chunked entrant count {total} should approximate ground truth {gt}");
        assert!(total <= gt, "chunking can only miss entrants, never invent them");
    }

    #[test]
    fn car_table_rows_have_three_columns() {
        let scene = SceneGenerator::new(SceneConfig::highway().with_duration_hours(0.1).with_arrival_scale(0.1)).generate();
        let chunks = split_scene(&scene, &TimeSpan::from_secs(120.0), &ChunkSpec::contiguous(5.0), None);
        let mut p = CarTableProcessor;
        let mut buf = ChunkBuffer::new();
        let rows: Vec<_> = chunks.iter().flat_map(|c| p.process(&buf.load_chunk(c))).collect();
        assert!(!rows.is_empty());
        for r in &rows {
            assert_eq!(r.len(), 3);
            assert!(r[0].as_str().unwrap().starts_with("PLT"));
            assert!(r[2].as_num().unwrap() >= 30.0);
        }
    }

    #[test]
    fn tree_bloom_matches_config_fraction() {
        let chunks = chunks(1.0, 30.0);
        let mut p = TreeBloomProcessor;
        let mut buf = ChunkBuffer::new();
        let rows = p.process(&buf.load_chunk(&chunks[0]));
        assert_eq!(rows.len(), 15, "campus has 15 trees, all visible in every chunk");
        let avg: f64 = rows.iter().map(|r| r[0].as_num().unwrap()).sum::<f64>() / rows.len() as f64;
        assert_eq!(avg, 100.0, "campus preset: every tree has leaves");
    }

    #[test]
    fn red_light_duration_reported() {
        let chunks = chunks(1.0, 30.0);
        let mut buf = ChunkBuffer::new();
        let rows = RedLightProcessor.process(&buf.load_chunk(&chunks[0]));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::num(75.0), "campus red phase is 75 s (Table 3 Q10)");
    }

    #[test]
    fn direction_filter_selects_subset_of_entrants() {
        // Large chunks so within-chunk motion is observable.
        let chunks = chunks(20.0, 120.0);
        let mut buf = ChunkBuffer::new();
        let mut all = 0usize;
        let mut north = 0usize;
        for c in &chunks {
            let view = buf.load_chunk(c);
            all += UniqueEntrantProcessor::people().process(&view).len();
            north += DirectionFilterProcessor::default().process(&view).len();
        }
        assert!(north > 0, "some pedestrians head north");
        assert!(north < all, "the direction filter must exclude southbound/eastbound people");
    }

    #[test]
    fn taxi_rows_carry_trusted_day_and_hour() {
        let porto = privid_video::PortoDataset::generate(privid_video::PortoConfig::small());
        let scene = porto.camera_scene(0);
        let window = TimeSpan::between_secs(0.0, 6.0 * 3600.0);
        let chunks = split_scene(&scene, &window, &ChunkSpec::contiguous(60.0), None);
        let mut p = TaxiShiftProcessor;
        let mut buf = ChunkBuffer::new();
        let rows: Vec<_> = chunks.iter().flat_map(|c| p.process(&buf.load_chunk(c))).collect();
        assert!(!rows.is_empty());
        for r in &rows {
            assert_eq!(r[1], Value::num(0.0), "all within day 0");
            assert!(r[2].as_num().unwrap() < 24.0);
            assert_eq!(r[3].as_str().unwrap(), "porto0");
        }
    }
}
