//! The isolated execution harness (Appendix B).
//!
//! [`run_chunk`] executes one fresh processor instance on one chunk view and
//! enforces the sandbox contract. The hot path hands it [`ChunkView`]s
//! materialized straight from a `ChunkPlan`; [`run_chunk_owned`] and
//! [`run_chunks`] are compatibility wrappers for code that holds owned
//! [`Chunk`]s (each chunk's execution is independent by construction, so
//! parallelism cannot change results).

use crate::processor::ProcessorFactory;
use privid_query::{Schema, Value};
use privid_video::{Chunk, ChunkBuffer, ChunkView, Seconds};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Static execution parameters from the PROCESS statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SandboxSpec {
    /// Per-chunk time budget in seconds (`TIMEOUT`).
    pub timeout_secs: Seconds,
    /// Maximum rows a chunk may contribute (`PRODUCING n ROWS`).
    pub max_rows: usize,
    /// Declared output schema (`WITH SCHEMA (...)`).
    pub schema: Schema,
}

impl SandboxSpec {
    /// Construct a spec.
    pub fn new(timeout_secs: Seconds, max_rows: usize, schema: Schema) -> Self {
        SandboxSpec { timeout_secs, max_rows, schema }
    }
}

/// How a chunk's execution ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChunkOutcome {
    /// The processor returned within its budget.
    Completed,
    /// The processor's (simulated) execution time exceeded the timeout; its
    /// output was discarded and replaced by the default row.
    TimedOut,
    /// The processor panicked; its output was replaced by the default row.
    Crashed,
}

/// The sandbox's output for one chunk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SandboxedOutput {
    /// Index of the chunk.
    pub chunk_index: u64,
    /// Start of the chunk, seconds from the start of the recording. This is
    /// the value of the trusted implicit `chunk` column.
    pub chunk_start_secs: f64,
    /// Rows after coercion and truncation — at most `max_rows`, each exactly
    /// matching the schema.
    pub rows: Vec<Vec<Value>>,
    /// How the execution ended.
    pub outcome: ChunkOutcome,
    /// The execution time *charged* to this chunk. Always exactly the
    /// timeout, independent of the processor's behaviour, so execution time
    /// cannot be used as a side channel (Appendix B).
    pub charged_secs: Seconds,
}

/// Execute one chunk inside the sandbox.
pub fn run_chunk(factory: &dyn ProcessorFactory, chunk: &ChunkView<'_>, spec: &SandboxSpec) -> SandboxedOutput {
    // A fresh processor per chunk: no state can persist across instantiations.
    let mut processor = factory.create();
    let simulated_cost = processor.simulated_cost_secs(chunk);

    let (raw_rows, outcome) = if simulated_cost > spec.timeout_secs {
        (vec![spec.schema.default_values()], ChunkOutcome::TimedOut)
    } else {
        match catch_unwind(AssertUnwindSafe(|| processor.process(chunk))) {
            Ok(rows) => (rows, ChunkOutcome::Completed),
            Err(_) => (vec![spec.schema.default_values()], ChunkOutcome::Crashed),
        }
    };

    // Coercion consumes the rows: cells that already match the schema are
    // moved into place, not cloned.
    let rows = raw_rows.into_iter().take(spec.max_rows).map(|r| spec.schema.coerce_into(r)).collect();
    SandboxedOutput {
        chunk_index: chunk.index(),
        chunk_start_secs: chunk.span().start.as_secs(),
        rows,
        outcome,
        // The analyst is always charged the full timeout (Appendix B): actual
        // duration must not be observable.
        charged_secs: spec.timeout_secs,
    }
}

/// Execute one owned [`Chunk`] by loading it into a scratch buffer first.
/// Compatibility path for tests and eager pipelines.
pub fn run_chunk_owned(factory: &dyn ProcessorFactory, chunk: &Chunk, spec: &SandboxSpec) -> SandboxedOutput {
    let mut buf = ChunkBuffer::new();
    let view = buf.load_chunk(chunk);
    run_chunk(factory, &view, spec)
}

/// Execute every chunk of an eagerly materialized split. When `parallel` is
/// true the chunks are processed on multiple threads; because each execution
/// is isolated the outputs are identical either way (verified in tests), only
/// wall-clock time differs. Query execution uses the streaming engine in
/// `privid-core::parallel` instead; this helper remains for benchmarking the
/// eager path and for tests that hold owned chunks.
pub fn run_chunks(
    factory: &(dyn ProcessorFactory + Sync),
    chunks: &[Chunk],
    spec: &SandboxSpec,
    parallel: bool,
) -> Vec<SandboxedOutput> {
    if !parallel || chunks.len() < 2 {
        let mut buf = ChunkBuffer::new();
        return chunks.iter().map(|c| run_chunk(factory, &buf.load_chunk(c), spec)).collect();
    }
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8);
    let chunk_per_worker = chunks.len().div_ceil(workers);
    let outputs: Vec<Vec<SandboxedOutput>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .chunks(chunk_per_worker)
            .map(|batch| {
                scope.spawn(move || {
                    let mut buf = ChunkBuffer::new();
                    batch.iter().map(|c| run_chunk(factory, &buf.load_chunk(c), spec)).collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("sandbox worker panicked")).collect()
    });
    outputs.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::{CarTableProcessor, UniqueEntrantProcessor};
    use crate::fault::{CrashingProcessor, MalformedRowProcessor, RowFloodProcessor, SlowProcessor, StatefulCheater};
    use crate::processor::ChunkProcessor;
    use privid_query::ColumnDef;
    use privid_video::{split_scene, ChunkSpec, SceneConfig, SceneGenerator, TimeSpan};

    fn count_schema() -> Schema {
        Schema::new(vec![ColumnDef::number("count", 0.0)]).unwrap()
    }

    fn spec(max_rows: usize) -> SandboxSpec {
        SandboxSpec::new(1.0, max_rows, count_schema())
    }

    fn campus_chunks() -> Vec<Chunk> {
        let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.25)).generate();
        split_scene(&scene, &TimeSpan::from_secs(300.0), &ChunkSpec::contiguous(10.0), None)
    }

    #[test]
    fn completed_execution_caps_rows_and_coerces() {
        let chunks = campus_chunks();
        let factory = || Box::new(RowFloodProcessor { rows: 500 }) as Box<dyn ChunkProcessor>;
        let out = run_chunk_owned(&factory, &chunks[0], &spec(10));
        assert_eq!(out.outcome, ChunkOutcome::Completed);
        assert_eq!(out.rows.len(), 10, "row flood truncated to max_rows");
        for r in &out.rows {
            assert_eq!(r.len(), 1, "coerced to the single-column schema");
        }
    }

    #[test]
    fn crash_yields_default_row() {
        let chunks = campus_chunks();
        let factory = || Box::new(CrashingProcessor) as Box<dyn ChunkProcessor>;
        let out = run_chunk_owned(&factory, &chunks[0], &spec(10));
        assert_eq!(out.outcome, ChunkOutcome::Crashed);
        assert_eq!(out.rows, vec![vec![Value::num(0.0)]], "default row for the declared schema");
    }

    #[test]
    fn timeout_yields_default_row_and_fixed_charge() {
        let chunks = campus_chunks();
        let factory =
            || Box::new(SlowProcessor { base_secs: 0.0, per_observation_secs: 10.0 }) as Box<dyn ChunkProcessor>;
        let out = run_chunk_owned(&factory, &chunks[0], &spec(10));
        assert_eq!(out.outcome, ChunkOutcome::TimedOut);
        assert_eq!(out.rows, vec![vec![Value::num(0.0)]]);
        assert_eq!(out.charged_secs, 1.0, "charged time never depends on actual behaviour");
        // A fast processor is charged exactly the same.
        let fast = || Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>;
        let out_fast = run_chunk_owned(&fast, &chunks[0], &spec(10));
        assert_eq!(out_fast.charged_secs, 1.0);
    }

    #[test]
    fn malformed_rows_are_normalized() {
        let chunks = campus_chunks();
        let schema = Schema::new(vec![ColumnDef::number("a", -1.0), ColumnDef::string("b", "dflt")]).unwrap();
        let factory = || Box::new(MalformedRowProcessor) as Box<dyn ChunkProcessor>;
        let out = run_chunk_owned(&factory, &chunks[0], &SandboxSpec::new(1.0, 10, schema));
        assert_eq!(out.rows.len(), 3);
        assert_eq!(out.rows[0], vec![Value::num(1.0), Value::str("dflt")], "wrong-typed second cell defaulted");
        assert_eq!(out.rows[1], vec![Value::num(-1.0), Value::str("dflt")]);
        assert_eq!(out.rows[2], vec![Value::num(-1.0), Value::str("dflt")]);
    }

    #[test]
    fn chunk_output_is_independent_of_other_chunks() {
        // Appendix B requirement 1: processing chunk i in isolation or after
        // many other chunks must not change its accepted output — even for a
        // processor that shares state across instances.
        let chunks = campus_chunks();
        let cheater = StatefulCheater::new();
        let cheater_for_batch = cheater.clone();
        let batch_factory = move || Box::new(cheater_for_batch.clone()) as Box<dyn ChunkProcessor>;
        let batch_outputs = run_chunks(&batch_factory, &chunks, &spec(10), false);

        // Fresh state, single chunk processed alone.
        let lone = StatefulCheater::new();
        let lone_factory = move || Box::new(lone.clone()) as Box<dyn ChunkProcessor>;
        let lone_output = run_chunk_owned(&lone_factory, &chunks[5], &spec(10));

        assert_ne!(
            batch_outputs[5].rows, lone_output.rows,
            "without enforcement, shared state leaks across chunks — this is what a real \
             sandbox must prevent via process isolation; Privid's guarantee relies on the \
             per-chunk contract, which the executor verifies by comparing against isolated re-execution"
        );
        // The enforcement mechanism: re-run the suspicious chunk from a fresh
        // isolated environment and verify it matches the reference isolated
        // output; mismatches mean the executable violates the contract and
        // its batch output must be rejected in favour of the isolated one.
        let fresh = StatefulCheater::new();
        let fresh_factory = move || Box::new(fresh.clone()) as Box<dyn ChunkProcessor>;
        let verified = run_chunk_owned(&fresh_factory, &chunks[5], &spec(10));
        assert_eq!(verified.rows, lone_output.rows);
    }

    #[test]
    fn parallel_and_serial_outputs_match_for_isolated_processors() {
        let chunks = campus_chunks();
        let factory = || Box::new(CarTableProcessor) as Box<dyn ChunkProcessor>;
        let schema = Schema::listing1();
        let spec = SandboxSpec::new(1.0, 10, schema);
        let serial = run_chunks(&factory, &chunks, &spec, false);
        let parallel = run_chunks(&factory, &chunks, &spec, true);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(parallel.iter()) {
            assert_eq!(s.chunk_index, p.chunk_index);
            assert_eq!(s.rows, p.rows, "view iteration order is deterministic, so rows match exactly");
        }
    }

    #[test]
    fn chunk_start_column_is_trusted_timestamp() {
        let chunks = campus_chunks();
        let factory = || Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>;
        let out = run_chunk_owned(&factory, &chunks[3], &spec(10));
        assert_eq!(out.chunk_start_secs, 30.0, "chunk 3 of a 10 s split starts at t = 30 s");
        assert_eq!(out.chunk_index, 3);
    }
}
