//! # privid-sandbox
//!
//! Isolated execution of analyst-provided chunk processors.
//!
//! In the paper, `PROCESS` executables are arbitrary binaries run inside an
//! isolated environment whose contract (Appendix B) is what makes the
//! sensitivity bound of §6.3 sound:
//!
//! 1. the output for chunk *i* depends only on chunk *i* (no cross-chunk
//!    state, no network, no shared files),
//! 2. each instantiation produces at most `max_rows` rows matching the
//!    declared schema, or the schema's default row if it crashes or exceeds
//!    its fixed time budget,
//! 3. nothing about the execution other than those rows (time, resource
//!    usage) is observable to the analyst.
//!
//! Here "executables" are implementations of the [`ChunkProcessor`] trait and
//! the isolated environment is the [`sandbox`] harness, which enforces the
//! same contract: a fresh processor instance per chunk (no state), panics and
//! simulated timeouts replaced by default rows, row caps and schema coercion
//! applied before anything reaches the intermediate table, and a fixed
//! *charged* execution time regardless of actual behaviour. The [`fault`]
//! module provides adversarial processors (row flooders, crashers, slow
//! processors, cross-chunk cheaters) used to test that the contract holds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builtin;
pub mod fault;
pub mod processor;
pub mod sandbox;

pub use builtin::{
    CarTableProcessor, DirectionFilterProcessor, RedLightProcessor, TaxiShiftProcessor, TreeBloomProcessor,
    UniqueEntrantProcessor,
};
pub use fault::{CrashingProcessor, MalformedRowProcessor, RowFloodProcessor, SlowProcessor, StatefulCheater};
pub use processor::{ChunkProcessor, ProcessorFactory};
pub use sandbox::{run_chunk, run_chunk_owned, run_chunks, ChunkOutcome, SandboxSpec, SandboxedOutput};
