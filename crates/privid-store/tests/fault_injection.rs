//! Fault-injection suite: adversarial corruption of the WAL and snapshot
//! files, each recovering to a safe — never under-debited — state with a
//! distinct, typed outcome:
//!
//! * truncated tail record → `RecoveryEvent::TornTailTruncated`, state = last boundary
//! * bit-flipped checksum (mid-log) → `StoreError::ChecksumMismatch`, recovery refuses
//! * bit-flipped checksum (tail) → `StoreError::ChecksumMismatch` (a complete record is
//!   never silently dropped — its debit may back a release)
//! * duplicated record on replay → `RecoveryEvent::StaleRecordSkipped`, state unchanged
//! * crash between snapshot write and log truncation → stale log records skipped
//!   idempotently, state unchanged
//! * missing record (sequence gap) → `StoreError::InvalidRecord`, recovery refuses
//! * corrupted snapshot → `StoreError::SnapshotCorrupt`, recovery refuses

use privid_store::{
    DebitRange, FaultKind, FaultOp, FaultVfs, FsyncPolicy, Record, RecoveryEvent, RecoveryWarning, StoreError,
    StoreState, Vfs, WalOptions, WalStore,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("privid-fault-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn live_cam(name: &str, epsilon: f64) -> Record {
    Record::RegisterCamera {
        name: name.into(),
        generation: 0,
        live: true,
        slot_secs: 1.0,
        duration_secs: 0.0,
        initial_epsilon: epsilon,
        rho_secs: 30.0,
        k: 2,
    }
}

/// Build a store with a camera, an extension and two debits; returns the
/// state after each record so tests can compare against exact boundaries.
fn seeded_store(dir: &PathBuf) -> Vec<StoreState> {
    let (store, _) =
        WalStore::open_with(dir, FsyncPolicy::Always, WalOptions { snapshot_every: u64::MAX }).unwrap();
    let records = vec![
        live_cam("c", 1.0),
        Record::Extend { camera: "c".into(), live_edge_secs: 30.0 },
        Record::Admit { epsilon: 0.25, debits: vec![DebitRange { camera: "c".into(), lo: 0, hi: 10 }] },
        Record::Admit { epsilon: 0.5, debits: vec![DebitRange { camera: "c".into(), lo: 15, hi: 30 }] },
    ];
    let mut states = vec![store.state()];
    for r in records {
        store.append(r).unwrap();
        states.push(store.state());
    }
    states
}

/// Byte offsets of every record boundary in a log.
fn boundaries(log: &[u8]) -> Vec<usize> {
    let mut offsets = vec![0usize];
    let mut offset = 0usize;
    while log.len() - offset >= 8 {
        let len = u32::from_le_bytes(log[offset..offset + 4].try_into().unwrap()) as usize;
        if len == 0 || log.len() < offset + 8 + len {
            break;
        }
        offset += 8 + len;
        offsets.push(offset);
    }
    offsets
}

#[test]
fn truncated_tail_record_recovers_the_last_boundary() {
    let dir = temp_dir("torn");
    let states = seeded_store(&dir);
    let log = std::fs::read(dir.join("wal.log")).unwrap();
    let bounds = boundaries(&log);
    assert_eq!(bounds.len(), 5, "four records plus offset zero");
    // Cut the log inside the final record at several depths, including a cut
    // that leaves only a partial frame header.
    let last_start = bounds[3];
    for cut in [last_start + 1, last_start + 7, last_start + 8, bounds[4] - 1] {
        std::fs::write(dir.join("wal.log"), &log[..cut]).unwrap();
        let (_s, recovered) = WalStore::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(
            recovered.state, states[3],
            "cut at byte {cut}: the torn final debit never happened, earlier debits all survive"
        );
        assert_eq!(recovered.report.torn_tail_bytes, (cut - last_start) as u64);
        assert!(
            recovered
                .report
                .events
                .iter()
                .any(|e| matches!(e, RecoveryEvent::TornTailTruncated { offset, .. } if *offset == last_start as u64)),
            "cut at byte {cut} must report the truncation"
        );
        // The recovered slot budgets: first debit applied, torn one not.
        assert_eq!(recovered.state.cameras["c"].slots[5], 0.75);
        assert_eq!(recovered.state.cameras["c"].slots[20], 1.0, "the torn debit must not be half-applied");
        // The truncation is persisted: a second recovery is clean.
        let (_s2, again) = WalStore::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(again.report.torn_tail_bytes, 0);
        assert_eq!(again.state, states[3]);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flipped_record_is_a_typed_refusal() {
    let dir = temp_dir("flip");
    let states = seeded_store(&dir);
    let pristine = std::fs::read(dir.join("wal.log")).unwrap();
    let bounds = boundaries(&pristine);
    // Flip one payload bit in (a) a mid-log record and (b) the final record:
    // both are *complete* records, so recovery must refuse rather than guess
    // — truncating a completed debit could under-debit a released query.
    for record_index in [1usize, 3] {
        let mut log = pristine.clone();
        let payload_byte = bounds[record_index] + 8 + 3;
        log[payload_byte] ^= 0x10;
        std::fs::write(dir.join("wal.log"), &log).unwrap();
        match WalStore::open(&dir, FsyncPolicy::Always) {
            Err(StoreError::ChecksumMismatch { offset }) => {
                assert_eq!(offset, bounds[record_index] as u64, "the corrupt frame is identified");
            }
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
    }
    // A flip in the CRC field itself is the same refusal.
    let mut log = pristine.clone();
    log[bounds[2] + 5] ^= 0x01;
    std::fs::write(dir.join("wal.log"), &log).unwrap();
    assert!(matches!(WalStore::open(&dir, FsyncPolicy::Always), Err(StoreError::ChecksumMismatch { .. })));
    // Restoring the pristine log recovers normally — nothing was truncated
    // by the refused attempts.
    std::fs::write(dir.join("wal.log"), &pristine).unwrap();
    let (_s, recovered) = WalStore::open(&dir, FsyncPolicy::Always).unwrap();
    assert_eq!(recovered.state, states[4]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_length_field_is_a_typed_refusal_not_a_silent_truncation() {
    // Regression (review): the length prefix was not covered by the CRC, so
    // a mid-log bit flip in it masqueraded as a torn tail — silently and
    // permanently truncating every later record, including durable debits
    // backing already-released answers (an under-debit).
    let dir = temp_dir("lenflip");
    seeded_store(&dir);
    let pristine = std::fs::read(dir.join("wal.log")).unwrap();
    let bounds = boundaries(&pristine);
    // (a) An in-range flip misdirects the parser; the CRC (which covers the
    // length field) catches it.
    let mut log = pristine.clone();
    log[bounds[1]] ^= 0x01;
    std::fs::write(dir.join("wal.log"), &log).unwrap();
    match WalStore::open(&dir, FsyncPolicy::Always) {
        Err(StoreError::ChecksumMismatch { offset }) => assert_eq!(offset, bounds[1] as u64),
        other => panic!("expected ChecksumMismatch for an in-range length flip, got {other:?}"),
    }
    // (b) An absurd length (beyond any plausible record) is refused as an
    // invalid record — a sequential append can never produce one, so this is
    // corruption, not a torn tail.
    let mut log = pristine.clone();
    log[bounds[1]..bounds[1] + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    std::fs::write(dir.join("wal.log"), &log).unwrap();
    match WalStore::open(&dir, FsyncPolicy::Always) {
        Err(StoreError::InvalidRecord { reason, .. }) => assert!(reason.contains("implausible"), "got: {reason}"),
        other => panic!("expected InvalidRecord for an absurd length, got {other:?}"),
    }
    // (c) A zero length with a non-zero CRC is likewise corruption, not the
    // all-zero preallocated-tail pattern.
    let mut log = pristine.clone();
    log[bounds[1]..bounds[1] + 4].copy_from_slice(&0u32.to_le_bytes());
    std::fs::write(dir.join("wal.log"), &log).unwrap();
    assert!(matches!(WalStore::open(&dir, FsyncPolicy::Always), Err(StoreError::InvalidRecord { .. })));
    // In every case the refusal left the (corrupt) log untouched for
    // operator forensics — nothing was truncated.
    assert_eq!(std::fs::read(dir.join("wal.log")).unwrap().len(), pristine.len());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failed_append_leaves_no_partial_frame_behind() {
    // Regression (review): a failed append used to leave its partial bytes
    // in the log with the store still usable, so later successful appends
    // landed after garbage. The append path now truncates back to the last
    // good frame on error; here we verify the bookkeeping survives a
    // checkpoint + further appends (the log_len watermark must track both).
    let dir = temp_dir("appendlen");
    let (store, _) = WalStore::open_with(&dir, FsyncPolicy::Never, WalOptions { snapshot_every: u64::MAX }).unwrap();
    store.append(live_cam("c", 1.0)).unwrap();
    store.checkpoint().unwrap();
    store.append(Record::Extend { camera: "c".into(), live_edge_secs: 5.0 }).unwrap();
    // A record the shadow refuses must not reach disk at all — once durable
    // it would fail every future recovery.
    let before = std::fs::read(dir.join("wal.log")).unwrap();
    assert!(matches!(
        store.append(Record::Extend { camera: "ghost".into(), live_edge_secs: 9.0 }),
        Err(StoreError::InvalidRecord { .. })
    ));
    assert_eq!(std::fs::read(dir.join("wal.log")).unwrap(), before, "refused record never touched the log");
    store.append(Record::Extend { camera: "c".into(), live_edge_secs: 7.0 }).unwrap();
    drop(store);
    let (_s, recovered) = WalStore::open(&dir, FsyncPolicy::Never).unwrap();
    assert_eq!(recovered.state.cameras["c"].duration_secs, 7.0);
    assert_eq!(recovered.report.records_replayed, 2, "both post-checkpoint extends recovered");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn duplicated_records_replay_idempotently() {
    let dir = temp_dir("dup");
    let states = seeded_store(&dir);
    let log = std::fs::read(dir.join("wal.log")).unwrap();
    let bounds = boundaries(&log);
    // Re-append a copy of the final record (a retried write that actually
    // made it to disk twice), and a copy of an *earlier* record after it.
    let mut doubled = log.clone();
    doubled.extend_from_slice(&log[bounds[3]..bounds[4]]);
    doubled.extend_from_slice(&log[bounds[1]..bounds[2]]);
    std::fs::write(dir.join("wal.log"), &doubled).unwrap();
    let (_s, recovered) = WalStore::open(&dir, FsyncPolicy::Always).unwrap();
    assert_eq!(recovered.state, states[4], "duplicates must not double-debit (or double-extend)");
    assert_eq!(recovered.report.stale_skipped, 2);
    assert!(recovered.report.events.iter().any(|e| matches!(e, RecoveryEvent::StaleRecordSkipped { seq: 4 })));
    assert_eq!(recovered.state.cameras["c"].slots[20], 0.5, "debited once, not twice");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_between_snapshot_write_and_log_truncation_is_idempotent() {
    let dir = temp_dir("snapcrash");
    let states = seeded_store(&dir);
    // Simulate the crash window: take the snapshot, then put the pre-snapshot
    // log back — exactly what disk holds if the process dies after the
    // snapshot rename but before the log truncation.
    let pre_snapshot_log = std::fs::read(dir.join("wal.log")).unwrap();
    {
        let (store, _) = WalStore::open(&dir, FsyncPolicy::Always).unwrap();
        store.checkpoint().unwrap();
    }
    assert_eq!(std::fs::metadata(dir.join("wal.log")).unwrap().len(), 0, "checkpoint truncated the log");
    std::fs::write(dir.join("wal.log"), &pre_snapshot_log).unwrap();
    let (store, recovered) = WalStore::open(&dir, FsyncPolicy::Always).unwrap();
    assert_eq!(recovered.state, states[4], "every logged record is already in the snapshot: skip, don't re-apply");
    assert_eq!(recovered.report.snapshot_seq, 4);
    assert_eq!(recovered.report.records_replayed, 0);
    assert_eq!(recovered.report.stale_skipped, 4);
    assert_eq!(recovered.state.cameras["c"].slots[5], 0.75, "debits applied exactly once");
    // Life goes on: new appends continue the sequence past the snapshot.
    store.append(Record::Extend { camera: "c".into(), live_edge_secs: 45.0 }).unwrap();
    assert_eq!(store.next_seq(), 6);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sequence_gap_is_a_typed_refusal() {
    let dir = temp_dir("gap");
    seeded_store(&dir);
    let log = std::fs::read(dir.join("wal.log")).unwrap();
    let bounds = boundaries(&log);
    // Splice record 2 out entirely: records 3 and 4 remain, so a debit
    // vanished from history. Truncation-style recovery would under-debit.
    let mut spliced = log[..bounds[1]].to_vec();
    spliced.extend_from_slice(&log[bounds[2]..]);
    std::fs::write(dir.join("wal.log"), &spliced).unwrap();
    match WalStore::open(&dir, FsyncPolicy::Always) {
        Err(StoreError::InvalidRecord { reason, .. }) => {
            assert!(reason.contains("sequence gap"), "got: {reason}")
        }
        other => panic!("expected a sequence-gap refusal, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_snapshot_is_a_typed_refusal() {
    let dir = temp_dir("badsnap");
    seeded_store(&dir);
    {
        let (store, _) = WalStore::open(&dir, FsyncPolicy::Always).unwrap();
        store.checkpoint().unwrap();
    }
    let pristine = std::fs::read(dir.join("snapshot.bin")).unwrap();
    // Flip a payload bit.
    let mut bad = pristine.clone();
    bad[10] ^= 0x40;
    std::fs::write(dir.join("snapshot.bin"), &bad).unwrap();
    assert!(matches!(WalStore::open(&dir, FsyncPolicy::Always), Err(StoreError::SnapshotCorrupt { .. })));
    // Truncate it mid-record.
    std::fs::write(dir.join("snapshot.bin"), &pristine[..pristine.len() - 3]).unwrap();
    assert!(matches!(WalStore::open(&dir, FsyncPolicy::Always), Err(StoreError::SnapshotCorrupt { .. })));
    // Valid frames but no header first: also refused.
    std::fs::write(dir.join("snapshot.bin"), b"").unwrap();
    assert!(matches!(WalStore::open(&dir, FsyncPolicy::Always), Err(StoreError::SnapshotCorrupt { .. })));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn zero_length_garbage_tail_truncates() {
    let dir = temp_dir("zeros");
    let states = seeded_store(&dir);
    // Preallocated-but-unwritten tail bytes (all zeros) read as a zero
    // length field: a torn append, not corruption.
    let mut log = std::fs::read(dir.join("wal.log")).unwrap();
    let valid_len = log.len();
    log.extend_from_slice(&[0u8; 32]);
    std::fs::write(dir.join("wal.log"), &log).unwrap();
    let (_s, recovered) = WalStore::open(&dir, FsyncPolicy::Always).unwrap();
    assert_eq!(recovered.state, states[4]);
    assert_eq!(recovered.report.torn_tail_bytes, 32);
    assert_eq!(std::fs::metadata(dir.join("wal.log")).unwrap().len(), valid_len as u64);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Open a store over a fresh [`FaultVfs`] (passthrough until scripted).
fn faulty_store(dir: &PathBuf) -> (Arc<FaultVfs>, WalStore) {
    let fault = FaultVfs::over_std();
    let (store, _recovered) = WalStore::open_with_vfs(
        dir,
        FsyncPolicy::Always,
        WalOptions { snapshot_every: u64::MAX },
        fault.clone() as Arc<dyn Vfs>,
    )
    .unwrap();
    (fault, store)
}

#[test]
fn disk_full_append_is_transient_and_leaves_the_log_intact() {
    let dir = temp_dir("enospc");
    let (fault, store) = faulty_store(&dir);
    store.append(live_cam("c", 1.0)).unwrap();
    store.append(Record::Extend { camera: "c".into(), live_edge_secs: 30.0 }).unwrap();
    let before_state = store.state();
    let before_log = std::fs::read(dir.join("wal.log")).unwrap();

    // The disk fills: every write from here on fails with ENOSPC.
    fault.fail_from(FaultOp::Write, 1, FaultKind::Enospc);
    let admit = Record::Admit { epsilon: 0.25, debits: vec![DebitRange { camera: "c".into(), lo: 0, hi: 10 }] };
    let err = store.append(admit.clone()).unwrap_err();
    assert!(matches!(err, StoreError::Io { .. }), "ENOSPC is an I/O refusal, got {err:?}");
    assert!(err.is_transient(), "disk-full is retryable once space frees");
    assert!(store.is_wedged().is_none(), "the rolled-back append leaves the store serviceable");
    assert_eq!(store.state(), before_state, "the refused admission must not be debited");
    assert_eq!(std::fs::read(dir.join("wal.log")).unwrap(), before_log, "no partial frame on disk");

    // Retrying while the disk is still full fails the same way.
    assert!(store.append(admit.clone()).is_err());
    assert!(fault.injected() >= 2);

    // Space frees: the very same admission lands, and a fresh recovery of
    // the directory agrees byte-for-byte with the live shadow.
    fault.heal();
    store.append(admit).unwrap();
    let (_s2, again) =
        WalStore::open_with(&dir, FsyncPolicy::Always, WalOptions { snapshot_every: u64::MAX }).unwrap();
    assert_eq!(again.state, store.state());
    assert!(again.report.events.is_empty(), "nothing torn, nothing truncated");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failed_snapshot_stages_preserve_the_previous_snapshot_and_log() {
    let dir = temp_dir("snap-crash");
    let (fault, store) = faulty_store(&dir);
    store.append(live_cam("c", 1.0)).unwrap();
    store.append(Record::Extend { camera: "c".into(), live_edge_secs: 30.0 }).unwrap();
    store.checkpoint().unwrap(); // snapshot.bin now holds camera + extension
    store.append(Record::Admit { epsilon: 0.25, debits: vec![DebitRange { camera: "c".into(), lo: 0, hi: 10 }] })
        .unwrap();
    let live = store.state();
    let snap_before = std::fs::read(dir.join("snapshot.bin")).unwrap();
    let log_before = std::fs::read(dir.join("wal.log")).unwrap();

    // Case 1: the disk fills while streaming the staged snapshot.tmp.
    fault.fail_from(FaultOp::Write, 1, FaultKind::Enospc);
    let err = store.checkpoint().unwrap_err();
    assert!(matches!(err, StoreError::Io { .. }) && err.is_transient(), "got {err:?}");

    // Case 2: fsync of the staged file fails — the bytes may never have
    // left the page cache, so the stage must be abandoned, not renamed.
    fault.heal();
    fault.fail_from(FaultOp::Fsync, 1, FaultKind::FsyncFailure);
    let err = store.checkpoint().unwrap_err();
    assert!(matches!(err, StoreError::Io { .. }) && err.is_transient(), "got {err:?}");

    // Case 3: the rename of the fully-synced stage fails.
    fault.heal();
    fault.fail_from(FaultOp::Rename, 1, FaultKind::RenameFailure);
    let err = store.checkpoint().unwrap_err();
    assert!(matches!(err, StoreError::Io { .. }) && err.is_transient(), "got {err:?}");
    fault.heal();

    // After every failure mode: the previous snapshot and the log survive
    // bit-for-bit, no staged file lingers, and the store is not wedged.
    assert_eq!(std::fs::read(dir.join("snapshot.bin")).unwrap(), snap_before);
    assert_eq!(std::fs::read(dir.join("wal.log")).unwrap(), log_before);
    assert!(!dir.join("snapshot.tmp").exists(), "failed stages are removed");
    assert!(store.is_wedged().is_none());

    // Case 4: a literal crash after staging leaves an orphan snapshot.tmp.
    // Recovery sweeps it and rebuilds from snapshot.bin + wal.log alone.
    std::fs::write(dir.join("snapshot.tmp"), b"half-written stage from a crashed checkpoint").unwrap();
    let (_s2, rec) =
        WalStore::open_with(&dir, FsyncPolicy::Always, WalOptions { snapshot_every: u64::MAX }).unwrap();
    assert_eq!(rec.state, live, "the orphan stage must not shadow the real snapshot");
    assert!(!dir.join("snapshot.tmp").exists(), "orphan staged snapshot is swept on open");
    drop(_s2);

    // Healed, the original handle checkpoints successfully and a fresh
    // recovery sees the post-checkpoint state.
    store.checkpoint().unwrap();
    assert_ne!(std::fs::read(dir.join("snapshot.bin")).unwrap(), snap_before);
    let (_s3, rec2) =
        WalStore::open_with(&dir, FsyncPolicy::Always, WalOptions { snapshot_every: u64::MAX }).unwrap();
    assert_eq!(rec2.state, live);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dir_sync_failure_after_snapshot_rename_warns_instead_of_being_swallowed() {
    let dir = temp_dir("dirsync");
    let (fault, store) = faulty_store(&dir);
    store.append(live_cam("c", 1.0)).unwrap();
    store.append(Record::Extend { camera: "c".into(), live_edge_secs: 30.0 }).unwrap();

    // The rename of snapshot.tmp → snapshot.bin lands, but the directory
    // fsync that would make the rename durable fails. The checkpoint is
    // still usable (idempotent-seq replay keeps a resurrected old snapshot
    // correct), so it succeeds — but it must leave a typed trace, not a
    // silently swallowed error.
    fault.fail_nth(FaultOp::DirSync, 1, FaultKind::FsyncFailure);
    store.checkpoint().unwrap();
    assert_eq!(fault.injected(), 1, "the dir-sync fault fired");
    assert!(store.is_wedged().is_none(), "a dir-sync failure is survivable, not a wedge");
    assert!(store.last_checkpoint_error().is_none(), "the checkpoint itself completed");

    let warnings = store.drain_warnings();
    assert_eq!(warnings.len(), 1);
    match &warnings[0] {
        RecoveryWarning::SnapshotDirSyncFailed { dir: d, error } => {
            assert!(d.contains("dirsync"), "warning names the store dir, got {d}");
            assert!(!error.is_empty());
        }
        other => panic!("expected SnapshotDirSyncFailed, got {other:?}"),
    }
    assert!(store.drain_warnings().is_empty(), "draining resets the buffer");

    // Healed, the next checkpoint fsyncs the directory and accrues nothing.
    store.append(Record::Extend { camera: "c".into(), live_edge_secs: 60.0 }).unwrap();
    store.checkpoint().unwrap();
    assert!(store.drain_warnings().is_empty());

    // The snapshot the un-fsynced rename installed is intact and recovery
    // reads it back byte-for-byte equal to the live shadow.
    let (_s2, rec) =
        WalStore::open_with(&dir, FsyncPolicy::Always, WalOptions { snapshot_every: u64::MAX }).unwrap();
    assert_eq!(rec.state, store.state());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failed_fsync_wedges_instead_of_reporting_durability() {
    let dir = temp_dir("fsync-wedge");
    let (fault, store) = faulty_store(&dir);
    store.append(live_cam("c", 1.0)).unwrap(); // fsync #1
    store.append(Record::Extend { camera: "c".into(), live_edge_secs: 30.0 }).unwrap(); // fsync #2
    store.append(Record::Admit { epsilon: 0.25, debits: vec![DebitRange { camera: "c".into(), lo: 0, hi: 10 }] })
        .unwrap(); // fsync #3
    let before = store.state();

    // The next append's fsync fails: the frame's durability is unknowable
    // (the kernel may have dropped the dirty pages), so the store must NOT
    // report success and must NOT debit the in-memory shadow.
    fault.fail_nth(FaultOp::Fsync, 4, FaultKind::FsyncFailure);
    let admit = Record::Admit { epsilon: 0.5, debits: vec![DebitRange { camera: "c".into(), lo: 15, hi: 30 }] };
    let err = store.append(admit).unwrap_err();
    assert!(matches!(err, StoreError::Wedged { .. }), "a failed fsync must wedge, not report durability: {err:?}");
    assert!(!err.is_transient(), "retry-and-assume-durable is exactly the bug this guards against");
    assert_eq!(store.state(), before, "the unacknowledged debit must not reach the shadow");
    assert!(store.is_wedged().is_some());

    // Every further mutation refuses until supervised recovery re-reads the
    // log — the scripted fault is already spent, so these would "succeed" if
    // the store forgot the failed fsync.
    let extend = Record::Extend { camera: "c".into(), live_edge_secs: 45.0 };
    assert!(matches!(store.append(extend.clone()), Err(StoreError::Wedged { .. })));
    assert!(matches!(store.checkpoint(), Err(StoreError::Wedged { .. })));

    // Supervised recovery: reopen() re-reads the directory and adopts
    // whatever actually reached disk.
    fault.heal();
    let recovered = store.reopen().unwrap();
    assert!(
        recovered.report.events.iter().any(|e| matches!(e, RecoveryEvent::StoreReopened { .. })),
        "reopen must be visible in the recovery report: {:?}",
        recovered.report.events
    );
    assert!(store.is_wedged().is_none(), "reopen clears the wedge");

    // The write itself succeeded before the fsync failed, so recovery may
    // legitimately adopt the frame. Over-debit is the allowed direction:
    // recovered remaining budget is never above the pre-fault shadow.
    let rec_cam = &recovered.state.cameras["c"];
    let pre_cam = &before.cameras["c"];
    assert_eq!(rec_cam.slots.len(), pre_cam.slots.len());
    for (i, slot) in rec_cam.slots.iter().enumerate() {
        assert!(*slot <= pre_cam.slots[i], "slot {i} recovered above the acknowledged spend: under-debit");
    }

    // Appends resume with unbroken sequence numbers: a final fresh recovery
    // replays the whole log without a gap refusal.
    store.append(extend).unwrap();
    let (_s2, again) =
        WalStore::open_with(&dir, FsyncPolicy::Always, WalOptions { snapshot_every: u64::MAX }).unwrap();
    assert_eq!(again.state, store.state());
    assert_eq!(again.state.cameras["c"].duration_secs, 45.0);
    let _ = std::fs::remove_dir_all(&dir);
}
