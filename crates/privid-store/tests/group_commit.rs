//! Group-commit semantics under concurrency: batching actually merges
//! fsyncs, a doomed batch wedges every waiter (no false acks), and — the
//! satellite-6 regression — per-shard WAL sequence numbers stay strictly
//! monotonic even when waiters redeem their commit tickets out of order,
//! proven by replaying a 100k-record sharded log.

use privid_store::{
    CommitTicket, FaultKind, FaultOp, FaultVfs, FsyncPolicy, Record, StdVfs, StoreError, Vfs, VfsFile, WalOptions,
    WalStore,
};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("privid-group-commit-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn register_cam(store: &WalStore, name: &str, duration_secs: f64) {
    store
        .append(Record::RegisterCamera {
            name: name.into(),
            generation: 0,
            live: false,
            slot_secs: 1.0,
            duration_secs,
            initial_epsilon: 1000.0,
            rho_secs: 5.0,
            k: 2,
        })
        .expect("camera registration journals");
}

fn admit(i: u64) -> Record {
    Record::Admit {
        epsilon: 1e-6,
        debits: vec![privid_store::DebitRange { camera: "cam".into(), lo: i % 60, hi: i % 60 + 1 }],
    }
}

// ---------------------------------------------------------------------------
// Batching: staged records flush with far fewer fsyncs than records.

/// A [`Vfs`] passthrough that counts data fsyncs on the files it opens.
#[derive(Debug)]
struct CountingVfs {
    inner: StdVfs,
    syncs: Arc<AtomicU64>,
}

struct CountingFile {
    inner: Box<dyn VfsFile>,
    syncs: Arc<AtomicU64>,
}

impl VfsFile for CountingFile {
    fn read_to_end(&mut self, buf: &mut Vec<u8>) -> io::Result<usize> {
        self.inner.read_to_end(buf)
    }
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.inner.write_all(buf)
    }
    fn sync_data(&mut self) -> io::Result<()> {
        self.syncs.fetch_add(1, Ordering::Relaxed);
        self.inner.sync_data()
    }
    fn sync_all(&mut self) -> io::Result<()> {
        self.syncs.fetch_add(1, Ordering::Relaxed);
        self.inner.sync_all()
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.inner.set_len(len)
    }
    fn seek(&mut self, pos: io::SeekFrom) -> io::Result<u64> {
        self.inner.seek(pos)
    }
}

impl Vfs for CountingVfs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(CountingFile { inner: self.inner.open_rw(path)?, syncs: Arc::clone(&self.syncs) }))
    }
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(CountingFile { inner: self.inner.create(path)?, syncs: Arc::clone(&self.syncs) }))
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.inner.rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }
    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        self.inner.sync_dir(path)
    }
}

#[test]
fn staged_records_flush_as_one_batch_not_one_fsync_per_record() {
    let dir = temp_dir("batch");
    let syncs = Arc::new(AtomicU64::new(0));
    let vfs = Arc::new(CountingVfs { inner: StdVfs, syncs: Arc::clone(&syncs) });
    let (store, _) =
        WalStore::open_with_vfs(&dir, FsyncPolicy::Always, WalOptions { snapshot_every: u64::MAX }, vfs).unwrap();
    register_cam(&store, "cam", 100.0);

    let before = syncs.load(Ordering::Relaxed);
    // Stage 100 records before redeeming a single ticket: the first waiter
    // elects itself leader and flushes the whole backlog in one write+fsync.
    let tickets: Vec<CommitTicket> = (0..100).map(|i| store.stage(admit(i)).expect("stage")).collect();
    for t in tickets {
        store.wait_commit(t).expect("staged record commits durably");
    }
    let flushes = syncs.load(Ordering::Relaxed) - before;
    assert!(flushes < 10, "100 staged records must group-commit, not fsync per record: {flushes} fsyncs");

    // Every record is in the shadow state exactly once.
    let spent: f64 = store.state().cameras["cam"].slots.iter().map(|s| 1000.0 - s).sum();
    assert!((spent - 100.0 * 1e-6).abs() < 1e-9, "all 100 admits applied exactly once: {spent}");
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// A doomed batch: the fsync fails, every waiter sees Wedged, nobody is
// falsely acked, and the shadow state is untouched.

#[test]
fn a_failed_batch_fsync_wedges_every_waiter_with_no_false_acks() {
    let dir = temp_dir("doomed");
    let fault = FaultVfs::over_std();
    let (store, _) =
        WalStore::open_with_vfs(&dir, FsyncPolicy::Always, WalOptions { snapshot_every: u64::MAX }, fault.clone())
            .unwrap();
    register_cam(&store, "cam", 100.0);
    let seq_before = store.next_seq();
    let state_before = store.state();

    // Every fsync from here on fails: the next batch is doomed.
    fault.fail_from(FaultOp::Fsync, 1, FaultKind::Eio);
    let tickets: Vec<CommitTicket> = (0..16).map(|i| store.stage(admit(i)).expect("staging is in-memory")).collect();
    for t in tickets {
        match store.wait_commit(t) {
            Err(StoreError::Wedged { .. }) => {}
            other => panic!("a waiter in a doomed batch must see Wedged, got {other:?}"),
        }
    }
    assert!(store.is_wedged().is_some(), "a failed fsync wedges the store");
    assert_eq!(store.state(), state_before, "no record of the doomed batch may reach the shadow state");

    // The wedge is sticky — staging anew refuses too…
    assert!(matches!(store.stage(admit(0)), Err(StoreError::Wedged { .. })));

    // …until a supervised reopen re-reads disk. The doomed frames reached
    // the kernel (only their fsync failed), so recovery *adopts* them — an
    // over-debit relative to the Wedged acks the waiters saw, which is the
    // safe direction: never-under-debit.
    fault.heal();
    let recovered = store.reopen().expect("healed reopen succeeds");
    assert_eq!(
        recovered.report.records_replayed,
        17, // the registration + all 16 doomed admits the log turned out to hold
        "reopen adopts exactly what survived on disk"
    );
    let spent = |s: &privid_store::StoreState| -> f64 { s.cameras["cam"].slots.iter().map(|v| 1000.0 - v).sum() };
    let over_debit = spent(&recovered.state) - spent(&state_before);
    assert!(
        (over_debit - 16.0 * 1e-6).abs() < 1e-9,
        "the surviving frames debit the durable ledger even though no waiter was acked: {over_debit}"
    );
    assert_eq!(store.next_seq(), seq_before + 16, "the sequence resumes past the adopted frames, gap-free");
    store.append(admit(0)).expect("the store serves again after reopen");
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Satellite 6: out-of-order waiter redemption never disturbs the per-shard
// WAL sequence — proven by replaying a 100k-record sharded log.

#[test]
fn out_of_order_waiters_keep_per_shard_seqs_monotonic_across_a_100k_record_replay() {
    const SHARDS: usize = 4;
    const THREADS_PER_SHARD: usize = 4;
    const RECORDS_PER_THREAD: u64 = 6_250; // 4 × 4 × 6_250 = 100_000
    let root = temp_dir("sharded-replay");

    let stores: Vec<Arc<WalStore>> = (0..SHARDS)
        .map(|k| {
            let (store, _) = WalStore::open_with_vfs(
                root.join(format!("shard-{k}")),
                FsyncPolicy::Never,
                WalOptions { snapshot_every: u64::MAX },
                Arc::new(StdVfs),
            )
            .expect("shard store opens");
            register_cam(&store, "cam", 100.0);
            Arc::new(store)
        })
        .collect();

    // Per shard, several threads stage runs of records and then redeem their
    // tickets in *reverse* order — the waiter arrival order at the flush loop
    // is deliberately decoupled from the staged (seq) order.
    let mut handles = Vec::new();
    for store in &stores {
        for t in 0..THREADS_PER_SHARD {
            let store = Arc::clone(store);
            handles.push(std::thread::spawn(move || {
                let mut tickets: Vec<CommitTicket> = Vec::with_capacity(64);
                for i in 0..RECORDS_PER_THREAD {
                    tickets.push(store.stage(admit(t as u64 * RECORDS_PER_THREAD + i)).expect("stage"));
                    // Redeem in reverse once a run accumulates, interleaving
                    // batches whose waiters arrive out of seq order.
                    if tickets.len() == 64 {
                        for ticket in tickets.drain(..).rev() {
                            store.wait_commit(ticket).expect("commit");
                        }
                    }
                }
                for ticket in tickets.into_iter().rev() {
                    store.wait_commit(ticket).expect("commit");
                }
            }));
        }
    }
    for h in handles {
        h.join().expect("no shard writer may panic");
    }

    // Replay every shard. Idempotent replay skips any record whose seq is
    // not strictly above the applied watermark as stale — so zero stale
    // skips with the full count replayed *is* strict per-shard monotonicity.
    let per_shard = (THREADS_PER_SHARD as u64) * RECORDS_PER_THREAD + 1; // + the registration
    for (k, store) in stores.into_iter().enumerate() {
        let expected_next = store.next_seq();
        let expected_state = store.state();
        drop(store);
        let (reopened, recovered) = WalStore::open_with_vfs(
            root.join(format!("shard-{k}")),
            FsyncPolicy::Never,
            WalOptions { snapshot_every: u64::MAX },
            Arc::new(StdVfs),
        )
        .expect("shard replay succeeds");
        assert_eq!(
            recovered.report.records_replayed, per_shard,
            "shard {k}: every record must replay exactly once"
        );
        assert_eq!(
            recovered.report.stale_skipped, 0,
            "shard {k}: a stale skip means a non-monotonic seq reached the log"
        );
        assert_eq!(recovered.report.torn_tail_bytes, 0, "shard {k}: the log must end on a record boundary");
        assert_eq!(reopened.next_seq(), expected_next, "shard {k}: replay resumes the exact sequence");
        assert_eq!(reopened.state(), expected_state, "shard {k}: replay rebuilds the exact shadow state");
    }
    let _ = std::fs::remove_dir_all(&root);
}
