//! WAL record types and their wire encoding.
//!
//! Every record travels in a length-prefixed, checksummed frame:
//!
//! ```text
//! [len: u32 LE] [crc32(payload): u32 LE] [payload: len bytes]
//! ```
//!
//! The payload is UTF-8 text: `seq|tag|field|field|…`. Numeric fields are
//! decimal; `f64` fields are the **hexadecimal IEEE-754 bit pattern**
//! (`f64::to_bits`), so a value round-trips bit-for-bit — recovery must
//! rebuild ledger slots *exactly*, not to within a formatting epsilon.
//! String fields escape the separator (`|` → `\p`), backslash (`\` → `\\`)
//! and newlines (`\n`/`\r` → `\n`/`\r` escapes), so standing-query text —
//! which contains both — embeds safely.

use std::fmt::Write as _;

/// Frame header size: 4-byte length + 4-byte CRC.
pub const FRAME_HEADER: usize = 8;

/// Upper bound on one record's payload. A 100k-slot snapshot record is
/// ~1.7 MB; anything near this bound indicates a corrupt length field.
pub const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// One slot-range debit inside an [`Record::Admit`] record: the half-open
/// slot interval `[lo, hi)` of `camera`'s ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DebitRange {
    /// The debited camera.
    pub camera: String,
    /// First debited slot index (inclusive).
    pub lo: u64,
    /// One past the last debited slot index (exclusive).
    pub hi: u64,
}

/// A durable event in the privacy ledger's life.
///
/// The first eight variants are appended by the serving layer; the last
/// three exist only inside snapshot files (they rebuild state wholesale
/// instead of replaying history).
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A camera was registered (fixed recording or live). Carries everything
    /// needed to rebuild its ledger shape and policy parameters.
    RegisterCamera {
        /// Camera name.
        name: String,
        /// Registration generation (cache-key tag).
        generation: u64,
        /// True for a live (append-only) recording.
        live: bool,
        /// Ledger slot resolution, seconds.
        slot_secs: f64,
        /// Recorded duration at registration (0 for live cameras).
        duration_secs: f64,
        /// Per-frame ε budget each slot is born with.
        initial_epsilon: f64,
        /// Policy ρ, seconds.
        rho_secs: f64,
        /// Policy K.
        k: u32,
    },
    /// A mask was published for a camera.
    RegisterMask {
        /// The camera.
        camera: String,
        /// The mask id.
        mask_id: String,
        /// Registration generation.
        generation: u64,
        /// The mask's reduced ρ, seconds.
        rho_secs: f64,
    },
    /// A processor executable was attached.
    RegisterProcessor {
        /// Processor name.
        name: String,
        /// Registration generation.
        generation: u64,
    },
    /// A live camera's edge advanced. Logged *before* the in-memory ledger
    /// grows, so a crash in between at worst recovers a timeline slightly
    /// ahead of the replayable footage (queries there fail retryably).
    Extend {
        /// The live camera.
        camera: String,
        /// The new live edge, seconds.
        live_edge_secs: f64,
    },
    /// One admission's debits, as a single atomic record covering every
    /// ledger the query touches. Appended under the admission gate after the
    /// budget checks pass and **before any slot is debited** — the WAL never
    /// under-states spending relative to what an analyst could have received.
    Admit {
        /// ε debited from every listed slot range.
        epsilon: f64,
        /// The debited slot ranges, one per admitted window.
        debits: Vec<DebitRange>,
    },
    /// A rollback credit (the rare all-or-nothing unwind when a caller hands
    /// the admission controller overlapping requests on one ledger). Appended
    /// *after* the in-memory credit, so a crash in between leaves the
    /// recovered ledger over-debited — never under.
    Credit {
        /// The credited camera.
        camera: String,
        /// First credited slot (inclusive).
        lo: u64,
        /// One past the last credited slot (exclusive).
        hi: u64,
        /// ε returned to every slot in the range.
        epsilon: f64,
    },
    /// A standing query was registered.
    RegisterStanding {
        /// Standing-query name.
        name: String,
        /// Base noise seed (firing k draws from `base_seed + k`).
        base_seed: u64,
        /// Window period, seconds.
        period_secs: f64,
        /// The prototype query text (re-parsed on recovery).
        text: String,
    },
    /// Standing window `window_index` finished executing; recovery re-arms
    /// the query at the *next* window. Appended after the firing (whose own
    /// debits are durable via [`Record::Admit`]), so a crash in between can
    /// only re-fire the window — a conservative double debit, never an
    /// under-debit.
    StandingFired {
        /// Standing-query name.
        name: String,
        /// Index of the completed window.
        window_index: u64,
    },
    /// Snapshot-only: the sequence number and generation watermark the
    /// snapshot captures. Log records with `seq <= last_seq` are stale and
    /// skipped on replay (idempotence).
    SnapshotHeader {
        /// Sequence number of the last record folded into the snapshot.
        last_seq: u64,
        /// Next registration generation.
        next_generation: u64,
    },
    /// Snapshot-only: a contiguous run of a camera ledger's exact per-slot
    /// budgets. Long ledgers are chunked into several runs so no single
    /// frame can approach [`MAX_PAYLOAD`] — a snapshot that cannot be read
    /// back would strand the store.
    SlotValues {
        /// The camera.
        camera: String,
        /// Index of the first slot in this run.
        offset: u64,
        /// Remaining ε per slot from `offset`, bit-exact.
        slots: Vec<f64>,
    },
    /// Snapshot-only: a standing query's firing high-watermark.
    ArmStanding {
        /// Standing-query name.
        name: String,
        /// Start of the next unfired window, seconds.
        next_start_secs: f64,
    },
}

// ---- field codecs -------------------------------------------------------------------

fn esc(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '|' => out.push_str("\\p"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
}

fn unesc(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('p') => out.push('|'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            other => return Err(format!("bad escape \\{other:?}")),
        }
    }
    Ok(out)
}

fn enc_f64(out: &mut String, v: f64) {
    let _ = write!(out, "{:016x}", v.to_bits());
}

fn dec_f64(s: &str) -> Result<f64, String> {
    u64::from_str_radix(s, 16).map(f64::from_bits).map_err(|e| format!("bad f64 bits {s:?}: {e}"))
}

fn dec_u64(s: &str) -> Result<u64, String> {
    s.parse().map_err(|e| format!("bad integer {s:?}: {e}"))
}

// ---- payload codec ------------------------------------------------------------------

/// Encode `(seq, record)` into a payload (no frame).
pub fn encode_payload(seq: u64, record: &Record) -> String {
    let mut p = String::with_capacity(64);
    let _ = write!(p, "{seq}");
    match record {
        Record::RegisterCamera { name, generation, live, slot_secs, duration_secs, initial_epsilon, rho_secs, k } => {
            p.push_str("|cam|");
            esc(&mut p, name);
            let _ = write!(p, "|{generation}|{}|", u8::from(*live));
            enc_f64(&mut p, *slot_secs);
            p.push('|');
            enc_f64(&mut p, *duration_secs);
            p.push('|');
            enc_f64(&mut p, *initial_epsilon);
            p.push('|');
            enc_f64(&mut p, *rho_secs);
            let _ = write!(p, "|{k}");
        }
        Record::RegisterMask { camera, mask_id, generation, rho_secs } => {
            p.push_str("|mask|");
            esc(&mut p, camera);
            p.push('|');
            esc(&mut p, mask_id);
            let _ = write!(p, "|{generation}|");
            enc_f64(&mut p, *rho_secs);
        }
        Record::RegisterProcessor { name, generation } => {
            p.push_str("|proc|");
            esc(&mut p, name);
            let _ = write!(p, "|{generation}");
        }
        Record::Extend { camera, live_edge_secs } => {
            p.push_str("|extend|");
            esc(&mut p, camera);
            p.push('|');
            enc_f64(&mut p, *live_edge_secs);
        }
        Record::Admit { epsilon, debits } => {
            p.push_str("|admit|");
            enc_f64(&mut p, *epsilon);
            let _ = write!(p, "|{}", debits.len());
            for d in debits {
                p.push('|');
                esc(&mut p, &d.camera);
                let _ = write!(p, "|{}|{}", d.lo, d.hi);
            }
        }
        Record::Credit { camera, lo, hi, epsilon } => {
            p.push_str("|credit|");
            esc(&mut p, camera);
            let _ = write!(p, "|{lo}|{hi}|");
            enc_f64(&mut p, *epsilon);
        }
        Record::RegisterStanding { name, base_seed, period_secs, text } => {
            p.push_str("|standing|");
            esc(&mut p, name);
            let _ = write!(p, "|{base_seed}|");
            enc_f64(&mut p, *period_secs);
            p.push('|');
            esc(&mut p, text);
        }
        Record::StandingFired { name, window_index } => {
            p.push_str("|fired|");
            esc(&mut p, name);
            let _ = write!(p, "|{window_index}");
        }
        Record::SnapshotHeader { last_seq, next_generation } => {
            p.push_str("|snaphdr");
            let _ = write!(p, "|{last_seq}|{next_generation}");
        }
        Record::SlotValues { camera, offset, slots } => {
            p.push_str("|slots|");
            esc(&mut p, camera);
            let _ = write!(p, "|{offset}");
            for s in slots {
                p.push('|');
                enc_f64(&mut p, *s);
            }
        }
        Record::ArmStanding { name, next_start_secs } => {
            p.push_str("|arm|");
            esc(&mut p, name);
            p.push('|');
            enc_f64(&mut p, *next_start_secs);
        }
    }
    p
}

/// Checked field access: corrupt or truncated payloads must surface as
/// typed decode errors, never as slice panics.
fn field<'a>(fields: &[&'a str], i: usize) -> Result<&'a str, String> {
    fields.get(i).copied().ok_or_else(|| format!("payload missing field {i}"))
}

/// Decode a payload back into `(seq, record)`.
pub fn decode_payload(payload: &[u8]) -> Result<(u64, Record), String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("payload is not UTF-8: {e}"))?;
    let fields: Vec<&str> = text.split('|').collect();
    if fields.len() < 2 {
        return Err("payload has no tag".into());
    }
    let seq = dec_u64(field(&fields, 0)?)?;
    let need = |n: usize| -> Result<(), String> {
        if fields.len() == n {
            Ok(())
        } else {
            Err(format!("tag {} expects {} fields, got {}", field(&fields, 1)?, n, fields.len()))
        }
    };
    let record = match field(&fields, 1)? {
        "cam" => {
            need(10)?;
            Record::RegisterCamera {
                name: unesc(field(&fields, 2)?)?,
                generation: dec_u64(field(&fields, 3)?)?,
                live: field(&fields, 4)? == "1",
                slot_secs: dec_f64(field(&fields, 5)?)?,
                duration_secs: dec_f64(field(&fields, 6)?)?,
                initial_epsilon: dec_f64(field(&fields, 7)?)?,
                rho_secs: dec_f64(field(&fields, 8)?)?,
                k: dec_u64(field(&fields, 9)?)? as u32,
            }
        }
        "mask" => {
            need(6)?;
            Record::RegisterMask {
                camera: unesc(field(&fields, 2)?)?,
                mask_id: unesc(field(&fields, 3)?)?,
                generation: dec_u64(field(&fields, 4)?)?,
                rho_secs: dec_f64(field(&fields, 5)?)?,
            }
        }
        "proc" => {
            need(4)?;
            Record::RegisterProcessor { name: unesc(field(&fields, 2)?)?, generation: dec_u64(field(&fields, 3)?)? }
        }
        "extend" => {
            need(4)?;
            Record::Extend { camera: unesc(field(&fields, 2)?)?, live_edge_secs: dec_f64(field(&fields, 3)?)? }
        }
        "admit" => {
            if fields.len() < 4 {
                return Err("admit record too short".into());
            }
            let epsilon = dec_f64(field(&fields, 2)?)?;
            let n = dec_u64(field(&fields, 3)?)? as usize;
            if fields.len() != 4 + 3 * n {
                return Err(format!("admit record declares {n} debits but has {} fields", fields.len()));
            }
            let mut debits = Vec::with_capacity(n);
            for i in 0..n {
                debits.push(DebitRange {
                    camera: unesc(field(&fields, 4 + 3 * i)?)?,
                    lo: dec_u64(field(&fields, 5 + 3 * i)?)?,
                    hi: dec_u64(field(&fields, 6 + 3 * i)?)?,
                });
            }
            Record::Admit { epsilon, debits }
        }
        "credit" => {
            need(6)?;
            Record::Credit {
                camera: unesc(field(&fields, 2)?)?,
                lo: dec_u64(field(&fields, 3)?)?,
                hi: dec_u64(field(&fields, 4)?)?,
                epsilon: dec_f64(field(&fields, 5)?)?,
            }
        }
        "standing" => {
            need(6)?;
            Record::RegisterStanding {
                name: unesc(field(&fields, 2)?)?,
                base_seed: dec_u64(field(&fields, 3)?)?,
                period_secs: dec_f64(field(&fields, 4)?)?,
                text: unesc(field(&fields, 5)?)?,
            }
        }
        "fired" => {
            need(4)?;
            Record::StandingFired { name: unesc(field(&fields, 2)?)?, window_index: dec_u64(field(&fields, 3)?)? }
        }
        "snaphdr" => {
            need(4)?;
            Record::SnapshotHeader { last_seq: dec_u64(field(&fields, 2)?)?, next_generation: dec_u64(field(&fields, 3)?)? }
        }
        "slots" => {
            if fields.len() < 4 {
                return Err("slots record too short".into());
            }
            let camera = unesc(field(&fields, 2)?)?;
            let offset = dec_u64(field(&fields, 3)?)?;
            let slots = fields.get(4..).unwrap_or(&[]).iter().map(|s| dec_f64(s)).collect::<Result<Vec<f64>, String>>()?;
            Record::SlotValues { camera, offset, slots }
        }
        "arm" => {
            need(4)?;
            Record::ArmStanding { name: unesc(field(&fields, 2)?)?, next_start_secs: dec_f64(field(&fields, 3)?)? }
        }
        tag => return Err(format!("unknown record tag {tag:?}")),
    };
    Ok((seq, record))
}

/// Encode `(seq, record)` into a complete frame (header + payload). The CRC
/// covers the **length field and the payload**: a bit flip in the length —
/// which would otherwise misdirect the parser — is detected like any payload
/// flip instead of masquerading as a torn tail.
pub fn encode_frame(seq: u64, record: &Record) -> Vec<u8> {
    let payload = encode_payload(seq, record);
    let bytes = payload.as_bytes();
    let len = (bytes.len() as u32).to_le_bytes();
    let mut frame = Vec::with_capacity(FRAME_HEADER + bytes.len());
    frame.extend_from_slice(&len);
    frame.extend_from_slice(&crate::crc32::crc32_parts(&[&len, bytes]).to_le_bytes());
    frame.extend_from_slice(bytes);
    frame
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(record: Record) {
        let frame = encode_frame(7, &record);
        let len = u32::from_le_bytes(frame[0..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(frame[4..8].try_into().unwrap());
        assert_eq!(len, frame.len() - FRAME_HEADER);
        assert_eq!(crc, crate::crc32::crc32_parts(&[&frame[0..4], &frame[FRAME_HEADER..]]));
        let (seq, decoded) = decode_payload(&frame[FRAME_HEADER..]).unwrap();
        assert_eq!(seq, 7);
        assert_eq!(decoded, record);
    }

    #[test]
    fn every_record_kind_round_trips() {
        roundtrip(Record::RegisterCamera {
            name: "ca|m\\weird\nname".into(),
            generation: 3,
            live: true,
            slot_secs: 1.0,
            duration_secs: 0.1 + 0.2, // a value with no short decimal representation
            initial_epsilon: f64::MIN_POSITIVE,
            rho_secs: 60.0,
            k: 2,
        });
        roundtrip(Record::RegisterMask { camera: "c".into(), mask_id: "m|1".into(), generation: 9, rho_secs: 0.0 });
        roundtrip(Record::RegisterProcessor { name: "p".into(), generation: 1 });
        roundtrip(Record::Extend { camera: "c".into(), live_edge_secs: 1234.567 });
        roundtrip(Record::Admit {
            epsilon: 0.125,
            debits: vec![
                DebitRange { camera: "a".into(), lo: 0, hi: 10 },
                DebitRange { camera: "b|2".into(), lo: 5, hi: 6 },
            ],
        });
        roundtrip(Record::Admit { epsilon: 1.0, debits: vec![] });
        roundtrip(Record::Credit { camera: "c".into(), lo: 1, hi: 4, epsilon: 0.5 });
        roundtrip(Record::RegisterStanding {
            name: "per_min".into(),
            base_seed: 40,
            period_secs: 60.0,
            text: "SPLIT live BEGIN 0 END 60 BY TIME 10 sec STRIDE 0 sec INTO c;\n SELECT COUNT(*) FROM t;".into(),
        });
        roundtrip(Record::StandingFired { name: "per_min".into(), window_index: 12 });
        roundtrip(Record::SnapshotHeader { last_seq: 100, next_generation: 17 });
        roundtrip(Record::SlotValues { camera: "c".into(), offset: 7, slots: vec![1.0, 0.3 - 0.1, f64::INFINITY, -0.0] });
        roundtrip(Record::SlotValues { camera: "c".into(), offset: 0, slots: vec![] });
        roundtrip(Record::ArmStanding { name: "per_min".into(), next_start_secs: 180.0 });
    }

    #[test]
    fn f64_fields_are_bit_exact() {
        // 0.1 + 0.2 != 0.3 in binary; a decimal format would silently repair
        // (or corrupt) the difference. The bit encoding must preserve it.
        let v = 0.1 + 0.2;
        let frame = encode_frame(1, &Record::Extend { camera: "c".into(), live_edge_secs: v });
        match decode_payload(&frame[FRAME_HEADER..]).unwrap().1 {
            Record::Extend { live_edge_secs, .. } => assert_eq!(live_edge_secs.to_bits(), v.to_bits()),
            other => panic!("wrong record: {other:?}"),
        }
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        assert!(decode_payload(b"").is_err());
        assert!(decode_payload(b"1").is_err());
        assert!(decode_payload(b"1|nope|x").is_err());
        assert!(decode_payload(b"x|extend|c|0000000000000000").is_err(), "non-numeric seq");
        assert!(decode_payload(b"1|extend|c|zz").is_err(), "bad f64 bits");
        assert!(decode_payload(b"1|admit|0000000000000000|2|c|0|1").is_err(), "declared 2 debits, carried 1");
        assert!(decode_payload(b"1|cam|c|1|1").is_err(), "cam record missing fields");
        assert!(decode_payload(b"1|fired|bad\\escape\\q|3").is_err(), "bad escape sequence");
    }
}
