//! The write-ahead log: append, fsync policy, snapshots, and crash recovery.
//!
//! Layout inside the store directory:
//!
//! * `wal.log` — the live log, a stream of framed records (see
//!   [`crate::record`]). Appends go here; the file is truncated to zero after
//!   a successful snapshot.
//! * `snapshot.bin` — the latest snapshot: the same framed-record format,
//!   starting with a [`Record::SnapshotHeader`] carrying the sequence
//!   watermark. Written to `snapshot.tmp` first, fsynced, then renamed into
//!   place — a crash mid-snapshot leaves the previous snapshot intact.
//!
//! ## Recovery invariants
//!
//! 1. **Never under-debit.** Every admission record is appended (and, under
//!    `FsyncPolicy::Always`, fsynced) *before* the in-memory ledger debits a
//!    slot, and therefore before any release can reach an analyst. Whatever
//!    prefix of the log survives a crash accounts for at least every release
//!    that escaped.
//! 2. **Torn tails truncate; corruption refuses.** Frames are written with
//!    one sequential write each, so a crash can only leave a *prefix*: a
//!    partial header, preallocated zeros, or a correct header whose payload
//!    runs past end-of-file. Those truncate (the record's operation was
//!    never applied; [`RecoveryEvent::TornTailTruncated`]). Everything else
//!    is disk corruption — truncating it could silently drop a debit whose
//!    release *was* returned — so recovery stops with a typed error instead
//!    of serving an under-debited ledger: [`StoreError::ChecksumMismatch`]
//!    for a failed CRC (which covers the length field as well as the
//!    payload, so length flips cannot misdirect the parser), and
//!    [`StoreError::InvalidRecord`] for implausible lengths a sequential
//!    append could never produce.
//! 3. **Replay is idempotent.** Records carry strictly increasing sequence
//!    numbers; a record at or below the applied watermark (a duplicated
//!    append, or a log that survived a crash between snapshot write and log
//!    truncation) is skipped ([`RecoveryEvent::StaleRecordSkipped`]). A
//!    sequence *gap* means a record vanished and is refused
//!    ([`StoreError::InvalidRecord`]).

use crate::record::{decode_payload, encode_frame, Record, FRAME_HEADER, MAX_PAYLOAD};
use crate::state::StoreState;
use crate::vfs::{StdVfs, Vfs, VfsFile};
use std::fmt;
use std::io::SeekFrom;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// When the WAL calls `fsync` on appended records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fsync` after every appended record: a record is durable before the
    /// corresponding ledger mutation (and any release) happens. This is the
    /// policy under which the never-under-debit invariant covers power loss.
    #[default]
    Always,
    /// Never `fsync`; leave flushing to the OS page cache. Records still
    /// reach the kernel on every append (a *process* crash loses nothing),
    /// but power loss may drop the most recent records — recovering a
    /// conservative earlier state. Orders of magnitude faster.
    Never,
}

/// Where (and whether) a service persists its admission state.
#[derive(Debug, Clone, Default)]
pub enum Durability {
    /// Keep everything in memory (the pre-durability behaviour; benches and
    /// experiments use this).
    #[default]
    None,
    /// Journal to a write-ahead log with periodic snapshots.
    Wal {
        /// Directory holding `wal.log` / `snapshot.bin`.
        dir: PathBuf,
        /// Fsync policy for appended records.
        fsync: FsyncPolicy,
    },
}

impl Durability {
    /// Convenience constructor for the WAL variant.
    pub fn wal(dir: impl Into<PathBuf>, fsync: FsyncPolicy) -> Self {
        Durability::Wal { dir: dir.into(), fsync }
    }
}

/// A typed durability failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An I/O failure (message carries the `std::io::Error` text and what
    /// the store was doing).
    Io {
        /// What the store was doing.
        context: String,
        /// The underlying I/O error text.
        message: String,
    },
    /// A complete log record failed its CRC — disk corruption, not a torn
    /// append. Recovery refuses to proceed: skipping the record could
    /// under-debit a slot whose release was already returned.
    ChecksumMismatch {
        /// Byte offset of the corrupt frame in `wal.log`.
        offset: u64,
    },
    /// A record decoded but is inconsistent (unparseable payload, a sequence
    /// gap, or a debit that does not fit the state built so far).
    InvalidRecord {
        /// Byte offset of the frame in the file it was read from.
        offset: u64,
        /// Why the record was refused.
        reason: String,
    },
    /// The snapshot file is unreadable. Snapshots are written atomically
    /// (tmp + rename), so this is disk corruption; recovery refuses rather
    /// than replaying the log against the wrong base state.
    SnapshotCorrupt {
        /// Why the snapshot was refused.
        reason: String,
    },
    /// The store is wedged: an earlier failure left its in-memory durability
    /// assumption untrustworthy (a failed fsync whose page-cache aftermath
    /// is unknowable, a failed append that could not be rolled back, or a
    /// post-snapshot log reset that failed). Every append and checkpoint is
    /// refused — retrying could report durability for records that are not
    /// durable — until a supervised [`WalStore::reopen`] re-reads the log
    /// from disk and reconciles. Retryable *after* that recovery.
    Wedged {
        /// What wedged the store.
        reason: String,
    },
}

impl StoreError {
    /// True for failures a caller may retry against the *same* store handle
    /// without supervision: transient I/O errors. [`StoreError::Wedged`] is
    /// retryable only after [`WalStore::reopen`]; the corruption variants
    /// are not retryable at all.
    pub fn is_transient(&self) -> bool {
        matches!(self, StoreError::Io { .. })
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { context, message } => write!(f, "store I/O error while {context}: {message}"),
            StoreError::ChecksumMismatch { offset } => {
                write!(f, "WAL record at byte {offset} fails its checksum (disk corruption); refusing to recover a possibly under-debited ledger")
            }
            StoreError::InvalidRecord { offset, reason } => {
                write!(f, "invalid WAL record at byte {offset}: {reason}")
            }
            StoreError::SnapshotCorrupt { reason } => write!(f, "snapshot is corrupt: {reason}"),
            StoreError::Wedged { reason } => {
                write!(f, "store is wedged ({reason}); reopen() must re-read the log before further appends")
            }
        }
    }
}

impl std::error::Error for StoreError {}

fn io_err(context: &str) -> impl Fn(std::io::Error) -> StoreError + '_ {
    move |e| StoreError::Io { context: context.to_string(), message: e.to_string() }
}

/// Something recovery observed and handled.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryEvent {
    /// The log ended in an incomplete frame (crash mid-append); the tail was
    /// truncated at `offset`, dropping `bytes` bytes.
    TornTailTruncated {
        /// Byte offset the log was truncated to.
        offset: u64,
        /// How many trailing bytes were dropped.
        bytes: u64,
    },
    /// A record at or below the applied sequence watermark was skipped —
    /// a duplicated append, or a log surviving a crash between snapshot
    /// write and log truncation. Reported once; `stale_skipped` counts all.
    StaleRecordSkipped {
        /// Sequence number of the first stale record.
        seq: u64,
    },
    /// A snapshot was loaded as the replay base.
    SnapshotLoaded {
        /// The snapshot's sequence watermark.
        last_seq: u64,
    },
    /// A supervised [`WalStore::reopen`] re-read the log (recovering from a
    /// wedge). `lost_records` is how many appends the pre-reopen handle had
    /// accepted that the on-disk log no longer accounts for — records whose
    /// durability was reported before the wedge but did not survive. Because
    /// callers debit only *after* an append returns `Ok`, a lost record can
    /// only over-debit the reconciled ledgers, never under-debit.
    StoreReopened {
        /// Appends accepted pre-reopen that the recovered log is missing.
        lost_records: u64,
    },
}

/// A typed warning surfaced through [`RecoveryReport::warnings`]: something
/// the store (or the serving layer above it) could not make durable, where
/// the consequence is bounded and conservative but an operator should know.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryWarning {
    /// A best-effort `Credit` rollback record could not be appended: the
    /// journal keeps the admission's debits while the in-memory ledger rolled
    /// them back. Recovery will re-apply the debits (an over-debit — wasted
    /// budget, never leaked privacy). The serving layer quarantines the
    /// affected camera until a supervised recovery reconciles the two.
    CreditRollbackLost {
        /// The camera whose ledger is over-debited in the journal.
        camera: String,
        /// First slot of the un-credited range.
        lo: u64,
        /// One past the last slot of the un-credited range.
        hi: u64,
        /// The ε that stays debited in the journal (IEEE-754 bits, so the
        /// report round-trips bit-exactly like every other f64 on the wire).
        epsilon_bits: u64,
        /// The store error that refused the credit.
        error: String,
    },
}

/// What recovery did, for operators and tests.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RecoveryReport {
    /// Sequence watermark of the loaded snapshot (0 if none).
    pub snapshot_seq: u64,
    /// Log records applied on top of the snapshot.
    pub records_replayed: u64,
    /// Log records skipped as stale (idempotent replay).
    pub stale_skipped: u64,
    /// Bytes dropped from a torn tail (0 if the log ended cleanly).
    pub torn_tail_bytes: u64,
    /// Notable events, deduplicated by kind.
    pub events: Vec<RecoveryEvent>,
    /// Typed warnings about state the store could not make durable. The
    /// serving layer drains its accumulated warnings into the report a
    /// supervised recovery returns.
    pub warnings: Vec<RecoveryWarning>,
}

/// The state and report [`WalStore::open`] hands back.
#[derive(Debug, Clone, PartialEq)]
pub struct Recovered {
    /// The recovered durable state.
    pub state: StoreState,
    /// What recovery did to produce it.
    pub report: RecoveryReport,
}

/// Tuning knobs for [`WalStore::open_with`].
#[derive(Debug, Clone, Copy)]
pub struct WalOptions {
    /// Snapshot (and truncate the log) after this many appended records.
    pub snapshot_every: u64,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions { snapshot_every: 4096 }
    }
}

struct Inner {
    file: Box<dyn VfsFile>,
    state: StoreState,
    next_seq: u64,
    records_since_snapshot: u64,
    /// Length of wal.log up to the last fully appended frame. A failed
    /// append truncates back here so a partial frame can never sit *under*
    /// later successful appends (recovery would misparse the stream).
    log_len: u64,
    /// Set when the in-memory durability assumption can no longer be trusted:
    /// a failed fsync (the page cache may or may not hold the frame — there
    /// is no way to know, and retrying the fsync cannot un-fail the first
    /// one), a failed append whose rollback truncate also failed, or a
    /// post-snapshot log reset that failed. While set, every append and
    /// checkpoint returns [`StoreError::Wedged`] until [`WalStore::reopen`]
    /// re-reads the log from disk.
    wedged: Option<String>,
    /// A failed *automatic* checkpoint stashed here instead of failing the
    /// append that triggered it (the append itself was durable). The next
    /// append retries the checkpoint; operators can inspect it via
    /// [`WalStore::last_checkpoint_error`].
    last_checkpoint_error: Option<StoreError>,
}

/// What [`recover`] hands back: the open log file positioned at its end plus
/// the rebuilt state.
struct Recovery {
    file: Box<dyn VfsFile>,
    state: StoreState,
    applied_seq: u64,
    log_len: u64,
    report: RecoveryReport,
}

/// An open write-ahead log: the append side of the durability subsystem.
///
/// Appends are serialized by an internal mutex; the store applies every
/// record to its own [`StoreState`] shadow as it appends, so snapshots are
/// cut from state that is — by construction — exactly what recovery would
/// rebuild.
pub struct WalStore {
    /// Lock-order audit: `wal-inner` — a leaf in the declared global order
    /// (analyzer.toml). Held across one append/checkpoint (including its
    /// fsync) with nothing acquired inside it. The serving layer appends
    /// while holding the admission gate and registry locks above it.
    inner: Mutex<Inner>,
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    fsync: FsyncPolicy,
    snapshot_every: u64,
}

impl fmt::Debug for WalStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WalStore").field("dir", &self.dir).field("fsync", &self.fsync).finish_non_exhaustive()
    }
}

impl WalStore {
    /// Open (or create) the store at `dir`, recovering any existing state.
    pub fn open(dir: impl Into<PathBuf>, fsync: FsyncPolicy) -> Result<(WalStore, Recovered), StoreError> {
        Self::open_with(dir, fsync, WalOptions::default())
    }

    /// [`WalStore::open`] with explicit tuning knobs, against the real
    /// filesystem ([`StdVfs`]).
    pub fn open_with(
        dir: impl Into<PathBuf>,
        fsync: FsyncPolicy,
        options: WalOptions,
    ) -> Result<(WalStore, Recovered), StoreError> {
        Self::open_with_vfs(dir, fsync, options, Arc::new(StdVfs))
    }

    /// [`WalStore::open_with`] against an explicit [`Vfs`] — the injection
    /// point for [`crate::vfs::FaultVfs`] in tests and chaos harnesses.
    pub fn open_with_vfs(
        dir: impl Into<PathBuf>,
        fsync: FsyncPolicy,
        options: WalOptions,
        vfs: Arc<dyn Vfs>,
    ) -> Result<(WalStore, Recovered), StoreError> {
        let dir = dir.into();
        let rec = recover(vfs.as_ref(), &dir)?;
        let recovered = Recovered { state: rec.state.clone(), report: rec.report };
        let store = WalStore {
            inner: Mutex::new(Inner {
                file: rec.file,
                state: rec.state,
                next_seq: rec.applied_seq + 1,
                records_since_snapshot: 0,
                log_len: rec.log_len,
                wedged: None,
                last_checkpoint_error: None,
            }),
            vfs,
            dir,
            fsync,
            snapshot_every: options.snapshot_every.max(1),
        };
        Ok((store, recovered))
    }

    /// Supervised recovery on a live (typically wedged) handle: re-read the
    /// log and snapshot from disk, rebuild the shadow state from what is
    /// *actually* durable, and clear the wedge.
    ///
    /// The returned report describes the fresh recovery; its events include
    /// [`RecoveryEvent::StoreReopened`] with how many previously-acknowledged
    /// appends the on-disk log turned out to be missing. Callers reconcile
    /// their in-memory ledgers against [`Recovered::state`] — because debits
    /// happen only after an `Ok` append, a lost record can only make the
    /// durable state *more* debited than necessary, never less.
    pub fn reopen(&self) -> Result<Recovered, StoreError> {
        let mut inner = self.inner.lock().expect("wal store lock poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        // Highest sequence this handle ever acknowledged as appended.
        let highest_acked = inner.next_seq.saturating_sub(1);
        let mut rec = recover(self.vfs.as_ref(), &self.dir)?;
        let lost = highest_acked.saturating_sub(rec.applied_seq);
        rec.report.events.push(RecoveryEvent::StoreReopened { lost_records: lost });
        let recovered = Recovered { state: rec.state.clone(), report: rec.report };
        inner.file = rec.file;
        inner.state = rec.state;
        // Resume the sequence space from the *recovered* watermark: any acked
        // seq past it is provably absent from the durable log (that is what
        // made it "lost"), and skipping those numbers would leave a sequence
        // gap that every future recovery refuses.
        inner.next_seq = rec.applied_seq + 1;
        inner.records_since_snapshot = 0;
        inner.log_len = rec.log_len;
        inner.wedged = None;
        inner.last_checkpoint_error = None;
        Ok(recovered)
    }

    /// Append one record, making it durable per the fsync policy, and fold it
    /// into the shadow state. Callers apply the corresponding in-memory
    /// mutation only **after** this returns `Ok` — that ordering is what the
    /// never-under-debit invariant rests on.
    ///
    /// ## Failure semantics
    ///
    /// * A failed **write** rolls the file back to the last good frame and
    ///   returns a transient [`StoreError::Io`]; the store stays usable and
    ///   the caller may retry. If the rollback itself fails, the store wedges
    ///   (appending after a partial frame would corrupt the log).
    /// * A failed **fsync** wedges the store and returns
    ///   [`StoreError::Wedged`]. The frame reached the kernel but its
    ///   durability is unknowable — the page cache may have dropped it, kept
    ///   it, or persisted it — and a *later* successful fsync says nothing
    ///   about the earlier failed one. The record is **not** acknowledged and
    ///   **not** applied to the shadow; only [`WalStore::reopen`] (which
    ///   re-reads what actually survived) can resume appends.
    pub fn append(&self, record: Record) -> Result<(), StoreError> {
        let mut inner = self.inner.lock().expect("wal store lock poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        if let Some(reason) = &inner.wedged {
            return Err(StoreError::Wedged { reason: reason.clone() });
        }
        // Validate against the shadow first: a record the state would refuse
        // (a caller bug) must not reach the log at all — once durable, it
        // would fail every future recovery.
        inner
            .state
            .check(&record)
            .map_err(|reason| StoreError::InvalidRecord { offset: 0, reason: format!("record refused by state: {reason}") })?;
        let seq = inner.next_seq;
        let frame = encode_frame(seq, &record);
        if let Err(e) = inner.file.write_all(&frame).map_err(io_err("appending a WAL record")) {
            // Roll the file back to the last good frame so the partial bytes
            // can never end up *under* later successful appends. If even
            // that fails, wedge the store: appending after garbage would
            // corrupt the log for everyone.
            let target = inner.log_len;
            if inner.file.set_len(target).and_then(|()| inner.file.seek(SeekFrom::Start(target))).is_err() {
                inner.wedged =
                    Some("a failed append could not be rolled back; the log tail may hold a partial frame".into());
            }
            return Err(e);
        }
        if self.fsync == FsyncPolicy::Always {
            if let Err(e) = inner.file.sync_data() {
                // No rollback: the write already reached the kernel, and after
                // a failed fsync there is no way to know whether those bytes
                // are on disk. Do NOT acknowledge, do NOT apply to the shadow
                // — reopen() will re-read the log and adopt the frame iff it
                // survived (at worst an over-debit, never an under-debit).
                let reason = format!("fsync failed ({e}); durability of the last frame is unknowable");
                inner.wedged = Some(reason.clone());
                return Err(StoreError::Wedged { reason });
            }
        }
        inner.log_len += frame.len() as u64;
        if let Err(reason) = inner.state.apply(&record) {
            // check() accepted the record but apply() refused it — the two
            // disagree, and the frame is already durable, so every future
            // recovery would refuse the log. Wedge the store (no further
            // appends can be trusted) and surface a typed error instead of
            // panicking mid-serve.
            inner.wedged = Some(format!("record accepted by check but refused by apply: {reason}"));
            return Err(StoreError::InvalidRecord {
                offset: 0,
                reason: format!("record accepted by check but refused by apply: {reason}"),
            });
        }
        inner.next_seq = seq + 1;
        inner.records_since_snapshot += 1;
        if inner.records_since_snapshot >= self.snapshot_every {
            if let Err(e) = self.checkpoint_locked(&mut inner) {
                // The *append* succeeded and its record is durable, so the
                // caller may debit against it — failing the append here would
                // force an unnecessary refusal. Stash the checkpoint error
                // (the counter was not reset, so the next append retries) and
                // report success for the record itself. If the checkpoint
                // wedged the store, subsequent appends surface that.
                inner.last_checkpoint_error = Some(e);
            }
        }
        Ok(())
    }

    /// Write a snapshot of the current state and truncate the log, bounding
    /// the next recovery's replay cost. Also invoked automatically every
    /// [`WalOptions::snapshot_every`] appends.
    ///
    /// A failed snapshot *write* or *rename* leaves the previous snapshot and
    /// the log fully intact (the snapshot is staged at `snapshot.tmp` and
    /// renamed only once durable) and returns a transient error. Only a
    /// failure *after* the rename — resetting the log — wedges the store.
    pub fn checkpoint(&self) -> Result<(), StoreError> {
        let mut inner = self.inner.lock().expect("wal store lock poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        if let Some(reason) = &inner.wedged {
            return Err(StoreError::Wedged { reason: reason.clone() });
        }
        self.checkpoint_locked(&mut inner)
    }

    /// `Some(reason)` while the store refuses appends pending a supervised
    /// [`WalStore::reopen`].
    pub fn is_wedged(&self) -> Option<String> {
        self.inner.lock().expect("wal store lock poisoned").wedged.clone() // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
    }

    /// The error from the most recent *automatic* checkpoint attempt, if it
    /// failed. The triggering append still succeeded (its record is durable);
    /// the next append retries the checkpoint.
    pub fn last_checkpoint_error(&self) -> Option<StoreError> {
        self.inner.lock().expect("wal store lock poisoned").last_checkpoint_error.clone() // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
    }

    /// A copy of the shadow state (what recovery would rebuild right now).
    pub fn state(&self) -> StoreState {
        self.inner.lock().expect("wal store lock poisoned").state.clone() // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
    }

    /// The sequence number the next appended record will carry.
    pub fn next_seq(&self) -> u64 {
        self.inner.lock().expect("wal store lock poisoned").next_seq // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn checkpoint_locked(&self, inner: &mut Inner) -> Result<(), StoreError> {
        let tmp = self.dir.join("snapshot.tmp");
        let records = inner.state.snapshot_records(inner.next_seq.saturating_sub(1));
        let staged = (|| {
            let mut f = self.vfs.create(&tmp).map_err(io_err("creating snapshot.tmp"))?;
            for record in &records {
                // Snapshot records are positional, not part of the log's
                // sequence space; they carry seq 0.
                f.write_all(&encode_frame(0, record)).map_err(io_err("writing snapshot.tmp"))?;
            }
            // The snapshot must be durable before it can supersede the log,
            // regardless of the append-path fsync policy.
            f.sync_all().map_err(io_err("fsyncing snapshot.tmp"))
        })();
        if let Err(e) = staged {
            // Nothing was renamed: the previous snapshot and the whole log
            // are untouched, so this is transient — remove the half-written
            // stage (best-effort; recovery also cleans orphans) and retry
            // later.
            let _ = self.vfs.remove_file(&tmp);
            return Err(e);
        }
        if let Err(e) = self.vfs.rename(&tmp, &self.dir.join("snapshot.bin")) {
            let _ = self.vfs.remove_file(&tmp);
            return Err(io_err("renaming snapshot.tmp into place")(e));
        }
        // Make the rename itself durable (best-effort: directory fsync is
        // platform-dependent). A crash before it replays the old log against
        // the old snapshot — the idempotent-seq rule makes that equivalent.
        let _ = self.vfs.sync_dir(&self.dir);
        let reset = inner
            .file
            .set_len(0)
            .map_err(io_err("truncating wal.log after snapshot"))
            .and_then(|()| inner.file.seek(SeekFrom::Start(0)).map(|_| ()).map_err(io_err("rewinding wal.log after snapshot")))
            .and_then(|()| inner.file.sync_data().map_err(io_err("fsyncing truncated wal.log")));
        if let Err(e) = reset {
            // The snapshot is already authoritative, but the log handle is in
            // an indeterminate position/length — further appends could land
            // past a hole or under stale frames. Wedge; reopen() re-reads and
            // resumes cleanly (the snapshot makes any surviving log records
            // stale, so nothing is lost).
            let reason = format!("post-snapshot log reset failed: {e}");
            inner.wedged = Some(reason.clone());
            return Err(StoreError::Wedged { reason });
        }
        inner.log_len = 0;
        inner.records_since_snapshot = 0;
        inner.last_checkpoint_error = None;
        Ok(())
    }
}

/// Read the store directory through `vfs` and rebuild its durable state:
/// snapshot (if any) as the base, then the log replayed idempotently on top.
/// Shared by [`WalStore::open_with_vfs`] (cold start) and
/// [`WalStore::reopen`] (supervised recovery on a live handle).
fn recover(vfs: &dyn Vfs, dir: &Path) -> Result<Recovery, StoreError> {
    vfs.create_dir_all(dir).map_err(io_err("creating the store directory"))?;
    // An orphaned snapshot.tmp is a crash mid-snapshot: the rename never
    // happened, so the previous snapshot (if any) is still authoritative.
    let tmp = dir.join("snapshot.tmp");
    if vfs.exists(&tmp) {
        vfs.remove_file(&tmp).map_err(io_err("removing an orphaned snapshot.tmp"))?;
    }

    let mut state = StoreState::default();
    let mut report = RecoveryReport::default();
    let snapshot_path = dir.join("snapshot.bin");
    let mut applied_seq = 0u64;
    if vfs.exists(&snapshot_path) {
        let bytes = vfs.read(&snapshot_path).map_err(io_err("reading snapshot.bin"))?;
        applied_seq = load_snapshot(&bytes, &mut state)?;
        report.snapshot_seq = applied_seq;
        report.events.push(RecoveryEvent::SnapshotLoaded { last_seq: applied_seq });
    }

    let log_path = dir.join("wal.log");
    let mut file = vfs.open_rw(&log_path).map_err(io_err("opening wal.log"))?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes).map_err(io_err("reading wal.log"))?;

    let mut offset = 0usize;
    let mut saw_stale = false;
    loop {
        let remaining = bytes.len() - offset;
        if remaining == 0 {
            break;
        }
        // Classify the frame at `offset`. Appends write each frame with a
        // single sequential write, so a *crash* can only leave a prefix: a
        // partial header, an all-zero header (filesystem-preallocated
        // bytes), or a correct header whose payload runs past end-of-file.
        // Those are torn tails — the append never finished, the operation
        // it describes never happened, truncate and proceed. Anything else
        // that fails to parse is disk corruption: truncating it could
        // silently drop later records whose debits back released answers,
        // so recovery refuses with a typed error instead.
        let torn = |report: &mut RecoveryReport, file: &mut dyn VfsFile| -> Result<(), StoreError> {
            let dropped = (bytes.len() - offset) as u64;
            file.set_len(offset as u64).map_err(io_err("truncating the torn WAL tail"))?;
            report.torn_tail_bytes = dropped;
            report.events.push(RecoveryEvent::TornTailTruncated { offset: offset as u64, bytes: dropped });
            Ok(())
        };
        if remaining < FRAME_HEADER {
            torn(&mut report, &mut *file)?;
            break;
        }
        let Some((len, crc, len_field)) = header_at(&bytes, offset) else {
            // Unreachable given the FRAME_HEADER check above, but a header
            // the buffer cannot hold is by definition a torn tail.
            torn(&mut report, &mut *file)?;
            break;
        };
        if len == 0 && crc == 0 {
            // Preallocated-but-unwritten zeros: a torn append.
            torn(&mut report, &mut *file)?;
            break;
        }
        if len == 0 || len > MAX_PAYLOAD as usize {
            // A sequential append can never produce a complete header with a
            // zero or absurd length — this is a corrupted length field, and
            // everything after it is unreachable but may be valid. Refuse
            // rather than under-debit.
            return Err(StoreError::InvalidRecord {
                offset: offset as u64,
                reason: format!("implausible record length {len} (corrupted length field?)"),
            });
        }
        if remaining < FRAME_HEADER + len {
            torn(&mut report, &mut *file)?;
            break;
        }
        let Some(payload) = bytes.get(offset + FRAME_HEADER..offset + FRAME_HEADER + len) else {
            torn(&mut report, &mut *file)?;
            break;
        };
        // The CRC covers the length field too: an in-range length flip is
        // caught here instead of misparsing the stream.
        if crate::crc32::crc32_parts(&[len_field, payload]) != crc {
            return Err(StoreError::ChecksumMismatch { offset: offset as u64 });
        }
        let (seq, record) = decode_payload(payload)
            .map_err(|reason| StoreError::InvalidRecord { offset: offset as u64, reason })?;
        if seq <= applied_seq {
            report.stale_skipped += 1;
            if !saw_stale {
                saw_stale = true;
                report.events.push(RecoveryEvent::StaleRecordSkipped { seq });
            }
        } else if seq != applied_seq + 1 {
            return Err(StoreError::InvalidRecord {
                offset: offset as u64,
                reason: format!("sequence gap: expected {}, found {seq}", applied_seq + 1),
            });
        } else {
            state
                .apply(&record)
                .map_err(|reason| StoreError::InvalidRecord { offset: offset as u64, reason })?;
            applied_seq = seq;
            report.records_replayed += 1;
        }
        offset += FRAME_HEADER + len;
    }

    let log_len = file.seek(SeekFrom::End(0)).map_err(io_err("seeking to the end of wal.log"))?;
    Ok(Recovery { file, state, applied_seq, log_len, report })
}

/// Parse the frame header at `offset` without panicking: the payload length,
/// the stored CRC, and the raw length field (the CRC covers it). `None` when
/// the buffer cannot hold a full header — the caller classifies that (torn
/// tail vs corrupt snapshot).
fn header_at(bytes: &[u8], offset: usize) -> Option<(usize, u32, &[u8])> {
    let len_field = bytes.get(offset..offset + 4)?;
    let crc_field = bytes.get(offset + 4..offset + 8)?;
    let len = u32::from_le_bytes(len_field.try_into().ok()?) as usize;
    let crc = u32::from_le_bytes(crc_field.try_into().ok()?);
    Some((len, crc, len_field))
}

/// Parse a snapshot file into `state`; returns its sequence watermark.
fn load_snapshot(bytes: &[u8], state: &mut StoreState) -> Result<u64, StoreError> {
    let mut offset = 0usize;
    let mut last_seq = None;
    while offset < bytes.len() {
        let Some((len, crc, len_field)) = header_at(bytes, offset) else {
            return Err(StoreError::SnapshotCorrupt { reason: format!("partial frame header at byte {offset}") });
        };
        if len == 0 || len > MAX_PAYLOAD as usize {
            return Err(StoreError::SnapshotCorrupt { reason: format!("truncated record at byte {offset}") });
        }
        let Some(payload) = bytes.get(offset + FRAME_HEADER..offset + FRAME_HEADER + len) else {
            return Err(StoreError::SnapshotCorrupt { reason: format!("truncated record at byte {offset}") });
        };
        if crate::crc32::crc32_parts(&[len_field, payload]) != crc {
            return Err(StoreError::SnapshotCorrupt { reason: format!("checksum mismatch at byte {offset}") });
        }
        let (_, record) = decode_payload(payload)
            .map_err(|reason| StoreError::SnapshotCorrupt { reason: format!("at byte {offset}: {reason}") })?;
        if last_seq.is_none() {
            match record {
                Record::SnapshotHeader { last_seq: seq, .. } => last_seq = Some(seq),
                other => {
                    return Err(StoreError::SnapshotCorrupt {
                        reason: format!("snapshot does not start with a header (found {other:?})"),
                    })
                }
            }
        }
        state
            .apply(&record)
            .map_err(|reason| StoreError::SnapshotCorrupt { reason: format!("at byte {offset}: {reason}") })?;
        offset += FRAME_HEADER + len;
    }
    last_seq.ok_or(StoreError::SnapshotCorrupt { reason: "snapshot is empty".into() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::DebitRange;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

    fn temp_dir(tag: &str) -> PathBuf {
        let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("privid-wal-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn live_cam(name: &str) -> Record {
        Record::RegisterCamera {
            name: name.into(),
            generation: 0,
            live: true,
            slot_secs: 1.0,
            duration_secs: 0.0,
            initial_epsilon: 1.0,
            rho_secs: 30.0,
            k: 2,
        }
    }

    #[test]
    fn append_close_reopen_recovers_the_state() {
        let dir = temp_dir("reopen");
        let (store, recovered) = WalStore::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(recovered.state, StoreState::default());
        store.append(live_cam("c")).unwrap();
        store.append(Record::Extend { camera: "c".into(), live_edge_secs: 20.0 }).unwrap();
        store
            .append(Record::Admit { epsilon: 0.5, debits: vec![DebitRange { camera: "c".into(), lo: 0, hi: 7 }] })
            .unwrap();
        let live_state = store.state();
        drop(store);

        let (_store, recovered) = WalStore::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(recovered.state, live_state, "recovery rebuilds the shadow state exactly");
        assert_eq!(recovered.report.records_replayed, 3);
        assert_eq!(recovered.report.torn_tail_bytes, 0);
        assert_eq!(recovered.state.cameras["c"].slots[3], 0.5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_truncates_and_recovery_prefers_the_snapshot() {
        let dir = temp_dir("checkpoint");
        let (store, _) = WalStore::open(&dir, FsyncPolicy::Never).unwrap();
        store.append(live_cam("c")).unwrap();
        store.append(Record::Extend { camera: "c".into(), live_edge_secs: 10.0 }).unwrap();
        store.checkpoint().unwrap();
        assert_eq!(std::fs::metadata(dir.join("wal.log")).unwrap().len(), 0, "log truncated");
        // Appends after the snapshot land in the fresh log with continuing seqs.
        store
            .append(Record::Admit { epsilon: 0.25, debits: vec![DebitRange { camera: "c".into(), lo: 0, hi: 2 }] })
            .unwrap();
        let live_state = store.state();
        drop(store);
        let (store, recovered) = WalStore::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(recovered.report.snapshot_seq, 2);
        assert_eq!(recovered.report.records_replayed, 1, "only the post-snapshot record replays");
        assert_eq!(recovered.state, live_state);
        assert_eq!(store.next_seq(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn automatic_snapshots_bound_the_log() {
        let dir = temp_dir("auto");
        let (store, _) =
            WalStore::open_with(&dir, FsyncPolicy::Never, WalOptions { snapshot_every: 5 }).unwrap();
        store.append(live_cam("c")).unwrap();
        for i in 1..=20u64 {
            store.append(Record::Extend { camera: "c".into(), live_edge_secs: i as f64 }).unwrap();
        }
        let live_state = store.state();
        drop(store);
        let log_len = std::fs::metadata(dir.join("wal.log")).unwrap().len();
        assert!(log_len < 5 * 64, "auto-checkpoint keeps the log short, got {log_len} bytes");
        let (_s, recovered) = WalStore::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(recovered.state, live_state);
        assert!(recovered.report.snapshot_seq >= 20);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn orphaned_snapshot_tmp_is_ignored() {
        let dir = temp_dir("tmp");
        let (store, _) = WalStore::open(&dir, FsyncPolicy::Never).unwrap();
        store.append(live_cam("c")).unwrap();
        let live_state = store.state();
        drop(store);
        std::fs::write(dir.join("snapshot.tmp"), b"half-written garbage").unwrap();
        let (_s, recovered) = WalStore::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(recovered.state, live_state, "a crash mid-snapshot must not affect recovery");
        assert!(!dir.join("snapshot.tmp").exists(), "the orphan is cleaned up");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
