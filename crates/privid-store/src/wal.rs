//! The write-ahead log: group-commit appends, fsync policy, snapshots, and
//! crash recovery.
//!
//! Layout inside the store directory:
//!
//! * `wal.log` — the live log, a stream of framed records (see
//!   [`crate::record`]). Appends go here; the file is truncated to zero after
//!   a successful snapshot.
//! * `snapshot.bin` — the latest snapshot: the same framed-record format,
//!   starting with a [`Record::SnapshotHeader`] carrying the sequence
//!   watermark. Written to `snapshot.tmp` first, fsynced, then renamed into
//!   place — a crash mid-snapshot leaves the previous snapshot intact.
//!
//! ## Group commit
//!
//! Concurrent appends are batched: each caller **stages** its record under
//! the store lock (validation, sequence assignment, frame encoding, and the
//! shadow-state apply with a captured undo), then waits for its outcome.
//! One waiter becomes the *leader*: it takes the staged batch and the file
//! handle, releases the lock, and flushes the whole batch with a single
//! `write` + (policy permitting) a single `fsync`, then wakes every waiter
//! with its per-record outcome. While a flush is in flight, new records keep
//! staging into the next batch — the fsync cost is amortized over however
//! many admissions arrive during it, which is what closes the gap between
//! `FsyncPolicy::Always` and `FsyncPolicy::Never` throughput.
//!
//! Failure keeps the pre-group-commit semantics exactly:
//!
//! * a failed **write** rolls the file back to the last good frame, undoes
//!   every staged shadow apply (bit-for-bit, via the captured undos), resets
//!   the sequence counter, and fails every staged waiter with a transient
//!   [`StoreError::Io`] — the store stays usable and callers retry;
//! * a failed **fsync** wedges the store: every waiter in the doomed batch
//!   (and any record staged behind it) observes [`StoreError::Wedged`],
//!   never a false ack, and the shadow state is restored to exactly what it
//!   was before the batch staged.
//!
//! Sequence numbers are assigned at stage time under the lock, so frames hit
//! the log in strictly increasing `seq` order no matter what order waiters
//! call [`WalStore::wait_commit`] in.
//!
//! ## Recovery invariants
//!
//! 1. **Never under-debit.** Every admission record is appended (and, under
//!    `FsyncPolicy::Always`, fsynced) *before* the in-memory ledger debits a
//!    slot, and therefore before any release can reach an analyst. Whatever
//!    prefix of the log survives a crash accounts for at least every release
//!    that escaped.
//! 2. **Torn tails truncate; corruption refuses.** Frames are written with
//!    sequential writes, so a crash can only leave a *prefix*: a partial
//!    header, preallocated zeros, or a correct header whose payload runs
//!    past end-of-file. Those truncate (the record's operation was never
//!    acknowledged; [`RecoveryEvent::TornTailTruncated`]). Everything else
//!    is disk corruption — truncating it could silently drop a debit whose
//!    release *was* returned — so recovery stops with a typed error instead
//!    of serving an under-debited ledger: [`StoreError::ChecksumMismatch`]
//!    for a failed CRC (which covers the length field as well as the
//!    payload, so length flips cannot misdirect the parser), and
//!    [`StoreError::InvalidRecord`] for implausible lengths a sequential
//!    append could never produce.
//! 3. **Replay is idempotent.** Records carry strictly increasing sequence
//!    numbers; a record at or below the applied watermark (a duplicated
//!    append, or a log that survived a crash between snapshot write and log
//!    truncation) is skipped ([`RecoveryEvent::StaleRecordSkipped`]). A
//!    sequence *gap* means a record vanished and is refused
//!    ([`StoreError::InvalidRecord`]).

use crate::record::{decode_payload, encode_frame, Record, FRAME_HEADER, MAX_PAYLOAD};
use crate::state::StoreState;
use crate::vfs::{StdVfs, Vfs, VfsFile};
use std::collections::HashMap;
use std::fmt;
use std::io::SeekFrom;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// When the WAL calls `fsync` on appended records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fsync` after every committed batch: a record is durable before the
    /// corresponding ledger mutation (and any release) happens. This is the
    /// policy under which the never-under-debit invariant covers power loss.
    /// Group commit amortizes the fsync over every record in the batch.
    #[default]
    Always,
    /// Never `fsync`; leave flushing to the OS page cache. Records still
    /// reach the kernel on every flush (a *process* crash loses nothing),
    /// but power loss may drop the most recent records — recovering a
    /// conservative earlier state. Orders of magnitude faster.
    Never,
}

/// Where (and whether) a service persists its admission state.
#[derive(Debug, Clone, Default)]
pub enum Durability {
    /// Keep everything in memory (the pre-durability behaviour; benches and
    /// experiments use this).
    #[default]
    None,
    /// Journal to a write-ahead log with periodic snapshots.
    Wal {
        /// Directory holding `wal.log` / `snapshot.bin` (sharded services
        /// nest per-shard stores at `dir/shard-<k>/`).
        dir: PathBuf,
        /// Fsync policy for appended records.
        fsync: FsyncPolicy,
    },
}

impl Durability {
    /// Convenience constructor for the WAL variant.
    pub fn wal(dir: impl Into<PathBuf>, fsync: FsyncPolicy) -> Self {
        Durability::Wal { dir: dir.into(), fsync }
    }
}

/// A typed durability failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An I/O failure (message carries the `std::io::Error` text and what
    /// the store was doing).
    Io {
        /// What the store was doing.
        context: String,
        /// The underlying I/O error text.
        message: String,
    },
    /// A complete log record failed its CRC — disk corruption, not a torn
    /// append. Recovery refuses to proceed: skipping the record could
    /// under-debit a slot whose release was already returned.
    ChecksumMismatch {
        /// Byte offset of the corrupt frame in `wal.log`.
        offset: u64,
    },
    /// A record decoded but is inconsistent (unparseable payload, a sequence
    /// gap, or a debit that does not fit the state built so far).
    InvalidRecord {
        /// Byte offset of the frame in the file it was read from.
        offset: u64,
        /// Why the record was refused.
        reason: String,
    },
    /// The snapshot file is unreadable. Snapshots are written atomically
    /// (tmp + rename), so this is disk corruption; recovery refuses rather
    /// than replaying the log against the wrong base state.
    SnapshotCorrupt {
        /// Why the snapshot was refused.
        reason: String,
    },
    /// The store is wedged: an earlier failure left its in-memory durability
    /// assumption untrustworthy (a failed fsync whose page-cache aftermath
    /// is unknowable, a failed append that could not be rolled back, or a
    /// post-snapshot log reset that failed). Every append and checkpoint is
    /// refused — retrying could report durability for records that are not
    /// durable — until a supervised [`WalStore::reopen`] re-reads the log
    /// from disk and reconciles. Retryable *after* that recovery.
    Wedged {
        /// What wedged the store.
        reason: String,
    },
}

impl StoreError {
    /// True for failures a caller may retry against the *same* store handle
    /// without supervision: transient I/O errors. [`StoreError::Wedged`] is
    /// retryable only after [`WalStore::reopen`]; the corruption variants
    /// are not retryable at all.
    pub fn is_transient(&self) -> bool {
        matches!(self, StoreError::Io { .. })
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { context, message } => write!(f, "store I/O error while {context}: {message}"),
            StoreError::ChecksumMismatch { offset } => {
                write!(f, "WAL record at byte {offset} fails its checksum (disk corruption); refusing to recover a possibly under-debited ledger")
            }
            StoreError::InvalidRecord { offset, reason } => {
                write!(f, "invalid WAL record at byte {offset}: {reason}")
            }
            StoreError::SnapshotCorrupt { reason } => write!(f, "snapshot is corrupt: {reason}"),
            StoreError::Wedged { reason } => {
                write!(f, "store is wedged ({reason}); reopen() must re-read the log before further appends")
            }
        }
    }
}

impl std::error::Error for StoreError {}

fn io_err(context: &str) -> impl Fn(std::io::Error) -> StoreError + '_ {
    move |e| StoreError::Io { context: context.to_string(), message: e.to_string() }
}

/// Something recovery observed and handled.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryEvent {
    /// The log ended in an incomplete frame (crash mid-append); the tail was
    /// truncated at `offset`, dropping `bytes` bytes.
    TornTailTruncated {
        /// Byte offset the log was truncated to.
        offset: u64,
        /// How many trailing bytes were dropped.
        bytes: u64,
    },
    /// A record at or below the applied sequence watermark was skipped —
    /// a duplicated append, or a log surviving a crash between snapshot
    /// write and log truncation. Reported once; `stale_skipped` counts all.
    StaleRecordSkipped {
        /// Sequence number of the first stale record.
        seq: u64,
    },
    /// A snapshot was loaded as the replay base.
    SnapshotLoaded {
        /// The snapshot's sequence watermark.
        last_seq: u64,
    },
    /// A supervised [`WalStore::reopen`] re-read the log (recovering from a
    /// wedge). `lost_records` is how many appends the pre-reopen handle had
    /// accepted that the on-disk log no longer accounts for — records whose
    /// durability was reported before the wedge but did not survive. Because
    /// callers debit only *after* an append returns `Ok`, a lost record can
    /// only over-debit the reconciled ledgers, never under-debit.
    StoreReopened {
        /// Appends accepted pre-reopen that the recovered log is missing.
        lost_records: u64,
    },
}

/// A typed warning surfaced through [`RecoveryReport::warnings`]: something
/// the store (or the serving layer above it) could not make durable, where
/// the consequence is bounded and conservative but an operator should know.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryWarning {
    /// A best-effort `Credit` rollback record could not be appended: the
    /// journal keeps the admission's debits while the in-memory ledger rolled
    /// them back. Recovery will re-apply the debits (an over-debit — wasted
    /// budget, never leaked privacy). The serving layer quarantines the
    /// affected camera until a supervised recovery reconciles the two.
    CreditRollbackLost {
        /// The camera whose ledger is over-debited in the journal.
        camera: String,
        /// First slot of the un-credited range.
        lo: u64,
        /// One past the last slot of the un-credited range.
        hi: u64,
        /// The ε that stays debited in the journal (IEEE-754 bits, so the
        /// report round-trips bit-exactly like every other f64 on the wire).
        epsilon_bits: u64,
        /// The store error that refused the credit.
        error: String,
    },
    /// The directory fsync after renaming a fresh snapshot into place
    /// failed: the snapshot bytes are durable but the *rename* may not be —
    /// a crash could resurrect the previous snapshot with no trace. The
    /// idempotent-seq rule keeps that correct (the surviving log replays
    /// against the old snapshot), but the operator loses the space the
    /// checkpoint was supposed to reclaim and should check the disk.
    SnapshotDirSyncFailed {
        /// The store directory whose fsync failed.
        dir: String,
        /// The underlying I/O error.
        error: String,
    },
}

/// What recovery did, for operators and tests.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RecoveryReport {
    /// Sequence watermark of the loaded snapshot (0 if none).
    pub snapshot_seq: u64,
    /// Log records applied on top of the snapshot.
    pub records_replayed: u64,
    /// Log records skipped as stale (idempotent replay).
    pub stale_skipped: u64,
    /// Bytes dropped from a torn tail (0 if the log ended cleanly).
    pub torn_tail_bytes: u64,
    /// Notable events, deduplicated by kind.
    pub events: Vec<RecoveryEvent>,
    /// Typed warnings about state the store could not make durable. The
    /// serving layer drains its accumulated warnings into the report a
    /// supervised recovery returns.
    pub warnings: Vec<RecoveryWarning>,
}

/// The state and report [`WalStore::open`] hands back.
#[derive(Debug, Clone, PartialEq)]
pub struct Recovered {
    /// The recovered durable state.
    pub state: StoreState,
    /// What recovery did to produce it.
    pub report: RecoveryReport,
}

/// Tuning knobs for [`WalStore::open_with`].
#[derive(Debug, Clone, Copy)]
pub struct WalOptions {
    /// Snapshot (and truncate the log) after this many appended records.
    pub snapshot_every: u64,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions { snapshot_every: 4096 }
    }
}

/// The bit-exact inverse of one staged record's shadow apply. Captured at
/// stage time (before the apply) and replayed — newest first — when a batch
/// flush fails, so a doomed batch leaves the shadow state exactly as if none
/// of its records had ever staged. Slot values are saved as raw `f64`s, not
/// re-derived arithmetically: `(s - ε) + ε` is not guaranteed to restore the
/// original bits, and the property suite compares ledgers bit-for-bit.
enum Undo {
    /// Restore saved slot ranges (inverse of `Admit` / `Credit`).
    SavedSlots {
        /// `(camera, first slot, saved values)` per mutated range.
        saved: Vec<(String, u64, Vec<f64>)>,
    },
    /// Shrink a live timeline back (inverse of `Extend`).
    Extend { camera: String, prev_duration_secs: f64, prev_len: usize },
    /// Restore a standing query's firing watermark (inverse of
    /// `StandingFired` / `ArmStanding`).
    Standing { name: String, prev_next_start_secs: f64 },
    /// Whole-state restore for the rare record kinds (registrations,
    /// snapshot-only records) where a targeted undo is not worth the code.
    Full(Box<StoreState>),
}

/// Capture the undo for `record` against the state it is about to mutate.
/// Must be called *after* [`StoreState::check`] passed, so every referenced
/// camera/range is known to exist.
fn capture_undo(state: &StoreState, record: &Record) -> Undo {
    match record {
        Record::Admit { debits, .. } => Undo::SavedSlots {
            saved: debits
                .iter()
                .map(|d| {
                    let values = state
                        .cameras
                        .get(&d.camera)
                        .and_then(|c| c.slots.get(d.lo as usize..d.hi as usize))
                        .map(<[f64]>::to_vec)
                        .unwrap_or_default();
                    (d.camera.clone(), d.lo, values)
                })
                .collect(),
        },
        Record::Credit { camera, lo, hi, .. } => Undo::SavedSlots {
            saved: vec![(
                camera.clone(),
                *lo,
                state
                    .cameras
                    .get(camera)
                    .and_then(|c| c.slots.get(*lo as usize..*hi as usize))
                    .map(<[f64]>::to_vec)
                    .unwrap_or_default(),
            )],
        },
        Record::Extend { camera, .. } => match state.cameras.get(camera) {
            Some(c) => Undo::Extend {
                camera: camera.clone(),
                prev_duration_secs: c.duration_secs,
                prev_len: c.slots.len(),
            },
            None => Undo::Full(Box::new(state.clone())),
        },
        Record::StandingFired { name, .. } | Record::ArmStanding { name, .. } => match state.standing.get(name) {
            Some(s) => Undo::Standing { name: name.clone(), prev_next_start_secs: s.next_start_secs },
            None => Undo::Full(Box::new(state.clone())),
        },
        _ => Undo::Full(Box::new(state.clone())),
    }
}

/// Replay one captured undo against `state`.
fn undo_one(state: &mut StoreState, undo: Undo) {
    match undo {
        Undo::SavedSlots { saved } => {
            for (camera, lo, values) in saved.into_iter().rev() {
                if let Some(cam) = state.cameras.get_mut(&camera) {
                    let lo = lo as usize;
                    if let Some(dst) = cam.slots.get_mut(lo..lo + values.len()) {
                        dst.copy_from_slice(&values);
                    }
                }
            }
        }
        Undo::Extend { camera, prev_duration_secs, prev_len } => {
            if let Some(cam) = state.cameras.get_mut(&camera) {
                cam.slots.truncate(prev_len);
                cam.duration_secs = prev_duration_secs;
            }
        }
        Undo::Standing { name, prev_next_start_secs } => {
            if let Some(st) = state.standing.get_mut(&name) {
                st.next_start_secs = prev_next_start_secs;
            }
        }
        Undo::Full(prev) => *state = *prev,
    }
}

/// One staged-but-unflushed record: its waiter ticket, assigned sequence
/// number and the undo that reverses its shadow apply.
struct Staged {
    ticket: u64,
    seq: u64,
    undo: Undo,
}

/// A claim on the outcome of one staged record. Obtained from
/// [`WalStore::stage`]; redeemed — exactly once, by value — with
/// [`WalStore::wait_commit`]. Dropping a ticket without waiting leaks its
/// outcome slot until the next [`WalStore::reopen`]; every caller in this
/// workspace waits.
#[derive(Debug)]
pub struct CommitTicket {
    ticket: u64,
    seq: u64,
}

impl CommitTicket {
    /// The WAL sequence number the staged record will carry.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

struct Inner {
    /// The open log handle. `None` only while a group-commit leader owns it
    /// (the `flushing` flag is set for exactly that window).
    file: Option<Box<dyn VfsFile>>,
    state: StoreState,
    next_seq: u64,
    records_since_snapshot: u64,
    /// Length of wal.log up to the last fully flushed batch. A failed
    /// write truncates back here so a partial frame can never sit *under*
    /// later successful appends (recovery would misparse the stream).
    log_len: u64,
    /// Set when the in-memory durability assumption can no longer be trusted:
    /// a failed fsync (the page cache may or may not hold the frames — there
    /// is no way to know, and retrying the fsync cannot un-fail the first
    /// one), a failed write whose rollback truncate also failed, or a
    /// post-snapshot log reset that failed. While set, every stage and
    /// checkpoint returns [`StoreError::Wedged`] until [`WalStore::reopen`]
    /// re-reads the log from disk.
    wedged: Option<String>,
    /// A failed *automatic* checkpoint stashed here instead of failing the
    /// batch that triggered it (the batch itself was durable). The next
    /// quiescent flush retries the checkpoint; operators can inspect it via
    /// [`WalStore::last_checkpoint_error`].
    last_checkpoint_error: Option<StoreError>,
    /// Typed warnings about partial durability (e.g. a snapshot rename whose
    /// directory fsync failed), accumulated until the serving layer drains
    /// them via [`WalStore::drain_warnings`] into a recovery report.
    warnings: Vec<RecoveryWarning>,
    /// Records staged for the next commit batch, in ticket (= seq) order.
    staged: Vec<Staged>,
    /// The staged records' encoded frames, concatenated in seq order — the
    /// exact bytes the next flush writes.
    buf: Vec<u8>,
    /// Next waiter ticket to mint. Monotonic and never rolled back (unlike
    /// `next_seq`), so a retried record can never alias an older waiter's
    /// outcome.
    next_ticket: u64,
    /// Every ticket at or below this watermark whose outcome is not in
    /// `failed` committed durably.
    durable_ticket: u64,
    /// Outcomes of failed tickets, removed by their waiter.
    failed: HashMap<u64, StoreError>,
    /// True while a leader owns `file` and is writing a batch outside the
    /// lock.
    flushing: bool,
}

/// What [`recover`] hands back: the open log file positioned at its end plus
/// the rebuilt state.
struct Recovery {
    file: Box<dyn VfsFile>,
    state: StoreState,
    applied_seq: u64,
    log_len: u64,
    report: RecoveryReport,
}

/// An open write-ahead log: the append side of the durability subsystem.
///
/// Appends go through group commit (see the module docs): staging is
/// serialized by an internal mutex, the flush happens outside it, and the
/// store applies every record to its own [`StoreState`] shadow as it stages,
/// so snapshots are cut from state that is — by construction — exactly what
/// recovery would rebuild.
pub struct WalStore {
    /// Lock-order audit: `wal-inner` — a leaf in the declared global order
    /// (analyzer.toml). Held for staging and batch bookkeeping only; the
    /// batch write + fsync runs with the lock *released* (the group-commit
    /// leader owns the file handle via `Inner::file.take()` while
    /// `Inner::flushing` is set), so staging — which the serving layer does
    /// under the per-shard admission gate — never blocks behind an in-flight
    /// fsync.
    inner: Mutex<Inner>,
    /// Wakes commit waiters when a batch resolves and flush/checkpoint
    /// waiters when `flushing` clears.
    cond: Condvar,
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    fsync: FsyncPolicy,
    snapshot_every: u64,
}

impl fmt::Debug for WalStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WalStore").field("dir", &self.dir).field("fsync", &self.fsync).finish_non_exhaustive()
    }
}

impl WalStore {
    /// Open (or create) the store at `dir`, recovering any existing state.
    pub fn open(dir: impl Into<PathBuf>, fsync: FsyncPolicy) -> Result<(WalStore, Recovered), StoreError> {
        Self::open_with(dir, fsync, WalOptions::default())
    }

    /// [`WalStore::open`] with explicit tuning knobs, against the real
    /// filesystem ([`StdVfs`]).
    pub fn open_with(
        dir: impl Into<PathBuf>,
        fsync: FsyncPolicy,
        options: WalOptions,
    ) -> Result<(WalStore, Recovered), StoreError> {
        Self::open_with_vfs(dir, fsync, options, Arc::new(StdVfs))
    }

    /// [`WalStore::open_with`] against an explicit [`Vfs`] — the injection
    /// point for [`crate::vfs::FaultVfs`] in tests and chaos harnesses.
    pub fn open_with_vfs(
        dir: impl Into<PathBuf>,
        fsync: FsyncPolicy,
        options: WalOptions,
        vfs: Arc<dyn Vfs>,
    ) -> Result<(WalStore, Recovered), StoreError> {
        let dir = dir.into();
        let rec = recover(vfs.as_ref(), &dir)?;
        let recovered = Recovered { state: rec.state.clone(), report: rec.report };
        let store = WalStore {
            inner: Mutex::new(Inner {
                file: Some(rec.file),
                state: rec.state,
                next_seq: rec.applied_seq + 1,
                records_since_snapshot: 0,
                log_len: rec.log_len,
                wedged: None,
                last_checkpoint_error: None,
                warnings: Vec::new(),
                staged: Vec::new(),
                buf: Vec::new(),
                next_ticket: 1,
                durable_ticket: 0,
                failed: HashMap::new(),
                flushing: false,
            }),
            cond: Condvar::new(),
            vfs,
            dir,
            fsync,
            snapshot_every: options.snapshot_every.max(1),
        };
        Ok((store, recovered))
    }

    fn lock_inner(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().expect("wal store lock poisoned") // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
    }

    /// Supervised recovery on a live (typically wedged) handle: re-read the
    /// log and snapshot from disk, rebuild the shadow state from what is
    /// *actually* durable, and clear the wedge.
    ///
    /// The returned report describes the fresh recovery; its events include
    /// [`RecoveryEvent::StoreReopened`] with how many previously-acknowledged
    /// appends the on-disk log turned out to be missing. Callers reconcile
    /// their in-memory ledgers against [`Recovered::state`] — because debits
    /// happen only after an `Ok` append, a lost record can only make the
    /// durable state *more* debited than necessary, never less.
    pub fn reopen(&self) -> Result<Recovered, StoreError> {
        let mut inner = self.lock_inner();
        while inner.flushing {
            inner = self.cond.wait(inner).expect("wal store lock poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        }
        // Fail any staged-but-unflushed records: their frames never reached
        // the log, the recovery below supersedes their shadow applies, and
        // their waiters must not be left hanging.
        let pending = std::mem::take(&mut inner.staged);
        inner.buf.clear();
        if let Some(first) = pending.first() {
            // Roll the sequence counter back so `highest_acked` below counts
            // only records whose commit was actually acknowledged.
            inner.next_seq = first.seq;
        }
        for s in pending {
            inner
                .failed
                .insert(s.ticket, StoreError::Wedged { reason: "store reopened while the record awaited group commit".into() });
        }
        // Highest sequence this handle ever acknowledged as committed.
        let highest_acked = inner.next_seq.saturating_sub(1);
        let mut rec = recover(self.vfs.as_ref(), &self.dir)?;
        let lost = highest_acked.saturating_sub(rec.applied_seq);
        rec.report.events.push(RecoveryEvent::StoreReopened { lost_records: lost });
        let recovered = Recovered { state: rec.state.clone(), report: rec.report };
        inner.file = Some(rec.file);
        inner.state = rec.state;
        // Resume the sequence space from the *recovered* watermark: any acked
        // seq past it is provably absent from the durable log (that is what
        // made it "lost"), and skipping those numbers would leave a sequence
        // gap that every future recovery refuses.
        inner.next_seq = rec.applied_seq + 1;
        inner.records_since_snapshot = 0;
        inner.log_len = rec.log_len;
        inner.wedged = None;
        inner.last_checkpoint_error = None;
        self.cond.notify_all();
        Ok(recovered)
    }

    /// Stage one record for the next commit batch: validate it against the
    /// shadow, assign its sequence number, encode its frame, and apply it to
    /// the shadow (capturing an undo in case the batch fails). Returns a
    /// [`CommitTicket`] the caller **must** redeem with
    /// [`WalStore::wait_commit`] before treating the record as durable.
    ///
    /// The serving layer stages under its per-shard admission gate (cheap:
    /// no I/O happens here) and waits *outside* it, so one shard's fsync
    /// never serializes another's admissions.
    pub fn stage(&self, record: Record) -> Result<CommitTicket, StoreError> {
        let mut inner = self.lock_inner();
        if let Some(reason) = &inner.wedged {
            return Err(StoreError::Wedged { reason: reason.clone() });
        }
        // Validate against the shadow first: a record the state would refuse
        // (a caller bug) must not reach the log at all — once durable, it
        // would fail every future recovery.
        inner
            .state
            .check(&record)
            .map_err(|reason| StoreError::InvalidRecord { offset: 0, reason: format!("record refused by state: {reason}") })?;
        let seq = inner.next_seq;
        let frame = encode_frame(seq, &record);
        let undo = capture_undo(&inner.state, &record);
        if let Err(reason) = inner.state.apply(&record) {
            // check() accepted the record but apply() refused it — the two
            // disagree. Nothing was staged (the frame never entered the
            // batch buffer), but the disagreement means no further record
            // can be trusted: wedge and surface a typed error instead of
            // panicking mid-serve.
            inner.wedged = Some(format!("record accepted by check but refused by apply: {reason}"));
            return Err(StoreError::InvalidRecord {
                offset: 0,
                reason: format!("record accepted by check but refused by apply: {reason}"),
            });
        }
        inner.buf.extend_from_slice(&frame);
        inner.next_seq = seq + 1;
        let ticket = inner.next_ticket;
        inner.next_ticket += 1;
        inner.staged.push(Staged { ticket, seq, undo });
        Ok(CommitTicket { ticket, seq })
    }

    /// Block until the staged record behind `ticket` is committed (or its
    /// batch fails). The first waiter to find no flush in flight becomes the
    /// batch leader and performs the write + fsync itself; everyone else
    /// sleeps on the condvar until the leader publishes outcomes.
    pub fn wait_commit(&self, ticket: CommitTicket) -> Result<(), StoreError> {
        let mut inner = self.lock_inner();
        loop {
            if let Some(e) = inner.failed.remove(&ticket.ticket) {
                return Err(e);
            }
            if inner.durable_ticket >= ticket.ticket {
                return Ok(());
            }
            if !inner.flushing {
                if inner.staged.is_empty() {
                    // Unreachable: an unresolved ticket's record is staged
                    // until some flush resolves it. Refuse instead of
                    // spinning forever.
                    return Err(StoreError::Io {
                        context: "waiting for a group commit".into(),
                        message: "commit ticket has no staged record".into(),
                    });
                }
                inner = self.flush_leading(inner);
                continue;
            }
            inner = self.cond.wait(inner).expect("wal store lock poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
        }
    }

    /// Append one record, making it durable per the fsync policy, and fold it
    /// into the shadow state: [`WalStore::stage`] + [`WalStore::wait_commit`]
    /// in one call. Callers apply the corresponding in-memory mutation only
    /// **after** this returns `Ok` — that ordering is what the
    /// never-under-debit invariant rests on.
    ///
    /// ## Failure semantics
    ///
    /// * A failed **write** rolls the file back to the last good frame,
    ///   undoes the batch's shadow applies, and returns a transient
    ///   [`StoreError::Io`]; the store stays usable and the caller may
    ///   retry. If the rollback itself fails, the store wedges (appending
    ///   after a partial frame would corrupt the log).
    /// * A failed **fsync** wedges the store and returns
    ///   [`StoreError::Wedged`]. The frames reached the kernel but their
    ///   durability is unknowable — the page cache may have dropped them,
    ///   kept them, or persisted them — and a *later* successful fsync says
    ///   nothing about the earlier failed one. No record in the batch is
    ///   acknowledged and the shadow is restored; only [`WalStore::reopen`]
    ///   (which re-reads what actually survived) can resume appends.
    pub fn append(&self, record: Record) -> Result<(), StoreError> {
        let ticket = self.stage(record)?;
        self.wait_commit(ticket)
    }

    /// Lead one commit batch: take the staged records, frames and file
    /// handle; write + fsync with the lock released; re-lock and publish
    /// every waiter's outcome. Returns the re-acquired guard.
    fn flush_leading<'a>(&'a self, mut inner: MutexGuard<'a, Inner>) -> MutexGuard<'a, Inner> {
        if inner.flushing || inner.staged.is_empty() {
            return inner;
        }
        inner.flushing = true;
        let batch = std::mem::take(&mut inner.staged);
        let buf = std::mem::take(&mut inner.buf);
        let rollback_to = inner.log_len;
        let Some(mut file) = inner.file.take() else {
            // `flushing == false` implies the handle is present; reaching
            // here is a harness bug. Wedge rather than panic on the serving
            // path.
            let reason = "group-commit leader found the log handle missing".to_string();
            inner.wedged = Some(reason.clone());
            fail_staged(&mut inner, batch, StoreError::Wedged { reason });
            inner.flushing = false;
            self.cond.notify_all();
            return inner;
        };
        drop(inner);

        // The batch I/O: one sequential write of every frame, then (policy
        // permitting) one fsync covering them all.
        let write_res = file.write_all(&buf).map_err(io_err("appending a WAL record"));
        let sync_res = if write_res.is_ok() && self.fsync == FsyncPolicy::Always { file.sync_data() } else { Ok(()) };

        let mut inner = self.lock_inner();
        inner.file = Some(file);
        match (write_res, sync_res) {
            (Ok(()), Ok(())) => {
                inner.log_len += buf.len() as u64;
                inner.records_since_snapshot += batch.len() as u64;
                if let Some(last) = batch.last() {
                    inner.durable_ticket = inner.durable_ticket.max(last.ticket);
                }
                // Auto-checkpoint only at a quiescent flush (nothing staged
                // behind this batch): the snapshot watermark is next_seq - 1,
                // and a staged-but-unflushed record folded into a snapshot
                // could be rolled back later — leaving the snapshot claiming
                // a seq the log will reuse, which replay would then skip.
                if inner.records_since_snapshot >= self.snapshot_every
                    && inner.staged.is_empty()
                    && inner.wedged.is_none()
                {
                    if let Err(e) = self.checkpoint_locked(&mut inner) {
                        // The batch itself is durable, so its waiters may
                        // debit against it — failing them would force an
                        // unnecessary refusal. Stash the checkpoint error
                        // (the counter was not reset, so a later quiescent
                        // flush retries).
                        inner.last_checkpoint_error = Some(e);
                    }
                }
            }
            (Err(e), _) => {
                // Roll the file back to the last good frame so partial bytes
                // can never end up *under* later successful appends. If even
                // that fails, wedge the store: appending after garbage would
                // corrupt the log for everyone.
                let rollback = inner
                    .file
                    .as_mut()
                    .map(|f| f.set_len(rollback_to).and_then(|()| f.seek(SeekFrom::Start(rollback_to)).map(|_| ())));
                let err = if matches!(rollback, Some(Ok(()))) {
                    e
                } else {
                    let reason =
                        "a failed append could not be rolled back; the log tail may hold a partial frame".to_string();
                    inner.wedged = Some(reason.clone());
                    StoreError::Wedged { reason }
                };
                fail_staged(&mut inner, batch, err);
            }
            (Ok(()), Err(e)) => {
                // No rollback of the file: the write already reached the
                // kernel, and after a failed fsync there is no way to know
                // whether those bytes are on disk. Do NOT acknowledge any
                // waiter in the batch, and restore the shadow — reopen()
                // will re-read the log and adopt the frames iff they
                // survived (at worst an over-debit, never an under-debit).
                let reason = format!("fsync failed ({e}); durability of the last frame is unknowable");
                inner.wedged = Some(reason.clone());
                fail_staged(&mut inner, batch, StoreError::Wedged { reason });
            }
        }
        inner.flushing = false;
        self.cond.notify_all();
        inner
    }

    /// Write a snapshot of the current state and truncate the log, bounding
    /// the next recovery's replay cost. Also invoked automatically every
    /// [`WalOptions::snapshot_every`] committed records (at the next
    /// quiescent flush). Any staged batch is flushed first.
    ///
    /// A failed snapshot *write* or *rename* leaves the previous snapshot and
    /// the log fully intact (the snapshot is staged at `snapshot.tmp` and
    /// renamed only once durable) and returns a transient error. Only a
    /// failure *after* the rename — resetting the log — wedges the store.
    pub fn checkpoint(&self) -> Result<(), StoreError> {
        let mut inner = self.lock_inner();
        loop {
            if let Some(reason) = &inner.wedged {
                return Err(StoreError::Wedged { reason: reason.clone() });
            }
            if inner.flushing {
                inner = self.cond.wait(inner).expect("wal store lock poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
                continue;
            }
            if !inner.staged.is_empty() {
                inner = self.flush_leading(inner);
                continue;
            }
            break;
        }
        self.checkpoint_locked(&mut inner)
    }

    /// `Some(reason)` while the store refuses appends pending a supervised
    /// [`WalStore::reopen`].
    pub fn is_wedged(&self) -> Option<String> {
        self.lock_inner().wedged.clone()
    }

    /// The error from the most recent *automatic* checkpoint attempt, if it
    /// failed. The triggering batch still committed (its records are
    /// durable); a later quiescent flush retries the checkpoint.
    pub fn last_checkpoint_error(&self) -> Option<StoreError> {
        self.lock_inner().last_checkpoint_error.clone()
    }

    /// Drain the store's accumulated durability warnings (e.g.
    /// [`RecoveryWarning::SnapshotDirSyncFailed`]). The serving layer folds
    /// them into the report a supervised recovery returns; draining resets
    /// the buffer.
    pub fn drain_warnings(&self) -> Vec<RecoveryWarning> {
        std::mem::take(&mut self.lock_inner().warnings)
    }

    /// A copy of the shadow state (what recovery would rebuild right now,
    /// plus any records staged for the in-flight batch).
    pub fn state(&self) -> StoreState {
        self.lock_inner().state.clone()
    }

    /// The sequence number the next staged record will carry.
    pub fn next_seq(&self) -> u64 {
        self.lock_inner().next_seq
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn checkpoint_locked(&self, inner: &mut Inner) -> Result<(), StoreError> {
        let tmp = self.dir.join("snapshot.tmp");
        let records = inner.state.snapshot_records(inner.next_seq.saturating_sub(1));
        let staged = (|| {
            let mut f = self.vfs.create(&tmp).map_err(io_err("creating snapshot.tmp"))?;
            for record in &records {
                // Snapshot records are positional, not part of the log's
                // sequence space; they carry seq 0.
                f.write_all(&encode_frame(0, record)).map_err(io_err("writing snapshot.tmp"))?;
            }
            // The snapshot must be durable before it can supersede the log,
            // regardless of the append-path fsync policy.
            f.sync_all().map_err(io_err("fsyncing snapshot.tmp"))
        })();
        if let Err(e) = staged {
            // Nothing was renamed: the previous snapshot and the whole log
            // are untouched, so this is transient — remove the half-written
            // stage (best-effort; recovery also cleans orphans) and retry
            // later.
            let _ = self.vfs.remove_file(&tmp);
            return Err(e);
        }
        if let Err(e) = self.vfs.rename(&tmp, &self.dir.join("snapshot.bin")) {
            let _ = self.vfs.remove_file(&tmp);
            return Err(io_err("renaming snapshot.tmp into place")(e));
        }
        // Make the rename itself durable. A failure here is *survivable* —
        // a crash before the rename reaches disk replays the old log against
        // the old snapshot, and the idempotent-seq rule makes that
        // equivalent — but it must not be *silent*: the checkpoint proceeds
        // (the snapshot is in place and the common case is that the rename
        // is durable anyway), and a typed warning records that the rename's
        // durability is unproven until the next successful directory fsync.
        if let Err(e) = self.vfs.sync_dir(&self.dir) {
            inner.warnings.push(RecoveryWarning::SnapshotDirSyncFailed {
                dir: self.dir.display().to_string(),
                error: e.to_string(),
            });
        }
        let reset = match inner.file.as_mut() {
            Some(f) => f
                .set_len(0)
                .map_err(io_err("truncating wal.log after snapshot"))
                .and_then(|()| f.seek(SeekFrom::Start(0)).map(|_| ()).map_err(io_err("rewinding wal.log after snapshot")))
                .and_then(|()| f.sync_data().map_err(io_err("fsyncing truncated wal.log"))),
            None => Err(StoreError::Io {
                context: "truncating wal.log after snapshot".into(),
                message: "log handle owned by an in-flight flush".into(),
            }),
        };
        if let Err(e) = reset {
            // The snapshot is already authoritative, but the log handle is in
            // an indeterminate position/length — further appends could land
            // past a hole or under stale frames. Wedge; reopen() re-reads and
            // resumes cleanly (the snapshot makes any surviving log records
            // stale, so nothing is lost).
            let reason = format!("post-snapshot log reset failed: {e}");
            inner.wedged = Some(reason.clone());
            return Err(StoreError::Wedged { reason });
        }
        inner.log_len = 0;
        inner.records_since_snapshot = 0;
        inner.last_checkpoint_error = None;
        Ok(())
    }
}

/// Fail every outstanding staged record — the flushed `batch` plus anything
/// staged behind it — after a flush failure: undo their shadow applies in
/// reverse stage order (bit-for-bit, via the captured undos), roll the
/// sequence counter back to the batch's first seq (keeping the on-disk
/// sequence space contiguous for retries), and record `err` as every
/// waiter's outcome.
fn fail_staged(inner: &mut Inner, batch: Vec<Staged>, err: StoreError) {
    let pending = std::mem::take(&mut inner.staged);
    inner.buf.clear();
    if let Some(first) = batch.first() {
        inner.next_seq = first.seq;
    }
    // Pending records staged after the batch: undo newest-first, then the
    // batch itself newest-first — exact reverse of stage order.
    for s in pending.into_iter().rev() {
        undo_one(&mut inner.state, s.undo);
        inner.failed.insert(s.ticket, err.clone());
    }
    for s in batch.into_iter().rev() {
        undo_one(&mut inner.state, s.undo);
        inner.failed.insert(s.ticket, err.clone());
    }
}

/// Read the store directory through `vfs` and rebuild its durable state:
/// snapshot (if any) as the base, then the log replayed idempotently on top.
/// Shared by [`WalStore::open_with_vfs`] (cold start) and
/// [`WalStore::reopen`] (supervised recovery on a live handle).
fn recover(vfs: &dyn Vfs, dir: &Path) -> Result<Recovery, StoreError> {
    vfs.create_dir_all(dir).map_err(io_err("creating the store directory"))?;
    // An orphaned snapshot.tmp is a crash mid-snapshot: the rename never
    // happened, so the previous snapshot (if any) is still authoritative.
    let tmp = dir.join("snapshot.tmp");
    if vfs.exists(&tmp) {
        vfs.remove_file(&tmp).map_err(io_err("removing an orphaned snapshot.tmp"))?;
    }

    let mut state = StoreState::default();
    let mut report = RecoveryReport::default();
    let snapshot_path = dir.join("snapshot.bin");
    let mut applied_seq = 0u64;
    if vfs.exists(&snapshot_path) {
        let bytes = vfs.read(&snapshot_path).map_err(io_err("reading snapshot.bin"))?;
        applied_seq = load_snapshot(&bytes, &mut state)?;
        report.snapshot_seq = applied_seq;
        report.events.push(RecoveryEvent::SnapshotLoaded { last_seq: applied_seq });
    }

    let log_path = dir.join("wal.log");
    let mut file = vfs.open_rw(&log_path).map_err(io_err("opening wal.log"))?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes).map_err(io_err("reading wal.log"))?;

    let mut offset = 0usize;
    let mut saw_stale = false;
    loop {
        let remaining = bytes.len() - offset;
        if remaining == 0 {
            break;
        }
        // Classify the frame at `offset`. Appends write frames sequentially,
        // so a *crash* can only leave a prefix: a partial header, an
        // all-zero header (filesystem-preallocated bytes), or a correct
        // header whose payload runs past end-of-file. Those are torn tails —
        // the append was never acknowledged, the operation it describes
        // never happened, truncate and proceed. Anything else that fails to
        // parse is disk corruption: truncating it could silently drop later
        // records whose debits back released answers, so recovery refuses
        // with a typed error instead.
        let torn = |report: &mut RecoveryReport, file: &mut dyn VfsFile| -> Result<(), StoreError> {
            let dropped = (bytes.len() - offset) as u64;
            file.set_len(offset as u64).map_err(io_err("truncating the torn WAL tail"))?;
            report.torn_tail_bytes = dropped;
            report.events.push(RecoveryEvent::TornTailTruncated { offset: offset as u64, bytes: dropped });
            Ok(())
        };
        if remaining < FRAME_HEADER {
            torn(&mut report, &mut *file)?;
            break;
        }
        let Some((len, crc, len_field)) = header_at(&bytes, offset) else {
            // Unreachable given the FRAME_HEADER check above, but a header
            // the buffer cannot hold is by definition a torn tail.
            torn(&mut report, &mut *file)?;
            break;
        };
        if len == 0 && crc == 0 {
            // Preallocated-but-unwritten zeros: a torn append.
            torn(&mut report, &mut *file)?;
            break;
        }
        if len == 0 || len > MAX_PAYLOAD as usize {
            // A sequential append can never produce a complete header with a
            // zero or absurd length — this is a corrupted length field, and
            // everything after it is unreachable but may be valid. Refuse
            // rather than under-debit.
            return Err(StoreError::InvalidRecord {
                offset: offset as u64,
                reason: format!("implausible record length {len} (corrupted length field?)"),
            });
        }
        if remaining < FRAME_HEADER + len {
            torn(&mut report, &mut *file)?;
            break;
        }
        let Some(payload) = bytes.get(offset + FRAME_HEADER..offset + FRAME_HEADER + len) else {
            torn(&mut report, &mut *file)?;
            break;
        };
        // The CRC covers the length field too: an in-range length flip is
        // caught here instead of misparsing the stream.
        if crate::crc32::crc32_parts(&[len_field, payload]) != crc {
            return Err(StoreError::ChecksumMismatch { offset: offset as u64 });
        }
        let (seq, record) = decode_payload(payload)
            .map_err(|reason| StoreError::InvalidRecord { offset: offset as u64, reason })?;
        if seq <= applied_seq {
            report.stale_skipped += 1;
            if !saw_stale {
                saw_stale = true;
                report.events.push(RecoveryEvent::StaleRecordSkipped { seq });
            }
        } else if seq != applied_seq + 1 {
            return Err(StoreError::InvalidRecord {
                offset: offset as u64,
                reason: format!("sequence gap: expected {}, found {seq}", applied_seq + 1),
            });
        } else {
            state
                .apply(&record)
                .map_err(|reason| StoreError::InvalidRecord { offset: offset as u64, reason })?;
            applied_seq = seq;
            report.records_replayed += 1;
        }
        offset += FRAME_HEADER + len;
    }

    let log_len = file.seek(SeekFrom::End(0)).map_err(io_err("seeking to the end of wal.log"))?;
    Ok(Recovery { file, state, applied_seq, log_len, report })
}

/// Parse the frame header at `offset` without panicking: the payload length,
/// the stored CRC, and the raw length field (the CRC covers it). `None` when
/// the buffer cannot hold a full header — the caller classifies that (torn
/// tail vs corrupt snapshot).
fn header_at(bytes: &[u8], offset: usize) -> Option<(usize, u32, &[u8])> {
    let len_field = bytes.get(offset..offset + 4)?;
    let crc_field = bytes.get(offset + 4..offset + 8)?;
    let len = u32::from_le_bytes(len_field.try_into().ok()?) as usize;
    let crc = u32::from_le_bytes(crc_field.try_into().ok()?);
    Some((len, crc, len_field))
}

/// Parse a snapshot file into `state`; returns its sequence watermark.
fn load_snapshot(bytes: &[u8], state: &mut StoreState) -> Result<u64, StoreError> {
    let mut offset = 0usize;
    let mut last_seq = None;
    while offset < bytes.len() {
        let Some((len, crc, len_field)) = header_at(bytes, offset) else {
            return Err(StoreError::SnapshotCorrupt { reason: format!("partial frame header at byte {offset}") });
        };
        if len == 0 || len > MAX_PAYLOAD as usize {
            return Err(StoreError::SnapshotCorrupt { reason: format!("truncated record at byte {offset}") });
        }
        let Some(payload) = bytes.get(offset + FRAME_HEADER..offset + FRAME_HEADER + len) else {
            return Err(StoreError::SnapshotCorrupt { reason: format!("truncated record at byte {offset}") });
        };
        if crate::crc32::crc32_parts(&[len_field, payload]) != crc {
            return Err(StoreError::SnapshotCorrupt { reason: format!("checksum mismatch at byte {offset}") });
        }
        let (_, record) = decode_payload(payload)
            .map_err(|reason| StoreError::SnapshotCorrupt { reason: format!("at byte {offset}: {reason}") })?;
        if last_seq.is_none() {
            match record {
                Record::SnapshotHeader { last_seq: seq, .. } => last_seq = Some(seq),
                other => {
                    return Err(StoreError::SnapshotCorrupt {
                        reason: format!("snapshot does not start with a header (found {other:?})"),
                    })
                }
            }
        }
        state
            .apply(&record)
            .map_err(|reason| StoreError::SnapshotCorrupt { reason: format!("at byte {offset}: {reason}") })?;
        offset += FRAME_HEADER + len;
    }
    last_seq.ok_or(StoreError::SnapshotCorrupt { reason: "snapshot is empty".into() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::DebitRange;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

    fn temp_dir(tag: &str) -> PathBuf {
        let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("privid-wal-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn live_cam(name: &str) -> Record {
        Record::RegisterCamera {
            name: name.into(),
            generation: 0,
            live: true,
            slot_secs: 1.0,
            duration_secs: 0.0,
            initial_epsilon: 1.0,
            rho_secs: 30.0,
            k: 2,
        }
    }

    #[test]
    fn append_close_reopen_recovers_the_state() {
        let dir = temp_dir("reopen");
        let (store, recovered) = WalStore::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(recovered.state, StoreState::default());
        store.append(live_cam("c")).unwrap();
        store.append(Record::Extend { camera: "c".into(), live_edge_secs: 20.0 }).unwrap();
        store
            .append(Record::Admit { epsilon: 0.5, debits: vec![DebitRange { camera: "c".into(), lo: 0, hi: 7 }] })
            .unwrap();
        let live_state = store.state();
        drop(store);

        let (_store, recovered) = WalStore::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(recovered.state, live_state, "recovery rebuilds the shadow state exactly");
        assert_eq!(recovered.report.records_replayed, 3);
        assert_eq!(recovered.report.torn_tail_bytes, 0);
        assert_eq!(recovered.state.cameras["c"].slots[3], 0.5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_truncates_and_recovery_prefers_the_snapshot() {
        let dir = temp_dir("checkpoint");
        let (store, _) = WalStore::open(&dir, FsyncPolicy::Never).unwrap();
        store.append(live_cam("c")).unwrap();
        store.append(Record::Extend { camera: "c".into(), live_edge_secs: 10.0 }).unwrap();
        store.checkpoint().unwrap();
        assert_eq!(std::fs::metadata(dir.join("wal.log")).unwrap().len(), 0, "log truncated");
        // Appends after the snapshot land in the fresh log with continuing seqs.
        store
            .append(Record::Admit { epsilon: 0.25, debits: vec![DebitRange { camera: "c".into(), lo: 0, hi: 2 }] })
            .unwrap();
        let live_state = store.state();
        drop(store);
        let (store, recovered) = WalStore::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(recovered.report.snapshot_seq, 2);
        assert_eq!(recovered.report.records_replayed, 1, "only the post-snapshot record replays");
        assert_eq!(recovered.state, live_state);
        assert_eq!(store.next_seq(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn automatic_snapshots_bound_the_log() {
        let dir = temp_dir("auto");
        let (store, _) =
            WalStore::open_with(&dir, FsyncPolicy::Never, WalOptions { snapshot_every: 5 }).unwrap();
        store.append(live_cam("c")).unwrap();
        for i in 1..=20u64 {
            store.append(Record::Extend { camera: "c".into(), live_edge_secs: i as f64 }).unwrap();
        }
        let live_state = store.state();
        drop(store);
        let log_len = std::fs::metadata(dir.join("wal.log")).unwrap().len();
        assert!(log_len < 5 * 64, "auto-checkpoint keeps the log short, got {log_len} bytes");
        let (_s, recovered) = WalStore::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(recovered.state, live_state);
        assert!(recovered.report.snapshot_seq >= 20);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn orphaned_snapshot_tmp_is_ignored() {
        let dir = temp_dir("tmp");
        let (store, _) = WalStore::open(&dir, FsyncPolicy::Never).unwrap();
        store.append(live_cam("c")).unwrap();
        let live_state = store.state();
        drop(store);
        std::fs::write(dir.join("snapshot.tmp"), b"half-written garbage").unwrap();
        let (_s, recovered) = WalStore::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(recovered.state, live_state, "a crash mid-snapshot must not affect recovery");
        assert!(!dir.join("snapshot.tmp").exists(), "the orphan is cleaned up");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_appends_group_commit_with_contiguous_seqs() {
        let dir = temp_dir("group");
        let (store, _) = WalStore::open(&dir, FsyncPolicy::Always).unwrap();
        store.append(live_cam("c")).unwrap();
        store.append(Record::Extend { camera: "c".into(), live_edge_secs: 1000.0 }).unwrap();
        let store = std::sync::Arc::new(store);
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let store = std::sync::Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..50u64 {
                        let lo = t * 100 + i;
                        store
                            .append(Record::Admit {
                                epsilon: 0.001,
                                debits: vec![DebitRange { camera: "c".into(), lo, hi: lo + 1 }],
                            })
                            .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(store.next_seq(), 2 + 400 + 1, "every concurrent append got a unique contiguous seq");
        let live_state = store.state();
        drop(store);
        let (_s, recovered) = WalStore::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(recovered.state, live_state, "recovery after concurrent group commits is bit-for-bit");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stage_then_wait_commits_and_stage_failures_leave_state_untouched() {
        let dir = temp_dir("stage");
        let (store, _) = WalStore::open(&dir, FsyncPolicy::Always).unwrap();
        store.append(live_cam("c")).unwrap();
        let before = store.state();
        // A record the state refuses never stages and never perturbs the shadow.
        let err = store
            .stage(Record::Admit { epsilon: 0.5, debits: vec![DebitRange { camera: "ghost".into(), lo: 0, hi: 1 }] })
            .unwrap_err();
        assert!(matches!(err, StoreError::InvalidRecord { .. }));
        assert_eq!(store.state(), before);
        // A staged record is already visible in the shadow, and commits on wait.
        let ticket = store
            .stage(Record::Admit { epsilon: 0.5, debits: vec![DebitRange { camera: "c".into(), lo: 0, hi: 1 }] })
            .unwrap();
        assert_eq!(ticket.seq(), 2);
        assert_eq!(store.state().cameras["c"].slots[0], 0.5);
        store.wait_commit(ticket).unwrap();
        drop(store);
        let (_s, recovered) = WalStore::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(recovered.state.cameras["c"].slots[0], 0.5);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
