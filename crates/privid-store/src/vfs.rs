//! The storage virtual filesystem: every filesystem touch the durability
//! subsystem makes goes through the [`Vfs`] trait.
//!
//! The WAL's correctness argument ("never under-debit, even across crashes")
//! rests on assumptions about what the filesystem did — a write either
//! happened or it didn't, an fsync that returned `Ok` made the data durable,
//! a rename was atomic. Real disks violate those assumptions in bounded,
//! well-known ways: `EIO` on a write, short writes, `ENOSPC`, fsync
//! failures whose page-cache aftermath is undefined ("fsyncgate"), rename
//! errors mid-snapshot, and read-side bit rot. This module makes the
//! boundary explicit so those failure modes can be *injected* and the WAL's
//! responses proven by test instead of assumed:
//!
//! * [`StdVfs`] — the production implementation over `std::fs`, a thin
//!   zero-logic passthrough (the bench suite pins its overhead at ≈0).
//! * [`FaultVfs`] — a decorator executing a *fault plan*: scripted faults
//!   ("fail the 3rd write with `ENOSPC`") for deterministic regression
//!   tests, and seeded probabilistic plans ([`FaultProfile`]) for the chaos
//!   harness. Faults are injected only while the plan is [armed]; the
//!   injection RNG is the workspace's deterministic `StdRng`, so a chaos
//!   schedule is a pure function of its seed.
//!
//! ## The injection contract
//!
//! Every fault surfaces as an ordinary `std::io::Error` (or, for
//! [`FaultKind::CorruptRead`], as silently corrupted read bytes — the one
//! failure mode a real disk does not announce). The WAL must treat each
//! exactly as it would the real thing:
//!
//! * a failed or short **write** never happened durably — the store rolls
//!   the log back to the previous frame boundary and stays usable;
//! * a failed **fsync** leaves the page cache in an *unknowable* state — the
//!   store wedges ([`crate::StoreError::Wedged`]) until a supervised
//!   [`crate::WalStore::reopen`] re-reads the log from disk;
//! * a failed **rename** leaves the previous snapshot authoritative;
//! * **corrupt reads** are caught by the frame CRCs and refused with typed
//!   errors, never silently applied.
//!
//! [armed]: FaultVfs::arm

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An open file handle behind the [`Vfs`] boundary. The subset of
/// `std::fs::File` the WAL uses — each method maps 1:1 to its `std`
/// namesake.
pub trait VfsFile: Send {
    /// Read the remainder of the file into `buf`; returns bytes read.
    fn read_to_end(&mut self, buf: &mut Vec<u8>) -> io::Result<usize>;
    /// Write all of `buf` at the current cursor.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flush file *data* to stable storage (`fdatasync`).
    fn sync_data(&mut self) -> io::Result<()>;
    /// Flush data and metadata to stable storage (`fsync`).
    fn sync_all(&mut self) -> io::Result<()>;
    /// Truncate (or extend) the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
    /// Move the cursor; returns the new position.
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64>;
}

/// Every filesystem operation the durability subsystem performs. The WAL
/// never touches `std::fs` directly; it goes through an `Arc<dyn Vfs>` so a
/// test (or the chaos harness) can substitute [`FaultVfs`].
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Create `path` and every missing parent directory.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Open `path` for reading and appending, creating it if absent and
    /// *never* truncating (the WAL's log-open mode).
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Create (or truncate) `path` for writing (the snapshot-tmp mode).
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Read the whole file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Atomically rename `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Remove the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Whether a file exists at `path`.
    fn exists(&self, path: &Path) -> bool;
    /// Fsync the *directory* at `path`, making renames within it durable.
    /// Platform-dependent; callers treat failures as best-effort.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
}

// ---------------------------------------------------------------------------
// StdVfs
// ---------------------------------------------------------------------------

/// The production [`Vfs`]: a zero-logic passthrough to `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdVfs;

impl VfsFile for File {
    fn read_to_end(&mut self, buf: &mut Vec<u8>) -> io::Result<usize> {
        Read::read_to_end(self, buf)
    }
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        Write::write_all(self, buf)
    }
    fn sync_data(&mut self) -> io::Result<()> {
        File::sync_data(self)
    }
    fn sync_all(&mut self) -> io::Result<()> {
        File::sync_all(self)
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        File::set_len(self, len)
    }
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        Seek::seek(self, pos)
    }
}

impl Vfs for StdVfs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        Ok(Box::new(file))
    }
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(File::create(path)?))
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        File::open(path)?.sync_all()
    }
}

// ---------------------------------------------------------------------------
// FaultVfs
// ---------------------------------------------------------------------------

/// What kind of failure a fault injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails with `EIO` and has no effect.
    Eio,
    /// The operation fails with `ENOSPC` and has no effect.
    Enospc,
    /// A write persists only a prefix of its bytes, then fails with `EIO`
    /// (what a crash or full disk mid-`write(2)` leaves behind).
    ShortWrite,
    /// An `fsync`/`fdatasync` fails with `EIO`. Whether the preceding writes
    /// reached disk is deliberately unknowable — the fsyncgate semantics the
    /// WAL must wedge on.
    FsyncFailure,
    /// A rename fails with `EIO`; the source and destination are untouched.
    RenameFailure,
    /// A read succeeds but returns bytes with one bit flipped.
    CorruptRead,
}

/// Which operation class a scripted fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// `VfsFile::write_all`.
    Write,
    /// `VfsFile::sync_data` / `sync_all` (file fsyncs only; directory fsyncs
    /// are the separate [`FaultOp::DirSync`] class so that adding a
    /// directory-sync fault never shifts the positions of a script written
    /// against file-fsync counts).
    Fsync,
    /// `Vfs::rename`.
    Rename,
    /// `Vfs::read` and `VfsFile::read_to_end`.
    Read,
    /// `VfsFile::set_len`.
    Truncate,
    /// `Vfs::open_rw` / `Vfs::create`.
    Open,
    /// `Vfs::sync_dir` — the durability point of a rename (e.g. a snapshot
    /// superseding the log). Scripted-only: [`FaultProfile`] has no
    /// probability for it.
    DirSync,
}

/// Per-operation fault probabilities for a seeded random plan. All default
/// to zero; the chaos harness derives a profile from its schedule seed.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultProfile {
    /// Probability a write fails (uniformly `Eio` / `Enospc` / `ShortWrite`).
    pub write_fail: f64,
    /// Probability a file fsync fails ([`FaultKind::FsyncFailure`]).
    pub fsync_fail: f64,
    /// Probability a rename fails ([`FaultKind::RenameFailure`]).
    pub rename_fail: f64,
    /// Probability a read returns corrupted bytes ([`FaultKind::CorruptRead`]).
    pub read_corrupt: f64,
    /// Probability a truncate fails with `EIO`.
    pub truncate_fail: f64,
}

/// One scripted fault: fail occurrences `[at, at + count)` (1-based, per
/// operation class) with `kind`.
#[derive(Debug, Clone, Copy)]
struct ScriptedFault {
    op: FaultOp,
    at: u64,
    count: u64,
    kind: FaultKind,
}

/// Counters of how many operations of each class the plan has observed.
#[derive(Debug, Default, Clone, Copy)]
struct OpCounters {
    write: u64,
    fsync: u64,
    rename: u64,
    read: u64,
    truncate: u64,
    open: u64,
    dir_sync: u64,
}

impl OpCounters {
    fn bump(&mut self, op: FaultOp) -> u64 {
        let slot = match op {
            FaultOp::Write => &mut self.write,
            FaultOp::Fsync => &mut self.fsync,
            FaultOp::Rename => &mut self.rename,
            FaultOp::Read => &mut self.read,
            FaultOp::Truncate => &mut self.truncate,
            FaultOp::Open => &mut self.open,
            FaultOp::DirSync => &mut self.dir_sync,
        };
        *slot += 1;
        *slot
    }
}

#[derive(Debug)]
struct PlanState {
    armed: bool,
    scripted: Vec<ScriptedFault>,
    profile: Option<(StdRng, FaultProfile)>,
    seen: OpCounters,
    injected: u64,
}

impl PlanState {
    /// Decide whether the next occurrence of `op` faults, and with what.
    fn decide(&mut self, op: FaultOp) -> Option<FaultKind> {
        // Count even while disarmed: a script written against absolute
        // operation positions must not shift because faults were paused.
        let seen = self.seen.bump(op);
        if !self.armed {
            return None;
        }
        if let Some(f) = self
            .scripted
            .iter()
            .find(|f| f.op == op && seen >= f.at && seen - f.at < f.count)
            .copied()
        {
            self.injected += 1;
            return Some(f.kind);
        }
        if let Some((rng, profile)) = self.profile.as_mut() {
            let kind = match op {
                FaultOp::Write if profile.write_fail > 0.0 && rng.gen_bool(profile.write_fail) => {
                    Some(match rng.gen_range(0u32..3) {
                        0 => FaultKind::Eio,
                        1 => FaultKind::Enospc,
                        _ => FaultKind::ShortWrite,
                    })
                }
                FaultOp::Fsync if profile.fsync_fail > 0.0 && rng.gen_bool(profile.fsync_fail) => {
                    Some(FaultKind::FsyncFailure)
                }
                FaultOp::Rename if profile.rename_fail > 0.0 && rng.gen_bool(profile.rename_fail) => {
                    Some(FaultKind::RenameFailure)
                }
                FaultOp::Read if profile.read_corrupt > 0.0 && rng.gen_bool(profile.read_corrupt) => {
                    Some(FaultKind::CorruptRead)
                }
                FaultOp::Truncate if profile.truncate_fail > 0.0 && rng.gen_bool(profile.truncate_fail) => {
                    Some(FaultKind::Eio)
                }
                _ => None,
            };
            if kind.is_some() {
                self.injected += 1;
            }
            return kind;
        }
        None
    }
}

/// A [`Vfs`] decorator that injects faults according to a plan.
///
/// Plans compose two layers, consulted in order for each armed operation:
/// scripted faults (deterministic, for regression tests) and a seeded
/// probabilistic [`FaultProfile`] (for the chaos harness). [`heal`] clears
/// the whole plan, restoring passthrough behaviour.
///
/// [`heal`]: FaultVfs::heal
pub struct FaultVfs {
    inner: Arc<dyn Vfs>,
    /// Lock-order audit: `fault-plan` — the innermost leaf in the declared
    /// global order (analyzer.toml): decisions are taken inside `wal-inner`
    /// file operations, and nothing is ever acquired while it is held. An
    /// `Arc` because every [`FaultFile`] the layer hands out shares the one
    /// plan (its counters and RNG advance globally across handles).
    plan: Arc<Mutex<PlanState>>,
}

impl fmt::Debug for FaultVfs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultVfs").field("inner", &self.inner).finish_non_exhaustive()
    }
}

fn fault_error(kind: FaultKind, op: &str) -> io::Error {
    match kind {
        // Raw OS error codes so callers see realistic `ErrorKind`s on the
        // platforms the workspace targets (5 = EIO, 28 = ENOSPC on Linux).
        FaultKind::Enospc => io::Error::from_raw_os_error(28),
        _ => io::Error::other(format!("injected I/O fault during {op}")),
    }
}

/// Flip one bit in the middle of `bytes` (no-op on an empty buffer): the
/// deterministic read-corruption the CRC layer must catch.
fn corrupt(bytes: &mut [u8]) {
    let mid = bytes.len() / 2;
    if let Some(b) = bytes.get_mut(mid) {
        *b ^= 0x01;
    }
}

impl FaultVfs {
    /// Wrap `inner` with an empty, disarmed fault plan.
    pub fn new(inner: Arc<dyn Vfs>) -> Arc<FaultVfs> {
        Arc::new(FaultVfs {
            inner,
            plan: Arc::new(Mutex::new(PlanState {
                armed: false,
                scripted: Vec::new(),
                profile: None,
                seen: OpCounters::default(),
                injected: 0,
            })),
        })
    }

    /// A fault layer over the production [`StdVfs`].
    pub fn over_std() -> Arc<FaultVfs> {
        Self::new(Arc::new(StdVfs))
    }

    /// Install a seeded probabilistic plan (replacing any previous one) and
    /// arm it. Fault decisions are a pure function of `(seed, operation
    /// sequence)` — the chaos harness's reproducibility contract.
    pub fn seed_profile(&self, seed: u64, profile: FaultProfile) {
        let mut plan = self.lock_plan();
        plan.profile = Some((StdRng::seed_from_u64(seed), profile));
        plan.armed = true;
    }

    /// Script a one-shot fault: the `nth` occurrence (1-based) of `op` fails
    /// with `kind`. Arms the plan.
    pub fn fail_nth(&self, op: FaultOp, nth: u64, kind: FaultKind) {
        self.fail_range(op, nth, 1, kind);
    }

    /// Script a persistent fault: every occurrence of `op` from the `from`th
    /// on (1-based) fails with `kind`, until healed. Arms the plan.
    pub fn fail_from(&self, op: FaultOp, from: u64, kind: FaultKind) {
        self.fail_range(op, from, u64::MAX, kind);
    }

    /// Script `count` consecutive failures of `op` starting at its `at`th
    /// occurrence (1-based). Arms the plan.
    pub fn fail_range(&self, op: FaultOp, at: u64, count: u64, kind: FaultKind) {
        let mut plan = self.lock_plan();
        plan.scripted.push(ScriptedFault { op, at: at.max(1), count, kind });
        plan.armed = true;
    }

    /// Start injecting faults (plans install armed; this re-arms after
    /// [`FaultVfs::disarm`]).
    pub fn arm(&self) {
        self.lock_plan().armed = true;
    }

    /// Stop injecting faults without clearing the plan (operation counters
    /// keep advancing so scripted positions stay meaningful).
    pub fn disarm(&self) {
        self.lock_plan().armed = false;
    }

    /// Clear the whole plan — scripted faults, profile, armed flag. The
    /// layer becomes a passthrough again ("the disk recovered").
    pub fn heal(&self) {
        let mut plan = self.lock_plan();
        plan.scripted.clear();
        plan.profile = None;
        plan.armed = false;
    }

    /// How many faults the plan has injected so far.
    pub fn injected(&self) -> u64 {
        self.lock_plan().injected
    }

    fn lock_plan(&self) -> std::sync::MutexGuard<'_, PlanState> {
        self.plan.lock().expect("fault plan lock poisoned") // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
    }

    /// Decide whether the next occurrence of `op` faults, and with what.
    fn decide(&self, op: FaultOp) -> Option<FaultKind> {
        self.lock_plan().decide(op)
    }
}

/// The fault layer's file handle: forwards to the wrapped handle, consulting
/// the shared plan before each operation.
struct FaultFile {
    inner: Box<dyn VfsFile>,
    plan: Arc<Mutex<PlanState>>,
}

impl FaultFile {
    fn decide(&self, op: FaultOp) -> Option<FaultKind> {
        self.plan.lock().expect("fault plan lock poisoned").decide(op) // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
    }
}

impl VfsFile for FaultFile {
    fn read_to_end(&mut self, buf: &mut Vec<u8>) -> io::Result<usize> {
        let start = buf.len();
        let n = self.inner.read_to_end(buf)?;
        if self.decide(FaultOp::Read) == Some(FaultKind::CorruptRead) {
            if let Some(tail) = buf.get_mut(start..) {
                corrupt(tail);
            }
        }
        Ok(n)
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self.decide(FaultOp::Write) {
            None => self.inner.write_all(buf),
            Some(FaultKind::ShortWrite) => {
                // Persist a prefix, then fail — the torn state a crashed
                // `write(2)` leaves behind.
                let half = buf.get(..buf.len() / 2).unwrap_or(buf);
                self.inner.write_all(half)?;
                Err(fault_error(FaultKind::ShortWrite, "write (short)"))
            }
            Some(kind) => Err(fault_error(kind, "write")),
        }
    }

    fn sync_data(&mut self) -> io::Result<()> {
        match self.decide(FaultOp::Fsync) {
            None => self.inner.sync_data(),
            Some(kind) => Err(fault_error(kind, "fdatasync")),
        }
    }

    fn sync_all(&mut self) -> io::Result<()> {
        match self.decide(FaultOp::Fsync) {
            None => self.inner.sync_all(),
            Some(kind) => Err(fault_error(kind, "fsync")),
        }
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        match self.decide(FaultOp::Truncate) {
            None => self.inner.set_len(len),
            Some(kind) => Err(fault_error(kind, "truncate")),
        }
    }

    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        // Seeks never fault: they are in-memory cursor moves on every real
        // filesystem, and faulting them adds no coverage the write/truncate
        // faults do not already provide.
        self.inner.seek(pos)
    }
}

/// `Arc<FaultVfs>` is what tests hold (to script, arm and heal) *and* what
/// the store holds (as its `Arc<dyn Vfs>`) — one shared plan.
impl Vfs for FaultVfs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        // Directory creation happens once at open and is not a useful fault
        // point: a store that cannot create its directory never opens.
        self.inner.create_dir_all(path)
    }

    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        match self.decide(FaultOp::Open) {
            None => {}
            Some(kind) => return Err(fault_error(kind, "open")),
        }
        let inner = self.inner.open_rw(path)?;
        Ok(Box::new(FaultFile { inner, plan: Arc::clone(&self.plan) }))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        match self.decide(FaultOp::Open) {
            None => {}
            Some(kind) => return Err(fault_error(kind, "create")),
        }
        let inner = self.inner.create(path)?;
        Ok(Box::new(FaultFile { inner, plan: Arc::clone(&self.plan) }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut bytes = self.inner.read(path)?;
        if self.decide(FaultOp::Read) == Some(FaultKind::CorruptRead) {
            corrupt(&mut bytes);
        }
        Ok(bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.decide(FaultOp::Rename) {
            None => self.inner.rename(from, to),
            Some(kind) => Err(fault_error(kind, "rename")),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        match self.decide(FaultOp::DirSync) {
            None => self.inner.sync_dir(path),
            Some(kind) => Err(fault_error(kind, "sync_dir")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("privid-vfs-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn std_vfs_round_trips() {
        let dir = temp_dir("std");
        let vfs = StdVfs;
        let path = dir.join("f");
        let mut f = vfs.open_rw(&path).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_data().unwrap();
        drop(f);
        assert_eq!(vfs.read(&path).unwrap(), b"hello");
        let mut f = vfs.open_rw(&path).unwrap();
        let mut buf = Vec::new();
        f.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"hello");
        f.set_len(2).unwrap();
        drop(f);
        assert_eq!(vfs.read(&path).unwrap(), b"he");
        vfs.rename(&path, &dir.join("g")).unwrap();
        assert!(!vfs.exists(&path));
        assert!(vfs.exists(&dir.join("g")));
        vfs.sync_dir(&dir).unwrap();
        vfs.remove_file(&dir.join("g")).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scripted_fault_hits_exactly_the_nth_write() {
        let dir = temp_dir("nth");
        let fault = FaultVfs::over_std();
        fault.fail_nth(FaultOp::Write, 2, FaultKind::Eio);
        let vfs: &dyn Vfs = fault.as_ref();
        let mut f = vfs.open_rw(&dir.join("f")).unwrap();
        f.write_all(b"one").unwrap();
        assert!(f.write_all(b"two").is_err(), "the 2nd write must fault");
        f.write_all(b"three").unwrap();
        assert_eq!(fault.injected(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_write_persists_a_prefix() {
        let dir = temp_dir("short");
        let fault = FaultVfs::over_std();
        fault.fail_nth(FaultOp::Write, 1, FaultKind::ShortWrite);
        let vfs: &dyn Vfs = fault.as_ref();
        let mut f = vfs.open_rw(&dir.join("f")).unwrap();
        assert!(f.write_all(b"abcdef").is_err());
        drop(f);
        assert_eq!(std::fs::read(dir.join("f")).unwrap(), b"abc", "half the bytes persisted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_carries_the_real_errno() {
        let dir = temp_dir("enospc");
        let fault = FaultVfs::over_std();
        fault.fail_nth(FaultOp::Write, 1, FaultKind::Enospc);
        let vfs: &dyn Vfs = fault.as_ref();
        let mut f = vfs.open_rw(&dir.join("f")).unwrap();
        let err = f.write_all(b"x").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28), "ENOSPC");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_read_flips_one_bit_and_heal_restores() {
        let dir = temp_dir("corrupt");
        std::fs::write(dir.join("f"), b"pristine").unwrap();
        let fault = FaultVfs::over_std();
        fault.fail_from(FaultOp::Read, 1, FaultKind::CorruptRead);
        let vfs: &dyn Vfs = fault.as_ref();
        let bytes = vfs.read(&dir.join("f")).unwrap();
        assert_ne!(bytes, b"pristine");
        assert_eq!(bytes.iter().zip(b"pristine").filter(|(a, b)| a != b).count(), 1, "exactly one byte differs");
        fault.heal();
        assert_eq!(vfs.read(&dir.join("f")).unwrap(), b"pristine");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seeded_profiles_are_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let fault = FaultVfs::over_std();
            fault.seed_profile(seed, FaultProfile { write_fail: 0.5, ..FaultProfile::default() });
            (0..32).map(|_| fault.decide(FaultOp::Write).is_some()).collect()
        };
        assert_eq!(run(7), run(7), "same seed, same fault schedule");
        assert_ne!(run(7), run(8), "different seeds diverge");
    }

    #[test]
    fn disarm_pauses_but_keeps_counting() {
        let fault = FaultVfs::over_std();
        fault.fail_nth(FaultOp::Fsync, 3, FaultKind::FsyncFailure);
        fault.disarm();
        assert_eq!(fault.decide(FaultOp::Fsync), None);
        assert_eq!(fault.decide(FaultOp::Fsync), None);
        fault.arm();
        // This is the 3rd fsync overall — the scripted position held.
        assert_eq!(fault.decide(FaultOp::Fsync), Some(FaultKind::FsyncFailure));
    }
}
