//! The shadow state a WAL rebuilds: every camera's exact ledger, the
//! registered masks/processors, standing-query watermarks and the generation
//! counter.
//!
//! [`StoreState`] is the single source of truth for what recovery produces:
//! the [`crate::WalStore`] applies every appended record to its own copy at
//! append time — through the *same* [`StoreState::apply`] that recovery uses
//! — so a snapshot is always exactly the state a full log replay would have
//! built, and the serving layer's in-memory ledgers provably mirror it (the
//! property suite compares the two bit-for-bit).
//!
//! The slot-count and clamping arithmetic here intentionally duplicates
//! `privid_core::budget::BudgetLedger` formula-for-formula; any divergence
//! would let a recovered ledger drift from the live one.

use crate::record::Record;
use std::collections::BTreeMap;

/// A registered mask, as recovery sees it. The mask *bitmap* is not
/// persisted (it is re-derivable owner-side data, not admission state); the
/// entry records that the mask existed, its reduced ρ and its generation so
/// the owner knows what to re-publish after a restart.
#[derive(Debug, Clone, PartialEq)]
pub struct MaskRecord {
    /// Registration generation.
    pub generation: u64,
    /// The mask's reduced ρ, seconds.
    pub rho_secs: f64,
}

/// One camera's durable state: policy parameters, ledger shape and the exact
/// per-slot budgets.
#[derive(Debug, Clone, PartialEq)]
pub struct CameraRecord {
    /// Registration generation (cache-key tag).
    pub generation: u64,
    /// True for a live (append-only) recording.
    pub live: bool,
    /// Ledger slot resolution, seconds.
    pub slot_secs: f64,
    /// Recorded duration — for a live camera, the durable live edge.
    pub duration_secs: f64,
    /// Per-frame ε budget each slot is born with.
    pub initial_epsilon: f64,
    /// Policy ρ, seconds.
    pub rho_secs: f64,
    /// Policy K.
    pub k: u32,
    /// Remaining ε per slot, bit-exact.
    pub slots: Vec<f64>,
    /// Published masks by id.
    pub masks: BTreeMap<String, MaskRecord>,
}

/// A standing query's durable state.
#[derive(Debug, Clone, PartialEq)]
pub struct StandingRecord {
    /// Base noise seed.
    pub base_seed: u64,
    /// Window period, seconds.
    pub period_secs: f64,
    /// Start of the next unfired window, seconds — recovery re-arms here.
    pub next_start_secs: f64,
    /// The prototype query text.
    pub text: String,
}

/// The full durable state of one Privid service.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StoreState {
    /// Cameras by name.
    pub cameras: BTreeMap<String, CameraRecord>,
    /// Processors by name (value: registration generation).
    pub processors: BTreeMap<String, u64>,
    /// Standing queries by name.
    pub standing: BTreeMap<String, StandingRecord>,
    /// The next registration generation to mint (strictly above every
    /// generation ever logged, so recovered cache keys can never alias).
    pub next_generation: u64,
}

/// Slot count for a timeline of `duration_secs` at `slot_secs` resolution.
/// Must match `BudgetLedger::with_resolution` exactly.
fn slot_count(duration_secs: f64, slot_secs: f64) -> usize {
    (duration_secs / slot_secs).ceil().max(1.0) as usize
}

/// Slots per snapshot [`Record::SlotValues`] run. Each slot encodes as 17
/// bytes, so a run's payload stays around 1.1 MB — far below the frame
/// reader's `MAX_PAYLOAD` no matter how long a live camera has recorded
/// (a snapshot that cannot be read back would strand the store).
pub(crate) const SLOTS_PER_RECORD: usize = 65_536;

impl StoreState {
    /// Validate one record against the state built so far, without mutating
    /// anything. The WAL runs this *before* a record reaches the log, so a
    /// record the state would refuse (a caller bug) can never be made
    /// durable — where it would permanently fail every future recovery.
    pub fn check(&self, record: &Record) -> Result<(), String> {
        match record {
            Record::RegisterCamera { name, slot_secs, .. } => {
                if !slot_secs.is_finite() || *slot_secs <= 0.0 {
                    // privid-analyzer: allow(f64-exactness) -- human-facing refusal message; the value is never re-parsed from this string
                    return Err(format!("camera {name}: non-positive slot resolution {slot_secs}"));
                }
            }
            Record::RegisterMask { camera, .. } => {
                self.camera_ref(camera)?;
            }
            Record::RegisterProcessor { .. } | Record::RegisterStanding { .. } | Record::SnapshotHeader { .. } => {}
            Record::Extend { camera, .. } => {
                if !self.camera_ref(camera)?.live {
                    return Err(format!("extend record for fixed camera {camera}"));
                }
            }
            Record::Admit { debits, .. } => {
                for d in debits {
                    let cam = self.camera_ref(&d.camera)?;
                    if d.lo >= d.hi || d.hi as usize > cam.slots.len() {
                        return Err(format!(
                            "admit record debits slots [{}, {}) of camera {} which has {} slots",
                            d.lo,
                            d.hi,
                            d.camera,
                            cam.slots.len()
                        ));
                    }
                }
            }
            Record::Credit { camera, lo, hi, .. } => {
                let cam = self.camera_ref(camera)?;
                if *lo >= *hi || *hi as usize > cam.slots.len() {
                    return Err(format!("credit record for slots [{lo}, {hi}) of camera {camera}"));
                }
            }
            Record::StandingFired { name, .. } | Record::ArmStanding { name, .. } => {
                if !self.standing.contains_key(name) {
                    return Err(format!("record references unknown standing query {name}"));
                }
            }
            Record::SlotValues { camera, offset, slots } => {
                let cam = self.camera_ref(camera)?;
                if *offset as usize + slots.len() > cam.slots.len() {
                    return Err(format!(
                        "snapshot carries slots [{}, {}) for camera {camera}, ledger shape says {}",
                        offset,
                        *offset as usize + slots.len(),
                        cam.slots.len()
                    ));
                }
            }
        }
        Ok(())
    }

    /// Apply one record: [`StoreState::check`] then mutate. Errors indicate a
    /// record inconsistent with the state built so far (e.g. a debit for an
    /// unknown camera or past the slot array) — on recovery that is
    /// corruption, at append time a caller bug; either way the state is left
    /// unchanged on error.
    pub fn apply(&mut self, record: &Record) -> Result<(), String> {
        self.check(record)?;
        match record {
            Record::RegisterCamera { name, generation, live, slot_secs, duration_secs, initial_epsilon, rho_secs, k } => {
                self.bump_generation(*generation);
                self.cameras.insert(
                    name.clone(),
                    CameraRecord {
                        generation: *generation,
                        live: *live,
                        slot_secs: *slot_secs,
                        duration_secs: duration_secs.max(0.0),
                        initial_epsilon: *initial_epsilon,
                        rho_secs: *rho_secs,
                        k: *k,
                        slots: vec![*initial_epsilon; slot_count(*duration_secs, *slot_secs)],
                        masks: BTreeMap::new(),
                    },
                );
            }
            Record::RegisterMask { camera, mask_id, generation, rho_secs } => {
                self.bump_generation(*generation);
                let cam = self.camera_mut(camera)?;
                cam.masks.insert(mask_id.clone(), MaskRecord { generation: *generation, rho_secs: *rho_secs });
            }
            Record::RegisterProcessor { name, generation } => {
                self.bump_generation(*generation);
                self.processors.insert(name.clone(), *generation);
            }
            Record::Extend { camera, live_edge_secs } => {
                let cam = self.camera_mut(camera)?;
                if !cam.live {
                    return Err(format!("extend record for fixed camera {camera}"));
                }
                // Mirrors the (replay-tolerant) BudgetLedger::extend_to: the
                // high-watermark never moves backwards, new slots are born
                // with the full initial budget.
                if *live_edge_secs > cam.duration_secs {
                    let n = slot_count(*live_edge_secs, cam.slot_secs);
                    if n > cam.slots.len() {
                        let initial = cam.initial_epsilon;
                        cam.slots.resize(n, initial);
                    }
                    cam.duration_secs = *live_edge_secs;
                }
            }
            Record::Admit { epsilon, debits } => {
                // Validate all ranges before mutating any slot, so a corrupt
                // admit record cannot leave the state partially applied.
                for d in debits {
                    let cam = self.camera_ref(&d.camera)?;
                    if d.lo >= d.hi || d.hi as usize > cam.slots.len() {
                        return Err(format!(
                            "admit record debits slots [{}, {}) of camera {} which has {} slots",
                            d.lo,
                            d.hi,
                            d.camera,
                            cam.slots.len()
                        ));
                    }
                }
                for d in debits {
                    let cam = self
                        .cameras
                        .get_mut(&d.camera)
                        .ok_or_else(|| format!("admit record debits unknown camera {}", d.camera))?;
                    // privid-analyzer: allow(panic-freedom) -- range validated against slots.len() in the pass above; a silent .get_mut skip here would under-debit
                    for s in &mut cam.slots[d.lo as usize..d.hi as usize] {
                        *s -= epsilon;
                    }
                }
            }
            Record::Credit { camera, lo, hi, epsilon } => {
                let cam = self.camera_mut(camera)?;
                if *lo >= *hi || *hi as usize > cam.slots.len() {
                    return Err(format!("credit record for slots [{lo}, {hi}) of camera {camera}"));
                }
                // privid-analyzer: allow(panic-freedom) -- range validated against slots.len() two lines above
                for s in &mut cam.slots[*lo as usize..*hi as usize] {
                    *s += epsilon;
                }
            }
            Record::RegisterStanding { name, base_seed, period_secs, text } => {
                self.standing.insert(
                    name.clone(),
                    StandingRecord {
                        base_seed: *base_seed,
                        period_secs: *period_secs,
                        next_start_secs: 0.0,
                        text: text.clone(),
                    },
                );
            }
            Record::StandingFired { name, window_index } => {
                let st = self
                    .standing
                    .get_mut(name)
                    .ok_or_else(|| format!("fired record for unknown standing query {name}"))?;
                // `max`, not assignment: firings of one query execute outside
                // the registry lock and may journal out of index order.
                st.next_start_secs = st.next_start_secs.max((*window_index + 1) as f64 * st.period_secs);
            }
            Record::SnapshotHeader { next_generation, .. } => {
                self.next_generation = self.next_generation.max(*next_generation);
            }
            Record::SlotValues { camera, offset, slots } => {
                let cam = self.camera_mut(camera)?;
                let lo = *offset as usize;
                let have = cam.slots.len();
                cam.slots
                    .get_mut(lo..lo + slots.len())
                    .ok_or_else(|| {
                        format!("slots record covers [{lo}, {}) of camera {camera} which has {have} slots", lo + slots.len())
                    })?
                    .copy_from_slice(slots);
            }
            Record::ArmStanding { name, next_start_secs } => {
                let st = self
                    .standing
                    .get_mut(name)
                    .ok_or_else(|| format!("arm record for unknown standing query {name}"))?;
                st.next_start_secs = st.next_start_secs.max(*next_start_secs);
            }
        }
        Ok(())
    }

    /// The records that rebuild this state wholesale — the body of a
    /// snapshot file, in apply order (camera shapes before slot values,
    /// standing registrations before their watermarks).
    pub fn snapshot_records(&self, last_seq: u64) -> Vec<Record> {
        let mut records = Vec::with_capacity(2 + 2 * self.cameras.len() + 2 * self.standing.len());
        records.push(Record::SnapshotHeader { last_seq, next_generation: self.next_generation });
        for (name, cam) in &self.cameras {
            records.push(Record::RegisterCamera {
                name: name.clone(),
                generation: cam.generation,
                live: cam.live,
                slot_secs: cam.slot_secs,
                duration_secs: cam.duration_secs,
                initial_epsilon: cam.initial_epsilon,
                rho_secs: cam.rho_secs,
                k: cam.k,
            });
            for (run, chunk) in cam.slots.chunks(SLOTS_PER_RECORD).enumerate() {
                records.push(Record::SlotValues {
                    camera: name.clone(),
                    offset: (run * SLOTS_PER_RECORD) as u64,
                    slots: chunk.to_vec(),
                });
            }
            for (mask_id, mask) in &cam.masks {
                records.push(Record::RegisterMask {
                    camera: name.clone(),
                    mask_id: mask_id.clone(),
                    generation: mask.generation,
                    rho_secs: mask.rho_secs,
                });
            }
        }
        for (name, generation) in &self.processors {
            records.push(Record::RegisterProcessor { name: name.clone(), generation: *generation });
        }
        for (name, st) in &self.standing {
            records.push(Record::RegisterStanding {
                name: name.clone(),
                base_seed: st.base_seed,
                period_secs: st.period_secs,
                text: st.text.clone(),
            });
            records.push(Record::ArmStanding { name: name.clone(), next_start_secs: st.next_start_secs });
        }
        records
    }

    fn camera_mut(&mut self, camera: &str) -> Result<&mut CameraRecord, String> {
        self.cameras.get_mut(camera).ok_or_else(|| format!("record references unknown camera {camera}"))
    }

    fn camera_ref(&self, camera: &str) -> Result<&CameraRecord, String> {
        self.cameras.get(camera).ok_or_else(|| format!("record references unknown camera {camera}"))
    }

    fn bump_generation(&mut self, generation: u64) {
        self.next_generation = self.next_generation.max(generation + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::DebitRange;

    fn cam_record(name: &str, live: bool, duration: f64, eps: f64) -> Record {
        Record::RegisterCamera {
            name: name.into(),
            generation: 1,
            live,
            slot_secs: 1.0,
            duration_secs: duration,
            initial_epsilon: eps,
            rho_secs: 30.0,
            k: 2,
        }
    }

    #[test]
    fn register_extend_debit_credit_lifecycle() {
        let mut state = StoreState::default();
        state.apply(&cam_record("live", true, 0.0, 1.0)).unwrap();
        assert_eq!(state.cameras["live"].slots, vec![1.0], "empty live timeline still has the phantom slot");
        state.apply(&Record::Extend { camera: "live".into(), live_edge_secs: 10.0 }).unwrap();
        assert_eq!(state.cameras["live"].slots.len(), 10);
        state
            .apply(&Record::Admit {
                epsilon: 0.25,
                debits: vec![DebitRange { camera: "live".into(), lo: 2, hi: 6 }],
            })
            .unwrap();
        assert_eq!(state.cameras["live"].slots[3], 0.75);
        assert_eq!(state.cameras["live"].slots[1], 1.0);
        state.apply(&Record::Credit { camera: "live".into(), lo: 2, hi: 3, epsilon: 0.25 }).unwrap();
        assert_eq!(state.cameras["live"].slots[2], 1.0);
        // Replayed (stale) extends never shrink the timeline or re-mint ε.
        state.apply(&Record::Extend { camera: "live".into(), live_edge_secs: 4.0 }).unwrap();
        assert_eq!(state.cameras["live"].slots.len(), 10);
        assert_eq!(state.cameras["live"].duration_secs, 10.0);
    }

    #[test]
    fn invalid_records_are_rejected_without_partial_application() {
        let mut state = StoreState::default();
        state.apply(&cam_record("a", false, 5.0, 1.0)).unwrap();
        // Second debit range is out of bounds: the first must not apply either.
        let err = state
            .apply(&Record::Admit {
                epsilon: 0.5,
                debits: vec![
                    DebitRange { camera: "a".into(), lo: 0, hi: 2 },
                    DebitRange { camera: "a".into(), lo: 4, hi: 9 },
                ],
            })
            .unwrap_err();
        assert!(err.contains("5 slots"), "got: {err}");
        assert!(state.cameras["a"].slots.iter().all(|&s| s == 1.0), "no partial debit");
        assert!(state.apply(&Record::Extend { camera: "ghost".into(), live_edge_secs: 1.0 }).is_err());
        assert!(state.apply(&Record::Extend { camera: "a".into(), live_edge_secs: 9.0 }).is_err(), "fixed camera");
        assert!(state.apply(&Record::StandingFired { name: "ghost".into(), window_index: 0 }).is_err());
    }

    #[test]
    fn snapshots_chunk_long_ledgers_below_the_frame_bound() {
        // Regression (review): a single SlotValues record for a long-lived
        // live camera could exceed MAX_PAYLOAD, making the snapshot — and
        // with it the whole store — permanently unreadable.
        let mut state = StoreState::default();
        state.apply(&cam_record("live", true, 0.0, 1.0)).unwrap();
        let n = 2 * SLOTS_PER_RECORD + 1234;
        state.apply(&Record::Extend { camera: "live".into(), live_edge_secs: n as f64 }).unwrap();
        // A debit straddling a run boundary must survive the chunked round trip.
        let lo = SLOTS_PER_RECORD as u64 - 1;
        state
            .apply(&Record::Admit { epsilon: 0.25, debits: vec![DebitRange { camera: "live".into(), lo, hi: lo + 3 }] })
            .unwrap();
        let records = state.snapshot_records(1);
        let runs = records.iter().filter(|r| matches!(r, Record::SlotValues { .. })).count();
        assert_eq!(runs, 3, "{n} slots split into three runs");
        for record in &records {
            let frame = crate::record::encode_frame(0, record);
            assert!(frame.len() < 2 * 1024 * 1024, "every frame stays far below MAX_PAYLOAD, got {}", frame.len());
        }
        let mut rebuilt = StoreState::default();
        for record in records {
            rebuilt.apply(&record).unwrap();
        }
        assert_eq!(rebuilt, state, "chunked slot runs rebuild the exact ledger");
    }

    #[test]
    fn snapshot_records_rebuild_the_exact_state() {
        let mut state = StoreState::default();
        state.apply(&cam_record("live", true, 0.0, 2.0)).unwrap();
        state.apply(&Record::Extend { camera: "live".into(), live_edge_secs: 7.3 }).unwrap();
        state
            .apply(&Record::Admit { epsilon: 0.1 + 0.2, debits: vec![DebitRange { camera: "live".into(), lo: 0, hi: 3 }] })
            .unwrap();
        state
            .apply(&Record::RegisterMask { camera: "live".into(), mask_id: "m".into(), generation: 5, rho_secs: 10.0 })
            .unwrap();
        state.apply(&Record::RegisterProcessor { name: "p".into(), generation: 6 }).unwrap();
        state
            .apply(&Record::RegisterStanding {
                name: "s".into(),
                base_seed: 9,
                period_secs: 60.0,
                text: "SPLIT …".into(),
            })
            .unwrap();
        state.apply(&Record::StandingFired { name: "s".into(), window_index: 2 }).unwrap();

        let mut rebuilt = StoreState::default();
        for record in state.snapshot_records(42) {
            rebuilt.apply(&record).unwrap();
        }
        assert_eq!(rebuilt, state, "snapshot must round-trip the state bit-for-bit");
        assert_eq!(rebuilt.standing["s"].next_start_secs, 180.0);
        assert_eq!(rebuilt.next_generation, 7);
    }
}
