//! Hand-rolled CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`).
//!
//! The build environment has no registry access, so the WAL's record
//! checksums are computed with this table-driven implementation instead of a
//! `crc32fast` dependency. The variant matches zlib/`cksum -o 3`: initial
//! value `0xFFFF_FFFF`, final XOR `0xFFFF_FFFF`, bits reflected.

/// The 256-entry lookup table, generated at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc; // privid-analyzer: allow(panic-freedom) -- const fn: i < 256 by the loop bound; an out-of-range write would fail compilation
        i += 1;
    }
    table
}

/// CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_parts(&[bytes])
}

/// CRC-32 of several byte slices, as if concatenated. The WAL uses this to
/// checksum a frame's length field together with its payload without
/// materializing the concatenation.
pub fn crc32_parts(parts: &[&[u8]]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for part in parts {
        for &b in *part {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize]; // privid-analyzer: allow(panic-freedom) -- index masked with & 0xFF, always < 256
        }
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard zlib test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn parts_equal_concatenation() {
        let (a, b) = (b"123".as_slice(), b"456789".as_slice());
        assert_eq!(crc32_parts(&[a, b]), crc32(b"123456789"));
        assert_eq!(crc32_parts(&[]), crc32(b""));
    }

    #[test]
    fn detects_single_bit_flips() {
        let payload = b"debit|campus|5|10|0.25".to_vec();
        let original = crc32(&payload);
        for byte in 0..payload.len() {
            for bit in 0..8 {
                let mut flipped = payload.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), original, "flip at byte {byte} bit {bit} must change the checksum");
            }
        }
    }
}
