//! # privid-store
//!
//! The durable privacy ledger: a write-ahead log, periodic snapshots and
//! crash recovery for Privid's admission state.
//!
//! Privid's guarantee — at most ε of leakage per frame of a camera's
//! timeline — is enforced by the budget ledger. If that ledger lives only in
//! memory, a process restart silently re-mints full ε for footage that was
//! already queried: a **privacy violation**, not merely data loss. This
//! crate makes the admission state survive crashes:
//!
//! * budget debits (one atomic [`Record::Admit`] per admission, journaled
//!   *before* any slot is debited and therefore before any release escapes),
//! * live-edge extensions ([`Record::Extend`]),
//! * camera / mask / processor registrations,
//! * standing-query registrations and firing watermarks.
//!
//! ## The never-under-debit invariant
//!
//! **A recovered ledger never exposes more remaining ε on any slot than the
//! pre-crash in-memory ledger did.** Every rule in this crate bends in that
//! direction:
//!
//! * admissions journal **before** they debit — a crash in between recovers
//!   an *over*-debited slot (wasted budget, never leaked privacy);
//! * rollback credits journal **after** they are applied — a crash in
//!   between keeps the over-debit;
//! * a torn tail record (incomplete final frame) is truncated: the append
//!   never finished, so the operation it describes never happened and no
//!   release depended on it;
//! * a *complete* record failing its CRC is disk corruption — recovery
//!   refuses with [`StoreError::ChecksumMismatch`] rather than drop a debit
//!   whose release may already have been returned;
//! * replay is idempotent (per-record sequence numbers), so a duplicated
//!   record, or a log surviving a crash between snapshot write and log
//!   truncation, is skipped instead of double-applied — keeping recovery
//!   bit-for-bit equal to the pre-crash ledger, not merely conservative.
//!
//! The serving layer (`privid-core`) holds the live `BudgetLedger`s; this
//! crate holds their durable mirror ([`StoreState`]) and proves, in the
//! workspace's property suite, that the two are bit-for-bit equal at every
//! record boundary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc32;
pub mod record;
pub mod state;
pub mod vfs;
pub mod wal;

pub use crc32::crc32;
pub use record::{DebitRange, Record};
pub use state::{CameraRecord, MaskRecord, StandingRecord, StoreState};
pub use vfs::{FaultKind, FaultOp, FaultProfile, FaultVfs, StdVfs, Vfs, VfsFile};
pub use wal::{
    CommitTicket, Durability, FsyncPolicy, Recovered, RecoveryEvent, RecoveryReport, RecoveryWarning,
    StoreError, WalOptions, WalStore,
};
