//! Synthetic stand-in for the Porto taxi dataset used by queries Q4–Q6.
//!
//! The paper processes the real Porto trajectory dataset (1.7 M trips of 442
//! taxis, Jan 2013 – Jul 2014) into "the set of timestamps each taxi would
//! have been visible to each of 105 cameras". This module generates that
//! derived structure directly: per-camera visit events with taxi identity,
//! timestamp and dwell duration, with realistic skew (camera popularity is
//! Zipf-distributed, drivers work ~6–10 h shifts). The per-camera data can
//! also be converted into [`Scene`]s so the full Privid pipeline (chunking,
//! sandboxed processing) runs unchanged on it.

use crate::geometry::{FrameSize, Point};
use crate::object::{Attributes, ObjectClass, ObjectId, PresenceSegment, TrackedObject, VehicleColor};
use crate::scene::{CameraId, Scene};
use crate::time::{FrameRate, Seconds, TimeSpan};
use crate::trajectory::Trajectory;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Parameters of the synthetic taxi fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortoConfig {
    /// Number of taxis in the fleet (paper: 442).
    pub num_taxis: u32,
    /// Number of cameras in the city (paper: 105).
    pub num_cameras: u32,
    /// Number of days covered (paper: ~540; the queries use a 365-day window).
    pub days: u32,
    /// Mean camera visits per taxi per working day.
    pub visits_per_taxi_per_day: f64,
    /// Mean dwell in a camera's view per visit, seconds (paper ρ range: 15–525 s).
    pub mean_visit_secs: Seconds,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PortoConfig {
    fn default() -> Self {
        PortoConfig {
            num_taxis: 442,
            num_cameras: 105,
            days: 365,
            visits_per_taxi_per_day: 40.0,
            mean_visit_secs: 45.0,
            seed: 0x9087,
        }
    }
}

impl PortoConfig {
    /// A small configuration for tests (fewer taxis/cameras/days).
    pub fn small() -> Self {
        PortoConfig { num_taxis: 40, num_cameras: 10, days: 14, visits_per_taxi_per_day: 20.0, ..Default::default() }
    }
}

/// One visit of one taxi to one camera's field of view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaxiVisit {
    /// The taxi (0-based fleet index).
    pub taxi_id: u32,
    /// The camera (0-based).
    pub camera_id: u32,
    /// Day of the dataset (0-based).
    pub day: u32,
    /// Seconds since the start of the dataset at which the visit begins.
    pub start_secs: Seconds,
    /// Visit duration in seconds.
    pub duration_secs: Seconds,
}

/// The generated dataset: all visits plus per-taxi daily working hours
/// (the ground truth for Q4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PortoDataset {
    /// Configuration the dataset was generated from.
    pub config: PortoConfig,
    /// Every camera visit, sorted by start time.
    pub visits: Vec<TaxiVisit>,
    /// Ground-truth working hours per (taxi, day).
    pub working_hours: HashMap<(u32, u32), f64>,
}

impl PortoDataset {
    /// Generate the dataset deterministically from its configuration.
    pub fn generate(config: PortoConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut visits = Vec::new();
        let mut working_hours = HashMap::new();

        // Camera popularity: Zipf-like weights so a few cameras see most traffic
        // (needed for Q6, "camera with highest daily traffic").
        let weights: Vec<f64> = (0..config.num_cameras).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let total_weight: f64 = weights.iter().sum();

        for taxi in 0..config.num_taxis {
            // Each driver has a habitual shift length (hours) and start hour.
            let shift_len = rng.gen_range(5.0..10.0);
            let shift_start = rng.gen_range(5.0..14.0);
            for day in 0..config.days {
                // Some drivers take the day off.
                if rng.gen_bool(0.12) {
                    continue;
                }
                let todays_hours = (shift_len + rng.gen_range(-1.0..1.0f64)).clamp(2.0, 14.0);
                working_hours.insert((taxi, day), todays_hours);
                let n_visits = (config.visits_per_taxi_per_day * todays_hours / 8.0).round().max(1.0) as u32;
                for _ in 0..n_visits {
                    // Pick a camera by popularity weight.
                    let mut pick = rng.gen_range(0.0..total_weight);
                    let mut camera = 0u32;
                    for (i, w) in weights.iter().enumerate() {
                        if pick < *w {
                            camera = i as u32;
                            break;
                        }
                        pick -= w;
                    }
                    let offset_hours = shift_start + rng.gen_range(0.0..todays_hours);
                    let start = day as f64 * 86_400.0 + offset_hours * 3600.0;
                    let duration = rng.gen_range(0.3..2.0) * config.mean_visit_secs;
                    visits.push(TaxiVisit {
                        taxi_id: taxi,
                        camera_id: camera,
                        day,
                        start_secs: start,
                        duration_secs: duration,
                    });
                }
            }
        }
        visits.sort_by(|a, b| a.start_secs.total_cmp(&b.start_secs));
        PortoDataset { config, visits, working_hours }
    }

    /// Visits seen by a single camera.
    pub fn visits_for_camera(&self, camera_id: u32) -> Vec<&TaxiVisit> {
        self.visits.iter().filter(|v| v.camera_id == camera_id).collect()
    }

    /// Ground-truth mean daily working hours across the fleet (Q4 reference).
    pub fn mean_working_hours(&self) -> f64 {
        if self.working_hours.is_empty() {
            return 0.0;
        }
        self.working_hours.values().sum::<f64>() / self.working_hours.len() as f64
    }

    /// Ground-truth mean number of distinct taxis that pass both cameras on
    /// the same day (Q5 reference).
    pub fn mean_daily_intersection(&self, cam_a: u32, cam_b: u32) -> f64 {
        let mut per_day_a: HashMap<u32, std::collections::HashSet<u32>> = HashMap::new();
        let mut per_day_b: HashMap<u32, std::collections::HashSet<u32>> = HashMap::new();
        for v in &self.visits {
            if v.camera_id == cam_a {
                per_day_a.entry(v.day).or_default().insert(v.taxi_id);
            } else if v.camera_id == cam_b {
                per_day_b.entry(v.day).or_default().insert(v.taxi_id);
            }
        }
        let days = self.config.days.max(1) as f64;
        let mut total = 0.0;
        for (day, set_a) in &per_day_a {
            if let Some(set_b) = per_day_b.get(day) {
                total += set_a.intersection(set_b).count() as f64;
            }
        }
        total / days
    }

    /// Ground-truth camera with the highest total visit count (Q6 reference).
    pub fn busiest_camera(&self) -> u32 {
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for v in &self.visits {
            *counts.entry(v.camera_id).or_default() += 1;
        }
        counts.into_iter().max_by_key(|(_, c)| *c).map(|(cam, _)| cam).unwrap_or(0)
    }

    /// The maximum single-visit duration for a camera — the basis of its
    /// `ρ` policy (the paper's per-camera ρ for Porto ranges 15–525 s).
    pub fn max_visit_duration(&self, camera_id: u32) -> Seconds {
        self.visits_for_camera(camera_id).iter().map(|v| v.duration_secs).fold(0.0, f64::max)
    }

    /// Convert one camera's visits into a [`Scene`] so it can flow through the
    /// standard split/process pipeline. Each visit becomes one presence
    /// segment of a per-taxi [`TrackedObject`] crossing the frame.
    pub fn camera_scene(&self, camera_id: u32) -> Scene {
        let frame = FrameSize::new(1280, 720);
        let span = TimeSpan::from_secs(self.config.days as f64 * 86_400.0);
        let mut per_taxi: HashMap<u32, Vec<PresenceSegment>> = HashMap::new();
        for v in self.visits_for_camera(camera_id) {
            per_taxi.entry(v.taxi_id).or_default().push(PresenceSegment {
                span: TimeSpan::between_secs(v.start_secs, v.start_secs + v.duration_secs),
                trajectory: Trajectory::linear(
                    Point::new(0.0, 360.0),
                    Point::new(1280.0, 360.0),
                    80.0,
                    40.0,
                ),
            });
        }
        let objects = per_taxi
            .into_iter()
            .map(|(taxi, segments)| {
                TrackedObject::new(
                    ObjectId(taxi as u64),
                    ObjectClass::Car,
                    Attributes {
                        plate: format!("TAXI{taxi:04}"),
                        color: Some(VehicleColor::Black),
                        speed_kmh: 40.0,
                        ..Attributes::default()
                    },
                    segments,
                )
            })
            .collect();
        Scene::new(CameraId::new(format!("porto{camera_id}")), span, FrameRate::new(1.0), frame, objects)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_dataset() -> PortoDataset {
        PortoDataset::generate(PortoConfig::small())
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_dataset();
        let b = small_dataset();
        assert_eq!(a.visits.len(), b.visits.len());
        assert_eq!(a.busiest_camera(), b.busiest_camera());
    }

    #[test]
    fn visits_are_sorted_and_within_range() {
        let d = small_dataset();
        assert!(!d.visits.is_empty());
        for w in d.visits.windows(2) {
            assert!(w[0].start_secs <= w[1].start_secs);
        }
        for v in &d.visits {
            assert!(v.camera_id < d.config.num_cameras);
            assert!(v.taxi_id < d.config.num_taxis);
            assert!(v.duration_secs > 0.0);
        }
    }

    #[test]
    fn camera_popularity_is_skewed() {
        let d = small_dataset();
        let busiest = d.visits_for_camera(d.busiest_camera()).len();
        let least: usize = (0..d.config.num_cameras).map(|c| d.visits_for_camera(c).len()).min().unwrap();
        assert!(busiest > 3 * least.max(1), "Zipf weighting should make camera load skewed");
        assert_eq!(d.busiest_camera(), 0, "camera 0 has the largest Zipf weight");
    }

    #[test]
    fn working_hours_are_plausible() {
        let d = small_dataset();
        let mean = d.mean_working_hours();
        assert!(mean > 4.0 && mean < 11.0, "mean working hours {mean} should resemble a taxi shift");
    }

    #[test]
    fn intersection_is_bounded_by_fleet_size() {
        let d = small_dataset();
        let x = d.mean_daily_intersection(0, 1);
        assert!(x >= 0.0);
        assert!(x <= d.config.num_taxis as f64);
    }

    #[test]
    fn camera_scene_reconstructs_visits() {
        let d = small_dataset();
        let cam = d.busiest_camera();
        let scene = d.camera_scene(cam);
        let visits = d.visits_for_camera(cam);
        let segment_count: usize = scene.objects.iter().map(|o| o.segments.len()).sum();
        assert_eq!(segment_count, visits.len());
        assert!((scene.max_segment_duration(|_| true) - d.max_visit_duration(cam)).abs() < 1e-6);
    }
}
