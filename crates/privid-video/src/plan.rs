//! Lazy, zero-copy chunk materialization: the execution-engine side of the
//! `SPLIT` stage.
//!
//! [`split_scene`](crate::chunk::split_scene) materializes every chunk as an
//! owned [`Chunk`] — convenient, but each chunk deep-clones the camera name
//! and every observed object's attributes, and spatial splitting used to
//! clone the whole chunk *again* per region. The paper's executor instead
//! streams chunks to workers; chunk processing dominates query latency, so
//! those clones sit squarely on the hot path.
//!
//! This module provides the streaming alternative:
//!
//! * [`ChunkPlan`] — the pure arithmetic of a split (which spans exist),
//!   computed once; no frame or object data is touched until a chunk is
//!   materialized.
//! * [`ChunkBuffer`] — reusable scratch storage for one materialized chunk
//!   (flat observation array, per-frame ranges, per-object records). A worker
//!   keeps one buffer and refills it per chunk, so steady-state chunk
//!   materialization performs no allocation.
//! * [`ChunkView`] — a borrowed, `Copy` view of one materialized chunk.
//!   The camera name is borrowed, object attributes are resolved by index
//!   into the scene (never cloned), and
//!   [`ChunkView::restrict_into`] produces a region-filtered view by
//!   compact-copying `Copy` observation records into a second reused buffer —
//!   no deep clone.
//!
//! Object iteration order is sorted by [`ObjectId`], which makes per-chunk row
//! order deterministic (the owned `Chunk` stores objects in a `HashMap`, whose
//! iteration order is randomized per process). Determinism here is what lets
//! the parallel executor guarantee bit-for-bit identical query results at any
//! worker count.

use crate::chunk::{Chunk, ChunkObjectInfo, ChunkSpec, Frame};
use crate::geometry::{BoundingBox, Mask};
use crate::object::{Attributes, ObjectClass, ObjectId, Observation, TrackedObject};
use crate::scene::Scene;
use crate::time::{TimeSpan, Timestamp};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// The attributes returned for an object the view cannot resolve (never the
/// case for scene-materialized chunks; a safety net for hand-built chunks).
fn default_attributes() -> &'static Attributes {
    static DEFAULT: OnceLock<Attributes> = OnceLock::new();
    DEFAULT.get_or_init(Attributes::default)
}

/// Where a chunk object's attributes live.
#[derive(Debug, Clone, Copy)]
enum AttrSlot {
    /// Index into the scene's object list (zero-copy path).
    Scene(u32),
    /// Index into the buffer's local attribute pool (owned-`Chunk` loading).
    Local(u32),
    /// Unresolvable; falls back to the shared default.
    Unknown,
}

/// One frame of a materialized chunk: a timestamp plus a range into the
/// buffer's flat observation array.
#[derive(Debug, Clone, Copy)]
struct FrameRecord {
    index_in_chunk: u64,
    timestamp: Timestamp,
    obs_start: usize,
    obs_end: usize,
}

/// Per-object metadata accumulated while filling a buffer — the index-based
/// analogue of [`ChunkObjectInfo`], with attributes referenced, not cloned.
#[derive(Debug, Clone, Copy)]
struct ObjectRecord {
    id: ObjectId,
    class: ObjectClass,
    attr: AttrSlot,
    visible_in_first_frame: bool,
    first_seen: Timestamp,
    last_seen: Timestamp,
    net_dy: f64,
    first_center_y: f64,
}

/// Reusable scratch storage for one materialized chunk.
///
/// A worker thread owns one (plus a second one if spatial splitting is used)
/// and refills it for every chunk it processes; all vectors retain their
/// capacity across chunks, so the steady state allocates nothing.
#[derive(Debug, Default)]
pub struct ChunkBuffer {
    frames: Vec<FrameRecord>,
    observations: Vec<Observation>,
    objects: Vec<ObjectRecord>,
    /// Object id → index into `objects`, valid only while filling.
    slots: HashMap<ObjectId, usize>,
    /// Attribute pool for chunks loaded from an owned [`Chunk`] (tests and
    /// compatibility paths); empty for scene-materialized chunks.
    local_attrs: Vec<Attributes>,
    /// Camera name for chunks loaded from an owned [`Chunk`].
    camera: Option<Arc<str>>,
}

impl ChunkBuffer {
    /// A fresh, empty buffer.
    pub fn new() -> Self {
        ChunkBuffer::default()
    }

    /// Clear all per-chunk state, retaining capacity.
    fn clear(&mut self) {
        self.frames.clear();
        self.observations.clear();
        self.objects.clear();
        self.slots.clear();
        self.local_attrs.clear();
        self.camera = None;
    }

    /// Record one observation (already appended to `self.observations`) into
    /// the per-object metadata. `frame_pos` is the frame's position within the
    /// chunk; `attr` says where the object's attributes can be found.
    fn note_observation(&mut self, frame_pos: usize, obs: Observation, attr: AttrSlot) {
        let center_y = obs.bbox.center().y;
        match self.slots.get(&obs.object_id) {
            Some(&i) => {
                let rec = &mut self.objects[i]; // privid-analyzer: allow(panic-freedom) -- slots maps object ids to indices this struct itself pushed into objects
                rec.last_seen = obs.timestamp;
                rec.net_dy = center_y - rec.first_center_y;
            }
            None => {
                self.slots.insert(obs.object_id, self.objects.len());
                self.objects.push(ObjectRecord {
                    id: obs.object_id,
                    class: obs.class,
                    attr,
                    visible_in_first_frame: frame_pos == 0,
                    first_seen: obs.timestamp,
                    last_seen: obs.timestamp,
                    net_dy: 0.0,
                    first_center_y: center_y,
                });
            }
        }
    }

    /// Sort object records by id so view iteration (and therefore per-chunk
    /// row order) is deterministic.
    fn finish(&mut self) {
        self.objects.sort_unstable_by_key(|r| r.id);
    }

    /// Load an owned [`Chunk`] into this buffer and return a view of it.
    ///
    /// This is the compatibility path for code that already holds materialized
    /// chunks (tests, the eager `split_scene` pipeline): attributes are copied
    /// into the buffer's local pool once. Hot-path code should materialize
    /// straight from a [`ChunkPlan`] instead.
    pub fn load_chunk<'v>(&'v mut self, chunk: &Chunk) -> ChunkView<'v> {
        self.clear();
        self.camera = Some(chunk.camera.clone());
        for frame in &chunk.frames {
            let obs_start = self.observations.len();
            self.observations.extend(frame.observations.iter().copied());
            self.frames.push(FrameRecord {
                index_in_chunk: frame.index_in_chunk,
                timestamp: frame.timestamp,
                obs_start,
                obs_end: self.observations.len(),
            });
        }
        // Carry the chunk's own per-object metadata verbatim; attributes go
        // into the local pool.
        for (id, info) in &chunk.objects {
            let attr = AttrSlot::Local(self.local_attrs.len() as u32);
            self.local_attrs.push(info.attributes.clone());
            self.objects.push(ObjectRecord {
                id: *id,
                class: info.class,
                attr,
                visible_in_first_frame: info.visible_in_first_frame,
                first_seen: info.first_seen,
                last_seen: info.last_seen,
                net_dy: info.net_dy,
                first_center_y: 0.0,
            });
        }
        self.finish();
        ChunkView {
            index: chunk.index,
            camera: self.camera.as_deref().unwrap_or(""),
            span: chunk.span,
            frames: &self.frames,
            observations: &self.observations,
            objects: &self.objects,
            scene_objects: &[],
            local_attrs: &self.local_attrs,
        }
    }
}

/// A borrowed, copyable view of one materialized chunk.
///
/// Everything a [`ChunkProcessor`](../../privid_sandbox/processor/trait.ChunkProcessor.html)
/// can learn about a chunk is reachable from here, without owning any of it:
/// the camera name and object attributes are borrowed from the scene (or the
/// backing buffer), frames and observations from the worker's [`ChunkBuffer`].
#[derive(Debug, Clone, Copy)]
pub struct ChunkView<'v> {
    index: u64,
    camera: &'v str,
    span: TimeSpan,
    frames: &'v [FrameRecord],
    observations: &'v [Observation],
    objects: &'v [ObjectRecord],
    scene_objects: &'v [TrackedObject],
    local_attrs: &'v [Attributes],
}

impl<'v> ChunkView<'v> {
    /// Index of the chunk within its split (0-based).
    pub fn index(&self) -> u64 {
        self.index
    }

    /// Name of the camera the chunk came from.
    pub fn camera(&self) -> &'v str {
        self.camera
    }

    /// Time span covered by the chunk.
    pub fn span(&self) -> TimeSpan {
        self.span
    }

    /// Number of frames in the chunk.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Total number of observations across all frames.
    pub fn observation_count(&self) -> usize {
        self.observations.len()
    }

    /// Number of distinct objects observed in the chunk.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// The chunk's frames, in order.
    pub fn frames(&self) -> impl Iterator<Item = FrameView<'v>> + '_ {
        let observations = self.observations;
        self.frames.iter().map(move |f| FrameView {
            index_in_chunk: f.index_in_chunk,
            timestamp: f.timestamp,
            observations: &observations[f.obs_start..f.obs_end], // privid-analyzer: allow(panic-freedom) -- frame ranges are recorded as observations is appended; they never exceed its final length
        })
    }

    /// Per-object chunk metadata, in ascending [`ObjectId`] order (so row
    /// order derived from it is deterministic).
    pub fn objects(&self) -> impl Iterator<Item = ObjectView<'v>> + '_ {
        let scene_objects = self.scene_objects;
        let local_attrs = self.local_attrs;
        self.objects.iter().map(move |r| ObjectView {
            id: r.id,
            class: r.class,
            visible_in_first_frame: r.visible_in_first_frame,
            first_seen: r.first_seen,
            last_seen: r.last_seen,
            net_dy: r.net_dy,
            attributes: resolve_attr(r.attr, scene_objects, local_attrs),
        })
    }

    /// All distinct object ids observed in the chunk, ascending.
    pub fn observed_object_ids(&self) -> Vec<ObjectId> {
        self.objects.iter().map(|r| r.id).collect()
    }

    /// Restrict this chunk to a spatial region, writing the filtered chunk
    /// into `buf` and returning a view of it.
    ///
    /// Only observations whose centre lies inside `region` are kept, and the
    /// per-object metadata is filtered to objects that remain visible (the
    /// metadata itself — first/last seen, net motion — is not recomputed,
    /// matching the semantics of the former `restrict_chunk_to_region`).
    /// Observations are `Copy`, so this is a compact copy into reused
    /// storage, not a deep clone: no strings or attributes are duplicated.
    pub fn restrict_into<'b>(&self, region: &BoundingBox, buf: &'b mut ChunkBuffer) -> ChunkView<'b>
    where
        'v: 'b,
    {
        buf.clear();
        for f in self.frames {
            let obs_start = buf.observations.len();
            // privid-analyzer: allow(panic-freedom) -- frame ranges are recorded as observations is appended; they never exceed its final length
            for obs in &self.observations[f.obs_start..f.obs_end] {
                if region.contains_point(obs.bbox.center()) {
                    buf.observations.push(*obs);
                    buf.slots.insert(obs.object_id, 0);
                }
            }
            buf.frames.push(FrameRecord {
                index_in_chunk: f.index_in_chunk,
                timestamp: f.timestamp,
                obs_start,
                obs_end: buf.observations.len(),
            });
        }
        // Source records are already sorted by id; retaining preserves order.
        for r in self.objects {
            if buf.slots.contains_key(&r.id) {
                buf.objects.push(*r);
            }
        }
        ChunkView {
            index: self.index,
            camera: self.camera,
            span: self.span,
            frames: &buf.frames,
            observations: &buf.observations,
            objects: &buf.objects,
            scene_objects: self.scene_objects,
            local_attrs: self.local_attrs,
        }
    }

    /// Materialize this view into an owned [`Chunk`] (clones attributes and
    /// the camera name; compatibility path for code that needs ownership).
    pub fn to_chunk(&self) -> Chunk {
        Chunk {
            index: self.index,
            camera: Arc::from(self.camera),
            span: self.span,
            frames: self
                .frames()
                .map(|f| Frame {
                    index_in_chunk: f.index_in_chunk,
                    timestamp: f.timestamp,
                    observations: f.observations().to_vec(),
                })
                .collect(),
            objects: self
                .objects()
                .map(|o| {
                    (
                        o.id,
                        ChunkObjectInfo {
                            class: o.class,
                            attributes: o.attributes().clone(),
                            visible_in_first_frame: o.visible_in_first_frame,
                            first_seen: o.first_seen,
                            last_seen: o.last_seen,
                            net_dy: o.net_dy,
                        },
                    )
                })
                .collect(),
        }
    }
}

fn resolve_attr<'v>(
    slot: AttrSlot,
    scene_objects: &'v [TrackedObject],
    local_attrs: &'v [Attributes],
) -> &'v Attributes {
    match slot {
        AttrSlot::Scene(i) => scene_objects.get(i as usize).map(|o| &o.attributes).unwrap_or_else(|| default_attributes()),
        AttrSlot::Local(i) => local_attrs.get(i as usize).unwrap_or_else(|| default_attributes()),
        AttrSlot::Unknown => default_attributes(),
    }
}

/// A borrowed view of one frame: its timestamp plus the observations visible
/// in it (after masking and any region restriction).
#[derive(Debug, Clone, Copy)]
pub struct FrameView<'v> {
    /// Index of the frame within its chunk.
    pub index_in_chunk: u64,
    /// Absolute timestamp of the frame.
    pub timestamp: Timestamp,
    observations: &'v [Observation],
}

impl<'v> FrameView<'v> {
    /// The observations visible in this frame.
    pub fn observations(&self) -> &'v [Observation] {
        self.observations
    }
}

/// What a processor can learn about one object from one chunk — the borrowed
/// analogue of [`ChunkObjectInfo`], with attributes shared, not cloned.
#[derive(Debug, Clone, Copy)]
pub struct ObjectView<'v> {
    /// The object's id.
    pub id: ObjectId,
    /// The object's class.
    pub class: ObjectClass,
    /// True if the object is already visible in the chunk's first frame.
    pub visible_in_first_frame: bool,
    /// First frame timestamp (within this chunk) the object is visible.
    pub first_seen: Timestamp,
    /// Last frame timestamp (within this chunk) the object is visible.
    pub last_seen: Timestamp,
    /// Net vertical motion of the object's centre across this chunk, in
    /// pixels (negative = northwards).
    pub net_dy: f64,
    attributes: &'v Attributes,
}

impl<'v> ObjectView<'v> {
    /// The object's appearance attributes, borrowed from the scene.
    pub fn attributes(&self) -> &'v Attributes {
        self.attributes
    }
}

/// The lazy chunk plan: which chunks a `SPLIT` produces, with materialization
/// deferred until a worker asks for a specific chunk.
///
/// Construction is pure arithmetic over the window and [`ChunkSpec`]; no
/// frame or object data is touched. Workers then call
/// [`ChunkPlan::materialize_into`] with their own [`ChunkBuffer`], which is
/// what makes the plan trivially shareable across threads (`&ChunkPlan` is
/// `Send + Sync`).
#[derive(Debug)]
pub struct ChunkPlan<'a> {
    scene: &'a Scene,
    mask: Option<&'a Mask>,
    spec: ChunkSpec,
    window: TimeSpan,
    spans: Vec<TimeSpan>,
}

impl<'a> ChunkPlan<'a> {
    /// Plan the split of `scene`'s `window` into chunks per `spec`, with an
    /// optional mask applied during materialization.
    pub fn new(scene: &'a Scene, window: &TimeSpan, spec: &ChunkSpec, mask: Option<&'a Mask>) -> Self {
        ChunkPlan { scene, mask, spec: *spec, window: *window, spans: spec.chunk_spans(window) }
    }

    /// The window the plan currently covers.
    pub fn window(&self) -> TimeSpan {
        self.window
    }

    /// Lazily extend the plan to a longer window (a live recording's edge
    /// moved). Completed chunk spans are kept as-is; only a trailing chunk
    /// that was truncated by the old window end is re-derived, and new spans
    /// are appended from there — the cost is proportional to the *extension*,
    /// not the whole timeline, which is what lets a standing query's plan
    /// grow all day. Equivalent to re-planning the longer window from scratch.
    pub fn extend_to(&mut self, new_end: Timestamp) {
        if new_end <= self.window.end {
            return;
        }
        // Trailing chunks cut short by the old window edge grow back (with a
        // negative stride several overlapping chunks can end there).
        while self
            .spans
            .last()
            .is_some_and(|s| s.end == self.window.end && s.duration() < self.spec.chunk_secs)
        {
            self.spans.pop();
        }
        let resume = match self.spans.last() {
            Some(last) => last.start.add_secs(self.spec.period()),
            None => self.window.start,
        };
        self.window = TimeSpan::new(self.window.start, new_end);
        if resume < new_end {
            self.spans.extend(self.spec.chunk_spans(&TimeSpan::new(resume, new_end)));
        }
    }

    /// Number of chunks the plan yields.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True if the plan yields no chunks (empty window).
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The time span of chunk `index`.
    pub fn span_of(&self, index: usize) -> TimeSpan {
        self.spans[index] // privid-analyzer: allow(panic-freedom) -- documented contract: index < chunk_count(), upheld by the executor's chunk loop
    }

    /// The scene this plan splits.
    pub fn scene(&self) -> &'a Scene {
        self.scene
    }

    /// Materialize chunk `index` into `buf`, returning a borrowed view.
    ///
    /// Frames are sampled at the scene's frame rate from the chunk's start;
    /// observations are appended to the buffer's flat storage (no per-frame
    /// allocation at steady state), and object attributes are referenced by
    /// scene index, never cloned.
    pub fn materialize_into<'v>(&'v self, index: usize, buf: &'v mut ChunkBuffer) -> ChunkView<'v> {
        let span = self.spans[index]; // privid-analyzer: allow(panic-freedom) -- documented contract: index < chunk_count(), upheld by the executor's chunk loop
        buf.clear();
        let dt = self.scene.frame_rate.frame_duration();
        let n_frames = (span.duration() / dt).ceil().max(1.0) as u64;
        for fi in 0..n_frames {
            let t = span.start.add_secs(fi as f64 * dt);
            if !span.contains(t) {
                break;
            }
            let obs_start = buf.observations.len();
            self.scene.observations_at_masked_into(t, self.mask, &mut buf.observations);
            for oi in obs_start..buf.observations.len() {
                let obs = buf.observations[oi]; // privid-analyzer: allow(panic-freedom) -- oi ranges over obs_start..len() of the same buffer
                let attr = match self.scene.object_index(obs.object_id) {
                    Some(i) => AttrSlot::Scene(i as u32),
                    None => AttrSlot::Unknown,
                };
                buf.note_observation(fi as usize, obs, attr);
            }
            buf.frames.push(FrameRecord {
                index_in_chunk: fi,
                timestamp: t,
                obs_start,
                obs_end: buf.observations.len(),
            });
        }
        buf.finish();
        ChunkView {
            index: index as u64,
            camera: self.scene.camera.as_str(),
            span,
            frames: &buf.frames,
            observations: &buf.observations,
            objects: &buf.objects,
            scene_objects: &self.scene.objects,
            local_attrs: &buf.local_attrs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::split_scene;
    use crate::geometry::{FrameSize, Point};
    use crate::object::{Attributes, ObjectClass, PresenceSegment};
    use crate::scene::CameraId;
    use crate::time::FrameRate;
    use crate::trajectory::Trajectory;

    fn scene_with_one_walker(duration: f64) -> Scene {
        let obj = TrackedObject::new(
            ObjectId(7),
            ObjectClass::Person,
            Attributes::default(),
            vec![PresenceSegment {
                span: TimeSpan::between_secs(2.0, 2.0 + duration),
                trajectory: Trajectory::linear(Point::new(0.0, 50.0), Point::new(100.0, 50.0), 5.0, 10.0),
            }],
        );
        Scene::new(CameraId::new("cam"), TimeSpan::from_secs(60.0), FrameRate::new(2.0), FrameSize::new(100, 100), vec![obj])
    }

    /// The pre-plan `split_scene` algorithm, kept verbatim as an independent
    /// reference: `split_scene` itself is now a wrapper over `ChunkPlan`, so
    /// comparing against it would be circular.
    fn reference_split(scene: &Scene, window: &TimeSpan, spec: &ChunkSpec) -> Vec<Chunk> {
        use crate::chunk::Frame;
        use std::collections::HashMap;
        let dt = scene.frame_rate.frame_duration();
        spec.chunk_spans(window)
            .into_iter()
            .enumerate()
            .map(|(i, span)| {
                let mut frames = Vec::new();
                for fi in 0.. {
                    let t = span.start.add_secs(fi as f64 * dt);
                    if !span.contains(t) {
                        break;
                    }
                    frames.push(Frame { index_in_chunk: fi, timestamp: t, observations: scene.observations_at(t) });
                }
                let mut objects: HashMap<ObjectId, ChunkObjectInfo> = HashMap::new();
                let mut first_centers: HashMap<ObjectId, f64> = HashMap::new();
                for (fi, frame) in frames.iter().enumerate() {
                    for obs in &frame.observations {
                        let center_y = obs.bbox.center().y;
                        let entry = objects.entry(obs.object_id).or_insert_with(|| {
                            let attributes = scene
                                .objects
                                .iter()
                                .find(|o| o.id == obs.object_id)
                                .map(|o| o.attributes.clone())
                                .unwrap_or_default();
                            first_centers.insert(obs.object_id, center_y);
                            ChunkObjectInfo {
                                class: obs.class,
                                attributes,
                                visible_in_first_frame: fi == 0,
                                first_seen: obs.timestamp,
                                last_seen: obs.timestamp,
                                net_dy: 0.0,
                            }
                        });
                        entry.last_seen = obs.timestamp;
                        entry.net_dy = center_y - first_centers.get(&obs.object_id).copied().unwrap_or(center_y);
                    }
                }
                Chunk { index: i as u64, camera: scene.camera.0.clone(), span, frames, objects }
            })
            .collect()
    }

    #[test]
    fn plan_matches_independent_reference_split() {
        let scene = scene_with_one_walker(10.0);
        let window = TimeSpan::from_secs(20.0);
        let spec = ChunkSpec::contiguous(5.0);
        let reference = reference_split(&scene, &window, &spec);
        let plan = ChunkPlan::new(&scene, &window, &spec, None);
        assert_eq!(plan.len(), reference.len());
        let mut buf = ChunkBuffer::new();
        for (i, chunk) in reference.iter().enumerate() {
            let view = plan.materialize_into(i, &mut buf);
            assert_eq!(&view.to_chunk(), chunk, "chunk {i} must be identical through either path");
            assert_eq!(view.camera(), "cam");
            assert_eq!(view.observation_count(), chunk.observation_count());
            assert_eq!(view.observed_object_ids(), chunk.observed_object_ids());
        }
        // And the public eager wrapper agrees too.
        assert_eq!(split_scene(&scene, &window, &spec, None), reference);
    }

    #[test]
    fn view_attributes_are_borrowed_from_the_scene() {
        let scene = scene_with_one_walker(10.0);
        let plan = ChunkPlan::new(&scene, &TimeSpan::from_secs(5.0), &ChunkSpec::contiguous(5.0), None);
        let mut buf = ChunkBuffer::new();
        let view = plan.materialize_into(0, &mut buf);
        let obj = view.objects().next().expect("walker visible in chunk 0");
        assert!(std::ptr::eq(obj.attributes(), &scene.objects[0].attributes), "no attribute clone");
    }

    #[test]
    fn empty_window_yields_no_chunks() {
        let scene = scene_with_one_walker(10.0);
        let plan = ChunkPlan::new(&scene, &TimeSpan::between_secs(5.0, 5.0), &ChunkSpec::contiguous(5.0), None);
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
    }

    #[test]
    fn chunk_boundary_exactly_on_a_frame_is_half_open() {
        // 2 fps, 5 s chunks: the frame at t = 5.0 belongs to chunk 1, not
        // chunk 0, because spans are half-open.
        let scene = scene_with_one_walker(10.0);
        let plan = ChunkPlan::new(&scene, &TimeSpan::from_secs(10.0), &ChunkSpec::contiguous(5.0), None);
        let mut buf = ChunkBuffer::new();
        let c0 = plan.materialize_into(0, &mut buf);
        let last_t = c0.frames().last().unwrap().timestamp;
        assert_eq!(last_t, Timestamp::from_secs(4.5));
        assert_eq!(c0.frame_count(), 10);
        let c1 = plan.materialize_into(1, &mut buf);
        assert_eq!(c1.frames().next().unwrap().timestamp, Timestamp::from_secs(5.0));
    }

    #[test]
    fn restrict_keeps_only_in_region_observations() {
        let scene = scene_with_one_walker(10.0);
        let plan = ChunkPlan::new(&scene, &TimeSpan::from_secs(20.0), &ChunkSpec::contiguous(5.0), None);
        let mut buf = ChunkBuffer::new();
        let mut region_buf = ChunkBuffer::new();
        // Walker moves left→right at y = 50; chunk 1 covers t ∈ [5, 10).
        let view = plan.materialize_into(1, &mut buf);
        let left = BoundingBox::new(0.0, 0.0, 50.0, 100.0);
        let sub = view.restrict_into(&left, &mut region_buf);
        assert!(sub.observation_count() > 0);
        assert!(sub.observation_count() < view.observation_count());
        for f in sub.frames() {
            for obs in f.observations() {
                assert!(left.contains_point(obs.bbox.center()));
            }
        }
        assert_eq!(sub.frame_count(), view.frame_count(), "frames survive, possibly empty");
        assert_eq!(sub.index(), view.index());
        assert_eq!(sub.camera(), view.camera());
    }

    #[test]
    fn restrict_to_empty_region_drops_all_objects() {
        let scene = scene_with_one_walker(10.0);
        let plan = ChunkPlan::new(&scene, &TimeSpan::from_secs(5.0), &ChunkSpec::contiguous(5.0), None);
        let mut buf = ChunkBuffer::new();
        let mut region_buf = ChunkBuffer::new();
        let view = plan.materialize_into(0, &mut buf);
        assert!(view.object_count() > 0);
        // The walker is at y = 50; a strip at the bottom of the frame sees nothing.
        let empty = BoundingBox::new(0.0, 90.0, 100.0, 10.0);
        let sub = view.restrict_into(&empty, &mut region_buf);
        assert_eq!(sub.observation_count(), 0);
        assert_eq!(sub.object_count(), 0);
        assert!(sub.objects().next().is_none());
        assert_eq!(sub.frame_count(), view.frame_count());
    }

    #[test]
    fn loaded_chunk_round_trips_through_a_view() {
        let scene = scene_with_one_walker(10.0);
        let chunks = split_scene(&scene, &TimeSpan::from_secs(10.0), &ChunkSpec::contiguous(5.0), None);
        let mut buf = ChunkBuffer::new();
        let view = buf.load_chunk(&chunks[0]);
        assert_eq!(&view.to_chunk(), &chunks[0]);
    }

    #[test]
    fn extend_to_matches_a_fresh_plan_over_the_longer_window() {
        let scene = scene_with_one_walker(10.0);
        // Windows that leave the trailing chunk truncated, full, and strided.
        for (first_end, spec) in [
            (12.0, ChunkSpec::contiguous(5.0)),
            (15.0, ChunkSpec::contiguous(5.0)),
            (13.0, ChunkSpec::new(5.0, 3.0).unwrap()),
            (14.0, ChunkSpec::new(10.0, -6.0).unwrap()),
        ] {
            let mut lazy = ChunkPlan::new(&scene, &TimeSpan::from_secs(first_end), &spec, None);
            lazy.extend_to(Timestamp::from_secs(31.0));
            lazy.extend_to(Timestamp::from_secs(31.0)); // no-op re-extension
            lazy.extend_to(Timestamp::from_secs(44.0));
            let fresh = ChunkPlan::new(&scene, &TimeSpan::from_secs(44.0), &spec, None);
            assert_eq!(lazy.len(), fresh.len(), "spec {spec:?} first_end {first_end}");
            assert_eq!(lazy.window(), fresh.window());
            for i in 0..fresh.len() {
                assert_eq!(lazy.span_of(i), fresh.span_of(i), "chunk {i}, spec {spec:?} first_end {first_end}");
            }
        }
    }

    #[test]
    fn extend_to_from_an_empty_window() {
        let scene = scene_with_one_walker(10.0);
        let mut plan = ChunkPlan::new(&scene, &TimeSpan::between_secs(5.0, 5.0), &ChunkSpec::contiguous(5.0), None);
        assert!(plan.is_empty());
        plan.extend_to(Timestamp::from_secs(17.0));
        let fresh = ChunkPlan::new(&scene, &TimeSpan::between_secs(5.0, 17.0), &ChunkSpec::contiguous(5.0), None);
        assert_eq!(plan.len(), fresh.len());
        for i in 0..fresh.len() {
            assert_eq!(plan.span_of(i), fresh.span_of(i));
        }
    }

    #[test]
    fn object_iteration_is_sorted_by_id() {
        let mut objects = Vec::new();
        for id in [9u64, 3, 7, 1] {
            objects.push(TrackedObject::new(
                ObjectId(id),
                ObjectClass::Person,
                Attributes::default(),
                vec![PresenceSegment {
                    span: TimeSpan::between_secs(0.0, 10.0),
                    trajectory: Trajectory::linear(Point::new(0.0, 50.0), Point::new(100.0, 50.0), 5.0, 10.0),
                }],
            ));
        }
        let scene = Scene::new(
            CameraId::new("cam"),
            TimeSpan::from_secs(20.0),
            FrameRate::new(2.0),
            FrameSize::new(100, 100),
            objects,
        );
        let plan = ChunkPlan::new(&scene, &TimeSpan::from_secs(5.0), &ChunkSpec::contiguous(5.0), None);
        let mut buf = ChunkBuffer::new();
        let view = plan.materialize_into(0, &mut buf);
        let ids: Vec<u64> = view.objects().map(|o| o.id.0).collect();
        assert_eq!(ids, vec![1, 3, 7, 9]);
    }
}
