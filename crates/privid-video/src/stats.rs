//! Persistence statistics: distributions, histograms and spatial heatmaps.
//!
//! These reproduce the analysis artifacts of §7.1: Fig. 3 (per-pixel
//! persistence heatmaps that suggest masks), Fig. 4 (log-scale persistence
//! histograms before/after masking, with maxima and reduction factors), and
//! the "% identities retained" column of Table 6.

use crate::geometry::{GridSpec, Mask};
use crate::object::TrackedObject;
use crate::scene::Scene;
use crate::time::Seconds;
use serde::{Deserialize, Serialize};

/// Summary statistics of a set of persistence (duration) values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PersistenceStats {
    /// Number of objects contributing at least one observable run.
    pub object_count: usize,
    /// Maximum observable run duration in seconds.
    pub max_secs: Seconds,
    /// Mean observable run duration in seconds.
    pub mean_secs: Seconds,
    /// Median observable run duration in seconds.
    pub median_secs: Seconds,
    /// 99th-percentile run duration in seconds.
    pub p99_secs: Seconds,
}

impl PersistenceStats {
    /// Compute stats over the observable runs of a scene's private objects,
    /// optionally under a mask.
    pub fn compute(scene: &Scene, mask: Option<&Mask>) -> Self {
        Self::compute_filtered(scene, mask, |o| o.class.is_private())
    }

    /// Compute stats over objects selected by `filter`.
    pub fn compute_filtered(scene: &Scene, mask: Option<&Mask>, filter: impl Fn(&TrackedObject) -> bool) -> Self {
        let mut durations: Vec<Seconds> = Vec::new();
        let mut object_count = 0usize;
        for obj in scene.objects.iter().filter(|o| filter(o)) {
            let runs = scene.observable_runs(obj, mask);
            if runs.is_empty() {
                continue;
            }
            object_count += 1;
            durations.extend(runs);
        }
        if durations.is_empty() {
            return PersistenceStats { object_count: 0, max_secs: 0.0, mean_secs: 0.0, median_secs: 0.0, p99_secs: 0.0 };
        }
        durations.sort_by(|a, b| a.total_cmp(b));
        let n = durations.len();
        let sum: f64 = durations.iter().sum();
        PersistenceStats {
            object_count,
            max_secs: durations[n - 1], // privid-analyzer: allow(panic-freedom) -- durations non-empty (early return above), so n-1, n/2, and min(n-1) are in bounds
            mean_secs: sum / n as f64,
            // privid-analyzer: allow(panic-freedom) -- same proof: n >= 1
            median_secs: durations[n / 2],
            // privid-analyzer: allow(panic-freedom) -- index min-clamped to n-1
            p99_secs: durations[((n as f64 * 0.99) as usize).min(n - 1)],
        }
    }

    /// Ratio of another set of stats' maximum to this one's — the "relative
    /// reduction in max persistence" the paper reports for masks.
    pub fn max_reduction_vs(&self, original: &PersistenceStats) -> f64 {
        if self.max_secs <= 0.0 {
            f64::INFINITY
        } else {
            original.max_secs / self.max_secs
        }
    }
}

/// A histogram of persistence values in natural-log-second bins (matching the
/// x-axis of Fig. 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PersistenceHistogram {
    /// Upper edge (in ln seconds) of each bin; bin `i` covers `[i, i+1)`.
    pub bins: Vec<usize>,
    /// Total number of samples.
    pub total: usize,
}

impl PersistenceHistogram {
    /// Build a histogram from a scene's observable runs under an optional mask.
    pub fn compute(scene: &Scene, mask: Option<&Mask>) -> Self {
        let mut bins = vec![0usize; 16];
        let mut total = 0usize;
        for obj in scene.objects.iter().filter(|o| o.class.is_private()) {
            for run in scene.observable_runs(obj, mask) {
                let ln = run.max(1.0).ln();
                let bin = (ln.floor() as usize).min(bins.len() - 1);
                bins[bin] += 1; // privid-analyzer: allow(panic-freedom) -- bin is min-clamped to bins.len()-1 on the line above
                total += 1;
            }
        }
        PersistenceHistogram { bins, total }
    }

    /// The relative frequency of each bin.
    pub fn relative(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.bins.len()];
        }
        self.bins.iter().map(|&c| c as f64 / self.total as f64).collect()
    }

    /// Index of the highest non-empty bin (proxy for the max persistence in
    /// log space).
    pub fn max_bin(&self) -> usize {
        self.bins.iter().rposition(|&c| c > 0).unwrap_or(0)
    }
}

/// Per-grid-cell total presence time: the heatmap of Fig. 3 that the video
/// owner inspects when choosing masks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PresenceHeatmap {
    /// The grid the heatmap is computed over.
    pub grid: GridSpec,
    /// Row-major (row * cols + col) total presence seconds per cell.
    pub seconds: Vec<f64>,
}

impl PresenceHeatmap {
    /// Accumulate presence time per cell by sampling each private object's
    /// trajectory at the scene frame rate.
    pub fn compute(scene: &Scene, grid: GridSpec) -> Self {
        let mut seconds = vec![0.0; grid.cell_count()];
        let dt = scene.frame_rate.frame_duration();
        for obj in scene.objects.iter().filter(|o| o.class.is_private()) {
            for seg in &obj.segments {
                let n = (seg.span.duration() / dt).ceil() as u64;
                for i in 0..n {
                    let t = seg.span.start.add_secs(i as f64 * dt);
                    if let Some(bbox) = seg.bbox_at(t) {
                        let cell = grid.cell_of(bbox.center());
                        seconds[(cell.1 * grid.cols + cell.0) as usize] += dt; // privid-analyzer: allow(panic-freedom) -- cell_of clamps to grid bounds; seconds has rows*cols entries
                    }
                }
            }
        }
        PresenceHeatmap { grid, seconds }
    }

    /// Presence seconds accumulated in a cell.
    pub fn cell_seconds(&self, cell: (u32, u32)) -> f64 {
        self.seconds[(cell.1 * self.grid.cols + cell.0) as usize] // privid-analyzer: allow(panic-freedom) -- row-major index of an in-grid cell; seconds has rows*cols entries
    }

    /// The cell with the most accumulated presence time.
    pub fn hottest_cell(&self) -> (u32, u32) {
        let idx = self
            .seconds
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        ((idx as u32) % self.grid.cols, (idx as u32) / self.grid.cols)
    }

    /// The `n` hottest cells, in decreasing order of presence time.
    pub fn hottest_cells(&self, n: usize) -> Vec<(u32, u32)> {
        let mut indexed: Vec<(usize, f64)> = self.seconds.iter().cloned().enumerate().collect();
        indexed.sort_by(|a, b| b.1.total_cmp(&a.1));
        indexed
            .into_iter()
            .take(n)
            .map(|(i, _)| ((i as u32) % self.grid.cols, (i as u32) / self.grid.cols))
            .collect()
    }

    /// Normalized heat values in `[0, 1]` (for rendering / comparison).
    pub fn normalized(&self) -> Vec<f64> {
        let max = self.seconds.iter().cloned().fold(0.0, f64::max);
        if max <= 0.0 {
            return vec![0.0; self.seconds.len()];
        }
        self.seconds.iter().map(|&s| s / max).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{SceneConfig, SceneGenerator};
    use crate::geometry::GridSpec;

    fn campus_1h() -> Scene {
        SceneGenerator::new(SceneConfig::campus().with_duration_hours(1.0)).generate()
    }

    #[test]
    fn stats_reflect_heavy_tail() {
        let scene = campus_1h();
        let stats = PersistenceStats::compute(&scene, None);
        assert!(stats.object_count > 20);
        assert!(stats.max_secs > stats.median_secs * 3.0, "max {} vs median {}", stats.max_secs, stats.median_secs);
        assert!(stats.p99_secs <= stats.max_secs);
        assert!(stats.mean_secs >= stats.median_secs, "heavy tail pulls the mean above the median");
    }

    #[test]
    fn histogram_totals_match_runs() {
        let scene = campus_1h();
        let hist = PersistenceHistogram::compute(&scene, None);
        assert!(hist.total > 0);
        assert_eq!(hist.bins.iter().sum::<usize>(), hist.total);
        let rel: f64 = hist.relative().iter().sum();
        assert!((rel - 1.0).abs() < 1e-9);
        assert!(hist.max_bin() >= 4, "tail should reach at least e^4 ≈ 55 s");
    }

    #[test]
    fn heatmap_hotspots_are_in_linger_regions() {
        let scene = campus_1h();
        let grid = GridSpec::coarse(scene.frame_size);
        let heat = PresenceHeatmap::compute(&scene, grid);
        let hottest = heat.hottest_cell();
        assert!(heat.cell_seconds(hottest) > 0.0);
        // Campus linger regions are at normalized (0.05..0.2, 0.75..0.95) and
        // (0.8..0.95, 0.05..0.25); the hottest cell should fall in one of them.
        let cx = (hottest.0 as f64 + 0.5) / grid.cols as f64;
        let cy = (hottest.1 as f64 + 0.5) / grid.rows as f64;
        let in_linger = (cx < 0.25 && cy > 0.7) || (cx > 0.75 && cy < 0.3);
        assert!(in_linger, "hottest cell ({cx:.2}, {cy:.2}) should be in a linger region");
    }

    #[test]
    fn masking_hot_cells_reduces_max_persistence() {
        let scene = campus_1h();
        let grid = GridSpec::coarse(scene.frame_size);
        let heat = PresenceHeatmap::compute(&scene, grid);
        let mask = Mask::from_cells(grid, heat.hottest_cells(40));
        let before = PersistenceStats::compute(&scene, None);
        let after = PersistenceStats::compute(&scene, Some(&mask));
        assert!(after.max_secs < before.max_secs, "masking hot cells must not increase max persistence");
        assert!(after.max_reduction_vs(&before) > 1.0);
        // Most identities should still be detectable (Table 6 shape).
        assert!(after.object_count as f64 >= 0.5 * before.object_count as f64);
    }

    #[test]
    fn normalized_heatmap_bounded() {
        let scene = campus_1h();
        let heat = PresenceHeatmap::compute(&scene, GridSpec::coarse(scene.frame_size));
        for v in heat.normalized() {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn empty_scene_yields_zero_stats() {
        let scene = Scene::new(
            crate::scene::CameraId::new("empty"),
            crate::time::TimeSpan::from_secs(60.0),
            crate::time::FrameRate::new(1.0),
            crate::geometry::FrameSize::new(100, 100),
            vec![],
        );
        let stats = PersistenceStats::compute(&scene, None);
        assert_eq!(stats.object_count, 0);
        assert_eq!(stats.max_secs, 0.0);
        let hist = PersistenceHistogram::compute(&scene, None);
        assert_eq!(hist.total, 0);
        assert_eq!(hist.relative().iter().sum::<f64>(), 0.0);
    }
}
