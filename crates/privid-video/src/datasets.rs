//! The extended video catalog used by Table 6 / Fig. 11.
//!
//! Besides its own three videos, the paper evaluates the masking optimization
//! on three BlazeIt videos (venice-grand-canal, venice-rialto, taipei) and
//! four MIRIS videos (shibuya, beach, warsaw, uav). Each entry here is a
//! synthetic configuration whose traffic volume, lingering behaviour and
//! persistence scale are chosen so the masking experiment exhibits the same
//! qualitative shape the paper reports for that video: how much of the grid
//! must be masked, how large the max-persistence reduction is, and roughly
//! what fraction of identities survive.

use crate::generator::{SceneConfig, SceneGenerator, SceneKind};
use crate::scene::Scene;
use serde::{Deserialize, Serialize};

/// One video of the extended catalog plus the paper's reported targets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetEntry {
    /// Source dataset ("Privid", "BlazeIt", "Miris").
    pub source: String,
    /// Video name as it appears in Table 6.
    pub name: String,
    /// Generator configuration for the synthetic counterpart.
    pub config: SceneConfig,
    /// Paper-reported relative reduction in max persistence after masking.
    pub paper_reduction: f64,
    /// Paper-reported % of identities retained after masking.
    pub paper_identities_retained: f64,
}

/// The full catalog of Table 6.
#[derive(Debug, Clone)]
pub struct DatasetCatalog {
    entries: Vec<DatasetEntry>,
}

impl DatasetCatalog {
    /// Build the catalog with the paper's ten videos.
    pub fn table6() -> Self {
        let custom = |name: &str,
                      arrivals: f64,
                      linger_frac: f64,
                      linger_mu: f64,
                      max_dwell: f64,
                      car_frac: f64,
                      seed: u64| {
            SceneConfig {
                kind: SceneKind::Custom(name.to_string()),
                arrivals_per_hour: arrivals,
                linger_fraction: linger_frac,
                linger_ln_mu: linger_mu,
                max_dwell_secs: max_dwell,
                car_fraction: car_frac,
                seed,
                ..SceneConfig::urban()
            }
        };
        let entries = vec![
            DatasetEntry {
                source: "Privid".into(),
                name: "campus".into(),
                config: SceneConfig::campus(),
                paper_reduction: 10.27,
                paper_identities_retained: 0.9106,
            },
            DatasetEntry {
                source: "Privid".into(),
                name: "highway".into(),
                config: SceneConfig::highway(),
                paper_reduction: 47.92,
                paper_identities_retained: 0.913,
            },
            DatasetEntry {
                source: "Privid".into(),
                name: "urban".into(),
                config: SceneConfig::urban(),
                paper_reduction: 5.52,
                paper_identities_retained: 0.8724,
            },
            DatasetEntry {
                source: "BlazeIt".into(),
                name: "grand-canal".into(),
                config: custom("grand-canal", 900.0, 0.06, 7.0, 10930.0, 0.6, 11),
                paper_reduction: 4.38,
                paper_identities_retained: 0.2667,
            },
            DatasetEntry {
                source: "BlazeIt".into(),
                name: "venice-rialto".into(),
                config: custom("venice-rialto", 2200.0, 0.01, 7.5, 37992.0, 0.1, 12),
                paper_reduction: 4.94,
                paper_identities_retained: 0.9421,
            },
            DatasetEntry {
                source: "BlazeIt".into(),
                name: "taipei".into(),
                config: custom("taipei", 3000.0, 0.008, 8.0, 56931.0, 0.5, 13),
                paper_reduction: 23.29,
                paper_identities_retained: 0.9994,
            },
            DatasetEntry {
                source: "Miris".into(),
                name: "shibuya".into(),
                config: custom("shibuya", 4000.0, 0.005, 6.5, 9363.0, 0.2, 14),
                paper_reduction: 4.29,
                paper_identities_retained: 0.9643,
            },
            DatasetEntry {
                source: "Miris".into(),
                name: "beach".into(),
                config: custom("beach", 600.0, 0.03, 6.5, 4843.0, 0.0, 15),
                paper_reduction: 5.74,
                paper_identities_retained: 0.9479,
            },
            DatasetEntry {
                source: "Miris".into(),
                name: "warsaw".into(),
                config: custom("warsaw", 1800.0, 0.01, 6.8, 6479.0, 0.4, 16),
                paper_reduction: 5.65,
                paper_identities_retained: 0.9482,
            },
            DatasetEntry {
                source: "Miris".into(),
                name: "uav".into(),
                config: custom("uav", 300.0, 0.1, 5.0, 595.0, 0.3, 17),
                paper_reduction: 4.58,
                paper_identities_retained: 0.7557,
            },
        ];
        DatasetCatalog { entries }
    }

    /// All catalog entries.
    pub fn entries(&self) -> &[DatasetEntry] {
        &self.entries
    }

    /// Look up a video by name.
    pub fn get(&self, name: &str) -> Option<&DatasetEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Generate the synthetic scene for a video, shrunk to `hours` of footage
    /// and `arrival_scale` of the nominal traffic (for tractable experiments).
    pub fn generate_scaled(&self, name: &str, hours: f64, arrival_scale: f64) -> Option<Scene> {
        self.get(name).map(|e| {
            SceneGenerator::new(e.config.clone().with_duration_hours(hours).with_arrival_scale(arrival_scale))
                .generate()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_ten_videos() {
        let cat = DatasetCatalog::table6();
        assert_eq!(cat.entries().len(), 10);
        assert_eq!(cat.entries().iter().filter(|e| e.source == "Privid").count(), 3);
        assert_eq!(cat.entries().iter().filter(|e| e.source == "BlazeIt").count(), 3);
        assert_eq!(cat.entries().iter().filter(|e| e.source == "Miris").count(), 4);
    }

    #[test]
    fn lookup_by_name() {
        let cat = DatasetCatalog::table6();
        assert!(cat.get("campus").is_some());
        assert!(cat.get("uav").is_some());
        assert!(cat.get("nonexistent").is_none());
    }

    #[test]
    fn paper_targets_are_positive() {
        for e in DatasetCatalog::table6().entries() {
            assert!(e.paper_reduction > 1.0, "{}", e.name);
            assert!(e.paper_identities_retained > 0.0 && e.paper_identities_retained <= 1.0, "{}", e.name);
        }
    }

    #[test]
    fn scaled_generation_produces_objects() {
        let cat = DatasetCatalog::table6();
        let scene = cat.generate_scaled("shibuya", 0.25, 0.2).unwrap();
        assert!(scene.object_count() > 10);
        assert_eq!(scene.camera.as_str(), "shibuya");
    }

    #[test]
    fn each_entry_has_lingering_population() {
        for e in DatasetCatalog::table6().entries() {
            assert!(e.config.linger_fraction > 0.0, "{} needs lingerers for masking to matter", e.name);
            assert!(!e.config.linger_regions.is_empty(), "{}", e.name);
        }
    }
}
