//! Append-only live recordings: a [`Scene`] that grows by frame batches.
//!
//! Privid's budget is defined over the video *timeline*: every chunk-sized
//! slot of footage carries its own ε, and new footage is born with a full
//! budget as the camera keeps recording. A [`Recording`] is the video-owner
//! side of that model — the per-camera high-watermark (the *live edge*) plus
//! the validation that keeps already-recorded frames final:
//!
//! * the live edge only moves forward ([`FrameBatch::duration_secs`] must be
//!   positive);
//! * a batch may only add objects whose first appearance starts at or after
//!   the live edge it is appended at (footage before the edge never changes,
//!   which is what lets closed-window query results — and their cache
//!   entries — stay valid forever);
//! * object ids stay unique across the whole recording.
//!
//! A delivered object may carry trajectory extending past the current edge
//! (the tracker knows where it is heading); that future footage stays
//! invisible to queries because [`Scene`] materializes no observations past
//! `span.end`, and is revealed batch by batch as the edge advances.
//!
//! **The replay contract (crash recovery).** Recorded footage is final, so
//! the durable privacy ledger (`privid-store`) persists only admission state
//! — never the video. After a crash the owner re-registers the camera
//! (adopting the recovered, already-debited ledger) and re-feeds the same
//! batches from its video store. For that to be sound, appending must be
//! *bit-for-bit deterministic*: the same batch sequence must reproduce the
//! exact same live-edge timestamps (edge arithmetic is integer microseconds,
//! no accumulation error) and the exact same observations, so replayed edges
//! compare equal against the recovered ledger's high-watermark and are
//! correctly treated as no-ops that mint no ε.

use crate::chunk::ChunkSpec;
use crate::geometry::FrameSize;
use crate::object::{ObjectId, TrackedObject};
use crate::plan::ChunkPlan;
use crate::scene::{CameraId, Scene};
use crate::time::{FrameRate, Seconds, TimeSpan, Timestamp};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One batch of freshly recorded footage: how much timeline it covers and
/// which ground-truth objects first appeared during it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameBatch {
    /// Seconds of new footage this batch appends. Must be positive.
    pub duration_secs: Seconds,
    /// Objects whose first appearance falls at or after the live edge this
    /// batch is appended at. Segments may extend past the new edge; they are
    /// revealed as later batches advance it.
    pub objects: Vec<TrackedObject>,
}

impl FrameBatch {
    /// A batch of footage with no newly appearing objects.
    pub fn empty(duration_secs: Seconds) -> Self {
        FrameBatch { duration_secs, objects: Vec::new() }
    }

    /// A batch of footage carrying newly appearing objects.
    pub fn new(duration_secs: Seconds, objects: Vec<TrackedObject>) -> Self {
        FrameBatch { duration_secs, objects }
    }
}

/// Why a batch could not be appended. Rejected batches leave the recording
/// untouched.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordingError {
    /// The batch covers no footage (non-positive duration).
    EmptyBatch {
        /// The offending duration.
        duration_secs: Seconds,
    },
    /// The batch re-uses an object id already present in the recording.
    DuplicateObject(ObjectId),
    /// The batch delivers an object whose first appearance predates the live
    /// edge — that would rewrite footage analysts may already have queried.
    BeforeLiveEdge {
        /// The offending object.
        id: ObjectId,
        /// Its first appearance, seconds.
        first_seen_secs: Seconds,
        /// The live edge the batch was appended at, seconds.
        live_edge_secs: Seconds,
    },
}

impl fmt::Display for RecordingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordingError::EmptyBatch { duration_secs } => {
                write!(f, "frame batch must cover footage, got {duration_secs} s")
            }
            RecordingError::DuplicateObject(id) => write!(f, "object {id} already exists in the recording"),
            RecordingError::BeforeLiveEdge { id, first_seen_secs, live_edge_secs } => write!(
                f,
                "object {id} first appears at {first_seen_secs} s, before the live edge ({live_edge_secs} s); \
                 recorded footage is append-only"
            ),
        }
    }
}

impl std::error::Error for RecordingError {}

/// An append-only recording: the growing [`Scene`] of a live camera.
#[derive(Debug, Clone)]
pub struct Recording {
    scene: Scene,
}

impl Recording {
    /// Start an empty recording for a camera (live edge at zero).
    pub fn start(camera: CameraId, frame_rate: FrameRate, frame_size: FrameSize) -> Self {
        Recording {
            scene: Scene::new(
                camera,
                TimeSpan::new(Timestamp::ZERO, Timestamp::ZERO),
                frame_rate,
                frame_size,
                Vec::new(),
            ),
        }
    }

    /// Resume a recording from a scene snapshot (its span end is the edge).
    pub fn from_scene(scene: Scene) -> Self {
        Recording { scene }
    }

    /// The high-watermark: footage exists strictly before this timestamp.
    pub fn live_edge(&self) -> Timestamp {
        self.scene.span.end
    }

    /// The recording's scene so far.
    pub fn scene(&self) -> &Scene {
        &self.scene
    }

    /// Unwrap into the underlying scene.
    pub fn into_scene(self) -> Scene {
        self.scene
    }

    /// A chunk plan over the *closed* timeline `[0, live edge)`. As more
    /// batches arrive, [`ChunkPlan::extend_to`] grows the plan lazily instead
    /// of recomputing it.
    pub fn plan<'a>(&'a self, spec: &ChunkSpec) -> ChunkPlan<'a> {
        ChunkPlan::new(&self.scene, &TimeSpan::new(self.scene.span.start, self.scene.span.end), spec, None)
    }

    /// Append one batch of footage, advancing the live edge. Returns the new
    /// edge. Validation is all-or-nothing: a rejected batch changes nothing.
    pub fn append_batch(&mut self, batch: FrameBatch) -> Result<Timestamp, RecordingError> {
        if batch.duration_secs <= 0.0 || !batch.duration_secs.is_finite() {
            return Err(RecordingError::EmptyBatch { duration_secs: batch.duration_secs });
        }
        let edge = self.live_edge();
        for obj in &batch.objects {
            if self.scene.object_index(obj.id).is_some() {
                return Err(RecordingError::DuplicateObject(obj.id));
            }
            let first = obj.first_seen().unwrap_or(edge);
            if first < edge {
                return Err(RecordingError::BeforeLiveEdge {
                    id: obj.id,
                    first_seen_secs: first.as_secs(),
                    live_edge_secs: edge.as_secs(),
                });
            }
        }
        // Duplicate ids *within* the batch: the scene lookup above only sees
        // already-appended objects.
        let mut ids: Vec<ObjectId> = batch.objects.iter().map(|o| o.id).collect();
        ids.sort_unstable();
        // privid-analyzer: allow(panic-freedom) -- windows(2) yields exactly-2-element slices
        if let Some(w) = ids.windows(2).find(|w| w[0] == w[1]) {
            return Err(RecordingError::DuplicateObject(w[0])); // privid-analyzer: allow(panic-freedom) -- windows(2) yields exactly-2-element slices
        }
        let new_edge = edge.add_secs(batch.duration_secs);
        self.scene.extend(new_edge, batch.objects);
        Ok(new_edge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;
    use crate::object::{Attributes, ObjectClass, PresenceSegment};
    use crate::trajectory::Trajectory;

    fn walker(id: u64, start: f64, end: f64) -> TrackedObject {
        TrackedObject::new(
            ObjectId(id),
            ObjectClass::Person,
            Attributes::default(),
            vec![PresenceSegment {
                span: TimeSpan::between_secs(start, end),
                trajectory: Trajectory::linear(Point::new(0.0, 50.0), Point::new(100.0, 50.0), 5.0, 10.0),
            }],
        )
    }

    fn fresh() -> Recording {
        Recording::start(CameraId::new("live"), FrameRate::new(2.0), FrameSize::new(100, 100))
    }

    #[test]
    fn batches_advance_the_live_edge_and_reveal_footage() {
        let mut rec = fresh();
        assert_eq!(rec.live_edge(), Timestamp::ZERO);
        // The walker's trajectory extends past the first batch's edge.
        rec.append_batch(FrameBatch::new(60.0, vec![walker(1, 10.0, 100.0)])).unwrap();
        assert_eq!(rec.live_edge(), Timestamp::from_secs(60.0));
        assert_eq!(rec.scene().observations_at(Timestamp::from_secs(30.0)).len(), 1);
        assert!(
            rec.scene().observations_at(Timestamp::from_secs(80.0)).is_empty(),
            "footage past the live edge does not exist yet"
        );
        rec.append_batch(FrameBatch::empty(60.0)).unwrap();
        assert_eq!(rec.live_edge(), Timestamp::from_secs(120.0));
        assert_eq!(rec.scene().observations_at(Timestamp::from_secs(80.0)).len(), 1, "now it does");
    }

    #[test]
    fn rejected_batches_change_nothing() {
        let mut rec = fresh();
        rec.append_batch(FrameBatch::new(60.0, vec![walker(1, 10.0, 40.0)])).unwrap();
        assert!(matches!(
            rec.append_batch(FrameBatch::empty(0.0)),
            Err(RecordingError::EmptyBatch { .. })
        ));
        assert!(matches!(
            rec.append_batch(FrameBatch::new(60.0, vec![walker(1, 70.0, 90.0)])),
            Err(RecordingError::DuplicateObject(ObjectId(1)))
        ));
        match rec.append_batch(FrameBatch::new(60.0, vec![walker(2, 30.0, 90.0)])) {
            Err(RecordingError::BeforeLiveEdge { id, first_seen_secs, live_edge_secs }) => {
                assert_eq!(id, ObjectId(2));
                assert_eq!(first_seen_secs, 30.0);
                assert_eq!(live_edge_secs, 60.0);
            }
            other => panic!("expected BeforeLiveEdge, got {other:?}"),
        }
        // Duplicate ids within one batch are caught too.
        assert!(matches!(
            rec.append_batch(FrameBatch::new(60.0, vec![walker(3, 70.0, 80.0), walker(3, 90.0, 100.0)])),
            Err(RecordingError::DuplicateObject(ObjectId(3)))
        ));
        assert_eq!(rec.live_edge(), Timestamp::from_secs(60.0), "every rejection left the edge alone");
        assert_eq!(rec.scene().object_count(), 1);
    }

    #[test]
    fn appended_recording_equals_one_shot_scene() {
        // The core live-ingestion invariant: appending batch by batch yields
        // the same scene (same observations everywhere) as constructing the
        // final recording in one go.
        let objects = vec![walker(1, 5.0, 50.0), walker(2, 70.0, 130.0), walker(3, 130.0, 170.0)];
        let mut rec = fresh();
        rec.append_batch(FrameBatch::new(60.0, vec![objects[0].clone()])).unwrap();
        rec.append_batch(FrameBatch::new(60.0, vec![objects[1].clone()])).unwrap();
        rec.append_batch(FrameBatch::new(60.0, vec![objects[2].clone()])).unwrap();
        let batch_scene = Scene::new(
            CameraId::new("live"),
            TimeSpan::from_secs(180.0),
            FrameRate::new(2.0),
            FrameSize::new(100, 100),
            objects,
        );
        let live_scene = rec.scene();
        assert_eq!(live_scene.span, batch_scene.span);
        let dt = 0.5;
        for i in 0..360 {
            let t = Timestamp::from_secs(i as f64 * dt);
            assert_eq!(
                live_scene.observations_at(t),
                batch_scene.observations_at(t),
                "observations diverge at {t}"
            );
        }
    }

    #[test]
    fn replaying_batches_is_bit_for_bit_deterministic() {
        // The crash-recovery replay contract: feeding the same batches twice
        // must reproduce identical live-edge timestamps (down to the micro-
        // second integer) and identical observations. Fractional batch
        // durations are the dangerous case — a float-seconds accumulator
        // would drift; the Timestamp micros arithmetic must not.
        let batches = vec![
            FrameBatch::new(0.3, vec![walker(1, 0.1, 0.25)]),
            FrameBatch::new(7.77, vec![walker(2, 1.0, 9.0)]),
            FrameBatch::new(0.1 + 0.2, Vec::new()), // a duration with no exact decimal form
            FrameBatch::new(13.333333, vec![walker(3, 9.5, 20.0)]),
        ];
        let run = |batches: &[FrameBatch]| {
            let mut rec = fresh();
            let edges: Vec<Timestamp> =
                batches.iter().map(|b| rec.append_batch(b.clone()).unwrap()).collect();
            (edges, rec.into_scene())
        };
        let (edges_a, scene_a) = run(&batches);
        let (edges_b, scene_b) = run(&batches);
        assert_eq!(edges_a, edges_b, "live-edge timestamps must replay exactly");
        assert_eq!(scene_a.span, scene_b.span);
        for i in 0..=43 {
            let t = Timestamp::from_secs(i as f64 * 0.5);
            assert_eq!(scene_a.observations_at(t), scene_b.observations_at(t), "observations diverge at {t}");
        }
        // And the edge the ledger sees (seconds, via the span) is the same
        // f64 bit pattern both times — the no-op comparison in a recovered
        // ledger's extend_to depends on it.
        assert_eq!(scene_a.span.end.as_secs().to_bits(), scene_b.span.end.as_secs().to_bits());
    }

    #[test]
    fn plan_over_the_closed_timeline() {
        let mut rec = fresh();
        rec.append_batch(FrameBatch::new(25.0, vec![walker(1, 5.0, 20.0)])).unwrap();
        let spec = ChunkSpec::contiguous(10.0);
        let plan = rec.plan(&spec);
        assert_eq!(plan.len(), 3, "25 s of closed footage in 10 s chunks");
        assert_eq!(plan.span_of(2), TimeSpan::between_secs(20.0, 25.0));
    }
}
