//! # privid-video
//!
//! Synthetic video and scene substrate for the Privid reproduction.
//!
//! The Privid paper (NSDI 2022) evaluates on real surveillance footage
//! (campus / highway / urban YouTube streams and the Porto taxi dataset).
//! Those inputs are not available offline, and Privid itself never inspects
//! pixels: every part of the system consumes either (a) per-chunk tables
//! emitted by an analyst-provided processor, or (b) ground-truth / estimated
//! *durations* of object appearances. This crate therefore models video as a
//! timeline of ground-truth objects with trajectories and attributes, from
//! which frames of bounding-box observations can be materialized at any frame
//! rate, chunked temporally, masked spatially, and split into regions —
//! exactly the operations the paper's pipeline performs on real video.
//!
//! Main entry points:
//! * [`scene::Scene`] — a camera's ground-truth world over a time span.
//! * [`generator`] — the campus / highway / urban scene generators plus the
//!   extended BlazeIt / MIRIS-style catalog used by Table 6.
//! * [`porto`] — the synthetic Porto taxi fleet used by queries Q4–Q6.
//! * [`chunk`] — temporal chunking (`SPLIT ... BY TIME c STRIDE s`).
//! * [`plan`] — lazy, zero-copy chunk materialization ([`plan::ChunkPlan`] /
//!   [`plan::ChunkView`]), the streaming form the execution engine consumes.
//! * [`recording`] — append-only live recordings ([`recording::Recording`]):
//!   a scene that grows by [`recording::FrameBatch`]es behind a per-camera
//!   live-edge high-watermark.
//! * [`stats`] — persistence distributions, heatmaps and maxima (Fig. 3/4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunk;
pub mod datasets;
pub mod generator;
pub mod geometry;
pub mod object;
pub mod plan;
pub mod porto;
pub mod recording;
pub mod scene;
pub mod stats;
pub mod time;
pub mod trajectory;

pub use chunk::{split_scene, Chunk, ChunkObjectInfo, ChunkSpec, Frame};
pub use datasets::{DatasetCatalog, DatasetEntry};
pub use generator::{SceneConfig, SceneGenerator, SceneKind};
pub use geometry::{BoundingBox, FrameSize, GridSpec, Mask, Point, Region, RegionBoundary, RegionScheme};
pub use object::{Attributes, ObjectClass, ObjectId, Observation, PresenceSegment, TrackedObject, VehicleColor};
pub use plan::{ChunkBuffer, ChunkPlan, ChunkView, FrameView, ObjectView};
pub use porto::{PortoConfig, PortoDataset, TaxiVisit};
pub use recording::{FrameBatch, Recording, RecordingError};
pub use scene::{CameraId, Scene};
pub use stats::{PersistenceHistogram, PersistenceStats, PresenceHeatmap};
pub use time::{FrameRate, Seconds, TimeSpan, Timestamp};
