//! Time primitives used throughout the workspace.
//!
//! The paper measures durations ("ρ", "persistence") in wall-clock seconds and
//! identifies frames by timestamp. We store timestamps as integer microseconds
//! so they are exact, hashable, and totally ordered, and expose convenience
//! conversions to floating-point seconds for statistics.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A duration in seconds. Durations in Privid (chunk size `c`, policy `ρ`,
/// persistence values) are real-valued seconds in the paper, so we keep the
/// same convention.
pub type Seconds = f64;

const MICROS_PER_SEC: i64 = 1_000_000;

/// An absolute point on a video's timeline, in microseconds.
///
/// Timestamp 0 corresponds to the start of the recording day (e.g. 6am for the
/// campus/highway/urban videos); experiment harnesses only ever care about
/// offsets, so no calendar mapping is needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Timestamp {
    micros: i64,
}

impl Timestamp {
    /// The zero timestamp (start of the recording).
    pub const ZERO: Timestamp = Timestamp { micros: 0 };

    /// Construct a timestamp from whole seconds.
    pub fn from_secs(secs: f64) -> Self {
        Timestamp { micros: (secs * MICROS_PER_SEC as f64).round() as i64 }
    }

    /// Construct a timestamp from hours.
    pub fn from_hours(hours: f64) -> Self {
        Self::from_secs(hours * 3600.0)
    }

    /// Construct a timestamp from raw microseconds.
    pub fn from_micros(micros: i64) -> Self {
        Timestamp { micros }
    }

    /// The timestamp as (possibly fractional) seconds.
    pub fn as_secs(&self) -> f64 {
        self.micros as f64 / MICROS_PER_SEC as f64
    }

    /// The timestamp as raw microseconds.
    pub fn as_micros(&self) -> i64 {
        self.micros
    }

    /// Saturating subtraction of a duration in seconds, never going below zero.
    pub fn saturating_sub_secs(&self, secs: f64) -> Timestamp {
        let delta = (secs * MICROS_PER_SEC as f64).round() as i64;
        Timestamp { micros: (self.micros - delta).max(0) }
    }

    /// Add a duration in seconds.
    pub fn add_secs(&self, secs: f64) -> Timestamp {
        let delta = (secs * MICROS_PER_SEC as f64).round() as i64;
        Timestamp { micros: self.micros + delta }
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.as_secs();
        let h = (total / 3600.0).floor() as i64;
        let m = ((total - h as f64 * 3600.0) / 60.0).floor() as i64;
        let s = total - h as f64 * 3600.0 - m as f64 * 60.0;
        write!(f, "{h:02}:{m:02}:{s:05.2}")
    }
}

impl Add<Seconds> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: Seconds) -> Timestamp {
        self.add_secs(rhs)
    }
}

impl AddAssign<Seconds> for Timestamp {
    fn add_assign(&mut self, rhs: Seconds) {
        *self = self.add_secs(rhs);
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Seconds;
    fn sub(self, rhs: Timestamp) -> Seconds {
        (self.micros - rhs.micros) as f64 / MICROS_PER_SEC as f64
    }
}

/// A half-open interval `[start, end)` on a video timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeSpan {
    /// Inclusive start of the span.
    pub start: Timestamp,
    /// Exclusive end of the span.
    pub end: Timestamp,
}

impl TimeSpan {
    /// Create a span. Panics if `end < start`.
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        assert!(end >= start, "TimeSpan end must not precede start");
        TimeSpan { start, end }
    }

    /// Span covering `[0, secs)`.
    pub fn from_secs(secs: f64) -> Self {
        TimeSpan::new(Timestamp::ZERO, Timestamp::from_secs(secs))
    }

    /// Span covering `[start_secs, end_secs)`.
    pub fn between_secs(start_secs: f64, end_secs: f64) -> Self {
        TimeSpan::new(Timestamp::from_secs(start_secs), Timestamp::from_secs(end_secs))
    }

    /// Duration of the span in seconds.
    pub fn duration(&self) -> Seconds {
        self.end - self.start
    }

    /// True if the timestamp lies in `[start, end)`.
    pub fn contains(&self, t: Timestamp) -> bool {
        t >= self.start && t < self.end
    }

    /// True if the two spans share at least one instant.
    pub fn overlaps(&self, other: &TimeSpan) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Intersection of two spans, if non-empty.
    pub fn intersect(&self, other: &TimeSpan) -> Option<TimeSpan> {
        let start = if self.start > other.start { self.start } else { other.start };
        let end = if self.end < other.end { self.end } else { other.end };
        if start < end {
            Some(TimeSpan::new(start, end))
        } else {
            None
        }
    }

    /// The span expanded by `secs` on both sides (clamped at zero on the left).
    /// Used by the budget ledger's `[a - ρ, b + ρ]` admission check.
    pub fn expand(&self, secs: Seconds) -> TimeSpan {
        TimeSpan::new(self.start.saturating_sub_secs(secs), self.end.add_secs(secs))
    }
}

/// A camera's frame rate in frames per second.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameRate {
    fps: f64,
}

impl FrameRate {
    /// Construct a frame rate. Panics on non-positive values.
    pub fn new(fps: f64) -> Self {
        assert!(fps > 0.0, "frame rate must be positive");
        FrameRate { fps }
    }

    /// Frames per second.
    pub fn fps(&self) -> f64 {
        self.fps
    }

    /// Duration of a single frame in seconds.
    pub fn frame_duration(&self) -> Seconds {
        1.0 / self.fps
    }

    /// Number of frames that fit fully inside a span.
    pub fn frames_in(&self, span: &TimeSpan) -> u64 {
        (span.duration() * self.fps).floor() as u64
    }

    /// Timestamp of the `i`-th frame after `start`.
    pub fn frame_time(&self, start: Timestamp, i: u64) -> Timestamp {
        start.add_secs(i as f64 * self.frame_duration())
    }
}

impl Default for FrameRate {
    fn default() -> Self {
        FrameRate::new(10.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_roundtrip_seconds() {
        let t = Timestamp::from_secs(123.456);
        assert!((t.as_secs() - 123.456).abs() < 1e-6);
    }

    #[test]
    fn timestamp_ordering_and_arithmetic() {
        let a = Timestamp::from_secs(10.0);
        let b = Timestamp::from_secs(25.5);
        assert!(a < b);
        assert!((b - a - 15.5).abs() < 1e-9);
        assert_eq!(a + 15.5, b);
    }

    #[test]
    fn timestamp_saturating_sub_clamps_to_zero() {
        let a = Timestamp::from_secs(5.0);
        assert_eq!(a.saturating_sub_secs(10.0), Timestamp::ZERO);
        assert_eq!(a.saturating_sub_secs(2.0), Timestamp::from_secs(3.0));
    }

    #[test]
    fn timestamp_display_formats_hms() {
        let t = Timestamp::from_hours(2.5);
        assert_eq!(format!("{t}"), "02:30:00.00");
    }

    #[test]
    fn span_contains_is_half_open() {
        let span = TimeSpan::between_secs(10.0, 20.0);
        assert!(span.contains(Timestamp::from_secs(10.0)));
        assert!(span.contains(Timestamp::from_secs(19.999)));
        assert!(!span.contains(Timestamp::from_secs(20.0)));
        assert!(!span.contains(Timestamp::from_secs(9.999)));
    }

    #[test]
    fn span_overlap_and_intersection() {
        let a = TimeSpan::between_secs(0.0, 10.0);
        let b = TimeSpan::between_secs(5.0, 15.0);
        let c = TimeSpan::between_secs(10.0, 20.0);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c), "half-open spans touching at a point do not overlap");
        let i = a.intersect(&b).unwrap();
        assert_eq!(i, TimeSpan::between_secs(5.0, 10.0));
        assert!(a.intersect(&c).is_none());
    }

    #[test]
    fn span_expand_clamps_left() {
        let a = TimeSpan::between_secs(5.0, 10.0);
        let e = a.expand(30.0);
        assert_eq!(e.start, Timestamp::ZERO);
        assert_eq!(e.end, Timestamp::from_secs(40.0));
    }

    #[test]
    fn frame_rate_counts_frames() {
        let fr = FrameRate::new(10.0);
        let span = TimeSpan::from_secs(5.0);
        assert_eq!(fr.frames_in(&span), 50);
        assert!((fr.frame_duration() - 0.1).abs() < 1e-12);
        assert_eq!(fr.frame_time(span.start, 10), Timestamp::from_secs(1.0));
    }

    #[test]
    #[should_panic]
    fn frame_rate_rejects_zero() {
        FrameRate::new(0.0);
    }

    #[test]
    #[should_panic]
    fn span_rejects_inverted_bounds() {
        TimeSpan::between_secs(10.0, 5.0);
    }
}
