//! Ground-truth objects, their attributes, presence segments and per-frame
//! observations.
//!
//! The paper's privacy unit is the *event*: "anything visible within the
//! camera's field of view" (§5.1), bounded by the number of segments `K` and
//! the per-segment duration `ρ`. We model each ground-truth object as a set of
//! [`PresenceSegment`]s, each with its own trajectory, so the `(ρ, K)` bound
//! of an object is directly computable and every downstream result (Table 1,
//! Fig. 4, the policy estimator) can be validated against it.

use crate::geometry::BoundingBox;
use crate::time::{Seconds, TimeSpan, Timestamp};
use crate::trajectory::Trajectory;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable identifier for a ground-truth object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj-{}", self.0)
    }
}

/// The semantic class of an object, matching the classes the paper's queries
/// filter on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectClass {
    /// A pedestrian (private).
    Person,
    /// A car or taxi (private: plate / make+model+colour identify the driver).
    Car,
    /// A bicycle (private, treated like a person).
    Bicycle,
    /// A traffic signal (non-private, used by Q10–Q12).
    TrafficLight,
    /// A tree (non-private, used by Q7–Q9).
    Tree,
}

impl ObjectClass {
    /// True for classes whose appearance the paper's default policy protects
    /// ("protect the appearance of all individuals", §5.2 including vehicles).
    pub fn is_private(&self) -> bool {
        matches!(self, ObjectClass::Person | ObjectClass::Car | ObjectClass::Bicycle)
    }

    /// Short lowercase label, used in intermediate-table values.
    pub fn label(&self) -> &'static str {
        match self {
            ObjectClass::Person => "person",
            ObjectClass::Car => "car",
            ObjectClass::Bicycle => "bicycle",
            ObjectClass::TrafficLight => "traffic_light",
            ObjectClass::Tree => "tree",
        }
    }
}

/// Colours the example query of Listing 1 groups cars by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VehicleColor {
    /// Red vehicles.
    Red,
    /// White vehicles.
    White,
    /// Silver vehicles.
    Silver,
    /// Black vehicles.
    Black,
    /// Blue vehicles.
    Blue,
}

impl VehicleColor {
    /// All colours, used when sampling attributes.
    pub const ALL: [VehicleColor; 5] =
        [VehicleColor::Red, VehicleColor::White, VehicleColor::Silver, VehicleColor::Black, VehicleColor::Blue];

    /// Uppercase label matching the `WITH KEYS` list in Listing 1.
    pub fn label(&self) -> &'static str {
        match self {
            VehicleColor::Red => "RED",
            VehicleColor::White => "WHITE",
            VehicleColor::Silver => "SILVER",
            VehicleColor::Black => "BLACK",
            VehicleColor::Blue => "BLUE",
        }
    }
}

/// Analyst-relevant attributes of an object (the columns a PROCESS executable
/// would extract: plate, colour, speed, blooming state, signal state, ...).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attributes {
    /// Licence plate for vehicles (globally unique per vehicle), empty otherwise.
    pub plate: String,
    /// Vehicle colour, if applicable.
    pub color: Option<VehicleColor>,
    /// Typical speed in km/h while moving (0 for static objects).
    pub speed_kmh: f64,
    /// For trees: whether the tree has bloomed (Q7–Q9).
    pub has_leaves: bool,
    /// For traffic lights: red-phase duration in seconds (Q10–Q12).
    pub red_light_duration: Seconds,
    /// Direction of travel: true when the trajectory moves "north" (towards
    /// campus), the filter of Q13.
    pub moving_north: bool,
}

impl Default for Attributes {
    fn default() -> Self {
        Attributes {
            plate: String::new(),
            color: None,
            speed_kmh: 0.0,
            has_leaves: false,
            red_light_duration: 0.0,
            moving_north: false,
        }
    }
}

/// One contiguous appearance of an object in the camera's field of view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PresenceSegment {
    /// The time during which the object is visible.
    pub span: TimeSpan,
    /// Where the object is at each instant of the segment.
    pub trajectory: Trajectory,
}

impl PresenceSegment {
    /// Duration of the segment in seconds — the quantity bounded by `ρ`.
    pub fn duration(&self) -> Seconds {
        self.span.duration()
    }

    /// Bounding box of the object at timestamp `t`, if visible then.
    pub fn bbox_at(&self, t: Timestamp) -> Option<BoundingBox> {
        if !self.span.contains(t) {
            return None;
        }
        let frac = if self.span.duration() <= 0.0 { 0.0 } else { (t - self.span.start) / self.span.duration() };
        Some(self.trajectory.bbox_at(frac))
    }
}

/// A ground-truth object: identity, class, attributes and every appearance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrackedObject {
    /// Stable object identity.
    pub id: ObjectId,
    /// Semantic class.
    pub class: ObjectClass,
    /// Analyst-relevant attributes.
    pub attributes: Attributes,
    /// Every contiguous appearance, sorted by start time.
    pub segments: Vec<PresenceSegment>,
}

impl TrackedObject {
    /// Construct an object, sorting its segments by start time.
    pub fn new(id: ObjectId, class: ObjectClass, attributes: Attributes, mut segments: Vec<PresenceSegment>) -> Self {
        segments.sort_by_key(|a| a.span.start);
        TrackedObject { id, class, attributes, segments }
    }

    /// Number of appearances — the quantity bounded by `K`.
    pub fn appearance_count(&self) -> usize {
        self.segments.len()
    }

    /// Duration of the longest single appearance (the object's tightest `ρ`).
    pub fn max_segment_duration(&self) -> Seconds {
        self.segments.iter().map(|s| s.duration()).fold(0.0, f64::max)
    }

    /// Total time visible across all appearances (the paper calls this the
    /// object's *persistence* in Fig. 4 / Table 6).
    pub fn total_duration(&self) -> Seconds {
        self.segments.iter().map(|s| s.duration()).sum()
    }

    /// The tightest `(ρ, K)` bound on this object's event:
    /// `ρ` = longest segment, `K` = number of segments.
    pub fn tightest_bound(&self) -> (Seconds, usize) {
        (self.max_segment_duration(), self.appearance_count())
    }

    /// Timestamp of the first appearance, if any.
    pub fn first_seen(&self) -> Option<Timestamp> {
        self.segments.first().map(|s| s.span.start)
    }

    /// Bounding box at `t`, if the object is visible then.
    pub fn bbox_at(&self, t: Timestamp) -> Option<BoundingBox> {
        self.segments.iter().find_map(|s| s.bbox_at(t))
    }

    /// True if the object is visible at some instant of `span`.
    pub fn visible_during(&self, span: &TimeSpan) -> bool {
        self.segments.iter().any(|s| s.span.overlaps(span))
    }
}

/// A single ground-truth observation: one object in one frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// The observed object.
    pub object_id: ObjectId,
    /// Its class.
    pub class: ObjectClass,
    /// Its bounding box in this frame.
    pub bbox: BoundingBox,
    /// The frame timestamp.
    pub timestamp: Timestamp,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;
    use crate::trajectory::Trajectory;

    fn seg(start: f64, end: f64) -> PresenceSegment {
        PresenceSegment {
            span: TimeSpan::between_secs(start, end),
            trajectory: Trajectory::linear(Point::new(0.0, 0.0), Point::new(100.0, 0.0), 10.0, 20.0),
        }
    }

    #[test]
    fn tightest_bound_reflects_segments() {
        // Mirrors the running example of §5.1: 30 s then 10 s → (ρ=30, K=2).
        let obj = TrackedObject::new(
            ObjectId(1),
            ObjectClass::Person,
            Attributes::default(),
            vec![seg(0.0, 30.0), seg(100.0, 110.0)],
        );
        let (rho, k) = obj.tightest_bound();
        assert!((rho - 30.0).abs() < 1e-9);
        assert_eq!(k, 2);
        assert!((obj.total_duration() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn segments_sorted_on_construction() {
        let obj = TrackedObject::new(
            ObjectId(2),
            ObjectClass::Car,
            Attributes::default(),
            vec![seg(50.0, 60.0), seg(0.0, 10.0)],
        );
        assert_eq!(obj.first_seen().unwrap(), Timestamp::ZERO);
        assert!(obj.segments[0].span.start < obj.segments[1].span.start);
    }

    #[test]
    fn bbox_interpolates_along_segment() {
        let s = seg(0.0, 10.0);
        let start = s.bbox_at(Timestamp::from_secs(0.0)).unwrap();
        let mid = s.bbox_at(Timestamp::from_secs(5.0)).unwrap();
        assert!(mid.center().x > start.center().x);
        assert!(s.bbox_at(Timestamp::from_secs(10.0)).is_none(), "span is half-open");
        assert!(s.bbox_at(Timestamp::from_secs(11.0)).is_none());
    }

    #[test]
    fn visible_during_detects_overlap() {
        let obj = TrackedObject::new(ObjectId(3), ObjectClass::Person, Attributes::default(), vec![seg(10.0, 20.0)]);
        assert!(obj.visible_during(&TimeSpan::between_secs(15.0, 25.0)));
        assert!(!obj.visible_during(&TimeSpan::between_secs(20.0, 25.0)));
    }

    #[test]
    fn private_classes() {
        assert!(ObjectClass::Person.is_private());
        assert!(ObjectClass::Car.is_private());
        assert!(ObjectClass::Bicycle.is_private());
        assert!(!ObjectClass::Tree.is_private());
        assert!(!ObjectClass::TrafficLight.is_private());
    }

    #[test]
    fn color_labels_match_listing1_keys() {
        assert_eq!(VehicleColor::Red.label(), "RED");
        assert_eq!(VehicleColor::White.label(), "WHITE");
        assert_eq!(VehicleColor::Silver.label(), "SILVER");
    }
}
