//! A [`Scene`] is the ground-truth world a single camera records: a set of
//! objects with trajectories over a time span, plus the camera's frame rate
//! and frame size.
//!
//! Everything downstream consumes scenes: the CV substrate "detects" objects
//! from scene observations (with injected error), the sandbox materializes
//! chunks of frames from a scene, and the statistics module computes
//! persistence distributions from a scene's ground truth.
//!
//! Scenes carry a coarse time-bucketed index over presence segments so that
//! materializing a frame only inspects objects present in that minute of
//! video instead of every object in a 12-hour recording.

use crate::geometry::{FrameSize, Mask, RegionScheme};
use crate::object::{ObjectId, Observation, TrackedObject};
use crate::time::{FrameRate, Seconds, TimeSpan, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Stable identifier for a camera / scene.
///
/// Interned as an `Arc<str>` so hot-path code (chunk materialization, per-row
/// camera columns) can share the identifier with a reference-count bump
/// instead of cloning a `String` per chunk.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CameraId(pub Arc<str>);

impl CameraId {
    /// Construct a camera id from any string-like value.
    pub fn new(name: impl Into<String>) -> Self {
        CameraId(Arc::from(name.into()))
    }

    /// The identifier as a plain string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for CameraId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Width of one index bucket in seconds.
const BUCKET_SECS: f64 = 60.0;

/// The ground-truth contents of one camera's recording.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scene {
    /// The camera that recorded this scene.
    pub camera: CameraId,
    /// The recording's time span.
    pub span: TimeSpan,
    /// Frame rate the camera records at.
    pub frame_rate: FrameRate,
    /// Pixel dimensions of the frames.
    pub frame_size: FrameSize,
    /// Every ground-truth object that ever appears.
    pub objects: Vec<TrackedObject>,
    /// Optional spatial-splitting schemes published by the video owner (§7.2),
    /// keyed by scheme name.
    pub region_schemes: HashMap<String, RegionScheme>,
    /// Time-bucketed index: bucket number → (object index, segment index)
    /// pairs whose segment overlaps that bucket. Rebuilt on construction and
    /// skipped during serialization.
    #[serde(skip)]
    index: HashMap<i64, Vec<(u32, u32)>>,
    /// Object id → index into `objects`. Rebuilt alongside `index`; lets the
    /// chunking hot path resolve an observation's attributes without scanning
    /// the whole object list.
    #[serde(skip)]
    by_id: HashMap<ObjectId, u32>,
}

impl Scene {
    /// Construct a scene and build its segment index.
    pub fn new(
        camera: CameraId,
        span: TimeSpan,
        frame_rate: FrameRate,
        frame_size: FrameSize,
        objects: Vec<TrackedObject>,
    ) -> Self {
        let mut scene = Scene {
            camera,
            span,
            frame_rate,
            frame_size,
            objects,
            region_schemes: HashMap::new(),
            index: HashMap::new(),
            by_id: HashMap::new(),
        };
        scene.rebuild_index();
        scene
    }

    /// Rebuild the time-bucketed segment index. Call after mutating `objects`
    /// directly (the generators never do; they construct scenes once).
    pub fn rebuild_index(&mut self) {
        self.index.clear();
        self.by_id.clear();
        for oi in 0..self.objects.len() {
            self.index_object(oi);
        }
    }

    /// Index one object's segments (and its id), by object index.
    fn index_object(&mut self, oi: usize) {
        let obj = &self.objects[oi]; // privid-analyzer: allow(panic-freedom) -- callers iterate 0..objects.len()
        self.by_id.insert(obj.id, oi as u32);
        let buckets: Vec<(i64, i64, u32)> = obj
            .segments
            .iter()
            .enumerate()
            .map(|(si, seg)| {
                let b0 = (seg.span.start.as_secs() / BUCKET_SECS).floor() as i64;
                let b1 = (seg.span.end.as_secs() / BUCKET_SECS).floor() as i64;
                (b0, b1, si as u32)
            })
            .collect();
        for (b0, b1, si) in buckets {
            for b in b0..=b1 {
                self.index.entry(b).or_default().push((oi as u32, si));
            }
        }
    }

    /// Append-only extension of the recording: advance the span's end to
    /// `new_end` and add the objects that newly appeared, indexing only them.
    ///
    /// This is the mechanical half of live ingestion — [`crate::Recording`]
    /// wraps it with the validation (monotonic edge, unique ids, no footage
    /// added before the live edge) that keeps already-recorded frames final.
    /// Cost is proportional to the *batch*, not the whole scene, so a camera
    /// appending all day never pays a full reindex.
    pub fn extend(&mut self, new_end: Timestamp, objects: Vec<TrackedObject>) {
        assert!(new_end >= self.span.end, "a recording timeline only ever grows");
        self.span.end = new_end;
        for obj in objects {
            let oi = self.objects.len();
            self.objects.push(obj);
            self.index_object(oi);
        }
    }

    /// Index of an object in `objects`, by id.
    pub fn object_index(&self, id: ObjectId) -> Option<usize> {
        self.by_id.get(&id).map(|&i| i as usize)
    }

    /// Register a spatial-splitting scheme under a name.
    pub fn add_region_scheme(&mut self, name: impl Into<String>, scheme: RegionScheme) {
        self.region_schemes.insert(name.into(), scheme);
    }

    /// Number of ground-truth objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Ground-truth observations (unmasked) at a timestamp.
    pub fn observations_at(&self, t: Timestamp) -> Vec<Observation> {
        self.observations_at_masked(t, None)
    }

    /// Ground-truth observations at a timestamp with an optional mask applied.
    ///
    /// Masked observations are *removed*: the analyst's processor cannot see
    /// objects whose pixels have been blacked out, which is how §7.1 lowers
    /// the observable persistence.
    pub fn observations_at_masked(&self, t: Timestamp, mask: Option<&Mask>) -> Vec<Observation> {
        let mut out = Vec::new();
        self.observations_at_masked_into(t, mask, &mut out);
        out
    }

    /// Append the (masked) observations at a timestamp to `out`.
    ///
    /// The allocation-free workhorse behind [`Scene::observations_at_masked`]:
    /// chunk materialization calls it once per frame into a reused buffer, so
    /// the hot path performs no per-frame allocation at steady state.
    ///
    /// Timestamps outside `span` yield nothing: the recording ends at
    /// `span.end`, so no frame exists there — even when a ground-truth
    /// trajectory (delivered early by a live [`crate::Recording`] batch, or
    /// overhanging a generated scene's end) extends past it.
    pub fn observations_at_masked_into(&self, t: Timestamp, mask: Option<&Mask>, out: &mut Vec<Observation>) {
        if !self.span.contains(t) {
            return;
        }
        let bucket = (t.as_secs() / BUCKET_SECS).floor() as i64;
        let Some(entries) = self.index.get(&bucket) else { return };
        for &(oi, si) in entries {
            let obj = &self.objects[oi as usize]; // privid-analyzer: allow(panic-freedom) -- index entries are minted from enumerate over objects/segments and rebuilt on every mutation
            let seg = &obj.segments[si as usize]; // privid-analyzer: allow(panic-freedom) -- same proof: (oi, si) minted from enumerate
            if let Some(bbox) = seg.bbox_at(t) {
                if let Some(m) = mask {
                    if m.hides(&bbox) {
                        continue;
                    }
                }
                out.push(Observation { object_id: obj.id, class: obj.class, bbox, timestamp: t });
            }
        }
    }

    /// Objects visible at some instant of the span (unmasked).
    pub fn objects_visible_during(&self, span: &TimeSpan) -> Vec<&TrackedObject> {
        self.objects.iter().filter(|o| o.visible_during(span)).collect()
    }

    /// Ground-truth maximum single-segment duration over objects for which
    /// `filter` returns true (e.g. only private classes). This is the quantity
    /// the video owner's `(ρ, K)` policy must cover.
    pub fn max_segment_duration(&self, filter: impl Fn(&TrackedObject) -> bool) -> Seconds {
        self.objects.iter().filter(|o| filter(o)).map(|o| o.max_segment_duration()).fold(0.0, f64::max)
    }

    /// Ground-truth maximum appearance count over filtered objects.
    pub fn max_appearance_count(&self, filter: impl Fn(&TrackedObject) -> bool) -> usize {
        self.objects.iter().filter(|o| filter(o)).map(|o| o.appearance_count()).max().unwrap_or(0)
    }

    /// The *observable* per-segment durations of an object under a mask: each
    /// presence segment is sampled at the camera's frame interval and split
    /// into maximal runs of frames in which the object is not hidden.
    ///
    /// Returns one duration per observable run, in seconds.
    pub fn observable_runs(&self, obj: &TrackedObject, mask: Option<&Mask>) -> Vec<Seconds> {
        let dt = self.frame_rate.frame_duration();
        let mut runs = Vec::new();
        for seg in &obj.segments {
            if mask.is_none_or(|m| m.is_empty()) {
                // No mask (or an empty one): the observable run is the whole segment.
                runs.push(seg.duration());
                continue;
            }
            let mut run_start: Option<Timestamp> = None;
            let mut last_visible: Option<Timestamp> = None;
            let n = (seg.span.duration() / dt).ceil() as u64;
            for i in 0..=n {
                let t = seg.span.start.add_secs(i as f64 * dt);
                let visible = seg.bbox_at(t).map(|b| mask.is_none_or(|m| !m.hides(&b))).unwrap_or(false);
                if visible {
                    if run_start.is_none() {
                        run_start = Some(t);
                    }
                    last_visible = Some(t);
                } else if let (Some(s), Some(e)) = (run_start.take(), last_visible) {
                    runs.push((e - s) + dt);
                }
            }
            if let (Some(s), Some(e)) = (run_start, last_visible) {
                runs.push((e - s) + dt);
            }
        }
        runs
    }

    /// Maximum observable run duration over all filtered objects under a mask.
    /// With `mask = None` this equals the ground-truth maximum persistence.
    pub fn max_observable_duration(
        &self,
        mask: Option<&Mask>,
        filter: impl Fn(&TrackedObject) -> bool,
    ) -> Seconds {
        self.objects
            .iter()
            .filter(|o| filter(o))
            .flat_map(|o| self.observable_runs(o, mask))
            .fold(0.0, f64::max)
    }

    /// Number of filtered objects that remain observable (at least one run)
    /// under the mask. Used by Table 6's "% identities retained".
    pub fn observable_object_count(&self, mask: Option<&Mask>, filter: impl Fn(&TrackedObject) -> bool) -> usize {
        self.objects.iter().filter(|o| filter(o) && !self.observable_runs(o, mask).is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{BoundingBox, GridSpec, Point, Region, RegionBoundary};
    use crate::object::{Attributes, ObjectClass, ObjectId, PresenceSegment};
    use crate::trajectory::Trajectory;

    fn simple_scene() -> Scene {
        let frame = FrameSize::new(100, 100);
        let person = TrackedObject::new(
            ObjectId(1),
            ObjectClass::Person,
            Attributes::default(),
            vec![PresenceSegment {
                span: TimeSpan::between_secs(0.0, 30.0),
                trajectory: Trajectory::linear(Point::new(5.0, 50.0), Point::new(95.0, 50.0), 6.0, 10.0),
            }],
        );
        let parked_car = TrackedObject::new(
            ObjectId(2),
            ObjectClass::Car,
            Attributes::default(),
            vec![PresenceSegment {
                span: TimeSpan::between_secs(0.0, 300.0),
                trajectory: Trajectory::dwell(
                    Point::new(5.0, 90.0),
                    Point::new(50.0, 90.0),
                    Point::new(95.0, 90.0),
                    0.05,
                    10.0,
                    6.0,
                ),
            }],
        );
        Scene::new(
            CameraId::new("test"),
            TimeSpan::from_secs(600.0),
            FrameRate::new(2.0),
            frame,
            vec![person, parked_car],
        )
    }

    #[test]
    fn observations_at_returns_visible_objects() {
        let scene = simple_scene();
        let obs = scene.observations_at(Timestamp::from_secs(10.0));
        assert_eq!(obs.len(), 2);
        let obs_late = scene.observations_at(Timestamp::from_secs(100.0));
        assert_eq!(obs_late.len(), 1, "person has left by t=100");
        assert_eq!(obs_late[0].object_id, ObjectId(2));
    }

    #[test]
    fn observations_use_index_across_buckets() {
        let scene = simple_scene();
        // Bucket 4 (t=240..300) should still find the parked car.
        let obs = scene.observations_at(Timestamp::from_secs(250.0));
        assert_eq!(obs.len(), 1);
        // After the car leaves there is nothing.
        assert!(scene.observations_at(Timestamp::from_secs(400.0)).is_empty());
    }

    #[test]
    fn ground_truth_maxima() {
        let scene = simple_scene();
        assert!((scene.max_segment_duration(|o| o.class.is_private()) - 300.0).abs() < 1e-9);
        assert_eq!(scene.max_appearance_count(|_| true), 1);
        assert_eq!(scene.object_count(), 2);
    }

    #[test]
    fn mask_over_parking_spot_cuts_observable_duration() {
        let scene = simple_scene();
        let grid = GridSpec::new(scene.frame_size, 10, 10);
        // Mask the cells around the parked car's resting spot (x≈50, y≈90).
        let mask = Mask::from_cells(grid, [(3, 8), (4, 8), (5, 8), (6, 8), (3, 9), (4, 9), (5, 9), (6, 9)]);
        let unmasked_max = scene.max_observable_duration(None, |o| o.class.is_private());
        let masked_max = scene.max_observable_duration(Some(&mask), |o| o.class.is_private());
        assert!(unmasked_max >= 299.0);
        assert!(
            masked_max < unmasked_max / 2.0,
            "masking the rest spot should slash max persistence: {masked_max} vs {unmasked_max}"
        );
        // Both objects are still observable at least once.
        assert_eq!(scene.observable_object_count(Some(&mask), |o| o.class.is_private()), 2);
    }

    #[test]
    fn observable_runs_without_mask_cover_full_segments() {
        let scene = simple_scene();
        let runs = scene.observable_runs(&scene.objects[0], None);
        assert_eq!(runs.len(), 1);
        assert!((runs[0] - 30.0).abs() <= scene.frame_rate.frame_duration() + 1e-9);
    }

    #[test]
    fn region_scheme_registration() {
        let mut scene = simple_scene();
        scene.add_region_scheme(
            "halves",
            RegionScheme::new(
                vec![
                    Region { id: 0, name: "left".into(), bbox: BoundingBox::new(0.0, 0.0, 50.0, 100.0) },
                    Region { id: 1, name: "right".into(), bbox: BoundingBox::new(50.0, 0.0, 50.0, 100.0) },
                ],
                RegionBoundary::Soft,
            ),
        );
        assert!(scene.region_schemes.contains_key("halves"));
        assert_eq!(scene.region_schemes["halves"].len(), 2);
    }

    #[test]
    fn objects_visible_during_filters_by_overlap() {
        let scene = simple_scene();
        let visible = scene.objects_visible_during(&TimeSpan::between_secs(40.0, 50.0));
        assert_eq!(visible.len(), 1);
        assert_eq!(visible[0].id, ObjectId(2));
    }

    #[test]
    fn extend_indexes_only_new_objects_and_grows_the_span() {
        let mut scene = simple_scene();
        assert_eq!(scene.span.end, Timestamp::from_secs(600.0));
        scene.extend(
            Timestamp::from_secs(900.0),
            vec![TrackedObject::new(
                ObjectId(9),
                ObjectClass::Person,
                Attributes::default(),
                vec![PresenceSegment {
                    span: TimeSpan::between_secs(700.0, 760.0),
                    trajectory: Trajectory::linear(Point::new(0.0, 10.0), Point::new(90.0, 10.0), 5.0, 10.0),
                }],
            )],
        );
        assert_eq!(scene.span.end, Timestamp::from_secs(900.0));
        // The new object is reachable through the incremental index…
        let obs = scene.observations_at(Timestamp::from_secs(730.0));
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].object_id, ObjectId(9));
        assert_eq!(scene.object_index(ObjectId(9)), Some(2));
        // …and the pre-existing footage is untouched.
        assert_eq!(scene.observations_at(Timestamp::from_secs(10.0)).len(), 2);
    }

    #[test]
    fn observations_stop_at_the_recorded_edge() {
        // A trajectory overhanging the recording's end must not produce
        // observations past `span.end`: the frames there do not exist (yet).
        let mut scene = simple_scene();
        scene.span.end = Timestamp::from_secs(100.0);
        assert!(scene.observations_at(Timestamp::from_secs(150.0)).is_empty(), "the car dwells until 300 s, but the recording stops at 100 s");
        assert_eq!(scene.observations_at(Timestamp::from_secs(99.5)).len(), 1);
        scene.span.end = Timestamp::from_secs(600.0);
        assert_eq!(scene.observations_at(Timestamp::from_secs(150.0)).len(), 1, "growing the edge reveals the footage");
    }

    #[test]
    fn rebuild_index_after_mutation() {
        let mut scene = simple_scene();
        scene.objects.push(TrackedObject::new(
            ObjectId(3),
            ObjectClass::Person,
            Attributes::default(),
            vec![PresenceSegment {
                span: TimeSpan::between_secs(500.0, 550.0),
                trajectory: Trajectory::linear(Point::new(0.0, 10.0), Point::new(90.0, 10.0), 5.0, 10.0),
            }],
        ));
        // Before rebuilding the index the new object is invisible to frame queries.
        assert!(scene.observations_at(Timestamp::from_secs(520.0)).is_empty());
        scene.rebuild_index();
        assert_eq!(scene.observations_at(Timestamp::from_secs(520.0)).len(), 1);
    }
}
