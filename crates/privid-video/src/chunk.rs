//! Temporal chunking: the `SPLIT ... BY TIME c STRIDE s` stage of a Privid
//! query (§6.2).
//!
//! A chunk is a contiguous run of frames handed to one isolated instantiation
//! of the analyst's processor. Chunk boundaries are what tie an event's
//! duration to the number of table rows it can influence (Eq. 6.1), so the
//! arithmetic here — how many chunks a span yields, which chunks an event can
//! span — is load-bearing for the privacy guarantee and is tested as such.

use crate::geometry::Mask;
use crate::object::{Attributes, ObjectClass, ObjectId, Observation};
use crate::plan::{ChunkBuffer, ChunkPlan};
use crate::scene::Scene;
use crate::time::{Seconds, TimeSpan, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// One materialized frame: a timestamp plus the observations visible in it.
///
/// Real Privid hands pixel frames to the processor; since our processors are
/// trait objects that consume structured observations, a frame carries the
/// (possibly masked) ground-truth observations directly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Index of the frame within its chunk.
    pub index_in_chunk: u64,
    /// Absolute timestamp of the frame.
    pub timestamp: Timestamp,
    /// Observations visible in this frame (after masking, if any).
    pub observations: Vec<Observation>,
}

/// What an analyst's model could plausibly extract about one object from a
/// single chunk's pixels: its apparent class and attributes (plate, colour,
/// speed, ...) plus its within-chunk motion. Everything here is derived from
/// this chunk only, preserving the isolation contract of Appendix B.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChunkObjectInfo {
    /// The object's class.
    pub class: ObjectClass,
    /// Appearance attributes (plate, colour, speed, bloom state, ...).
    pub attributes: Attributes,
    /// True if the object is already visible in the chunk's first frame
    /// (processors counting unique entrants skip such objects, §6.2).
    pub visible_in_first_frame: bool,
    /// First frame timestamp (within this chunk) the object is visible.
    pub first_seen: Timestamp,
    /// Last frame timestamp (within this chunk) the object is visible.
    pub last_seen: Timestamp,
    /// Net vertical motion of the object's centre across this chunk, in
    /// pixels; negative values mean the object moved towards the top of the
    /// frame ("north"). Only meaningful when the chunk is long enough to
    /// observe motion — exactly the reason Q13 needs a larger chunk size.
    pub net_dy: f64,
}

/// A contiguous chunk of video handed to one processor instantiation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Chunk {
    /// Index of the chunk within the split (0-based).
    pub index: u64,
    /// The camera the chunk came from (interned; cloning bumps a refcount
    /// instead of copying the string).
    pub camera: Arc<str>,
    /// Time span covered by the chunk.
    pub span: TimeSpan,
    /// The chunk's frames in order.
    pub frames: Vec<Frame>,
    /// Per-object information derivable from this chunk alone.
    pub objects: HashMap<ObjectId, ChunkObjectInfo>,
}

impl Chunk {
    /// An empty chunk (no frames, no objects) covering a span — convenient in
    /// tests and for time ranges where the camera recorded nothing.
    pub fn empty(index: u64, camera: impl Into<String>, span: TimeSpan) -> Self {
        Chunk { index, camera: Arc::from(camera.into()), span, frames: Vec::new(), objects: HashMap::new() }
    }

    /// All distinct object ids observed anywhere in the chunk.
    pub fn observed_object_ids(&self) -> Vec<crate::object::ObjectId> {
        let mut ids: Vec<_> = self.frames.iter().flat_map(|f| f.observations.iter().map(|o| o.object_id)).collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// Total number of observations across all frames.
    pub fn observation_count(&self) -> usize {
        self.frames.iter().map(|f| f.observations.len()).sum()
    }
}

/// How to split a span of video into chunks: `BY TIME chunk_secs STRIDE stride_secs`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChunkSpec {
    /// Duration of each chunk in seconds (`c` in the paper). Must be positive.
    pub chunk_secs: Seconds,
    /// Gap between the end of one chunk and the start of the next, in seconds.
    /// Zero means back-to-back chunks; the paper also allows negative strides
    /// for overlapping chunks, which we support.
    pub stride_secs: Seconds,
}

impl ChunkSpec {
    /// Back-to-back chunks of the given duration.
    pub fn contiguous(chunk_secs: Seconds) -> Self {
        ChunkSpec { chunk_secs, stride_secs: 0.0 }
    }

    /// Construct a spec, validating the chunk duration.
    pub fn new(chunk_secs: Seconds, stride_secs: Seconds) -> Result<Self, String> {
        if chunk_secs <= 0.0 {
            return Err(format!("chunk duration must be positive, got {chunk_secs}"));
        }
        if chunk_secs + stride_secs <= 0.0 {
            return Err("chunk duration plus stride must be positive or the split never advances".to_string());
        }
        Ok(ChunkSpec { chunk_secs, stride_secs })
    }

    /// Distance between successive chunk starts.
    pub fn period(&self) -> Seconds {
        self.chunk_secs + self.stride_secs
    }

    /// Number of chunks produced for a window of the given duration.
    pub fn chunk_count(&self, window_secs: Seconds) -> u64 {
        if window_secs <= 0.0 {
            return 0;
        }
        (window_secs / self.period()).ceil() as u64
    }

    /// The worst-case number of chunks a single event segment of duration `ρ`
    /// can span (Eq. 6.1): `1 + ⌈ρ / c⌉`.
    pub fn max_chunks_spanned(&self, rho_secs: Seconds) -> u64 {
        1 + (rho_secs / self.chunk_secs).ceil() as u64
    }

    /// The spans of every chunk covering `window`.
    pub fn chunk_spans(&self, window: &TimeSpan) -> Vec<TimeSpan> {
        let mut spans = Vec::new();
        let mut start = window.start;
        while start < window.end {
            let end = start.add_secs(self.chunk_secs);
            let end = if end > window.end { window.end } else { end };
            spans.push(TimeSpan::new(start, end));
            let next = start.add_secs(self.period());
            if next <= start {
                break; // guards against pathological negative strides
            }
            start = next;
        }
        spans
    }
}

/// Split a scene's window into materialized chunks, applying an optional mask.
///
/// This is the eager, owning form of the SPLIT stage, kept for tests, the
/// statistics module and anything else that wants `Vec<Chunk>`. It is a thin
/// wrapper over [`ChunkPlan`]: each chunk is materialized into a reused
/// buffer and then copied out, so the chunking arithmetic has a single
/// implementation. The executor's hot path uses the plan directly and never
/// materializes owned chunks.
pub fn split_scene(scene: &Scene, window: &TimeSpan, spec: &ChunkSpec, mask: Option<&Mask>) -> Vec<Chunk> {
    let plan = ChunkPlan::new(scene, window, spec, mask);
    let mut buf = ChunkBuffer::new();
    (0..plan.len()).map(|i| plan.materialize_into(i, &mut buf).to_chunk()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{FrameSize, Point};
    use crate::object::{Attributes, ObjectClass, ObjectId, PresenceSegment, TrackedObject};
    use crate::scene::CameraId;
    use crate::time::FrameRate;
    use crate::trajectory::Trajectory;

    fn scene_with_one_walker(duration: f64) -> Scene {
        let obj = TrackedObject::new(
            ObjectId(7),
            ObjectClass::Person,
            Attributes::default(),
            vec![PresenceSegment {
                span: TimeSpan::between_secs(2.0, 2.0 + duration),
                trajectory: Trajectory::linear(Point::new(0.0, 50.0), Point::new(100.0, 50.0), 5.0, 10.0),
            }],
        );
        Scene::new(CameraId::new("cam"), TimeSpan::from_secs(60.0), FrameRate::new(2.0), FrameSize::new(100, 100), vec![obj])
    }

    #[test]
    fn chunk_spec_counts() {
        let spec = ChunkSpec::contiguous(5.0);
        assert_eq!(spec.chunk_count(60.0), 12);
        assert_eq!(spec.chunk_count(0.0), 0);
        let strided = ChunkSpec::new(5.0, 5.0).unwrap();
        assert_eq!(strided.chunk_count(60.0), 6);
    }

    #[test]
    fn chunk_spec_rejects_invalid() {
        assert!(ChunkSpec::new(0.0, 1.0).is_err());
        assert!(ChunkSpec::new(-5.0, 0.0).is_err());
        assert!(ChunkSpec::new(5.0, -5.0).is_err());
        assert!(ChunkSpec::new(5.0, -2.0).is_ok(), "overlapping chunks are allowed");
    }

    #[test]
    fn max_chunks_spanned_matches_eq_6_1() {
        let spec = ChunkSpec::contiguous(5.0);
        // ρ = 30 s, c = 5 s → 1 + ⌈30/5⌉ = 7
        assert_eq!(spec.max_chunks_spanned(30.0), 7);
        // ρ = 0 → a single frame can still touch one chunk... Eq 6.1 gives 1 + 0 = 1
        assert_eq!(spec.max_chunks_spanned(0.0), 1);
        // ρ = 1 s, c = 5 s → 2 (first visible in the last frame of a chunk)
        assert_eq!(spec.max_chunks_spanned(1.0), 2);
    }

    #[test]
    fn chunk_spans_cover_window_exactly() {
        let spec = ChunkSpec::contiguous(7.0);
        let window = TimeSpan::from_secs(20.0);
        let spans = spec.chunk_spans(&window);
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0], TimeSpan::between_secs(0.0, 7.0));
        assert_eq!(spans[2], TimeSpan::between_secs(14.0, 20.0), "last chunk is truncated to the window");
    }

    #[test]
    fn split_scene_produces_frames_and_observations() {
        let scene = scene_with_one_walker(10.0);
        let chunks = split_scene(&scene, &TimeSpan::from_secs(20.0), &ChunkSpec::contiguous(5.0), None);
        assert_eq!(chunks.len(), 4);
        // 2 fps × 5 s chunks = 10 frames per chunk
        assert_eq!(chunks[0].frames.len(), 10);
        // The walker is visible from t=2 to t=12, i.e. chunks 0, 1 and 2.
        assert!(chunks[0].observed_object_ids().contains(&ObjectId(7)));
        assert!(chunks[1].observed_object_ids().contains(&ObjectId(7)));
        assert!(chunks[2].observed_object_ids().contains(&ObjectId(7)));
        assert!(chunks[3].observed_object_ids().is_empty());
    }

    #[test]
    fn event_spans_at_most_eq_6_1_chunks() {
        // A 12-second appearance with 5-second chunks can span at most
        // 1 + ⌈12/5⌉ = 4 chunks; verify the materialized chunks agree.
        let scene = scene_with_one_walker(12.0);
        let spec = ChunkSpec::contiguous(5.0);
        let chunks = split_scene(&scene, &TimeSpan::from_secs(60.0), &spec, None);
        let spanned = chunks.iter().filter(|c| c.observed_object_ids().contains(&ObjectId(7))).count() as u64;
        assert!(spanned <= spec.max_chunks_spanned(12.0));
        assert!(spanned >= 3);
    }

    #[test]
    fn overlapping_chunks_with_negative_stride() {
        let spec = ChunkSpec::new(10.0, -5.0).unwrap();
        let spans = spec.chunk_spans(&TimeSpan::from_secs(20.0));
        assert_eq!(spans.len(), 4);
        assert!(spans[0].overlaps(&spans[1]));
    }

    #[test]
    fn chunk_observation_count_sums_frames() {
        let scene = scene_with_one_walker(10.0);
        let chunks = split_scene(&scene, &TimeSpan::from_secs(5.0), &ChunkSpec::contiguous(5.0), None);
        assert_eq!(chunks.len(), 1);
        // walker visible t ∈ [2, 5) at 2 fps → frames at 2.0, 2.5, ..., 4.5 = 6 observations
        assert_eq!(chunks[0].observation_count(), 6);
    }
}
